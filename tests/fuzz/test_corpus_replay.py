"""Corpus round-trip and the tier-1 regression replay.

Every committed ``fuzz/corpus/`` entry is a minimized kernel on which a
configuration once diverged; the bug is fixed (or was injected test-only),
so replaying the spec through the full differential matrix must report
zero divergences.  This is the standing safety net: a future miscompile
that resurrects an old bug fails here with the replay command attached.
"""

import pytest

from repro.fuzz import (
    CorpusEntry,
    DEFAULT_CORPUS_DIR,
    DifferentialRunner,
    entry_from_divergence,
    generate_spec,
    load_corpus,
    minimize,
    minimize_and_save,
    replay_entry,
    save_entry,
)

CORPUS = load_corpus()


def test_committed_corpus_is_nonempty():
    assert DEFAULT_CORPUS_DIR.is_dir()
    assert CORPUS, "the seeded corpus entries must be committed"


@pytest.mark.parametrize("entry", CORPUS, ids=lambda e: e.name)
def test_corpus_entry_replays_clean(entry):
    divergences = replay_entry(entry)
    details = "\n".join(d.describe() for d in divergences)
    assert not divergences, f"corpus regression {entry.name}:\n{details}"


@pytest.mark.parametrize("entry", CORPUS, ids=lambda e: e.name)
def test_corpus_entry_has_replayable_metadata(entry):
    assert entry.repro_command.startswith("PYTHONPATH=src python -m repro.fuzz")
    assert entry.spec.size() <= entry.original_size
    rendered = (DEFAULT_CORPUS_DIR / f"{entry.name}.f90").read_text()
    assert rendered == entry.spec.render()


def test_save_load_roundtrip(tmp_path):
    spec = generate_spec(23)
    runner = DifferentialRunner()
    result = runner.run_case(spec)
    assert result.ok
    # Build an entry by hand (no divergence needed for the round-trip).
    from repro.fuzz.runner import Divergence

    divergence = Divergence(seed=23, config_label="cpu/vectorize",
                            backend="cpu", kind="bitwise",
                            detail="synthetic", spec=spec)
    entry = entry_from_divergence(divergence, spec)
    path = save_entry(entry, tmp_path)
    assert path.exists()
    assert (tmp_path / f"{entry.name}.f90").exists()
    loaded = load_corpus(tmp_path)
    assert len(loaded) == 1
    assert loaded[0].spec == spec
    assert loaded[0].config_label == "cpu/vectorize"


def test_minimize_and_save_full_capture_path(tmp_path):
    """The farm's end-to-end capture: injected fault -> caught -> minimized
    -> persisted -> loadable -> replays clean without the fault."""
    label = "gpu/vectorize"

    def fault(spec, cfg_label, outputs):
        if cfg_label == label:
            outputs[spec.arrays[0]].flat[0] += 1e-9

    faulty = DifferentialRunner(fault_hook=fault)
    spec = generate_spec(17)
    divergence = next(d for d in faulty.run_case(spec).divergences
                      if d.config_label == label)
    entry = minimize_and_save(divergence, faulty, corpus_dir=tmp_path)
    assert entry.spec.size() < spec.size()
    loaded = load_corpus(tmp_path)[0]
    assert loaded.spec == entry.spec
    # Without the hook the minimized kernel is clean across the full matrix.
    assert not replay_entry(loaded, DifferentialRunner())
