"""The executable-kernel generator: determinism, replay, coverage, safety."""

import pytest

from repro.frontend import compile_to_fir
from repro.fuzz.generator import (
    DEFAULT_CONFIG,
    GeneratorConfig,
    KernelSpec,
    generate_spec,
)

SEEDS = range(60)


def test_same_seed_same_spec():
    assert generate_spec(5) == generate_spec(5)
    assert generate_spec(5) != generate_spec(6)


def test_spec_replays_from_seed_and_config():
    """(seed, config) is the full replay identity: a spec round-trips
    through its dict form, and regeneration reproduces it exactly."""
    config = GeneratorConfig(max_rank=2, max_statements=1)
    spec = generate_spec(9, config)
    assert generate_spec(9, config) == spec
    assert KernelSpec.from_dict(spec.to_dict()) == spec
    assert GeneratorConfig.from_dict(config.to_dict()) == config


def test_trace_records_every_decision():
    spec = generate_spec(3)
    assert spec.trace  # non-empty (label, value) pairs
    assert all(isinstance(label, str) for label, _ in spec.trace)


def test_covers_every_rank_and_both_styles():
    specs = [generate_spec(seed) for seed in SEEDS]
    assert {spec.rank for spec in specs} == {1, 2, 3}
    assert {spec.style for spec in specs} == {"general", "distributed"}


def test_distributed_specs_are_star_shaped_single_array():
    """The dmp scatter/halo machinery requires orthogonal (star) stencils
    on one field argument of rank >= 2."""
    seen = 0
    for seed in SEEDS:
        spec = generate_spec(seed)
        if spec.style != "distributed":
            continue
        seen += 1
        assert spec.rank >= 2
        assert spec.arrays == ("a",)
        assert not spec.has_scalar
        assert spec.max_offset <= 1
    assert seen > 5


def test_extents_cover_every_offset():
    for seed in SEEDS:
        spec = generate_spec(seed)
        assert all(extent >= spec.min_extent for extent in spec.extents)


@pytest.mark.parametrize("seed", range(25))
def test_rendered_spec_compiles_and_verifies(seed):
    module = compile_to_fir(generate_spec(seed).render())
    module.verify()


def test_render_with_shape_override_redeclares_extents():
    spec = generate_spec(1)
    override = tuple(extent + 4 for extent in spec.extents)
    source = spec.render(shape=override)
    for dim, extent in enumerate(override):
        assert f"n{dim + 1} = {extent}" in source
    module = compile_to_fir(source)
    module.verify()


def test_default_config_is_frozen_and_serialisable():
    with pytest.raises(Exception):
        DEFAULT_CONFIG.max_rank = 99  # frozen dataclass
    assert GeneratorConfig.from_dict(DEFAULT_CONFIG.to_dict()) == DEFAULT_CONFIG
