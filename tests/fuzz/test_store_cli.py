"""``python -m repro.fuzz --store DIR``: farm churn over the on-disk store.

The exit-code contract (0 clean / 1 divergence / 2 crash) is unchanged by
the store flag, and a second run over the same directory reloads compiled
artifacts instead of lowering them again.
"""

from repro.fuzz.__main__ import main as fuzz_main, run as fuzz_run
from repro.serve import ArtifactStore


class TestFuzzStoreFlag:
    def test_clean_run_with_store_exits_zero_and_populates_dir(
            self, tmp_path, capsys):
        store_dir = tmp_path / "store"
        assert fuzz_main(["--seeds", "3", "--store", str(store_dir),
                          "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "fuzz_summary" in out
        assert "disk hits" in out  # the store-backed cache note is rendered
        store = ArtifactStore(store_dir)
        assert len(store) > 0, "farm compiles must land in the store"

    def test_warm_rerun_reloads_from_store(self, tmp_path, capsys):
        store_dir = tmp_path / "store"
        args = ["--seeds", "3", "--store", str(store_dir), "--quiet"]
        assert fuzz_main(args) == 0
        writes_cold = ArtifactStore(store_dir).stats  # fresh handle: zeros
        entries_cold = len(ArtifactStore(store_dir))
        capsys.readouterr()

        assert fuzz_main(args) == 0
        out = capsys.readouterr().out
        # Same seeds, same specs: every distinct artifact reloads from disk.
        assert len(ArtifactStore(store_dir)) == entries_cold
        disk_hits = [line for line in out.splitlines()
                     if "disk hits" in line]
        assert disk_hits, out
        assert "0 disk hits" not in disk_hits[0]
        assert writes_cold == ArtifactStore(store_dir).stats  # handles independent

    def test_exit_code_contract_pinned_with_store(self, tmp_path):
        # Usage errors still exit 2 with the flag present.
        assert fuzz_run(["--store", str(tmp_path / "s"),
                         "--no-such-flag"]) == 2
