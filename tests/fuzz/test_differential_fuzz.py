"""The differential smoke: N seeds through every backend x execution mode,
bitwise-compared against the scalar-interpreter oracle.

Seed count comes from ``--fuzz-seeds`` (default 10) so tier-1 stays fast
while a deep run is one flag away.  Any divergence fails the test with the
replay command in the message.
"""

from repro.fuzz import FuzzFarm, default_matrix, generate_spec
from repro.harness import fuzz_summary_table


def test_differential_fuzz_zero_divergences(fuzz_seeds):
    farm = FuzzFarm(count=fuzz_seeds, start=0)
    report = farm.run()
    assert report.cases == fuzz_seeds
    details = "\n".join(d.describe() for d in report.divergences)
    assert report.ok, f"differential divergences:\n{details}"
    # Every registered stencil backend must have actually run.
    assert {"cpu", "openmp", "gpu"} <= set(report.per_backend)
    # The scalar paths never fall back — fallbacks mean silent coverage loss.
    for backend, counters in report.per_backend.items():
        assert counters["fallbacks"] == 0, (backend, counters)


def test_single_session_cache_is_exercised():
    """One Session per farm run: runtime-mode derivations of a case hit the
    artifact cache, distinct kernels miss."""
    farm = FuzzFarm(count=4, start=0)
    report = farm.run()
    assert report.cache_stats["hits"] > 0
    assert report.cache_stats["misses"] > 0


def test_matrix_covers_modes_and_counts():
    spec = generate_spec(0)
    labels = {cfg.label for cfg in default_matrix(spec)}
    modes = {cfg.execution_mode for cfg in default_matrix(spec)}
    assert {"vectorize", "crosscheck"} <= modes
    assert any("openmp" in label for label in labels)
    assert any("gpu" in label for label in labels)
    threads = {cfg.threads for cfg in default_matrix(spec)}
    assert len(threads) > 1  # thread-count variation is part of the matrix


def test_distributed_specs_add_dmp_configs():
    for seed in range(40):
        spec = generate_spec(seed)
        if spec.style == "distributed":
            grids = {cfg.grid for cfg in default_matrix(spec)
                     if cfg.backend == "dmp"}
            assert {(1, 1), (2, 1), (2, 2)} <= grids
            return
    raise AssertionError("no distributed spec in the first 40 seeds")


def test_time_budget_stops_early():
    farm = FuzzFarm(count=500, start=0, time_budget=0.0)
    report = farm.run()
    assert report.budget_exhausted
    assert report.cases < 500
    assert report.seeds_skipped == 500 - report.cases


def test_fuzz_summary_table_renders(fuzz_seeds):
    report = FuzzFarm(count=min(3, fuzz_seeds), start=0).run()
    table = fuzz_summary_table(report)
    assert "fuzz_summary" in table
    assert "divergences" in table
    assert "cpu" in table
