"""The minimizer against a deliberately injected miscompile.

A test-only fault hook perturbs the gpu/vectorize output by 1e-9 — a
synthetic miscompile the farm must catch, delta-debug to a kernel no
larger than a stated bound, and reproduce deterministically from its seed.
This is the flow that produced the committed ``fuzz/corpus/`` seed entries.
"""

import pytest

from repro.fuzz import (
    DEFAULT_CONFIG,
    DifferentialRunner,
    generate_spec,
    minimize,
)

FAULT_LABEL = "gpu/vectorize"
#: The minimizer must get an injected everywhere-divergence down to a
#: single statement of structural weight <= 4 on a minimal domain.
SIZE_BOUND = 4


def inject_fault(spec, label, outputs):
    if label == FAULT_LABEL:
        outputs[spec.arrays[0]].flat[0] += 1e-9


@pytest.fixture
def faulty_runner():
    return DifferentialRunner(fault_hook=inject_fault)


def test_injected_fault_is_caught(faulty_runner):
    spec = generate_spec(11, DEFAULT_CONFIG)
    result = faulty_runner.run_case(spec)
    labels = {d.config_label for d in result.divergences}
    assert FAULT_LABEL in labels
    divergence = next(d for d in result.divergences
                      if d.config_label == FAULT_LABEL)
    assert divergence.kind == "bitwise"
    assert "--replay-seed 11" in divergence.repro_command


@pytest.mark.parametrize("seed", (11, 17))
def test_fault_minimizes_below_bound_deterministically(faulty_runner, seed):
    spec = generate_spec(seed, DEFAULT_CONFIG)
    predicate = lambda s: faulty_runner.reproduces(s, FAULT_LABEL)
    assert predicate(spec), "the injected fault must reproduce pre-minimization"
    first = minimize(spec, predicate)
    second = minimize(spec, predicate)
    assert first.minimized == second.minimized  # deterministic
    assert first.minimized.size() <= SIZE_BOUND
    assert len(first.minimized.statements) == 1
    assert first.minimized.extents == tuple(
        first.minimized.min_extent for _ in first.minimized.extents)
    # The minimal kernel still reproduces and still renders/compiles.
    assert predicate(first.minimized)
    assert "subroutine" in first.minimized.render()


def test_minimizer_is_noop_without_divergence():
    runner = DifferentialRunner()  # no fault hook
    spec = generate_spec(11, DEFAULT_CONFIG)
    result = minimize(spec, lambda s: runner.reproduces(s, FAULT_LABEL))
    assert result.minimized == spec
    assert result.steps == 0


def test_minimizer_keeps_distributed_specs_partitionable(faulty_runner):
    for seed in range(40):
        spec = generate_spec(seed, DEFAULT_CONFIG)
        if spec.style != "distributed":
            continue
        predicate = lambda s: faulty_runner.reproduces(s, FAULT_LABEL)
        minimized = minimize(spec, predicate).minimized
        assert minimized.rank >= 2
        return
    raise AssertionError("no distributed spec in the first 40 seeds")
