"""End-to-end integration and property-based tests across the whole flow."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import gauss_seidel, pw_advection
from repro.compiler import CompilerDriver, CompilerOptions, Target, compile_fortran
from repro.runtime import Interpreter


class TestGaussSeidelAllTargets:
    reference = staticmethod(gauss_seidel.reference_jacobi)

    @pytest.mark.parametrize("target,kwargs", [
        (Target.STENCIL_CPU, {}),
        (Target.STENCIL_CPU, {"lower_to_scf": True}),
        (Target.STENCIL_OPENMP, {"lower_to_scf": True}),
        (Target.STENCIL_GPU, {"gpu_data_strategy": "optimised"}),
        (Target.STENCIL_GPU, {"gpu_data_strategy": "host_register"}),
    ])
    def test_stencil_targets_match_jacobi_reference(self, target, kwargs):
        n, iters = 10, 2
        source = gauss_seidel.generate_source(n, iters)
        result = compile_fortran(source, target, **kwargs)
        work = gauss_seidel.initial_condition(n)
        expected = self.reference(work, iters)
        result.run("gauss_seidel", work)
        assert np.allclose(work, expected)

    def test_flang_only_matches_gauss_seidel_reference(self):
        n, iters = 8, 2
        source = gauss_seidel.generate_source(n, iters)
        result = compile_fortran(source, Target.FLANG_ONLY)
        work = gauss_seidel.initial_condition(n)
        expected = gauss_seidel.reference_gauss_seidel(work, iters)
        result.run("gauss_seidel", work)
        assert np.allclose(work, expected)

    def test_both_semantics_converge_to_same_fixed_point(self):
        n = 8
        initial = gauss_seidel.initial_condition(n)
        jacobi = gauss_seidel.reference_jacobi(initial, 400)
        gs = gauss_seidel.reference_gauss_seidel(initial, 200)
        assert gauss_seidel.residual(jacobi) < 1e-6
        assert gauss_seidel.residual(gs) < 1e-6
        assert np.allclose(jacobi, gs, atol=1e-5)


class TestPWAdvectionAllTargets:
    @pytest.mark.parametrize("target,kwargs", [
        (Target.FLANG_ONLY, {}),
        (Target.STENCIL_CPU, {}),
        (Target.STENCIL_CPU, {"fuse_stencils": False}),
        (Target.STENCIL_CPU, {"lower_to_scf": True}),
        (Target.STENCIL_GPU, {}),
    ])
    def test_matches_reference(self, target, kwargs):
        n = 8
        source = pw_advection.generate_source(n)
        result = compile_fortran(source, target, **kwargs)
        u, v, w, su, sv, sw = pw_advection.initial_fields(n)
        result.run("pw_advection", u, v, w, su, sv, sw)
        rsu, rsv, rsw = pw_advection.reference(u, v, w)
        assert np.allclose(su, rsu)
        assert np.allclose(sv, rsv)
        assert np.allclose(sw, rsw)


class TestCompilerDriver:
    def test_compilation_result_metadata(self, small_gs_source):
        result = compile_fortran(small_gs_source, Target.STENCIL_CPU)
        assert result.discovered_stencils == {"gauss_seidel": 1}
        assert len(result.extracted_functions) == 1
        assert len(result.modules) == 2

    def test_flang_only_has_no_stencil_module(self, small_gs_source):
        result = compile_fortran(small_gs_source, Target.FLANG_ONLY)
        assert result.stencil_module is None

    def test_driver_reusable(self, small_gs_source, small_pw_source):
        driver = CompilerDriver(CompilerOptions(target=Target.STENCIL_CPU))
        first = driver.compile(small_gs_source)
        second = driver.compile(small_pw_source)
        assert first.discovered_stencils and second.discovered_stencils

    def test_pass_statistics_collected_when_lowering(self, small_gs_source):
        result = compile_fortran(small_gs_source, Target.STENCIL_OPENMP, lower_to_scf=True)
        assert any(s.name == "convert-scf-to-openmp" for s in result.pass_statistics)


# ---------------------------------------------------------------------------
# Property-based differential testing of the whole pipeline
# ---------------------------------------------------------------------------

_OFFSET = st.integers(min_value=-1, max_value=1)


@st.composite
def random_stencil_programs(draw):
    """Random 2-D star-stencil kernels writing b from a (plus their numpy ref)."""
    n = draw(st.integers(min_value=6, max_value=12))
    n_terms = draw(st.integers(min_value=1, max_value=5))
    terms = []
    for _ in range(n_terms):
        di = draw(_OFFSET)
        dj = draw(_OFFSET)
        coefficient = draw(st.floats(min_value=-2.0, max_value=2.0,
                                     allow_nan=False, allow_infinity=False))
        terms.append((di, dj, round(coefficient, 3)))
    def subscript(var, offset):
        if offset == 0:
            return var
        return f"{var}{'+' if offset > 0 else '-'}{abs(offset)}"

    fortran_terms = " + ".join(
        f"({c!r}d0 * a({subscript('i', di)}, {subscript('j', dj)}))"
        for di, dj, c in terms
    )
    source = f"""
subroutine kernel(a, b)
  implicit none
  integer, parameter :: n = {n}
  real(kind=8), intent(in) :: a(n, n)
  real(kind=8), intent(inout) :: b(n, n)
  integer :: i, j
  do j = 2, n - 1
    do i = 2, n - 1
      b(i, j) = {fortran_terms}
    end do
  end do
end subroutine kernel
"""
    return source, n, terms


class TestPropertyDifferential:
    @given(random_stencil_programs())
    @settings(max_examples=25, deadline=None)
    def test_discovered_stencil_matches_flang_only_execution(self, program):
        source, n, terms = program
        rng = np.random.default_rng(7)
        a = np.asfortranarray(rng.random((n, n)))

        flang_only = compile_fortran(source, Target.FLANG_ONLY)
        b_plain = np.zeros((n, n), order="F")
        flang_only.run("kernel", a, b_plain)

        stencil_flow = compile_fortran(source, Target.STENCIL_CPU)
        b_stencil = np.zeros((n, n), order="F")
        stencil_flow.run("kernel", a, b_stencil)

        # b is not read by the kernel, so Jacobi and in-place semantics agree
        # and the two compilation paths must produce identical answers.
        assert np.allclose(b_plain, b_stencil)
        assert stencil_flow.discovered_stencils.get("kernel", 0) == 1

    @given(st.integers(min_value=6, max_value=14), st.integers(min_value=1, max_value=3))
    @settings(max_examples=15, deadline=None)
    def test_gauss_seidel_stencil_path_equals_jacobi_for_any_size(self, n, iters):
        source = gauss_seidel.generate_source(n, iters)
        result = compile_fortran(source, Target.STENCIL_CPU)
        work = gauss_seidel.initial_condition(n, seed=n)
        expected = gauss_seidel.reference_jacobi(work, iters)
        result.run("gauss_seidel", work)
        assert np.allclose(work, expected)
