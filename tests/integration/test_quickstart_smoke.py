"""Smoke target: run ``examples/quickstart.py`` under both execution modes.

The quickstart is the README's entry point; this keeps it working end-to-end
(compile -> discover -> extract -> execute) as the codebase evolves, and
proves the interpreted and vectorized execution paths agree on it.
"""

import importlib.util
import pathlib

import pytest

_QUICKSTART = pathlib.Path(__file__).resolve().parents[2] / "examples" / "quickstart.py"


def _load_quickstart():
    spec = importlib.util.spec_from_file_location("quickstart", _QUICKSTART)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("mode", ["interpret", "vectorize", "crosscheck"])
def test_quickstart_runs_under_each_execution_mode(mode, capsys):
    quickstart = _load_quickstart()
    error = quickstart.main(execution_mode=mode)
    assert error < 1e-12
    out = capsys.readouterr().out
    assert f"execution mode      : {mode}" in out
    assert "stencil.apply" in out  # the extracted module excerpt was printed
