"""Tests for the backend registry and the fluent Program/Session layer.

Covers the ISSUE 3 acceptance surface: backend registration round-trips,
unknown-backend error messages, per-backend option schemas rejecting
mismatched options, artifact-cache hit/miss counters, ``run_batch``
determinism, all five targets through the fluent API, and the
``compile_fortran`` deprecation shim producing identical modules.
"""

import numpy as np
import pytest

import repro
from repro.api import (
    Backend,
    BackendRegistry,
    CpuOptions,
    DmpOptions,
    GpuOptions,
    OpenMPOptions,
    OptionError,
    Session,
    UnknownBackendError,
    registry,
)
from repro.apps import gauss_seidel, pw_advection
from repro.compiler import CompilerOptions, Target, compile_fortran
from repro.ir import print_module


@pytest.fixture
def session():
    return Session()


# ---------------------------------------------------------------------------
# Backend registry
# ---------------------------------------------------------------------------


class TestBackendRegistry:
    def test_default_backends_registered(self):
        assert registry.names() == ("cpu", "dmp", "flang-only", "gpu", "openmp")

    def test_registration_round_trip(self):
        class NullBackend(Backend):
            name = "null"
            aliases = ("nothing",)
            uses_stencil_flow = False

        fresh = BackendRegistry()
        backend = fresh.register(NullBackend())
        assert fresh.get("null") is backend
        assert fresh.get("nothing") is backend          # alias resolution
        assert "null" in fresh and len(fresh) == 1
        assert list(fresh) == [backend]

    def test_duplicate_registration_rejected_unless_replace(self):
        class NullBackend(Backend):
            name = "null"
            uses_stencil_flow = False

        fresh = BackendRegistry()
        first = fresh.register(NullBackend())
        with pytest.raises(ValueError, match="already registered"):
            fresh.register(NullBackend())
        second = fresh.register(NullBackend(), replace=True)
        assert fresh.get("null") is second is not first

    def test_unknown_backend_error_lists_valid_names(self):
        with pytest.raises(UnknownBackendError) as exc:
            registry.get("tpu")
        message = str(exc.value)
        assert "'tpu'" in message
        for name in ("cpu", "dmp", "flang-only", "gpu", "openmp"):
            assert name in message

    def test_legacy_target_enum_and_alias_resolve(self):
        assert registry.get(Target.STENCIL_OPENMP) is registry.get("openmp")
        assert registry.get("stencil-gpu") is registry.get("gpu")
        assert registry.get(Target.FLANG_ONLY) is registry.get("flang-only")

    def test_custom_backend_compiles_through_session(self):
        """A registered backend is immediately usable by a session."""

        class RecordingCpuBackend(Backend):
            name = "recording-cpu"
            options_cls = CpuOptions
            lowered = 0

            def transform(self, artifact, ctx):
                type(self).lowered += 1

        fresh = BackendRegistry()
        fresh.register(RecordingCpuBackend())
        sess = Session(registry=fresh)
        compiled = sess.compile(gauss_seidel.generate_source(8, 1)).lower(
            "recording-cpu")
        assert RecordingCpuBackend.lowered == 1
        assert compiled.discovered_stencils == {"gauss_seidel": 1}


# ---------------------------------------------------------------------------
# Option schemas: mismatched / invalid options are rejected per backend
# ---------------------------------------------------------------------------


class TestOptionSchemas:
    def test_cpu_backend_rejects_dmp_grid(self, session, small_gs_source):
        with pytest.raises(OptionError, match="backend 'cpu'.*'grid'"):
            session.compile(small_gs_source).lower("cpu", grid=(4, 4))

    def test_openmp_backend_rejects_gpu_tiles(self, session, small_gs_source):
        with pytest.raises(OptionError, match="backend 'openmp'.*'tile_sizes'"):
            session.compile(small_gs_source).lower("openmp", tile_sizes=(8, 8))

    def test_error_lists_valid_option_names(self, session, small_gs_source):
        with pytest.raises(OptionError, match="valid options: .*lower_to_scf"):
            session.compile(small_gs_source).lower("cpu", bogus=1)

    def test_unknown_gpu_data_strategy_rejected(self):
        with pytest.raises(OptionError, match="data_strategy"):
            GpuOptions(data_strategy="unified")

    def test_legacy_gpu_data_strategy_rejected(self, small_gs_source):
        """The silent GpuHostRegisterPass fallthrough is gone: the legacy flat
        options now validate the strategy too."""
        with pytest.raises(ValueError, match="gpu_data_strategy"):
            CompilerOptions(target=Target.STENCIL_GPU,
                            gpu_data_strategy="unified")
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="gpu_data_strategy"):
                compile_fortran(small_gs_source, Target.STENCIL_GPU,
                                gpu_data_strategy="unified")

    @pytest.mark.parametrize("kwargs", [
        {"schedule": "fastest"},
        {"chunk_size": 0},
        {"threads": 0},
        {"execution_mode": "warp-speed"},
    ])
    def test_invalid_openmp_options_rejected(self, kwargs):
        with pytest.raises(OptionError):
            OpenMPOptions(**kwargs)

    def test_invalid_grid_rejected(self):
        with pytest.raises(OptionError, match="grid"):
            DmpOptions(grid=(0, 2))

    def test_options_normalise_sequences_for_hashing(self):
        assert DmpOptions(grid=[2, 2]).grid == (2, 2)
        assert hash(GpuOptions(tile_sizes=[16, 16, 1])) == hash(
            GpuOptions(tile_sizes=(16, 16, 1)))

    def test_mismatch_rejected_even_with_options_object(self, session,
                                                        small_gs_source):
        """Overrides are checked against the schema in both make_options
        branches — an options object must not bypass the named error."""
        with pytest.raises(OptionError, match="backend 'cpu'.*'grid'"):
            session.lower(small_gs_source, "cpu", CpuOptions(), grid=(4, 4))


# ---------------------------------------------------------------------------
# Session: artifact cache + batch execution
# ---------------------------------------------------------------------------


class TestSessionCache:
    def test_hit_and_miss_counters(self, session, small_gs_source):
        program = session.compile(small_gs_source)
        first = program.lower("cpu")
        assert session.cache_stats == {"hits": 0, "misses": 1, "artifacts": 1}
        second = program.lower("cpu")
        assert session.cache_stats == {"hits": 1, "misses": 1, "artifacts": 1}
        assert second.artifact is first.artifact

    def test_different_backend_or_options_miss(self, session, small_gs_source):
        program = session.compile(small_gs_source)
        program.lower("cpu")
        program.lower("openmp")                      # different backend
        program.lower("cpu", fuse_stencils=False)    # different compile option
        stats = session.cache_stats
        assert stats["misses"] == 3 and stats["hits"] == 0

    def test_runtime_derivations_share_the_artifact(self, session,
                                                    small_gs_source):
        """execution_mode/threads are runtime policy: deriving them must be a
        cache hit, not a recompile."""
        compiled = session.compile(small_gs_source).lower("cpu")
        derived = compiled.vectorize(threads=2)
        assert derived.options.execution_mode == "vectorize"
        assert derived.options.threads == 2
        assert derived.artifact is compiled.artifact
        assert session.cache_stats["hits"] == 1
        assert compiled.options.execution_mode == "interpret"  # immutable

    def test_cached_metadata_immune_to_caller_mutation(self, session,
                                                       small_gs_source):
        """Handle properties hand out copies: mutating them must not corrupt
        the session-cached artifact other handles share."""
        first = session.compile(small_gs_source).lower("cpu")
        first.extracted_functions.clear()
        first.discovered_stencils.clear()
        second = session.compile(small_gs_source).lower("cpu")
        assert second.artifact is first.artifact      # still a cache hit
        assert second.extracted_functions
        assert second.discovered_stencils == {"gauss_seidel": 1}

    def test_clear_cache_resets(self, session, small_gs_source):
        session.compile(small_gs_source).lower("cpu")
        session.clear_cache()
        assert session.cache_stats == {"hits": 0, "misses": 0, "artifacts": 0}

    def test_default_session_behind_repro_compile(self, small_gs_source):
        program = repro.compile(small_gs_source)
        assert program.session is repro.default_session()

    def test_harness_shows_measured_cache_hits(self):
        """Repeated harness compiles of the same (source, backend, options)
        hit the shared session cache (acceptance criterion)."""
        from repro.harness import gpu_data_ablation, harness_session

        before = harness_session().cache_stats
        gpu_data_ablation(n=9, niters=2)
        mid = harness_session().cache_stats
        assert mid["misses"] >= before["misses"] + 2   # two strategies compiled
        gpu_data_ablation(n=9, niters=2)
        after = harness_session().cache_stats
        assert after["hits"] >= mid["hits"] + 2        # both were cache hits
        assert after["misses"] == mid["misses"]


class TestRunBatch:
    def test_batch_matches_sequential_bitwise(self, session):
        n, iters, count = 10, 2, 6
        source = gauss_seidel.generate_source(n, niters=iters)
        compiled = session.compile(source).lower("cpu",
                                                 execution_mode="vectorize")
        batch_args = [(gauss_seidel.initial_condition(n, seed=i),)
                      for i in range(count)]
        sequential = [gauss_seidel.initial_condition(n, seed=i)
                      for i in range(count)]

        compiled.run_batch("gauss_seidel", batch_args, workers=4)
        for work in sequential:
            compiled.run("gauss_seidel", work)
        for i, work in enumerate(sequential):
            assert np.array_equal(batch_args[i][0], work), f"arg set {i}"

    def test_results_in_input_order(self, session):
        n = 8
        source = gauss_seidel.generate_source(n, niters=1)
        compiled = session.compile(source).lower("cpu")
        arg_sets = [(gauss_seidel.initial_condition(n, seed=i),)
                    for i in range(5)]
        results = session.run_batch(compiled, "gauss_seidel", arg_sets,
                                    workers=3)
        assert len(results) == 5      # one (empty) return list per arg set

    def test_empty_batch(self, session, small_gs_source):
        compiled = session.compile(small_gs_source).lower("cpu")
        assert session.run_batch(compiled, "gauss_seidel", []) == []

    def test_no_deadlock_when_workers_equal_interpreter_threads(self, session):
        """Batch dispatch must not share a pool with the interpreters' tiled
        executors: workers == threads used to deadlock on the count-keyed
        process-wide pool."""
        n = 12
        source = gauss_seidel.generate_source(n, niters=1)
        compiled = session.compile(source).lower(
            "openmp", lower_to_scf=True).vectorize(threads=2)
        batch = [(gauss_seidel.initial_condition(n, seed=i),)
                 for i in range(4)]
        results = compiled.run_batch("gauss_seidel", batch, workers=2)
        assert len(results) == 4


# ---------------------------------------------------------------------------
# Fluent Program layer: all five targets
# ---------------------------------------------------------------------------


class TestFluentPrograms:
    @pytest.mark.parametrize("backend,kwargs", [
        ("cpu", {}),
        ("cpu", {"lower_to_scf": True}),
        ("openmp", {"lower_to_scf": True}),
        ("gpu", {}),
        ("gpu", {"data_strategy": "host_register"}),
    ])
    def test_stencil_backends_match_jacobi(self, session, backend, kwargs):
        n, iters = 10, 2
        program = session.compile(gauss_seidel.generate_source(n, iters))
        work = gauss_seidel.initial_condition(n)
        expected = gauss_seidel.reference_jacobi(work, iters)
        program.lower(backend, **kwargs).run("gauss_seidel", work)
        assert np.allclose(work, expected)

    def test_flang_only_backend_matches_gauss_seidel(self, session):
        n, iters = 8, 2
        program = session.compile(gauss_seidel.generate_source(n, iters))
        work = gauss_seidel.initial_condition(n)
        expected = gauss_seidel.reference_gauss_seidel(work, iters)
        program.lower("flang-only").run("gauss_seidel", work)
        assert np.allclose(work, expected)

    def test_dmp_backend_through_functional_check(self):
        """The dmp target compiles and runs through the new API end to end
        (the harness functional check is fully migrated)."""
        from repro.harness import distributed_functional_check

        summary = distributed_functional_check(n_local=6, ranks=(2, 2),
                                               niters=1)
        assert summary["max_interior_error"] < 1e-12
        assert summary["messages"] > 0

    def test_issue_fluent_chain(self, session):
        """The exact derivation chain from the issue: lower with schedule
        options, derive a vectorized multi-threaded handle, run."""
        n = 16
        program = session.compile(pw_advection.generate_source(n))
        u, v, w, su, sv, sw = pw_advection.initial_fields(n)
        interp = (program.lower("openmp", lower_to_scf=True,
                                schedule="dynamic", chunk_size=8)
                         .vectorize(threads=4)
                         .run("pw_advection", u, v, w, su, sv, sw))
        rsu, rsv, rsw = pw_advection.reference(u, v, w)
        assert np.allclose(su, rsu)
        assert np.allclose(sv, rsv)
        assert np.allclose(sw, rsw)
        assert interp.stats["vectorized_sweeps"] >= 1

    def test_retarget_compiles_other_backend(self, session, small_gs_source):
        compiled = session.compile(small_gs_source).lower("cpu")
        gpu = compiled.retarget("gpu", data_strategy="host_register")
        assert gpu.backend_name == "gpu"
        assert gpu.options.data_strategy == "host_register"
        assert session.cache_stats["misses"] == 2

    def test_interpreter_override_validation(self, session, small_gs_source):
        """Overrides are validated at override time; falsy values no longer
        silently fall back to the compiled defaults."""
        compiled = session.compile(small_gs_source).lower("cpu")
        with pytest.raises(OptionError, match="execution_mode"):
            compiled.interpreter(execution_mode="")
        with pytest.raises(OptionError, match="threads"):
            compiled.interpreter(threads=0)
        interp = compiled.interpreter(execution_mode="vectorize", threads=2)
        assert interp.execution_mode == "vectorize"


# ---------------------------------------------------------------------------
# Legacy compile_fortran shim
# ---------------------------------------------------------------------------


class TestCompatShim:
    def test_compile_fortran_warns_deprecation(self, small_gs_source):
        with pytest.warns(DeprecationWarning, match="repro.compile"):
            compile_fortran(small_gs_source, Target.STENCIL_CPU)

    @pytest.mark.parametrize("target,backend,kwargs,new_kwargs", [
        (Target.FLANG_ONLY, "flang-only", {}, {}),
        (Target.STENCIL_CPU, "cpu", {"lower_to_scf": True},
         {"lower_to_scf": True}),
        (Target.STENCIL_OPENMP, "openmp",
         {"lower_to_scf": True, "omp_schedule": "dynamic", "omp_chunk_size": 4},
         {"lower_to_scf": True, "schedule": "dynamic", "chunk_size": 4}),
        (Target.STENCIL_GPU, "gpu", {"gpu_data_strategy": "host_register"},
         {"data_strategy": "host_register"}),
        (Target.STENCIL_DMP, "dmp", {"grid": (2, 2)}, {"grid": (2, 2)}),
    ])
    def test_shim_produces_identical_modules(self, session, small_gs_source,
                                             target, backend, kwargs,
                                             new_kwargs):
        with pytest.warns(DeprecationWarning):
            legacy = compile_fortran(small_gs_source, target, **kwargs)
        fluent = session.compile(small_gs_source).lower(backend, **new_kwargs)
        assert print_module(legacy.fir_module) == print_module(fluent.fir_module)
        if legacy.stencil_module is None:
            assert fluent.stencil_module is None
        else:
            assert print_module(legacy.stencil_module) == print_module(
                fluent.stencil_module)
        assert legacy.discovered_stencils == fluent.discovered_stencils
        assert legacy.extracted_functions == fluent.extracted_functions

    def test_legacy_interpreter_rejects_falsy_overrides(self, small_gs_source):
        with pytest.warns(DeprecationWarning):
            result = compile_fortran(small_gs_source, Target.STENCIL_CPU,
                                     execution_mode="vectorize", threads=2)
        with pytest.raises(ValueError, match="execution_mode"):
            result.interpreter(execution_mode="")
        with pytest.raises(ValueError, match="threads"):
            result.interpreter(threads=0)
        # None still means "use the compiled defaults".
        interp = result.interpreter()
        assert interp.execution_mode == "vectorize"
        assert interp.threads == 2


class TestDmpCacheKeys:
    """The process grid is compile-time identity; rank/pool knobs are not."""

    def test_grid_shapes_are_distinct_cache_keys(self, session, small_gs_source):
        program = session.compile(small_gs_source)
        for grid in ((1, 1), (2, 1), (2, 2)):
            program.lower("dmp", grid=grid)
        stats = session.cache_stats
        assert stats == {"hits": 0, "misses": 3, "artifacts": 3}
        # Re-lowering every grid is a pure cache hit: one compile per grid.
        handles = {grid: session.compile(small_gs_source).lower("dmp", grid=grid)
                   for grid in ((1, 1), (2, 1), (2, 2))}
        stats = session.cache_stats
        assert stats == {"hits": 3, "misses": 3, "artifacts": 3}
        assert handles[(2, 1)].artifact is not handles[(2, 2)].artifact

    def test_grid_in_cache_key_and_list_normalised(self):
        assert ("grid", (2, 2)) in DmpOptions(grid=(2, 2)).cache_key()
        assert DmpOptions(grid=[2, 2]).cache_key() == DmpOptions(grid=(2, 2)).cache_key()

    def test_runtime_rank_and_pool_knobs_do_not_recompile(self, session):
        """distribute(ranks/pool_size/execution_mode/threads) and repeated
        runs reuse the artifacts compiled for the grid — zero new misses."""
        n = 8
        program = session.compile(
            gauss_seidel.generate_source_shaped((n + 2,) * 3)
        )
        compiled = program.lower("dmp", grid=(2, 2), execution_mode="vectorize")
        baseline = session.cache_stats["misses"]  # 1: the base compile

        plan = compiled.distribute(
            ranks=4, source_builder=gauss_seidel.generate_source_shaped
        )
        rng = np.random.default_rng(0)
        # z is not decomposed by a 2-d grid, so a (2n, 2n, n) domain gives
        # every rank the same (n+2)^3 padded box as the base source: the run
        # compiles nothing new beyond cache hits.
        field = np.asfortranarray(rng.random((2 * n, 2 * n, n)))
        plan.run(field, iterations=1)
        after_first = session.cache_stats
        assert after_first["misses"] == baseline

        # Different rank-pool size, threads, execution-mode: runtime only.
        plan.with_pool_size(9).run(field, iterations=1)
        compiled.distribute(
            source_builder=gauss_seidel.generate_source_shaped,
            execution_mode="interpret", threads=1,
        ).run(field, iterations=1)
        assert session.cache_stats["misses"] == baseline
        assert session.cache_stats["hits"] > after_first["hits"]

    def test_new_grid_is_a_measured_miss_through_distribute(self, session):
        n = 12
        program = session.compile(
            gauss_seidel.generate_source_shaped((n + 2,) * 3)
        )
        rng = np.random.default_rng(1)
        field = np.asfortranarray(rng.random((n, n, n)))
        misses_per_grid = []
        for grid in ((1, 1), (2, 1)):
            program.lower("dmp", grid=grid, execution_mode="vectorize").distribute(
                source_builder=gauss_seidel.generate_source_shaped
            ).run(field)
            misses_per_grid.append(session.cache_stats["misses"])
        # The second grid is a *measured* miss through the distribute path
        # (it cannot be served from the (1, 1) entry).
        assert misses_per_grid[1] > misses_per_grid[0]
        misses_two_grids = misses_per_grid[1]
        # (2, 1) over n=12 needs one extra per-shape artifact (7, 14, 14);
        # a *repeated* run of either grid needs none.
        program.lower("dmp", grid=(2, 1), execution_mode="vectorize").distribute(
            source_builder=gauss_seidel.generate_source_shaped
        ).run(field)
        assert session.cache_stats["misses"] == misses_two_grids


class TestGpuCacheKeys:
    """GPU data strategy and tile sizes are compile-time identity; streams,
    execution mode and threads are runtime-only (mirrors TestDmpCacheKeys)."""

    def test_data_strategy_change_recompiles(self, session, small_gs_source):
        program = session.compile(small_gs_source)
        optimised = program.lower("gpu", data_strategy="optimised")
        host_register = program.lower("gpu", data_strategy="host_register")
        assert session.cache_stats == {"hits": 0, "misses": 2, "artifacts": 2}
        assert optimised.artifact is not host_register.artifact
        # Re-lowering either strategy is a pure cache hit.
        again = program.lower("gpu", data_strategy="host_register")
        assert session.cache_stats == {"hits": 1, "misses": 2, "artifacts": 2}
        assert again.artifact is host_register.artifact

    def test_runtime_knobs_do_not_recompile(self, session, small_gs_source):
        """streams / execution_mode / threads derive handles from the one
        compiled artifact — measured as cache hits, zero new misses."""
        program = session.compile(small_gs_source)
        base = program.lower("gpu", data_strategy="optimised")
        baseline = session.cache_stats["misses"]  # 1: the base compile
        derived = [
            program.lower("gpu", data_strategy="optimised", streams=4),
            program.lower("gpu", data_strategy="optimised",
                          execution_mode="vectorize"),
            program.lower("gpu", data_strategy="optimised", threads=2),
            base.vectorize(threads=2),
            base.with_options(streams=8),
        ]
        assert session.cache_stats["misses"] == baseline
        assert session.cache_stats["hits"] == len(derived)
        assert all(h.artifact is base.artifact for h in derived)

    def test_tile_sizes_are_compile_time_cache_key_material(
            self, session, small_gs_source):
        program = session.compile(small_gs_source)
        program.lower("gpu", tile_sizes=(32, 32, 1))
        program.lower("gpu", tile_sizes=(4, 4, 4))
        assert session.cache_stats == {"hits": 0, "misses": 2, "artifacts": 2}

    def test_streams_excluded_from_cache_key_and_validated(self):
        key_fields = {name for name, _ in GpuOptions().cache_key()}
        assert "data_strategy" in key_fields and "tile_sizes" in key_fields
        assert "streams" not in key_fields
        assert "execution_mode" not in key_fields
        with pytest.raises(OptionError):
            GpuOptions(streams=0)

    def test_streams_reach_the_simulated_device(self, small_gs_source):
        compiled = repro.Session().compile(small_gs_source).lower(
            "gpu", streams=3
        )
        interp = compiled.interpreter()
        assert interp.gpu.num_streams == 3
