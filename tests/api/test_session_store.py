"""Session + ArtifactStore integration and cache-clearing semantics.

The on-disk layer must be invisible when absent (``cache_stats`` keeps its
legacy three-key shape), counted separately when present (``disk_hits`` /
``disk_misses``), and ``clear_cache(keep_quarantine=True)`` must let an
operator drop artifacts without un-poisoning known-bad sources.
"""

import pytest

from repro.api import Session
from repro.fuzz import DEFAULT_CONFIG, generate_spec
from repro.resilience import CompileFault, FaultInjector, FaultPlan, InjectedFault
from repro.serve import ArtifactStore

SOURCE = generate_spec(0, DEFAULT_CONFIG).render()
OTHER_SOURCE = generate_spec(1, DEFAULT_CONFIG).render()


class TestDiskLayerCounters:
    def test_no_store_keeps_legacy_cache_stats_shape(self):
        session = Session()
        session.compile(SOURCE).lower("cpu")
        assert session.cache_stats == {"hits": 0, "misses": 1, "artifacts": 1}

    def test_disk_hits_counted_separately(self, tmp_path):
        warm = Session(store=ArtifactStore(tmp_path))
        warm.compile(SOURCE).lower("cpu")
        assert warm.cache_stats == {
            "hits": 0, "misses": 1, "artifacts": 1,
            "disk_hits": 0, "disk_misses": 1,
        }

        cold = Session(store=ArtifactStore(tmp_path))
        cold.compile(SOURCE).lower("cpu")
        assert cold.cache_stats == {
            "hits": 0, "misses": 0, "artifacts": 1,
            "disk_hits": 1, "disk_misses": 0,
        }
        # A second lower in the same process is a plain memory hit.
        cold.compile(SOURCE).lower("cpu")
        assert cold.cache_stats["hits"] == 1
        assert cold.cache_stats["disk_hits"] == 1

    def test_runtime_derivations_stay_memory_hits(self, tmp_path):
        session = Session(store=ArtifactStore(tmp_path))
        compiled = session.compile(SOURCE).lower("cpu")
        compiled.vectorize(threads=2)
        compiled.crosscheck()
        stats = session.cache_stats
        assert stats["misses"] == 1
        assert stats["hits"] == 2
        assert stats["disk_misses"] == 1  # only the original cold lower

    def test_store_failures_do_not_break_compiles(self, tmp_path, monkeypatch):
        store = ArtifactStore(tmp_path)
        monkeypatch.setattr(
            ArtifactStore, "_atomic_write",
            lambda self, path, text: (_ for _ in ()).throw(OSError("disk")))
        session = Session(store=store)
        compiled = session.compile(SOURCE).lower("cpu")
        assert compiled is not None
        assert store.stats["write_errors"] == 1
        assert session.cache_stats["misses"] == 1


class TestClearCacheQuarantine:
    def _poisoned_session(self, store=None):
        session = Session(store=store)
        injector = FaultInjector(
            FaultPlan(compile_faults=(CompileFault(index=0, count=99),)))
        session.compile_hook = injector.on_compile
        with pytest.raises(InjectedFault):
            session.compile(SOURCE).lower("cpu")
        session.compile_hook = None
        return session

    def test_clear_cache_default_still_wipes_everything(self):
        session = self._poisoned_session()
        session.clear_cache()
        assert session.resilience_stats == {
            "compile_retries": 0,
            "compiles_quarantined": 0,
            "quarantine_hits": 0,
        }
        # The source compiles again after the un-poisoning.
        assert session.compile(SOURCE).lower("cpu") is not None

    def test_keep_quarantine_preserves_poison_records(self):
        session = self._poisoned_session()
        original = session.quarantined_record(SOURCE, "cpu")
        assert original is not None

        session.clear_cache(keep_quarantine=True)

        # Artifacts and cache counters are gone...
        assert session.cache_stats == {"hits": 0, "misses": 0, "artifacts": 0}
        # ...but the poison record (and its counters) survive: lowering the
        # known-bad source re-raises the original exception object without
        # touching the backend.
        stats = session.resilience_stats
        assert stats["compiles_quarantined"] == 1
        assert stats["compile_retries"] == 1
        with pytest.raises(InjectedFault) as excinfo:
            session.compile(SOURCE).lower("cpu")
        assert excinfo.value is original
        assert session.resilience_stats["quarantine_hits"] == 1

    def test_keep_quarantine_still_drops_artifacts(self):
        session = Session()
        session.compile(OTHER_SOURCE).lower("cpu")
        assert session.cache_stats["artifacts"] == 1
        session.clear_cache(keep_quarantine=True)
        assert session.cache_stats["artifacts"] == 0
        # Healthy sources recompile fine.
        session.compile(OTHER_SOURCE).lower("cpu")
        assert session.cache_stats["misses"] == 1
