"""Tests for the benchmark applications and the experiment harness."""

import numpy as np
import pytest

from repro.apps import gauss_seidel, pw_advection
from repro.harness import (
    ALL_EXPERIMENTS,
    figure2_single_core,
    figure3_openmp_gauss_seidel,
    figure4_openmp_pw_advection,
    figure5_gpu,
    figure6_distributed,
    format_table,
    fusion_ablation,
    gpu_data_ablation,
)


class TestApps:
    def test_gauss_seidel_problem_metadata(self):
        problem = gauss_seidel.GaussSeidelProblem(n=64, niters=10)
        assert problem.cells == 64**3
        assert problem.interior_cells == 62**3
        assert problem.flops_per_sweep == 62**3 * 6

    def test_gauss_seidel_source_parametrised(self):
        source = gauss_seidel.generate_source(123, niters=7, name="solve")
        assert "n = 123" in source and "niters = 7" in source and "subroutine solve" in source

    def test_jacobi_reference_reduces_residual(self):
        u0 = gauss_seidel.initial_condition(12)
        u1 = gauss_seidel.reference_jacobi(u0, 50)
        assert gauss_seidel.residual(u1) < gauss_seidel.residual(u0)

    def test_references_preserve_boundaries(self):
        u0 = gauss_seidel.initial_condition(10)
        u1 = gauss_seidel.reference_jacobi(u0, 3)
        assert np.array_equal(u1[0], u0[0]) and np.array_equal(u1[-1], u0[-1])

    def test_pw_reference_zero_for_uniform_wind(self):
        n = 8
        uniform = np.ones((n, n, n), order="F")
        su, sv, sw = pw_advection.reference(uniform, uniform, uniform)
        assert np.allclose(su, 0.0) and np.allclose(sv, 0.0) and np.allclose(sw, 0.0)

    def test_pw_initial_fields_reproducible(self):
        a = pw_advection.initial_fields(6, seed=1)
        b = pw_advection.initial_fields(6, seed=1)
        assert np.array_equal(a[0], b[0])

    def test_flop_counts_match_paper(self):
        assert gauss_seidel.FLOPS_PER_CELL == 6
        assert pw_advection.FLOPS_PER_CELL == 63


class TestHarness:
    def test_figure2_rows_and_validation(self):
        result = figure2_single_core(validate=True)
        assert len(result.rows) == 2 * 4 * 3
        for bench in ("gauss_seidel", "pw_advection"):
            validation = result.notes[f"{bench}_validation"]
            assert validation["max_error"] < 1e-12
            assert validation["stencils"] >= 1

    def test_figure3_and_4_thread_series(self):
        for fig in (figure3_openmp_gauss_seidel(), figure4_openmp_pw_advection()):
            threads = sorted({row[1] for row in fig.rows})
            assert threads == [1, 2, 4, 8, 16, 32, 64, 128]
            assert {row[2] for row in fig.rows} == {"cray", "flang", "stencil"}

    def test_figure4_crossover_present_in_rows(self):
        fig = figure4_openmp_pw_advection()
        at_128 = {row[2]: row[3] for row in fig.rows if row[1] == 128}
        assert at_128["stencil"] > at_128["cray"] > at_128["flang"]

    def test_figure5_rows(self):
        fig = figure5_gpu(validate=False)
        assert len(fig.rows) == 2 * 3 * 3
        strategies = {row[2] for row in fig.rows}
        assert strategies == {"openacc_nvidia", "stencil_host_register", "stencil_optimised"}

    def test_figure6_rows_and_shape(self):
        fig = figure6_distributed(validate=False)
        hand = [row[3] for row in fig.rows if row[2] == "hand_parallelised"]
        auto = [row[3] for row in fig.rows if row[2] == "stencil_auto_parallelised"]
        assert len(hand) == len(auto) == 7
        assert all(h > a for h, a in zip(hand, auto))
        assert hand == sorted(hand) and auto == sorted(auto)

    def test_gpu_data_ablation_traffic(self):
        result = gpu_data_ablation(n=8, niters=2)
        by_strategy = {row[0]: row for row in result.rows}
        assert by_strategy["host_register"][4] > 0            # on-demand traffic
        assert by_strategy["optimised"][4] == 0
        assert by_strategy["optimised"][2] < by_strategy["host_register"][2]

    def test_fusion_ablation(self):
        result = fusion_ablation(n=8)
        by_variant = {row[0]: row for row in result.rows}
        assert by_variant["fused"][1] == 1
        assert by_variant["unfused"][1] == 3
        assert by_variant["fused"][2] > by_variant["unfused"][2]

    def test_format_table_renders_all_rows(self):
        fig = figure3_openmp_gauss_seidel()
        text = format_table(fig)
        assert text.count("\n") >= len(fig.rows)
        assert "figure3" in text

    def test_experiment_registry_complete(self):
        assert set(ALL_EXPERIMENTS) == {
            "figure2", "figure3", "figure4", "figure5", "figure6",
            "gpu_data_ablation", "fusion_ablation",
        }
