"""Tests for the DMP / MPI lowering and the simulated distributed execution."""

import numpy as np
import pytest

from repro.apps import gauss_seidel
from repro.compiler import Target, compile_fortran
from repro.dialects import dmp, mpi, stencil
from repro.harness import distributed_functional_check
from repro.ir import default_context
from repro.runtime.mpi_runtime import CartesianDecomposition, MPIError, SimulatedCommunicator
from repro.transforms import ConvertDMPToMPIPass, ConvertStencilToDMPPass


class TestStencilToDMP:
    def _dmp_module(self, grid=(2, 2), lower_to_mpi=False):
        source = gauss_seidel.generate_source(10, niters=1)
        result = compile_fortran(source, Target.STENCIL_CPU)
        ctx = default_context()
        ConvertStencilToDMPPass(grid=grid).apply(ctx, result.stencil_module)
        if lower_to_mpi:
            ConvertDMPToMPIPass().apply(ctx, result.stencil_module)
        result.stencil_module.verify()
        return result

    def test_halo_swap_inserted_before_snapshot(self):
        result = self._dmp_module()
        mod = result.stencil_module
        swaps = [op for op in mod.walk() if isinstance(op, dmp.HaloSwapOp)]
        assert len(swaps) == 1
        assert swaps[0].halo == (1, 1, 1)
        block_ops = list(swaps[0].parent_block().ops)
        swap_index = block_ops.index(swaps[0])
        load_index = next(
            i for i, op in enumerate(block_ops) if isinstance(op, stencil.LoadOp)
        )
        assert swap_index < load_index

    def test_grid_string_option(self):
        p = ConvertStencilToDMPPass(grid="4x8")
        assert p.grid == (4, 8)

    def test_dmp_to_mpi_lowering(self):
        result = self._dmp_module(lower_to_mpi=True)
        mod = result.stencil_module
        assert not any(isinstance(op, dmp.HaloSwapOp) for op in mod.walk())
        isends = [op for op in mod.walk() if isinstance(op, mpi.ISendOp)]
        irecvs = [op for op in mod.walk() if isinstance(op, mpi.IRecvOp)]
        waits = [op for op in mod.walk() if isinstance(op, mpi.WaitAllOp)]
        # 2 decomposed dims x 2 directions
        assert len(isends) == 4 and len(irecvs) == 4 and len(waits) == 1
        for op in isends + irecvs:
            assert op.get_attr_or_none("slice_lb") is not None


class TestCartesianDecomposition:
    def test_rank_coordinate_round_trip(self):
        d = CartesianDecomposition((16, 16, 8), (2, 4), (0, 1))
        for rank in range(d.num_ranks):
            assert d.rank_of(d.coords_of(rank)) == rank

    def test_local_bounds_partition_domain(self):
        d = CartesianDecomposition((10, 9, 4), (2, 3), (0, 1))
        covered = np.zeros((10, 9), dtype=int)
        for rank in range(d.num_ranks):
            (xl, xu), (yl, yu), (zl, zu) = d.local_bounds(rank)
            assert (zl, zu) == (0, 4)
            covered[xl:xu, yl:yu] += 1
        assert np.all(covered == 1)

    def test_neighbours_at_edges(self):
        d = CartesianDecomposition((8, 8), (2, 2), (0, 1))
        n = d.neighbours(0)
        assert n[(0, -1)] == -1 and n[(1, -1)] == -1
        assert n[(0, +1)] == d.rank_of((1, 0))
        assert n[(1, +1)] == d.rank_of((0, 1))


class TestSimulatedCommunicator:
    def test_send_receive_fifo(self):
        comm = SimulatedCommunicator(2)
        comm.send(0, 1, 7, np.arange(4))
        comm.send(0, 1, 7, np.arange(4) * 2)
        first = comm.receive(0, 1, 7)
        second = comm.receive(0, 1, 7)
        assert np.array_equal(first, np.arange(4))
        assert np.array_equal(second, np.arange(4) * 2)

    def test_accounting(self):
        comm = SimulatedCommunicator(2)
        comm.send(0, 1, 0, np.zeros(10))
        assert comm.message_count == 1
        assert comm.bytes_sent == 80

    def test_invalid_rank_rejected(self):
        comm = SimulatedCommunicator(2)
        with pytest.raises(MPIError):
            comm.send(0, 5, 0, np.zeros(1))

    def test_receive_timeout(self):
        comm = SimulatedCommunicator(2)
        with pytest.raises(MPIError):
            comm.receive(0, 1, 0, timeout=0.05)

    def test_payload_is_copied(self):
        comm = SimulatedCommunicator(2)
        data = np.ones(3)
        comm.send(0, 1, 0, data)
        data[:] = 5.0
        received = comm.receive(0, 1, 0)
        assert np.array_equal(received, np.ones(3))


class TestDistributedExecution:
    def test_multi_rank_gauss_seidel_matches_reference(self):
        outcome = distributed_functional_check(n_local=6, ranks=(2, 2), niters=2)
        assert outcome["max_interior_error"] < 1e-12
        assert outcome["messages"] > 0

    def test_unmodified_source_used_for_distribution(self):
        source = gauss_seidel.generate_source(8, niters=1)
        serial = compile_fortran(source, Target.FLANG_ONLY)
        distributed = compile_fortran(source, Target.STENCIL_DMP, grid=(2, 2))
        assert serial.source == distributed.source
        assert distributed.stencil_module is not None
