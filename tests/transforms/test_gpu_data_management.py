"""Edge-case tests for the GPU data-management passes.

The happy path (one stencil function, one call site inside a time loop, 3-D
tiles) is covered in ``test_extraction_lowering.py``; these tests pin the
branches around it: call sites with **no enclosing loop** (anchor falls back
to the call itself), **multiple call sites** of one stencil function (every
site must be rewritten to the device pointers), **non-3-D tile annotations**
(short/long tile tuples and sub-3-D domains), and the **stream/prefetch
annotations** consumed by the runtime's stream model.
"""

import numpy as np
import pytest

import repro
from repro.apps import gauss_seidel
from repro.dialects import fir, gpu
from repro.dialects.func import FuncOp
from repro.ir import default_context
from repro.runtime import SimulatedGPU
from repro.transforms.gpu_data_management import (
    GpuOptimisedDataPass,
    _annotate_kernel_launch,
)


def _stencil_calls(fir_module, extracted):
    return [op for op in fir_module.walk()
            if isinstance(op, fir.CallOp) and op.callee in extracted]


def _average_reference(data: np.ndarray) -> np.ndarray:
    """One Jacobi sweep of Listing 1's 2-D averaging kernel."""
    out = data.copy()
    out[1:-1, 1:-1] = (data[1:-1, :-2] + data[1:-1, 2:]
                       + data[:-2, 1:-1] + data[2:, 1:-1]) * 0.25
    return out


class TestCallSiteWithoutEnclosingLoop:
    """Listing 1 has no time loop: the data-management calls anchor directly
    at the stencil call instead of an enclosing fir.do_loop."""

    @pytest.mark.parametrize("strategy", ["optimised", "host_register"])
    def test_data_calls_anchor_at_the_call(self, listing1_source, strategy):
        compiled = repro.Session().compile(listing1_source).lower(
            "gpu", data_strategy=strategy
        )
        func_op = next(
            op for op in compiled.fir_module.walk()
            if isinstance(op, FuncOp) and op.sym_name == "average"
        )
        top_level_calls = [
            op.callee for op in func_op.entry_block.ops
            if isinstance(op, fir.CallOp)
        ]
        stencil_name = compiled.extracted_functions[0]
        assert stencil_name in top_level_calls
        if strategy == "optimised":
            prefix = "_gpu_alloc_"
            assert any(c.startswith("_gpu_free_") for c in top_level_calls)
            # alloc before the stencil call, free after it.
            assert top_level_calls.index(f"_gpu_alloc_{stencil_name}") \
                < top_level_calls.index(stencil_name) \
                < top_level_calls.index(f"_gpu_free_{stencil_name}")
        else:
            prefix = "_gpu_register_"
            assert top_level_calls.index(f"_gpu_register_{stencil_name}") \
                < top_level_calls.index(stencil_name)
        assert any(c.startswith(prefix) for c in top_level_calls)

    def test_execution_matches_reference(self, listing1_source):
        compiled = repro.Session().compile(listing1_source).lower(
            "gpu", data_strategy="optimised"
        )
        rng = np.random.default_rng(5)
        data = np.asfortranarray(rng.random((16, 16)))
        reference = _average_reference(data)
        device = SimulatedGPU()
        compiled.run("average", data, gpu=device)
        assert np.allclose(data, reference)
        assert len(device.launches) == 1


class TestMultipleCallSites:
    """Every call site of one stencil function must be rewritten to the
    device pointers returned by the single hoisted allocation call."""

    def _artifact_with_duplicated_call(self, n=8, niters=2):
        session = repro.Session()  # private session: the artifact is mutated
        compiled = session.compile(
            gauss_seidel.generate_source(n, niters=niters)
        ).lower("cpu")
        call = _stencil_calls(compiled.fir_module,
                              set(compiled.extracted_functions))[0]
        duplicate = call.clone({})
        call.parent_block().insert_op_after(duplicate, call)
        return compiled

    def test_all_sites_rewritten_to_device_pointers(self):
        compiled = self._artifact_with_duplicated_call()
        GpuOptimisedDataPass(stencil_module=compiled.stencil_module).apply(
            default_context(), compiled.fir_module
        )
        compiled.fir_module.verify()
        calls = _stencil_calls(compiled.fir_module,
                               set(compiled.extracted_functions))
        assert len(calls) == 2
        alloc_call = next(
            op for op in compiled.fir_module.walk()
            if isinstance(op, fir.CallOp) and op.callee.startswith("_gpu_alloc_")
        )
        device_ptrs = set(map(id, alloc_call.results))
        for call in calls:
            assert id(call.operands[0]) in device_ptrs
        # One allocation, one free — not one per call site.
        data_calls = [op.callee for op in compiled.fir_module.walk()
                      if isinstance(op, fir.CallOp)
                      and op.callee.startswith(("_gpu_alloc_", "_gpu_free_"))]
        assert len(data_calls) == 2

    def test_duplicated_call_executes_two_sweeps_per_iteration(self):
        n, niters = 8, 2
        compiled = self._artifact_with_duplicated_call(n, niters)
        GpuOptimisedDataPass(stencil_module=compiled.stencil_module).apply(
            default_context(), compiled.fir_module
        )
        init = gauss_seidel.initial_condition(n)
        work = init.copy(order="F")
        device = SimulatedGPU()
        interp = compiled.interpreter(gpu=device)
        interp.call("gauss_seidel", work)
        # Two call sites per time-loop iteration: 2 * niters Jacobi sweeps.
        assert np.allclose(work, gauss_seidel.reference_jacobi(init, 2 * niters))
        assert len(device.launches) == 2 * niters


class TestTileAnnotations:
    """``tile_sizes`` is validated against every kernel's rank at lower time;
    ``None`` adapts the paper's (32, 32, 1) default to the kernel's rank."""

    def test_rank_mismatched_tile_sizes_rejected_at_lower_time(
            self, small_gs_source):
        # Historically a 1-entry tile on a rank-3 kernel was silently padded
        # with 1s; now it is a loud error naming the kernel and its rank.
        with pytest.raises(repro.OptionError,
                           match=r"1 entry but kernel '\S+' has rank 3"):
            repro.Session().compile(small_gs_source).lower(
                "gpu", tile_sizes=(4,)
            )

    def test_three_entry_tile_on_two_d_domain_rejected(self, listing1_source):
        with pytest.raises(repro.OptionError,
                           match=r"3 entries but kernel '\S+' has rank 2"):
            repro.Session().compile(listing1_source).lower(
                "gpu", tile_sizes=(32, 32, 8)
            )

    def test_default_tile_sizes_adapt_to_kernel_rank(self, small_gs_source,
                                                     listing1_source):
        session = repro.Session()
        rank3 = session.compile(small_gs_source).lower("gpu")
        func_op = rank3.stencil_module.get_symbol(rank3.extracted_functions[0])
        # (32, 32, 1) adapted to rank 3, clipped to the 8x8x8 interior.
        assert func_op.get_attr("gpu.block").as_tuple() == (8, 8, 1)

        rank2 = session.compile(listing1_source).lower("gpu")
        func_op = rank2.stencil_module.get_symbol(rank2.extracted_functions[0])
        # (32, 32, 1)[:2], clipped to the (14, 14) domain by the annotator.
        assert func_op.get_attr("gpu.block").as_tuple() == (14, 14, 1)

    def test_matching_explicit_tile_sizes_still_accepted(self,
                                                         small_gs_source):
        compiled = repro.Session().compile(small_gs_source).lower(
            "gpu", tile_sizes=(4, 4, 4)
        )
        func_op = compiled.stencil_module.get_symbol(
            compiled.extracted_functions[0]
        )
        assert func_op.get_attr("gpu.block").as_tuple() == (4, 4, 4)

    def test_oversized_tile_tuple_is_truncated(self):
        fn = FuncOp.build("no_apply", [], [])
        _annotate_kernel_launch(fn, tile=(2, 2, 2, 2, 2))
        # No stencil.apply inside: the annotation degrades to a unit launch.
        assert fn.get_attr("gpu.grid").as_tuple() == (1, 1, 1)
        assert fn.get_attr("gpu.block").as_tuple() == (1, 1, 1)
        assert fn.get_attr_or_none("gpu.launch") is not None


class TestStreamAndPrefetchAnnotations:
    def test_distinct_stencils_get_distinct_stream_assignments(self):
        from repro.apps import pw_advection

        # Two subroutines -> two extracted stencil functions.
        source = (gauss_seidel.generate_source(8, niters=1)
                  + pw_advection.generate_source(8))
        compiled = repro.Session().compile(source).lower("gpu")
        streams = sorted(
            int(compiled.stencil_module.get_symbol(name).get_attr("gpu.stream").value)
            for name in compiled.extracted_functions
        )
        assert streams == list(range(len(streams)))
        assert len(streams) >= 2

    def test_optimised_alloc_function_is_a_prefetch_point(self, small_gs_source):
        compiled = repro.Session().compile(small_gs_source).lower(
            "gpu", data_strategy="optimised"
        )
        alloc_funcs = [
            op for op in compiled.stencil_module.walk()
            if isinstance(op, FuncOp) and op.sym_name.startswith("_gpu_alloc_")
        ]
        assert alloc_funcs
        assert all(f.get_attr_or_none("gpu.prefetch") is not None
                   for f in alloc_funcs)

    def test_outlined_launch_inherits_stream_assignment(self, small_gs_source):
        compiled = repro.Session().compile(small_gs_source).lower(
            "gpu", data_strategy="optimised", lower_to_scf=True
        )
        launches = [op for op in compiled.stencil_module.walk()
                    if isinstance(op, gpu.LaunchFuncOp)]
        assert launches
        assert all(op.get_attr_or_none("gpu.stream") is not None
                   for op in launches)
