"""Tests for stencil extraction, scf/OpenMP/GPU lowering and GPU data passes."""

import numpy as np
import pytest

from repro.apps import gauss_seidel, pw_advection
from repro.compiler import Target, compile_fortran
from repro.dialects import fir, gpu, omp, scf, stencil
from repro.dialects.func import FuncOp
from repro.dialects.llvm import LLVMPointerType
from repro.ir import default_context
from repro.runtime import Interpreter, SimulatedGPU
from repro.transforms import (
    ConvertParallelLoopsToGpuPass,
    ConvertSCFToOpenMPPass,
    ConvertStencilToSCFPass,
    ParallelLoopTilingPass,
)


class TestExtraction:
    def test_two_module_split(self, small_gs_source):
        result = compile_fortran(small_gs_source, Target.STENCIL_CPU)
        assert result.stencil_module is not None
        # FIR module keeps no stencil ops, stencil module keeps no FIR loops.
        assert not any(op.name.startswith("stencil.") for op in result.fir_module.walk())
        assert not any(isinstance(op, fir.DoLoopOp) for op in result.stencil_module.walk())

    def test_call_from_fir_to_extracted_function(self, small_gs_source):
        result = compile_fortran(small_gs_source, Target.STENCIL_CPU)
        calls = [op for op in result.fir_module.walk() if isinstance(op, fir.CallOp)]
        assert any(c.callee in result.extracted_functions for c in calls)

    def test_pointer_interoperability(self, small_gs_source):
        """FIR converts refs to !fir.llvm_ptr; the stencil fn takes !llvm.ptr."""
        result = compile_fortran(small_gs_source, Target.STENCIL_CPU)
        converts = [
            op for op in result.fir_module.walk()
            if isinstance(op, fir.ConvertOp)
            and isinstance(op.results[0].type, fir.LLVMPointerType)
        ]
        assert converts
        stencil_fn = result.stencil_module.get_symbol(result.extracted_functions[0])
        assert any(isinstance(t, LLVMPointerType) for t in stencil_fn.function_type.inputs)

    def test_declaration_added_to_fir_module(self, small_gs_source):
        result = compile_fortran(small_gs_source, Target.STENCIL_CPU)
        declaration = result.fir_module.get_symbol(result.extracted_functions[0])
        assert isinstance(declaration, FuncOp) and declaration.is_declaration

    def test_extracted_function_is_isolated(self, small_pw_source):
        result = compile_fortran(small_pw_source, Target.STENCIL_CPU)
        result.stencil_module.verify()  # IsolatedFromAbove is checked here


class TestStencilToSCF:
    def _lowered(self, source, target):
        result = compile_fortran(source, Target.STENCIL_CPU)
        ConvertStencilToSCFPass(target=target).apply(default_context(), result.stencil_module)
        result.stencil_module.verify()
        return result

    def test_cpu_lowering_structure(self, small_gs_source):
        result = self._lowered(small_gs_source, "cpu")
        parallels = [op for op in result.stencil_module.walk() if isinstance(op, scf.ParallelOp)]
        fors = [op for op in result.stencil_module.walk() if isinstance(op, scf.ForOp)]
        assert len(parallels) == 1 and parallels[0].rank == 1
        assert len(fors) == 2  # inner two dimensions
        assert not any(op.name.startswith("stencil.") for op in result.stencil_module.walk())

    def test_gpu_lowering_coalesces(self, small_gs_source):
        result = self._lowered(small_gs_source, "gpu")
        parallels = [op for op in result.stencil_module.walk() if isinstance(op, scf.ParallelOp)]
        assert len(parallels) == 1 and parallels[0].rank == 3
        assert not any(isinstance(op, scf.ForOp) for op in result.stencil_module.walk())

    def test_lowered_execution_matches_reference(self, small_gs_source):
        result = self._lowered(small_gs_source, "cpu")
        data = gauss_seidel.initial_condition(10)
        work = data.copy(order="F")
        Interpreter(result.modules).call("gauss_seidel", work)
        assert np.allclose(work, gauss_seidel.reference_jacobi(data, 2))

    def test_gpu_flavour_execution_matches_reference(self, small_gs_source):
        result = self._lowered(small_gs_source, "gpu")
        data = gauss_seidel.initial_condition(10)
        work = data.copy(order="F")
        Interpreter(result.modules).call("gauss_seidel", work)
        assert np.allclose(work, gauss_seidel.reference_jacobi(data, 2))

    def test_invalid_target_rejected(self):
        with pytest.raises(ValueError):
            ConvertStencilToSCFPass(target="fpga")


class TestOpenMPLowering:
    def test_openmp_structure(self, small_gs_source):
        result = compile_fortran(small_gs_source, Target.STENCIL_OPENMP, lower_to_scf=True)
        mod = result.stencil_module
        assert any(isinstance(op, omp.ParallelOp) for op in mod.walk())
        wsloops = [op for op in mod.walk() if isinstance(op, omp.WsLoopOp)]
        assert len(wsloops) == 1
        assert not any(
            isinstance(op, scf.ParallelOp) and op.parent_op() is not None
            and not isinstance(op.parent_op(), omp.WsLoopOp)
            for op in mod.walk()
        )

    def test_openmp_execution_matches_reference(self, small_gs_source):
        result = compile_fortran(small_gs_source, Target.STENCIL_OPENMP, lower_to_scf=True)
        data = gauss_seidel.initial_condition(10)
        work = data.copy(order="F")
        interp = Interpreter(result.modules)
        interp.call("gauss_seidel", work)
        assert np.allclose(work, gauss_seidel.reference_jacobi(data, 2))
        assert interp.stats["omp_regions"] >= 2  # one fork/join per sweep

    def test_unmodified_source_reused(self, small_gs_source):
        """The same serial Fortran is used for every target (a key paper claim)."""
        serial = compile_fortran(small_gs_source, Target.FLANG_ONLY)
        openmp = compile_fortran(small_gs_source, Target.STENCIL_OPENMP)
        assert serial.source == openmp.source


class TestGpuLowering:
    def test_parallel_loops_to_gpu_outlining(self, small_gs_source):
        result = compile_fortran(small_gs_source, Target.STENCIL_CPU)
        ctx = default_context()
        ConvertStencilToSCFPass(target="gpu").apply(ctx, result.stencil_module)
        ParallelLoopTilingPass((4, 4, 1)).apply(ctx, result.stencil_module)
        gpu_pass = ConvertParallelLoopsToGpuPass()
        gpu_pass.apply(ctx, result.stencil_module)
        result.stencil_module.verify()
        assert gpu_pass.outlined
        assert any(isinstance(op, gpu.GPUModuleOp) for op in result.stencil_module.walk())
        launches = [op for op in result.stencil_module.walk() if isinstance(op, gpu.LaunchFuncOp)]
        assert len(launches) == 1
        assert launches[0].block_size[0] == 4

    def test_outlined_kernel_executes_correctly(self):
        source = gauss_seidel.generate_source(6, niters=1)
        result = compile_fortran(source, Target.STENCIL_CPU)
        ctx = default_context()
        ConvertStencilToSCFPass(target="gpu").apply(ctx, result.stencil_module)
        ParallelLoopTilingPass((2, 2, 2)).apply(ctx, result.stencil_module)
        ConvertParallelLoopsToGpuPass().apply(ctx, result.stencil_module)
        data = gauss_seidel.initial_condition(6)
        work = data.copy(order="F")
        gpu_device = SimulatedGPU()
        interp = Interpreter(result.modules, gpu=gpu_device)
        interp.call("gauss_seidel", work)
        assert np.allclose(work, gauss_seidel.reference_jacobi(data, 1))
        assert len(gpu_device.launches) == 1


class TestGpuDataManagement:
    def test_optimised_strategy_structure(self, small_gs_source):
        result = compile_fortran(small_gs_source, Target.STENCIL_GPU,
                                 gpu_data_strategy="optimised")
        names = [
            op.sym_name for op in result.stencil_module.walk()
            if isinstance(op, FuncOp)
        ]
        assert any(n.startswith("_gpu_alloc_") for n in names)
        assert any(n.startswith("_gpu_free_") for n in names)
        assert any(isinstance(op, gpu.AllocOp) for op in result.stencil_module.walk())
        assert any(isinstance(op, gpu.MemcpyOp) for op in result.stencil_module.walk())

    def test_host_register_strategy_structure(self, small_gs_source):
        result = compile_fortran(small_gs_source, Target.STENCIL_GPU,
                                 gpu_data_strategy="host_register")
        assert any(isinstance(op, gpu.HostRegisterOp) for op in result.stencil_module.walk())

    def test_data_calls_hoisted_outside_iteration_loop(self, small_gs_source):
        result = compile_fortran(small_gs_source, Target.STENCIL_GPU)
        func_op = next(
            op for op in result.fir_module.walk()
            if isinstance(op, FuncOp) and op.sym_name == "gauss_seidel"
        )
        top_level_calls = [
            op.callee for op in func_op.entry_block.ops if isinstance(op, fir.CallOp)
        ]
        assert any(c.startswith("_gpu_alloc_") for c in top_level_calls)
        assert any(c.startswith("_gpu_free_") for c in top_level_calls)

    def test_both_strategies_compute_identical_results(self, small_gs_source):
        reference = gauss_seidel.reference_jacobi(gauss_seidel.initial_condition(10), 2)
        for strategy in ("optimised", "host_register"):
            result = compile_fortran(small_gs_source, Target.STENCIL_GPU,
                                     gpu_data_strategy=strategy)
            work = gauss_seidel.initial_condition(10)
            interp = result.interpreter(gpu=SimulatedGPU())
            interp.call("gauss_seidel", work)
            assert np.allclose(work, reference), strategy

    def test_transfer_traffic_differs_between_strategies(self, small_gs_source):
        volumes = {}
        for strategy in ("optimised", "host_register"):
            result = compile_fortran(small_gs_source, Target.STENCIL_GPU,
                                     gpu_data_strategy=strategy)
            device = SimulatedGPU()
            interp = result.interpreter(gpu=device)
            interp.call("gauss_seidel", gauss_seidel.initial_condition(10))
            volumes[strategy] = device.transferred_bytes()
        assert volumes["host_register"] > volumes["optimised"]

    def test_kernel_launch_per_sweep(self, small_gs_source):
        result = compile_fortran(small_gs_source, Target.STENCIL_GPU)
        device = SimulatedGPU()
        interp = result.interpreter(gpu=device)
        interp.call("gauss_seidel", gauss_seidel.initial_condition(10))
        assert len(device.launches) == 2  # niters = 2
