"""Tests for the stencil discovery pass (paper Listing 3) and fusion."""

import numpy as np
import pytest

from repro.apps import gauss_seidel, pw_advection
from repro.dialects import fir, stencil
from repro.dialects.func import FuncOp
from repro.frontend import compile_to_fir
from repro.ir import default_context
from repro.runtime import Interpreter
from repro.transforms import StencilDiscoveryPass, merge_adjacent_applies
from repro.transforms.stencil_discovery import (
    gather_program_loops,
    get_array_read_data_ops,
    is_indexed_by_loops,
)


def discover(source, merge=True):
    module = compile_to_fir(source)
    discovery = StencilDiscoveryPass(merge=merge)
    discovery.apply(default_context(), module)
    module.verify()
    return module, discovery


class TestListing2Example:
    """The paper's Listing 1 -> Listing 2 transformation."""

    def test_structure_matches_listing2(self, listing1_source):
        module, discovery = discover(listing1_source)
        assert discovery.discovered == {"average": 1}
        applies = [op for op in module.walk() if isinstance(op, stencil.ApplyOp)]
        assert len(applies) == 1
        apply_op = applies[0]
        accesses = [op for op in apply_op.walk() if isinstance(op, stencil.AccessOp)]
        offsets = sorted(a.offset for a in accesses)
        assert offsets == [(-1, 0), (0, -1), (0, 1), (1, 0)]
        # 3 adds and one multiply by 0.25, exactly as in Listing 2
        assert sum(1 for op in apply_op.walk() if op.name == "arith.addf") == 3
        assert sum(1 for op in apply_op.walk() if op.name == "arith.mulf") == 1

    def test_bounds_derived_from_loops(self, listing1_source):
        module, _ = discover(listing1_source)
        apply_op = next(op for op in module.walk() if isinstance(op, stencil.ApplyOp))
        assert apply_op.lb == (1, 1)
        assert apply_op.ub == (15, 15)

    def test_original_loops_removed(self, listing1_source):
        module, _ = discover(listing1_source)
        assert not any(isinstance(op, fir.DoLoopOp) for op in module.walk())

    def test_field_covers_whole_array(self, listing1_source):
        module, _ = discover(listing1_source)
        load = next(op for op in module.walk() if isinstance(op, stencil.ExternalLoadOp))
        assert load.results[0].type.bounds == ((0, 16), (0, 16))


class TestAnalysisHelpers:
    def test_gather_program_loops(self, small_gs_source):
        module = compile_to_fir(small_gs_source)
        func_op = next(op for op in module.walk() if isinstance(op, FuncOp))
        loops = gather_program_loops(func_op)
        assert len(loops) == 4  # it, k, j, i
        assert all(l.var_ref is not None for l in loops)
        spatial = [l for l in loops if l.lower == 2]
        assert len(spatial) == 3 and all(l.upper == 9 for l in spatial)

    def test_is_indexed_by_loops(self, small_gs_source):
        module = compile_to_fir(small_gs_source)
        func_op = next(op for op in module.walk() if isinstance(op, FuncOp))
        loops = gather_program_loops(func_op)
        array_stores = [
            op for op in func_op.walk()
            if isinstance(op, fir.StoreOp)
            and isinstance(op.memref.owner(), fir.CoordinateOfOp)
        ]
        assert len(array_stores) == 1
        assert is_indexed_by_loops(array_stores[0], loops)
        scalar_stores = [
            op for op in func_op.walk()
            if isinstance(op, fir.StoreOp)
            and not isinstance(op.memref.owner(), fir.CoordinateOfOp)
        ]
        assert all(not is_indexed_by_loops(s, loops) for s in scalar_stores)

    def test_get_array_read_data_ops(self, small_gs_source):
        module = compile_to_fir(small_gs_source)
        func_op = next(op for op in module.walk() if isinstance(op, FuncOp))
        store = next(
            op for op in func_op.walk()
            if isinstance(op, fir.StoreOp)
            and isinstance(op.memref.owner(), fir.CoordinateOfOp)
        )
        assert len(get_array_read_data_ops(store)) == 6  # 7-point stencil reads


class TestGaussSeidelDiscovery:
    def test_seven_point_stencil(self, small_gs_source):
        module, discovery = discover(small_gs_source)
        assert discovery.discovered == {"gauss_seidel": 1}
        apply_op = next(op for op in module.walk() if isinstance(op, stencil.ApplyOp))
        accesses = [op for op in apply_op.walk() if isinstance(op, stencil.AccessOp)]
        assert len(accesses) == 6
        assert all(sum(abs(o) for o in a.offset) == 1 for a in accesses)

    def test_iteration_loop_preserved(self, small_gs_source):
        module, _ = discover(small_gs_source)
        loops = [op for op in module.walk() if isinstance(op, fir.DoLoopOp)]
        assert len(loops) == 1  # the outer 'it' loop survives
        assert any(isinstance(op, stencil.ApplyOp) for op in loops[0].walk())


class TestPWAdvectionDiscoveryAndFusion:
    def test_three_stencils_discovered(self, small_pw_source):
        _, discovery = discover(small_pw_source, merge=False)
        assert discovery.discovered == {"pw_advection": 3}

    def test_fusion_merges_into_single_apply(self, small_pw_source):
        module, _ = discover(small_pw_source, merge=True)
        applies = [op for op in module.walk() if isinstance(op, stencil.ApplyOp)]
        assert len(applies) == 1
        assert len(applies[0].results) == 3

    def test_fusion_deduplicates_inputs(self, small_pw_source):
        module, _ = discover(small_pw_source, merge=True)
        apply_op = next(op for op in module.walk() if isinstance(op, stencil.ApplyOp))
        # u, v, w appear once each even though all three components read them
        assert len(apply_op.operands) == 3

    def test_unfused_module_has_three_applies(self, small_pw_source):
        module, _ = discover(small_pw_source, merge=False)
        applies = [op for op in module.walk() if isinstance(op, stencil.ApplyOp)]
        assert len(applies) == 3
        fused = merge_adjacent_applies(
            next(op for op in module.walk() if isinstance(op, FuncOp))
        )
        assert fused == 2  # two merge steps collapse three applies into one


class TestDiscoveryRejections:
    """Loops that are *not* stencils must be left untouched."""

    @pytest.mark.parametrize("body,reason", [
        ("a(i) = a(idx(i)) * 2.0", "indirect indexing"),
        ("a(i) = a(2*i) + 1.0", "non-unit-stride access"),
        ("s = s + a(i)", "scalar reduction"),
    ])
    def test_non_stencil_loops_untouched(self, body, reason):
        src = f"""
subroutine not_a_stencil(a, idx, s)
  implicit none
  integer, parameter :: n = 8
  real(kind=8), intent(inout) :: a(n)
  integer, intent(in) :: idx(n)
  real(kind=8), intent(inout) :: s
  integer :: i
  do i = 1, 4
    {body}
  end do
end subroutine not_a_stencil
"""
        module, discovery = discover(src)
        assert discovery.discovered == {}
        assert any(isinstance(op, fir.DoLoopOp) for op in module.walk())

    def test_dynamic_bounds_rejected(self):
        src = """
subroutine dyn(a, m)
  implicit none
  integer, parameter :: n = 8
  real(kind=8), intent(inout) :: a(n)
  integer, intent(in) :: m
  integer :: i
  do i = 2, m
    a(i) = a(i-1) * 0.5
  end do
end subroutine dyn
"""
        _, discovery = discover(src)
        assert discovery.discovered == {}


class TestDiscoveryPreservesSemantics:
    def test_differential_execution_gauss_seidel(self):
        n, iters = 9, 2
        source = gauss_seidel.generate_source(n, iters)
        plain = compile_to_fir(source)
        transformed, _ = discover(source)
        a_ref = gauss_seidel.initial_condition(n)
        a_jacobi = a_ref.copy(order="F")
        Interpreter(transformed).call("gauss_seidel", a_jacobi)
        expected = gauss_seidel.reference_jacobi(a_ref, iters)
        assert np.allclose(a_jacobi, expected)

    def test_differential_execution_pw(self):
        n = 8
        source = pw_advection.generate_source(n)
        transformed, _ = discover(source)
        u, v, w, su, sv, sw = pw_advection.initial_fields(n)
        Interpreter(transformed).call("pw_advection", u, v, w, su, sv, sw)
        rsu, rsv, rsw = pw_advection.reference(u, v, w)
        assert np.allclose(su, rsu) and np.allclose(sv, rsv) and np.allclose(sw, rsw)

    def test_scalar_coefficient_capture(self):
        src = """
subroutine scaled(a, b, c)
  implicit none
  integer, parameter :: n = 10
  real(kind=8), intent(in) :: a(n, n)
  real(kind=8), intent(inout) :: b(n, n)
  real(kind=8), intent(in) :: c
  integer :: i, j
  do j = 2, n - 1
    do i = 2, n - 1
      b(i, j) = c * (a(i-1, j) + a(i+1, j))
    end do
  end do
end subroutine scaled
"""
        module, discovery = discover(src)
        assert discovery.discovered == {"scaled": 1}
        rng = np.random.default_rng(0)
        a = np.asfortranarray(rng.random((10, 10)))
        b = np.zeros((10, 10), order="F")
        Interpreter(module).call("scaled", a, b, 2.5)
        expected = np.zeros_like(b)
        expected[1:-1, 1:-1] = 2.5 * (a[:-2, 1:-1] + a[2:, 1:-1])
        assert np.allclose(b, expected)
