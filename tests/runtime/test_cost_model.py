"""Direct coverage of the analytic cost model (`runtime/cost_model.py`).

These predictions are the prior the ROADMAP autotuner will consume, so the
tests pin their *shape* — orderings the paper reports (Cray fastest serial,
Flang slowest; optimised GPU data management beats host_register) — and
their *monotonicity* in threads, ranks, and problem size, not the absolute
numbers (which are calibration artifacts).
"""

import pytest

from repro.runtime.cost_model import (
    CPUCostModel,
    CRAY_PROFILE,
    DistributedCostModel,
    FLANG_PROFILE,
    GAUSS_SEIDEL_KERNEL,
    GPU_STRATEGIES,
    GPUCostModel,
    KERNELS,
    PROFILES,
    PW_ADVECTION_KERNEL,
    STENCIL_PROFILE,
    STRATEGY_HOST_REGISTER,
    STRATEGY_OPTIMISED,
)

CELLS = 512.0 ** 2 * 64


@pytest.fixture
def cpu():
    return CPUCostModel()


@pytest.fixture
def gpu():
    return GPUCostModel()


@pytest.fixture
def dmp():
    return DistributedCostModel()


# -- registry shape ----------------------------------------------------------


def test_kernel_and_profile_registries():
    assert set(KERNELS) == {"gauss_seidel", "pw_advection"}
    assert set(PROFILES) == {"cray", "flang", "stencil"}
    assert set(GPU_STRATEGIES) == {
        "stencil_host_register", "stencil_optimised", "openacc_nvidia"}


def test_bytes_for_falls_back_to_three_doubles():
    assert GAUSS_SEIDEL_KERNEL.bytes_for("no_such_profile") == 3 * 8.0
    assert GAUSS_SEIDEL_KERNEL.bytes_for("stencil") == 40.0


def test_flang_pays_per_textual_reference():
    """Flang re-materialises addressing for every textual array reference;
    the CSE'd flows pay per unique access."""
    assert FLANG_PROFILE.uses_textual_refs
    assert not CRAY_PROFILE.uses_textual_refs
    assert (FLANG_PROFILE.overhead_ops(PW_ADVECTION_KERNEL)
            > CRAY_PROFILE.overhead_ops(PW_ADVECTION_KERNEL))


# -- CPU: serial ordering and thread monotonicity ----------------------------


@pytest.mark.parametrize("kernel", KERNELS.values(), ids=lambda k: k.name)
def test_serial_ordering_cray_fastest_flang_slowest(cpu, kernel):
    cray = cpu.throughput_mcells(kernel, CRAY_PROFILE, CELLS)
    stencil = cpu.throughput_mcells(kernel, STENCIL_PROFILE, CELLS)
    flang = cpu.throughput_mcells(kernel, FLANG_PROFILE, CELLS)
    assert cray > stencil > flang


def test_flang_gap_is_larger_on_flop_heavy_kernel(cpu):
    """§4.2: Flang trails by 2-3x on Gauss-Seidel but by roughly an order
    of magnitude on PW advection."""
    def gap(kernel):
        return (cpu.throughput_mcells(kernel, STENCIL_PROFILE, CELLS)
                / cpu.throughput_mcells(kernel, FLANG_PROFILE, CELLS))
    assert gap(PW_ADVECTION_KERNEL) > gap(GAUSS_SEIDEL_KERNEL)
    assert gap(PW_ADVECTION_KERNEL) > 4.0


@pytest.mark.parametrize("profile", PROFILES.values(), ids=lambda p: p.name)
def test_time_per_cell_never_increases_with_threads(cpu, profile):
    times = [cpu.time_per_cell(GAUSS_SEIDEL_KERNEL, profile, threads=t)
             for t in (1, 2, 4, 8, 16)]
    assert all(a >= b for a, b in zip(times, times[1:]))
    assert times[-1] < times[0]  # parallelism must actually help


def test_throughput_positive_and_finite(cpu):
    for kernel in KERNELS.values():
        for profile in PROFILES.values():
            value = cpu.throughput_mcells(kernel, profile, CELLS, threads=4)
            assert 0.0 < value < 1e6


def test_omp_overhead_hurts_small_grids_more(cpu):
    """Fork/join overhead is amortised by cells: the threaded speedup on a
    tiny grid must be below the speedup on a large grid."""
    def speedup(cells):
        serial = cpu.throughput_mcells(GAUSS_SEIDEL_KERNEL, STENCIL_PROFILE,
                                       cells, threads=1)
        threaded = cpu.throughput_mcells(GAUSS_SEIDEL_KERNEL, STENCIL_PROFILE,
                                         cells, threads=16)
        return threaded / serial
    assert speedup(64.0 ** 3) > speedup(16.0 ** 2)


# -- GPU: strategy ordering and PCIe accounting ------------------------------


def test_optimised_strategy_beats_host_register(gpu):
    for kernel in KERNELS.values():
        optimised = gpu.throughput_mcells(kernel, STRATEGY_OPTIMISED, CELLS)
        paged = gpu.throughput_mcells(kernel, STRATEGY_HOST_REGISTER, CELLS)
        assert optimised > paged


def test_optimised_strategy_has_no_pcie_term(gpu):
    assert STRATEGY_OPTIMISED.pcie_fraction_per_sweep == 0.0
    assert STRATEGY_HOST_REGISTER.pcie_fraction_per_sweep == 2.0
    # With no PCIe traffic the sweep time is kernel-bound: doubling the cell
    # count at the roofline must not double sweep_time's non-kernel part.
    small = gpu.sweep_time(GAUSS_SEIDEL_KERNEL, STRATEGY_OPTIMISED, CELLS)
    large = gpu.sweep_time(GAUSS_SEIDEL_KERNEL, STRATEGY_OPTIMISED, 2 * CELLS)
    assert large < 2 * small  # launch latency + overhead amortise


def test_gpu_sweep_time_increases_with_cells(gpu):
    for strategy in GPU_STRATEGIES.values():
        times = [gpu.sweep_time(PW_ADVECTION_KERNEL, strategy, c)
                 for c in (CELLS, 2 * CELLS, 4 * CELLS)]
        assert times[0] < times[1] < times[2]


# -- Distributed: rank scaling ----------------------------------------------


def test_iteration_time_decreases_with_ranks_then_comm_dominates(dmp):
    """Strong scaling: more ranks shrink the local domain until halo
    exchange stops the party."""
    cells = 1024.0 ** 3
    t1 = dmp.iteration_time(GAUSS_SEIDEL_KERNEL, STENCIL_PROFILE, cells, 1)
    t128 = dmp.iteration_time(GAUSS_SEIDEL_KERNEL, STENCIL_PROFILE, cells, 128)
    assert t128 < t1
    # Tiny problem, huge rank count: fixed halo-exchange latency caps the
    # speedup far below ideal — 512x more ranks must not buy even 10x.
    small = 32.0 ** 3
    t_few = dmp.iteration_time(GAUSS_SEIDEL_KERNEL, STENCIL_PROFILE, small, 8)
    t_many = dmp.iteration_time(GAUSS_SEIDEL_KERNEL, STENCIL_PROFILE,
                                small, 4096)
    assert t_many < t_few  # still monotone...
    assert t_few / t_many < 10.0  # ...but nowhere near the ideal 512x


def test_distributed_throughput_monotone_in_problem_size(dmp):
    ranks = 64
    small = dmp.throughput_mcells(GAUSS_SEIDEL_KERNEL, STENCIL_PROFILE,
                                  128.0 ** 3, ranks)
    large = dmp.throughput_mcells(GAUSS_SEIDEL_KERNEL, STENCIL_PROFILE,
                                  512.0 ** 3, ranks)
    assert large > small  # weak-scaling-style efficiency gain


def test_comm_efficiency_scales_comm_term_only(dmp):
    cells = 256.0 ** 3
    honest = dmp.iteration_time(GAUSS_SEIDEL_KERNEL, STENCIL_PROFILE,
                                cells, 256, comm_efficiency=1.0)
    degraded = dmp.iteration_time(GAUSS_SEIDEL_KERNEL, STENCIL_PROFILE,
                                  cells, 256, comm_efficiency=0.5)
    assert degraded > honest
