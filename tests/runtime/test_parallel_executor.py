"""Tests for the multi-core tiled kernel execution engine.

Four contract areas of ``repro.runtime.parallel_executor`` and its
interpreter wiring:

* **tile planning** — every schedule kind produces contiguous disjoint tiles
  that exactly cover the extent;
* **deterministic reduction** — per-tile partials combine in a tile-order
  binary tree, independent of completion order;
* **dispatch and fallbacks** — tiled sweeps produce the oracle's results;
  refused tilings (no full-rank store, broadcast apply results, extent too
  small) fall back to the single-tile path and are counted; the dynamic
  alias guard still catches overlapping NumPy views of one base array;
* **plumbing** — the schedule clause rides ``omp.wsloop`` from
  ``convert-scf-to-openmp`` without splitting the kernel cache, and the
  ``threads=`` knob reaches the interpreter through ``CompilerOptions``.
"""

import time

import numpy as np
import pytest

from repro.apps import gauss_seidel
from repro.compiler import CompilerOptions, Target, compile_fortran
from repro.dialects import arith, omp, stencil
from repro.dialects.builtin import ModuleOp
from repro.ir import Builder
from repro.ir.operation import VerifyException
from repro.runtime import Interpreter, MemoryBuffer
from repro.runtime.kernel_compiler import structural_hash
from repro.runtime.parallel_executor import (
    ParallelExecutor,
    get_executor,
    plan_boxes,
    plan_tiles,
    tree_combine,
)

# No __init__.py in the test tree: pytest imports sibling modules top-level.
from test_kernel_compiler import build_average_apply, build_shift_nest_module


# ---------------------------------------------------------------------------
# Tile planning
# ---------------------------------------------------------------------------


def _assert_exact_cover(tiles, lower, upper):
    assert tiles[0][0] == lower and tiles[-1][1] == upper
    for (_, prev_ub), (lb, _) in zip(tiles, tiles[1:]):
        assert lb == prev_ub  # contiguous and disjoint
    assert all(ub > lb for lb, ub in tiles)


class TestPlanTiles:
    def test_static_splits_evenly(self):
        tiles = plan_tiles(0, 100, 4)
        assert tiles == [(0, 25), (25, 50), (50, 75), (75, 100)]

    def test_static_distributes_remainder(self):
        tiles = plan_tiles(1, 11, 4)  # extent 10 over 4 threads
        _assert_exact_cover(tiles, 1, 11)
        sizes = [ub - lb for lb, ub in tiles]
        assert sorted(sizes) == [2, 2, 3, 3]

    def test_static_never_exceeds_extent(self):
        tiles = plan_tiles(0, 3, 8)
        assert tiles == [(0, 1), (1, 2), (2, 3)]

    def test_static_with_chunk(self):
        tiles = plan_tiles(0, 10, 4, "static", chunk=3)
        assert tiles == [(0, 3), (3, 6), (6, 9), (9, 10)]

    def test_dynamic_uses_chunk(self):
        tiles = plan_tiles(5, 17, 2, "dynamic", chunk=4)
        assert tiles == [(5, 9), (9, 13), (13, 17)]

    def test_dynamic_default_chunk_bounds_task_count(self):
        tiles = plan_tiles(0, 1024, 4, "dynamic")
        _assert_exact_cover(tiles, 0, 1024)
        assert len(tiles) <= 8 * 4  # extent // (8 * threads) sized chunks

    def test_guided_decreasing_sizes(self):
        tiles = plan_tiles(0, 100, 4, "guided")
        _assert_exact_cover(tiles, 0, 100)
        sizes = [ub - lb for lb, ub in tiles]
        assert sizes[0] == 25
        assert all(a >= b for a, b in zip(sizes, sizes[1:]))

    def test_guided_respects_minimum_chunk(self):
        tiles = plan_tiles(0, 40, 4, "guided", chunk=8)
        _assert_exact_cover(tiles, 0, 40)
        assert all(ub - lb >= 8 for lb, ub in tiles[:-1])

    def test_empty_extent(self):
        assert plan_tiles(5, 5, 4) == []
        assert plan_tiles(7, 3, 4) == []

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError, match="schedule"):
            plan_tiles(0, 10, 2, "fastest")
        with pytest.raises(ValueError, match="chunk"):
            plan_tiles(0, 10, 2, "dynamic", chunk=0)

    @pytest.mark.parametrize("extent, threads", [
        (5, 8),    # extent < threads
        (10, 4),   # extent < 8 * threads: the default chunk would be 0
        (31, 4),
        (1, 16),
    ])
    def test_dynamic_default_chunk_clamps_to_one(self, extent, threads):
        # Regression: extent // (8 * threads) == 0 for small sweeps; an
        # unclamped chunk of 0 made range() produce no tiles at all.
        tiles = plan_tiles(0, extent, threads, "dynamic")
        _assert_exact_cover(tiles, 0, extent)
        assert all(ub - lb == 1 for lb, ub in tiles)


class TestPlanBoxes:
    def test_lexicographic_disjoint_exact_cover(self):
        boxes = plan_boxes((0, 0), (5, 7), (2, 3))
        assert boxes == [
            ((0, 0), (2, 3)), ((0, 3), (2, 6)), ((0, 6), (2, 7)),
            ((2, 0), (4, 3)), ((2, 3), (4, 6)), ((2, 6), (4, 7)),
            ((4, 0), (5, 3)), ((4, 3), (5, 6)), ((4, 6), (5, 7)),
        ]
        # Union is exactly the domain, each cell covered once.
        cover = np.zeros((5, 7), dtype=int)
        for lb, ub in boxes:
            cover[lb[0]:ub[0], lb[1]:ub[1]] += 1
        assert (cover == 1).all()

    def test_edge_boxes_are_clipped(self):
        boxes = plan_boxes((1,), (10,), (4,))
        assert boxes == [((1,), (5,)), ((5,), (9,)), ((9,), (10,))]

    def test_oversized_tile_is_one_box(self):
        assert plan_boxes((2, 2), (6, 6), (64, 64)) == [((2, 2), (6, 6))]

    def test_empty_domain(self):
        assert plan_boxes((0, 0), (4, 0), (2, 2)) == []
        assert plan_boxes((3,), (3,), (1,)) == []

    def test_rank_mismatch_rejected(self):
        with pytest.raises(ValueError, match="rank mismatch"):
            plan_boxes((0, 0), (4, 4), (2,))

    def test_non_positive_sizes_rejected(self):
        with pytest.raises(ValueError, match="must be positive"):
            plan_boxes((0,), (4,), (0,))


# ---------------------------------------------------------------------------
# Deterministic tree combination
# ---------------------------------------------------------------------------


class TestTreeCombine:
    def test_combination_order_is_tile_order(self):
        calls = []

        def combine(a, b):
            calls.append((a, b))
            return f"({a}+{b})"

        result = tree_combine(["a", "b", "c", "d", "e"], combine)
        assert result == "(((a+b)+(c+d))+e)"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            tree_combine([], lambda a, b: a)

    def test_map_reduce_independent_of_completion_order(self):
        """Tiles finishing out of order must not change a floating-point
        reduction: the tree shape depends only on the tile count."""
        executor = ParallelExecutor(4)
        values = [1e16, 1.0, -1e16, 1.0, 3.5, -2.25, 7.0, 0.125]

        def partial(index, delay):
            def task(_tile):
                time.sleep(delay)
                return values[index]
            return task

        def run(delays):
            tasks = [partial(i, d) for i, d in enumerate(delays)]
            return executor.map_reduce(
                lambda i: tasks[i](i), list(range(len(values))),
                lambda a, b: a + b,
            )

        forward = run([0.001 * i for i in range(8)])
        reverse = run([0.001 * (8 - i) for i in range(8)])
        sequential = tree_combine(values, lambda a, b: a + b)
        assert forward == reverse == sequential
        executor.shutdown()

    def test_map_tiles_propagates_exceptions(self):
        executor = ParallelExecutor(2)

        def boom(tile):
            raise RuntimeError(f"tile {tile} failed")

        with pytest.raises(RuntimeError, match="tile"):
            executor.map_tiles(boom, [(0, 1), (1, 2)])
        executor.shutdown()

    def test_get_executor_shares_pools(self):
        assert get_executor(3) is get_executor(3)
        assert get_executor(3) is not get_executor(5)


# ---------------------------------------------------------------------------
# Tiled dispatch through the interpreter
# ---------------------------------------------------------------------------


class TestTiledNestExecution:
    def test_tiled_nest_matches_reference(self):
        module, fn = build_shift_nest_module(n=32)
        rng = np.random.default_rng(0)
        src = np.asfortranarray(rng.random((32, 32)))
        dst = np.zeros((32, 32), order="F")
        interp = Interpreter([module], execution_mode="vectorize", threads=4)
        interp.call_function(fn, [MemoryBuffer.wrap(dst), MemoryBuffer.wrap(src)])
        assert interp.stats["parallel_sweeps"] == 1
        assert interp.stats["parallel_tiles"] == 4
        assert interp.stats["parallel_fallbacks"] == 0
        assert np.allclose(dst[1:31, 1:31], src[0:30, 1:31] * 2.0)

    def test_single_thread_never_touches_the_pool(self):
        module, fn = build_shift_nest_module(n=8)
        dst = np.zeros((8, 8), order="F")
        src = np.asfortranarray(np.random.default_rng(1).random((8, 8)))
        interp = Interpreter([module], execution_mode="vectorize")
        interp.call_function(fn, [MemoryBuffer.wrap(dst), MemoryBuffer.wrap(src)])
        assert interp.stats["vectorized_sweeps"] == 1
        assert interp.stats["parallel_sweeps"] == 0
        assert interp.stats["parallel_fallbacks"] == 0

    def test_small_extent_counts_parallel_fallback(self):
        """An outermost extent of 1 cannot be split: the sweep must still
        vectorize single-tile and the refusal must be counted."""
        module, fn = build_shift_nest_module(n=3)  # domain [1, 2): extent 1
        dst = np.zeros((3, 3), order="F")
        src = np.asfortranarray(np.random.default_rng(2).random((3, 3)))
        interp = Interpreter([module], execution_mode="vectorize", threads=4)
        interp.call_function(fn, [MemoryBuffer.wrap(dst), MemoryBuffer.wrap(src)])
        assert interp.stats["vectorized_sweeps"] == 1
        assert interp.stats["parallel_sweeps"] == 0
        assert interp.stats["parallel_fallbacks"] == 1

    def test_overlapping_views_fall_back_to_scalar(self):
        """The dynamic alias guard must catch *views*: two slices of one base
        array share memory even though they are distinct ndarray objects, and
        np.may_share_memory is the only way to see it.  The sweep must run on
        the scalar path (and certainly never be tiled)."""
        module, fn = build_shift_nest_module(n=6)
        backing = np.asfortranarray(np.random.default_rng(3).random((7, 6)))
        dst_view = backing[:-1, :]   # rows 0..5
        src_view = backing[1:, :]    # rows 1..6: overlaps dst in rows 1..5
        assert np.may_share_memory(dst_view, src_view)
        expected = backing.copy(order="F")
        for i in range(1, 5):  # scalar semantics of dst[i,j] = src[i-1,j]*2
            for j in range(1, 5):
                expected[:-1][i, j] = expected[1:][i - 1, j] * 2.0
        interp = Interpreter([module], execution_mode="vectorize", threads=4)
        interp.call_function(
            fn, [MemoryBuffer.wrap(dst_view), MemoryBuffer.wrap(src_view)]
        )
        assert interp.stats["vectorize_fallbacks"] == 1
        assert interp.stats["vectorized_sweeps"] == 0
        assert interp.stats["parallel_sweeps"] == 0
        assert np.allclose(backing, expected)

    def test_crosscheck_with_threads_on_tiled_nest(self):
        module, fn = build_shift_nest_module(n=24)
        dst = np.zeros((24, 24), order="F")
        src = np.asfortranarray(np.random.default_rng(4).random((24, 24)))
        interp = Interpreter([module], execution_mode="crosscheck", threads=3)
        interp.call_function(fn, [MemoryBuffer.wrap(dst), MemoryBuffer.wrap(src)])
        assert interp.stats["parallel_sweeps"] == 1
        assert np.allclose(dst[1:23, 1:23], src[0:22, 1:23] * 2.0)


class TestTiledApplyExecution:
    def test_tiled_apply_matches_single_tile(self):
        from repro.runtime import TempValue
        from repro.runtime.kernel_compiler import KernelCompiler

        n = 16
        apply_op = build_average_apply(n)
        module = ModuleOp([])
        compiler = KernelCompiler(use_shared_cache=False)
        bound = compiler.kernel_for(apply_op)
        assert bound.kernel.result_is_array == (True,)

        data = np.asfortranarray(np.random.default_rng(5).random((n, n)))
        temp = TempValue(data, (0, 0))
        interp = Interpreter([module], execution_mode="vectorize", threads=4,
                             kernel_compiler=compiler)
        lb, ub = (1, 1), (n - 1, n - 1)
        [tiled] = interp._run_apply_kernel(bound.kernel, [temp], lb, ub)
        expected = (data[0:n - 2, 1:n - 1] + data[2:n, 1:n - 1]) * 0.5
        assert interp.stats["parallel_sweeps"] == 1
        assert interp.stats["parallel_tiles"] == 4
        assert np.allclose(tiled, expected)

    def test_scalar_result_apply_refuses_tiling(self):
        """An apply returning a non-array value (a constant) cannot be
        slab-assembled; tiling is refused and counted."""
        from repro.runtime import TempValue
        from repro.runtime.kernel_compiler import KernelCompiler

        n = 12
        apply_op = build_average_apply(n)
        body = apply_op.body.block
        ret = body.last_op
        ret.erase(safe=False)
        inner = Builder.at_end(body)
        constant = inner.insert(arith.ConstantOp.from_float(4.0)).results[0]
        inner.insert(stencil.ReturnOp([constant]))

        compiler = KernelCompiler(use_shared_cache=False)
        bound = compiler.kernel_for(apply_op)
        assert bound.kernel.result_is_array == (False,)
        temp = TempValue(np.zeros((n, n), order="F"), (0, 0))
        interp = Interpreter([ModuleOp([])], execution_mode="vectorize",
                             threads=4, kernel_compiler=compiler)
        [value] = interp._run_apply_kernel(bound.kernel, [temp], (1, 1),
                                           (n - 1, n - 1))
        assert float(value) == 4.0
        assert interp.stats["parallel_sweeps"] == 0
        assert interp.stats["parallel_fallbacks"] == 1

    def test_stencil_level_crosscheck_with_threads(self):
        n = 16
        result = compile_fortran(
            gauss_seidel.generate_source(n, niters=2), Target.STENCIL_CPU
        )
        u = gauss_seidel.initial_condition(n)
        interp = result.interpreter(execution_mode="crosscheck", threads=4)
        interp.call("gauss_seidel", u)
        assert interp.stats["parallel_sweeps"] >= 1
        reference = gauss_seidel.reference_jacobi(
            gauss_seidel.initial_condition(n), 2)
        assert np.allclose(u, reference)


# ---------------------------------------------------------------------------
# Schedule plumbing and the threads knob
# ---------------------------------------------------------------------------


class TestSchedulePlumbing:
    def _lowered_wsloop(self, **options):
        result = compile_fortran(
            gauss_seidel.generate_source(10, niters=1), Target.STENCIL_OPENMP,
            lower_to_scf=True, **options,
        )
        return next(op for op in result.stencil_module.walk()
                    if isinstance(op, omp.WsLoopOp))

    def test_schedule_clause_reaches_the_wsloop(self):
        wsloop = self._lowered_wsloop(omp_schedule="dynamic", omp_chunk_size=4)
        assert wsloop.schedule == "dynamic"
        assert wsloop.chunk_size == 4

    def test_default_schedule_is_static(self):
        wsloop = self._lowered_wsloop()
        assert wsloop.schedule == "static"
        assert wsloop.chunk_size is None

    def test_schedule_does_not_split_the_kernel_cache(self):
        """The clause is execution policy: structurally the loops are the
        same computation and must share one compiled kernel."""
        static = self._lowered_wsloop(omp_schedule="static")
        guided = self._lowered_wsloop(omp_schedule="guided", omp_chunk_size=2)
        assert structural_hash(static) == structural_hash(guided)

    def test_invalid_schedule_rejected(self):
        with pytest.raises(ValueError, match="omp_schedule"):
            CompilerOptions(omp_schedule="fastest")
        with pytest.raises(ValueError, match="threads"):
            CompilerOptions(threads=0)
        with pytest.raises(ValueError, match="omp_chunk_size"):
            CompilerOptions(omp_chunk_size=0)

    def test_wsloop_verifier_rejects_bad_clause(self):
        wsloop = self._lowered_wsloop()
        from repro.ir.attributes import StringAttr

        wsloop.attributes["omp.schedule"] = StringAttr("warp")
        with pytest.raises(VerifyException, match="schedule"):
            wsloop.verify_()

    def test_threads_knob_through_options_and_override(self):
        result = compile_fortran(
            gauss_seidel.generate_source(8, niters=1), Target.STENCIL_CPU,
            execution_mode="vectorize", threads=3,
        )
        assert result.interpreter().threads == 3
        assert result.interpreter(threads=1).threads == 1
        assert result.interpreter(threads=2).threads == 2


# ---------------------------------------------------------------------------
# Per-kernel runtime statistics
# ---------------------------------------------------------------------------


class TestKernelRuntimeStats:
    def test_per_kernel_invocations_and_seconds(self):
        niters = 3
        result = compile_fortran(
            gauss_seidel.generate_source(12, niters=niters), Target.STENCIL_CPU,
        )
        interp = result.interpreter(execution_mode="vectorize")
        interp.call("gauss_seidel", gauss_seidel.initial_condition(12))
        per_kernel = interp.kernels.stats["per_kernel"]
        assert len(per_kernel) == 1
        [(label, entry)] = per_kernel.items()
        assert label.startswith("stencil.apply@")
        assert entry["invocations"] == niters
        assert entry["seconds"] >= 0.0

    def test_kernel_stats_table_renders(self):
        from repro.harness import kernel_stats_table

        result = compile_fortran(
            gauss_seidel.generate_source(10, niters=1), Target.STENCIL_CPU,
        )
        interp = result.interpreter(execution_mode="vectorize")
        interp.call("gauss_seidel", gauss_seidel.initial_condition(10))
        table = kernel_stats_table(interp.kernels)
        assert "stencil.apply@" in table
        assert "invocations" in table and "total_s" in table

    def test_empty_stats_table(self):
        from repro.harness import kernel_stats_table
        from repro.runtime import KernelCompiler

        assert "no kernels executed" in kernel_stats_table(KernelCompiler())
