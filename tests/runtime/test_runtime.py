"""Tests for the runtime substrates: memory, interpreter, GPU, cost models."""

import numpy as np
import pytest

from repro.dialects import arith, func, memref, scf
from repro.dialects.builtin import ModuleOp
from repro.ir import Builder, MemRefType, f64, index
from repro.runtime import (
    ElementRef,
    Interpreter,
    InterpreterError,
    MemoryBuffer,
    SimulatedGPU,
)
from repro.runtime.cost_model import (
    CPUCostModel,
    CRAY_PROFILE,
    DistributedCostModel,
    FLANG_PROFILE,
    GAUSS_SEIDEL_KERNEL,
    GPU_STRATEGIES,
    GPUCostModel,
    PW_ADVECTION_KERNEL,
    STENCIL_PROFILE,
    STRATEGY_HOST_REGISTER,
    STRATEGY_OPENACC_UNIFIED,
    STRATEGY_OPTIMISED,
)


class TestMemoryModel:
    def test_scalar_cell(self):
        cell = MemoryBuffer.for_scalar(f64, 3.0)
        assert cell.load() == 3.0
        cell.store(4.5)
        assert cell.load() == 4.5

    def test_array_buffer_and_element_ref(self):
        buf = MemoryBuffer.for_array((3, 4), f64)
        ref = ElementRef(buf, (1, 2))
        ref.store(7.0)
        assert buf.data[1, 2] == 7.0
        assert ref.load() == 7.0

    def test_wrap_shares_memory(self):
        arr = np.zeros((2, 2), order="F")
        buf = MemoryBuffer.wrap(arr)
        buf.data[0, 0] = 1.0
        assert arr[0, 0] == 1.0

    def test_fortran_order_allocation(self):
        buf = MemoryBuffer.for_array((4, 5), f64)
        assert buf.data.flags["F_CONTIGUOUS"]

    def test_scalar_buffer_rejects_indexed_access(self):
        with pytest.raises(TypeError):
            MemoryBuffer.for_array((2,), f64).load()


class TestInterpreterCore:
    def _make_saxpy(self):
        f = func.FuncOp.build("saxpy", [f64, f64], [f64])
        b = Builder.at_end(f.entry_block)
        c = b.insert(arith.ConstantOp.from_float(2.0))
        m = b.insert(arith.MulfOp(c.result, f.entry_block.args[0]))
        a = b.insert(arith.AddfOp(m.result, f.entry_block.args[1]))
        b.insert(func.ReturnOp([a.result]))
        return ModuleOp([f])

    def test_function_call_returns_values(self):
        interp = Interpreter(self._make_saxpy())
        func_op = interp.lookup("saxpy")
        (result,) = interp.call_function(func_op, [np.float64(3.0), np.float64(1.0)])
        assert result == 7.0

    def test_unknown_function(self):
        interp = Interpreter(self._make_saxpy())
        with pytest.raises(InterpreterError):
            interp.lookup("nope")

    def test_unknown_operation_rejected(self):
        from repro.ir import Operation

        f = func.FuncOp.build("f", [], [])
        bad = Operation()
        bad.name = "strange.op"
        f.entry_block.add_op(bad)
        f.entry_block.add_op(func.ReturnOp([]))
        interp = Interpreter(ModuleOp([f]))
        with pytest.raises(InterpreterError):
            interp.call("f")

    def test_scf_for_with_iter_args(self):
        # sum of 0..9 using loop-carried values
        f = func.FuncOp.build("sum10", [], [index])
        b = Builder.at_end(f.entry_block)
        zero = b.insert(arith.ConstantOp.from_int(0, index)).result
        ten = b.insert(arith.ConstantOp.from_int(10, index)).result
        one = b.insert(arith.ConstantOp.from_int(1, index)).result
        loop = b.insert(scf.ForOp(zero, ten, one, iter_args=[zero]))
        lb = Builder.at_end(loop.body.block)
        acc = loop.body.block.args[1]
        new = lb.insert(arith.AddiOp(acc, loop.induction_variable))
        lb.insert(scf.YieldOp([new.result]))
        b.insert(func.ReturnOp([loop.results[0]]))
        (total,) = Interpreter(ModuleOp([f])).call("sum10")
        assert int(total) == 45

    def test_scf_parallel_touches_all_points(self):
        f = func.FuncOp.build("fill", [MemRefType([4, 4], f64)], [])
        b = Builder.at_end(f.entry_block)
        zero = b.insert(arith.ConstantOp.from_int(0, index)).result
        four = b.insert(arith.ConstantOp.from_int(4, index)).result
        one = b.insert(arith.ConstantOp.from_int(1, index)).result
        val = b.insert(arith.ConstantOp.from_float(1.0)).result
        par = b.insert(scf.ParallelOp([zero, zero], [four, four], [one, one]))
        pb = Builder.at_end(par.body.block)
        pb.insert(memref.StoreOp(val, f.entry_block.args[0], list(par.body.block.args)))
        pb.insert(scf.YieldOp([]))
        b.insert(func.ReturnOp([]))
        data = np.zeros((4, 4), order="F")
        interp = Interpreter(ModuleOp([f]))
        interp.call("fill", data)
        assert np.all(data == 1.0)
        assert interp.stats["parallel_regions"] == 1

    @pytest.mark.parametrize("op_cls,a,b,expected", [
        (arith.AddfOp, 1.5, 2.0, 3.5),
        (arith.SubfOp, 1.5, 2.0, -0.5),
        (arith.MulfOp, 1.5, 2.0, 3.0),
        (arith.DivfOp, 3.0, 2.0, 1.5),
        (arith.MaximumfOp, 3.0, 2.0, 3.0),
        (arith.MinimumfOp, 3.0, 2.0, 2.0),
    ])
    def test_float_binary_semantics(self, op_cls, a, b, expected):
        f = func.FuncOp.build("binop", [f64, f64], [f64])
        bd = Builder.at_end(f.entry_block)
        r = bd.insert(op_cls(f.entry_block.args[0], f.entry_block.args[1]))
        bd.insert(func.ReturnOp([r.result]))
        interp = Interpreter(ModuleOp([f]))
        (out,) = interp.call_function(interp.lookup("binop"),
                                      [np.float64(a), np.float64(b)])
        assert np.isclose(out, expected)


class TestSimulatedGPU:
    def test_alloc_and_oom(self):
        gpu = SimulatedGPU(memory_bytes=1024)
        gpu.alloc((8,), f64)
        with pytest.raises(MemoryError):
            gpu.alloc((200,), f64)

    def test_memcpy_direction_accounting(self):
        gpu = SimulatedGPU()
        host = MemoryBuffer.for_array((16,), f64, space="host")
        host.data[:] = 3.0
        device = gpu.alloc((16,), f64)
        gpu.memcpy(device, host)
        assert np.all(device.data == 3.0)
        assert gpu.transferred_bytes("h2d") == 128
        gpu.memcpy(host, device)
        assert gpu.transferred_bytes("d2h") == 128

    def test_launch_on_host_buffer_records_on_demand_traffic(self):
        gpu = SimulatedGPU()
        host = MemoryBuffer.for_array((32,), f64, space="host")
        gpu.record_launch("k", (1, 1, 1), (32, 1, 1), [host])
        assert gpu.transferred_bytes(reason="on_demand") == 2 * 256

    def test_launch_on_device_buffer_is_free_of_pcie(self):
        gpu = SimulatedGPU()
        device = gpu.alloc((32,), f64)
        gpu.record_launch("k", (1, 1, 1), (32, 1, 1), [device])
        assert gpu.transferred_bytes(reason="on_demand") == 0

    def test_dealloc_returns_bytes_to_the_pool(self):
        """Regression: alloc -> dealloc -> alloc of the full device memory
        must succeed, because dealloc returns the bytes to the pool."""
        gpu = SimulatedGPU(memory_bytes=1024)
        full = gpu.alloc((128,), f64)  # 1024 bytes: the whole device
        assert gpu.allocated_bytes == 1024
        assert gpu.dealloc(full) == 1024
        assert gpu.allocated_bytes == 0
        again = gpu.alloc((128,), f64)  # must not raise
        assert gpu.allocated_bytes == 1024
        assert gpu.pool.peak_bytes == 1024
        assert gpu.dealloc(again) == 1024
        # Releasing a buffer the pool does not own reclaims nothing.
        assert gpu.dealloc(again) == 0
        assert gpu.allocated_bytes == 0

    def test_oom_message_names_buffer_and_breakdown(self):
        gpu = SimulatedGPU(memory_bytes=1024)
        gpu.alloc((64,), f64, label="u_dev")
        with pytest.raises(MemoryError) as excinfo:
            gpu.alloc((100,), f64, label="v_dev")
        message = str(excinfo.value)
        assert "'v_dev'" in message           # the requested buffer by name
        assert "800 bytes" in message         # and its size
        assert "u_dev=512" in message         # per-allocation breakdown

    def test_stream_timeline_overlaps_copy_with_compute(self):
        gpu = SimulatedGPU(num_streams=2)
        device = gpu.alloc((1024, 1024), f64)
        host = MemoryBuffer.for_array((1024, 1024), f64, space="host")
        gpu.record_launch("k", (32, 32, 1), (32, 32, 1), [device])
        # An h2d prefetch on the copy stream starts while the launch runs.
        gpu.memcpy(device, host, stream=SimulatedGPU.COPY_STREAM)
        assert len(gpu.streams) == 2
        assert gpu.modelled_overlap_seconds() > 0
        assert gpu.synchronize() < gpu.modelled_serial_seconds()

    def test_single_stream_serialises_everything(self):
        gpu = SimulatedGPU(num_streams=1)
        device = gpu.alloc((1024, 1024), f64)
        host = MemoryBuffer.for_array((1024, 1024), f64, space="host")
        gpu.record_launch("k", (32, 32, 1), (32, 32, 1), [device])
        # Stream assignments fold onto the single physical stream.
        gpu.memcpy(device, host, stream=SimulatedGPU.COPY_STREAM)
        assert len(gpu.streams) == 1
        assert gpu.modelled_overlap_seconds() == pytest.approx(0.0)

    def test_launch_waits_for_staged_data(self):
        """A launch must not start before the last h2d transfer has landed,
        even from another stream."""
        gpu = SimulatedGPU(num_streams=2)
        device = gpu.alloc((1024, 1024), f64)
        host = MemoryBuffer.for_array((1024, 1024), f64, space="host")
        gpu.memcpy(device, host, stream=SimulatedGPU.COPY_STREAM)
        transfer_done = gpu.stream(SimulatedGPU.COPY_STREAM).ready_at
        gpu.record_launch("k", (1, 1, 1), (32, 1, 1), [device])
        launch_event = gpu.stream(0).events[-1]
        assert launch_event.start >= transfer_done

    def test_summary_reports_per_kernel_invocations_and_wall_time(self):
        gpu = SimulatedGPU()
        device = gpu.alloc((32,), f64)
        first = gpu.record_launch("k1", (1, 1, 1), (32, 1, 1), [device])
        gpu.record_launch("k1", (1, 1, 1), (32, 1, 1), [device])
        gpu.record_launch("k2", (1, 1, 1), (32, 1, 1), [device])
        gpu.finish_launch(first, 0.25)
        summary = gpu.summary()
        assert summary["launches"] == 3
        assert summary["kernel_invocations"] == {"k1": 2, "k2": 1}
        assert summary["launch_seconds"] == pytest.approx(0.25)
        assert first.seconds == pytest.approx(0.25)

    def test_kernel_stats_table_renders_device_stats(self):
        from repro.harness import kernel_stats_table

        gpu = SimulatedGPU()
        device = gpu.alloc((32,), f64)
        launch = gpu.record_launch("k1", (1, 1, 1), (32, 1, 1), [device])
        gpu.finish_launch(launch, 0.5)
        table = kernel_stats_table(gpu)
        assert "k1" in table and "0.5000" in table


class TestCostModels:
    """The performance model must reproduce the *shape* of every figure."""

    cpu = CPUCostModel()
    gpu = GPUCostModel()
    dist = DistributedCostModel()

    def test_figure2_single_core_ordering(self):
        for kernel in (GAUSS_SEIDEL_KERNEL, PW_ADVECTION_KERNEL):
            flang = self.cpu.throughput_mcells(kernel, FLANG_PROFILE, 256**3, 1)
            sten = self.cpu.throughput_mcells(kernel, STENCIL_PROFILE, 256**3, 1)
            cray = self.cpu.throughput_mcells(kernel, CRAY_PROFILE, 256**3, 1)
            assert flang < sten < cray

    def test_figure2_speedup_magnitudes(self):
        gs_ratio = (
            self.cpu.throughput_mcells(GAUSS_SEIDEL_KERNEL, STENCIL_PROFILE, 256**3, 1)
            / self.cpu.throughput_mcells(GAUSS_SEIDEL_KERNEL, FLANG_PROFILE, 256**3, 1)
        )
        pw_ratio = (
            self.cpu.throughput_mcells(PW_ADVECTION_KERNEL, STENCIL_PROFILE, 256**3, 1)
            / self.cpu.throughput_mcells(PW_ADVECTION_KERNEL, FLANG_PROFILE, 256**3, 1)
        )
        # Paper: ~2x for Gauss-Seidel, ~10x for PW advection.
        assert 2.0 <= gs_ratio <= 4.0
        assert 7.0 <= pw_ratio <= 12.0
        assert pw_ratio > gs_ratio

    def test_figure3_gs_cray_stays_ahead(self):
        cells = 2.1e9
        for threads in (1, 8, 64, 128):
            cray = self.cpu.throughput_mcells(GAUSS_SEIDEL_KERNEL, CRAY_PROFILE, cells, threads)
            sten = self.cpu.throughput_mcells(GAUSS_SEIDEL_KERNEL, STENCIL_PROFILE, cells, threads)
            flang = self.cpu.throughput_mcells(GAUSS_SEIDEL_KERNEL, FLANG_PROFILE, cells, threads)
            assert cray > sten > flang

    def test_figure4_pw_crossover_at_high_threads(self):
        cells = 2.1e9
        low_cray = self.cpu.throughput_mcells(PW_ADVECTION_KERNEL, CRAY_PROFILE, cells, 4)
        low_sten = self.cpu.throughput_mcells(PW_ADVECTION_KERNEL, STENCIL_PROFILE, cells, 4)
        assert low_cray > low_sten
        for threads in (64, 128):
            cray = self.cpu.throughput_mcells(PW_ADVECTION_KERNEL, CRAY_PROFILE, cells, threads)
            sten = self.cpu.throughput_mcells(PW_ADVECTION_KERNEL, STENCIL_PROFILE, cells, threads)
            assert sten > cray

    def test_scaling_monotonic_in_threads(self):
        cells = 2.1e9
        previous = 0.0
        for threads in (1, 2, 4, 8, 16, 32, 64, 128):
            value = self.cpu.throughput_mcells(GAUSS_SEIDEL_KERNEL, STENCIL_PROFILE, cells, threads)
            assert value >= previous * 0.99
            previous = value

    def test_figure5_gpu_strategy_ordering(self):
        for kernel in (GAUSS_SEIDEL_KERNEL, PW_ADVECTION_KERNEL):
            host_reg = self.gpu.throughput_mcells(kernel, STRATEGY_HOST_REGISTER, 134e6)
            openacc = self.gpu.throughput_mcells(kernel, STRATEGY_OPENACC_UNIFIED, 134e6)
            optimised = self.gpu.throughput_mcells(kernel, STRATEGY_OPTIMISED, 134e6)
            assert host_reg < openacc < optimised

    def test_figure5_pw_advantage_larger_than_gs(self):
        gs_gain = (
            self.gpu.throughput_mcells(GAUSS_SEIDEL_KERNEL, STRATEGY_OPTIMISED, 134e6)
            / self.gpu.throughput_mcells(GAUSS_SEIDEL_KERNEL, STRATEGY_OPENACC_UNIFIED, 134e6)
        )
        pw_gain = (
            self.gpu.throughput_mcells(PW_ADVECTION_KERNEL, STRATEGY_OPTIMISED, 134e6)
            / self.gpu.throughput_mcells(PW_ADVECTION_KERNEL, STRATEGY_OPENACC_UNIFIED, 134e6)
        )
        assert pw_gain > 3 * gs_gain
        assert gs_gain < 2.5  # comparable for Gauss-Seidel

    def test_figure6_hand_beats_auto_but_both_scale(self):
        previous_hand = previous_auto = 0.0
        for nodes in (1, 4, 16, 64):
            ranks = nodes * 128
            hand = self.dist.throughput_mcells(GAUSS_SEIDEL_KERNEL, CRAY_PROFILE, 17e9, ranks)
            auto = self.dist.throughput_mcells(GAUSS_SEIDEL_KERNEL, STENCIL_PROFILE, 17e9,
                                               ranks, comm_efficiency=0.35)
            assert hand > auto
            assert hand > previous_hand and auto > previous_auto
            previous_hand, previous_auto = hand, auto

    def test_gpu_strategies_registry(self):
        assert set(GPU_STRATEGIES) == {
            "stencil_host_register", "stencil_optimised", "openacc_nvidia"
        }
