"""Tests for the vectorized kernel compilation backend.

Covers the three contract areas of ``repro.runtime.kernel_compiler``:

* **slice translation** — loop nests and apply bodies compile to NumPy
  whole-array slice expressions (inspectable through ``kernel.source``);
* **kernel caching** — repeated sweeps hit the identity memo and structurally
  identical ops from separate compilations share one kernel;
* **oracle equivalence** — for both paper benchmarks the vectorized results
  match the scalar interpreter bit-for-bit-close, in every lowering, and the
  guards send non-vectorizable nests (in-place updates, unsupported ops) back
  to the scalar path instead of silently corrupting results.
"""

import numpy as np
import pytest

from repro.apps import gauss_seidel, pw_advection
from repro.compiler import CompilerOptions, Target, compile_fortran
from repro.dialects import arith, memref, scf, stencil
from repro.dialects.builtin import ModuleOp
from repro.dialects.func import FuncOp, ReturnOp
from repro.ir import Builder, MemRefType, f64, index
from repro.ir.operation import Region
from repro.runtime import Interpreter, InterpreterError, MemoryBuffer
from repro.runtime.kernel_compiler import (
    KernelCompiler,
    KernelUnsupported,
    compile_apply,
    compile_loop_nest,
    structural_hash,
)


# ---------------------------------------------------------------------------
# IR builders used by the unit-level tests
# ---------------------------------------------------------------------------


def build_shift_nest_module(n=8, shift=-1, in_place=False):
    """func(dst, src): scf.parallel nest computing dst[i,j] = src[i+shift,j]*2
    over [1, n-1)²; with ``in_place`` the source is the destination memref."""
    mtype = MemRefType((n, n), f64)
    fn = FuncOp.build("shift", [mtype, mtype], [])
    b = Builder.at_end(fn.entry_block)
    dst, src = fn.entry_block.args
    if in_place:
        src = dst
    low = b.insert(arith.ConstantOp.from_int(1, index)).results[0]
    high = b.insert(arith.ConstantOp.from_int(n - 1, index)).results[0]
    one = b.insert(arith.ConstantOp.from_int(1, index)).results[0]
    parallel = b.insert(scf.ParallelOp([low, low], [high, high], [one, one]))
    body = Builder.at_end(parallel.body.block)
    i, j = parallel.body.block.args
    amount = body.insert(arith.ConstantOp.from_int(abs(shift), index)).results[0]
    shifted = body.insert(
        (arith.AddiOp if shift >= 0 else arith.SubiOp)(i, amount)
    ).results[0]
    load = body.insert(memref.LoadOp(src, [shifted, j])).results[0]
    two = body.insert(arith.ConstantOp.from_float(2.0)).results[0]
    value = body.insert(arith.MulfOp(load, two)).results[0]
    body.insert(memref.StoreOp(value, dst, [i, j]))
    parallel.body.block.add_op(scf.YieldOp([]))
    b.insert(ReturnOp([]))
    return ModuleOp([fn]), fn


def build_average_apply(n=8):
    """A standalone stencil.apply averaging left/right neighbours of its one
    temp operand (fed by a detached cast so the operand list is populated)."""
    from repro.dialects.builtin import UnrealizedConversionCastOp

    temp_type = stencil.TempType([[0, n], [0, n]], f64)
    producer = UnrealizedConversionCastOp([], [temp_type])
    apply_op = stencil.ApplyOp(
        [producer.results[0]], [1, 1], [n - 1, n - 1],
        [stencil.TempType([[1, n - 1], [1, n - 1]], f64)],
    )
    block = apply_op.body.block
    arg = block.args[0]
    b = Builder.at_end(block)
    left = b.insert(stencil.AccessOp(arg, [-1, 0])).results[0]
    right = b.insert(stencil.AccessOp(arg, [1, 0])).results[0]
    total = b.insert(arith.AddfOp(left, right)).results[0]
    half = b.insert(arith.ConstantOp.from_float(0.5)).results[0]
    value = b.insert(arith.MulfOp(total, half)).results[0]
    b.insert(stencil.ReturnOp([value]))
    return apply_op


# ---------------------------------------------------------------------------
# Slice translation
# ---------------------------------------------------------------------------


class TestSliceTranslation:
    def test_nest_compiles_to_slices(self):
        _, fn = build_shift_nest_module()
        parallel = next(op for op in fn.walk() if isinstance(op, scf.ParallelOp))
        kernel = compile_loop_nest(parallel)
        # The load is shifted by -1 along dim 0 and unshifted along dim 1.
        assert "lb[0] + -1:ub[0] + -1" in kernel.source
        assert "lb[1]:ub[1]" in kernel.source
        assert kernel.rank == 2
        assert len(kernel.loads) == 1 and len(kernel.stores) == 1
        assert kernel.loads[0][1] == ((0, -1), (1, 0))
        assert kernel.stores[0][1] == ((0, 0), (1, 0))

    def test_nest_kernel_executes_correct_slices(self):
        _, fn = build_shift_nest_module(n=6)
        module = ModuleOp([])  # the fn stays in its own module
        parallel = next(op for op in fn.walk() if isinstance(op, scf.ParallelOp))
        kernel = compile_loop_nest(parallel)
        rng = np.random.default_rng(0)
        src = MemoryBuffer.wrap(np.asfortranarray(rng.random((6, 6))))
        dst = MemoryBuffer.wrap(np.zeros((6, 6), order="F"))
        # external layout: bounds first (low, high, one), then buffers
        externals = [None] * len(kernel.external_paths)
        for (ls, us, ss), (lo, hi, st) in zip(kernel.bound_slots, [(1, 5, 1)] * 2):
            externals[ls], externals[us], externals[ss] = lo, hi, st
        load_slot = kernel.loads[0][0]
        store_slot = kernel.stores[0][0]
        externals[load_slot] = src
        externals[store_slot] = dst
        assert kernel.guards_pass(externals, [1, 1], [5, 5], [1, 1])
        kernel.fn(externals, [1, 1], [5, 5])
        assert np.allclose(dst.data[1:5, 1:5], src.data[0:4, 1:5] * 2.0)
        assert np.all(dst.data[0, :] == 0.0)

    def test_apply_compiles_to_slices(self):
        apply_op = build_average_apply()
        kernel = compile_apply(apply_op)
        assert "arr0" in kernel.source and "org0" in kernel.source
        assert "+ -1 - org0[0]" in kernel.source
        assert "return [" in kernel.source
        assert kernel.loads == ((0, ((0, -1), (1, 0))), (0, ((0, 1), (1, 0))))

    def test_unsupported_op_raises(self):
        _, fn = build_shift_nest_module()
        parallel = next(op for op in fn.walk() if isinstance(op, scf.ParallelOp))
        # Smuggle an unsupported op (scf.if) into the innermost body.
        body = parallel.body.block
        cond = arith.ConstantOp.from_int(1, index)
        body.insert_op_at(0, cond)
        body.insert_op_at(1, scf.IfOp(cond.results[0]))
        with pytest.raises(KernelUnsupported):
            compile_loop_nest(parallel)


# ---------------------------------------------------------------------------
# Kernel cache
# ---------------------------------------------------------------------------


class TestKernelCache:
    def test_structural_hash_ignores_identity(self):
        _, fn_a = build_shift_nest_module()
        _, fn_b = build_shift_nest_module()
        par_a = next(op for op in fn_a.walk() if isinstance(op, scf.ParallelOp))
        par_b = next(op for op in fn_b.walk() if isinstance(op, scf.ParallelOp))
        assert par_a is not par_b
        assert structural_hash(par_a) == structural_hash(par_b)

    def test_structural_hash_distinguishes_offsets(self):
        _, fn_a = build_shift_nest_module(shift=-1)
        _, fn_b = build_shift_nest_module(shift=1)
        par_a = next(op for op in fn_a.walk() if isinstance(op, scf.ParallelOp))
        par_b = next(op for op in fn_b.walk() if isinstance(op, scf.ParallelOp))
        assert structural_hash(par_a) != structural_hash(par_b)

    def test_repeated_sweeps_hit_the_cache(self):
        compiler = KernelCompiler(use_shared_cache=False)
        _, fn = build_shift_nest_module()
        parallel = next(op for op in fn.walk() if isinstance(op, scf.ParallelOp))
        first = compiler.kernel_for(parallel)
        assert first is not None
        assert compiler.stats["compiled"] == 1
        assert compiler.stats["cache_hits"] == 0
        assert compiler.stats["unsupported"] == 0
        again = compiler.kernel_for(parallel)
        assert again is first
        assert compiler.stats["cache_hits"] == 1

    def test_structurally_identical_ops_share_a_kernel(self):
        compiler = KernelCompiler(use_shared_cache=False)
        _, fn_a = build_shift_nest_module()
        _, fn_b = build_shift_nest_module()
        par_a = next(op for op in fn_a.walk() if isinstance(op, scf.ParallelOp))
        par_b = next(op for op in fn_b.walk() if isinstance(op, scf.ParallelOp))
        bound_a = compiler.kernel_for(par_a)
        bound_b = compiler.kernel_for(par_b)
        assert bound_a.kernel is bound_b.kernel  # shared compiled code
        assert bound_a.external_values != bound_b.external_values  # per-op binding
        assert compiler.stats["compiled"] == 1
        assert compiler.stats["cache_hits"] == 1

    def test_iterated_stencil_compiles_once(self):
        """niters sweeps of the same apply = one compile + (niters-1) hits."""
        niters = 4
        result = compile_fortran(
            gauss_seidel.generate_source(12, niters=niters), Target.STENCIL_CPU
        )
        interp = result.interpreter(execution_mode="vectorize")
        interp.kernels = KernelCompiler(use_shared_cache=False)
        interp.call("gauss_seidel", gauss_seidel.initial_condition(12))
        assert interp.stats["vectorized_sweeps"] == niters
        assert interp.kernels.stats["compiled"] == 1
        assert interp.kernels.stats["cache_hits"] == niters - 1


# ---------------------------------------------------------------------------
# Oracle equivalence on the paper's two benchmarks
# ---------------------------------------------------------------------------


def run_gauss_seidel(mode, lower_to_scf, n=14, niters=2):
    result = compile_fortran(
        gauss_seidel.generate_source(n, niters=niters),
        Target.STENCIL_CPU,
        lower_to_scf=lower_to_scf,
    )
    u = gauss_seidel.initial_condition(n)
    interp = result.interpreter(execution_mode=mode)
    interp.call("gauss_seidel", u)
    return u, interp


def run_pw_advection(mode, lower_to_scf, n=10):
    result = compile_fortran(
        pw_advection.generate_source(n), Target.STENCIL_CPU, lower_to_scf=lower_to_scf
    )
    fields = [f.copy(order="F") for f in pw_advection.initial_fields(n)]
    interp = result.interpreter(execution_mode=mode)
    interp.call("pw_advection", *fields)
    return fields, interp


class TestOracleEquivalence:
    @pytest.mark.parametrize("lower_to_scf", [False, True])
    def test_gauss_seidel_matches_interpreter(self, lower_to_scf):
        u_ref, _ = run_gauss_seidel("interpret", lower_to_scf)
        u_vec, interp = run_gauss_seidel("vectorize", lower_to_scf)
        assert interp.stats["vectorized_sweeps"] > 0
        assert np.allclose(u_ref, u_vec)
        assert np.allclose(u_vec, gauss_seidel.reference_jacobi(
            gauss_seidel.initial_condition(14), 2))

    @pytest.mark.parametrize("lower_to_scf", [False, True])
    def test_pw_advection_matches_interpreter(self, lower_to_scf):
        ref_fields, _ = run_pw_advection("interpret", lower_to_scf)
        vec_fields, interp = run_pw_advection("vectorize", lower_to_scf)
        assert interp.stats["vectorized_sweeps"] > 0
        for ref, vec in zip(ref_fields, vec_fields):
            assert np.allclose(ref, vec)

    @pytest.mark.parametrize("lower_to_scf", [False, True])
    def test_crosscheck_mode_passes_on_both_apps(self, lower_to_scf):
        u, interp = run_gauss_seidel("crosscheck", lower_to_scf)
        assert interp.stats["vectorized_sweeps"] > 0
        fields, interp = run_pw_advection("crosscheck", lower_to_scf)
        assert interp.stats["vectorized_sweeps"] > 0

    def test_openmp_lowering_vectorizes(self):
        result = compile_fortran(
            gauss_seidel.generate_source(12, niters=1),
            Target.STENCIL_OPENMP,
            lower_to_scf=True,
        )
        u_ref = gauss_seidel.initial_condition(12)
        result.interpreter(execution_mode="interpret").call("gauss_seidel",
                                                            u_ref.copy(order="F"))
        u_vec = gauss_seidel.initial_condition(12)
        interp = result.interpreter(execution_mode="vectorize")
        interp.call("gauss_seidel", u_vec)
        assert interp.stats["vectorized_sweeps"] == 1
        ref = gauss_seidel.reference_jacobi(gauss_seidel.initial_condition(12), 1)
        assert np.allclose(u_vec, ref)


# ---------------------------------------------------------------------------
# Guards and fallbacks
# ---------------------------------------------------------------------------


class TestGuardsAndFallbacks:
    def test_in_place_nest_falls_back_to_scalar(self):
        """dst[i,j] = dst[i-1,j]*2 has a loop-carried dependence: the alias
        guard must refuse to vectorise and the scalar path must run."""
        module, fn = build_shift_nest_module(n=6, in_place=True)
        rng = np.random.default_rng(1)
        data = np.asfortranarray(rng.random((6, 6)))
        expected = data.copy(order="F")
        for i in range(1, 5):  # the sequential semantics (row i reads row i-1)
            for j in range(1, 5):
                expected[i, j] = expected[i - 1, j] * 2.0
        interp = Interpreter([module], execution_mode="vectorize")
        buf = MemoryBuffer.wrap(data)
        interp.call_function(fn, [buf, buf])
        assert interp.stats["vectorize_fallbacks"] == 1
        assert interp.stats["vectorized_sweeps"] == 0
        assert np.allclose(data, expected)

    def test_out_of_place_nest_vectorizes(self):
        module, fn = build_shift_nest_module(n=6, in_place=False)
        rng = np.random.default_rng(2)
        src = np.asfortranarray(rng.random((6, 6)))
        dst = np.zeros((6, 6), order="F")
        interp = Interpreter([module], execution_mode="vectorize")
        interp.call_function(fn, [MemoryBuffer.wrap(dst), MemoryBuffer.wrap(src)])
        assert interp.stats["vectorized_sweeps"] == 1
        assert np.allclose(dst[1:5, 1:5], src[0:4, 1:5] * 2.0)

    def test_overlapping_stores_fall_back_to_scalar(self):
        """Two stores into the same array through different index maps
        interleave per point under scalar semantics (a[i]=1; a[i+1]=2 over
        i in [1,n-1) ends ...,1,2) — the store-store alias guard must refuse
        to vectorise that."""
        n = 6
        mtype = MemRefType((n,), f64)
        fn = FuncOp.build("two_stores", [mtype], [])
        b = Builder.at_end(fn.entry_block)
        buf = fn.entry_block.args[0]
        low = b.insert(arith.ConstantOp.from_int(1, index)).results[0]
        high = b.insert(arith.ConstantOp.from_int(n - 1, index)).results[0]
        one = b.insert(arith.ConstantOp.from_int(1, index)).results[0]
        parallel = b.insert(scf.ParallelOp([low], [high], [one]))
        body = Builder.at_end(parallel.body.block)
        i = parallel.body.block.args[0]
        first = body.insert(arith.ConstantOp.from_float(1.0)).results[0]
        second = body.insert(arith.ConstantOp.from_float(2.0)).results[0]
        step = body.insert(arith.ConstantOp.from_int(1, index)).results[0]
        body.insert(memref.StoreOp(first, buf, [i]))
        shifted = body.insert(arith.AddiOp(i, step)).results[0]
        body.insert(memref.StoreOp(second, buf, [shifted]))
        parallel.body.block.add_op(scf.YieldOp([]))
        b.insert(ReturnOp([]))
        module = ModuleOp([fn])

        data = np.zeros(n, order="F")
        interp = Interpreter([module], execution_mode="vectorize")
        interp.call_function(fn, [MemoryBuffer.wrap(data)])
        assert interp.stats["vectorize_fallbacks"] == 1
        assert interp.stats["vectorized_sweeps"] == 0
        # Scalar semantics: every point writes 1 at i then 2 at i+1, so all
        # interior points end at 1 except the final i+1.
        assert np.allclose(data, [0.0, 1.0, 1.0, 1.0, 1.0, 2.0])

    def test_transposed_store_vectorizes_correctly(self):
        """A nest over (i, j) storing dst[j, i] = src[i, j] * 2 permutes the
        induction variables at the store; the kernel must transpose the
        value (a transposed view is not an assignable target)."""
        n = 5
        mtype = MemRefType((n, n), f64)
        fn = FuncOp.build("transpose_store", [mtype, mtype], [])
        b = Builder.at_end(fn.entry_block)
        dst, src = fn.entry_block.args
        low = b.insert(arith.ConstantOp.from_int(0, index)).results[0]
        high = b.insert(arith.ConstantOp.from_int(n, index)).results[0]
        one = b.insert(arith.ConstantOp.from_int(1, index)).results[0]
        parallel = b.insert(scf.ParallelOp([low, low], [high, high], [one, one]))
        body = Builder.at_end(parallel.body.block)
        i, j = parallel.body.block.args
        load = body.insert(memref.LoadOp(src, [i, j])).results[0]
        two = body.insert(arith.ConstantOp.from_float(2.0)).results[0]
        value = body.insert(arith.MulfOp(load, two)).results[0]
        body.insert(memref.StoreOp(value, dst, [j, i]))
        parallel.body.block.add_op(scf.YieldOp([]))
        b.insert(ReturnOp([]))
        module = ModuleOp([fn])

        rng = np.random.default_rng(4)
        src_data = np.asfortranarray(rng.random((n, n)))
        dst_data = np.zeros((n, n), order="F")
        interp = Interpreter([module], execution_mode="vectorize")
        interp.call_function(
            fn, [MemoryBuffer.wrap(dst_data), MemoryBuffer.wrap(src_data)]
        )
        assert interp.stats["vectorized_sweeps"] == 1
        assert interp.stats["vectorize_fallbacks"] == 0
        assert np.allclose(dst_data, src_data.T * 2.0)

    def test_store_guard_rejects_shifted_overlapping_views(self):
        """Two stores with identical index maps are only safe into the same
        array; overlapping *views* shifted against each other must refuse."""
        n = 8
        mtype = MemRefType((n - 1,), f64)
        fn = FuncOp.build("two_bufs", [mtype, mtype], [])
        b = Builder.at_end(fn.entry_block)
        a_ref, b_ref = fn.entry_block.args
        low = b.insert(arith.ConstantOp.from_int(0, index)).results[0]
        high = b.insert(arith.ConstantOp.from_int(n - 1, index)).results[0]
        one = b.insert(arith.ConstantOp.from_int(1, index)).results[0]
        parallel = b.insert(scf.ParallelOp([low], [high], [one]))
        body = Builder.at_end(parallel.body.block)
        i = parallel.body.block.args[0]
        c1 = body.insert(arith.ConstantOp.from_float(1.0)).results[0]
        c2 = body.insert(arith.ConstantOp.from_float(2.0)).results[0]
        body.insert(memref.StoreOp(c1, a_ref, [i]))
        body.insert(memref.StoreOp(c2, b_ref, [i]))
        parallel.body.block.add_op(scf.YieldOp([]))
        b.insert(ReturnOp([]))

        kernel = compile_loop_nest(parallel)
        backing = np.zeros(n, order="F")
        shifted_a = MemoryBuffer.wrap(backing[:-1])  # elements 0..n-2
        shifted_b = MemoryBuffer.wrap(backing[1:])   # elements 1..n-1: overlaps
        disjoint_a = MemoryBuffer.wrap(np.zeros(n - 1, order="F"))
        disjoint_b = MemoryBuffer.wrap(np.zeros(n - 1, order="F"))

        def bind(a_buf, b_buf):
            externals = [None] * len(kernel.external_paths)
            (ls, us, ss) = kernel.bound_slots[0]
            externals[ls], externals[us], externals[ss] = 0, n - 1, 1
            externals[kernel.stores[0][0]] = a_buf
            externals[kernel.stores[1][0]] = b_buf
            return externals

        assert kernel.guards_pass(bind(disjoint_a, disjoint_b), [0], [n - 1], [1])
        assert kernel.guards_pass(bind(disjoint_a, disjoint_a), [0], [n - 1], [1])
        assert not kernel.guards_pass(bind(shifted_a, shifted_b), [0], [n - 1], [1])

    def test_apply_with_enclosing_scalar_vectorizes(self):
        """An apply body may reference a value defined outside its region
        (the scalar path reads it from the shared frame); the kernel binds
        it through a body-operand external path."""
        n = 8
        temp_type = stencil.TempType([[0, n], [0, n]], f64)
        fn = FuncOp.build("scaled", [], [])
        b = Builder.at_end(fn.entry_block)
        field_buf = MemoryBuffer.wrap(
            np.asfortranarray(np.random.default_rng(3).random((n, n))))
        # Build the apply with one temp operand and an enclosing constant.
        scale = b.insert(arith.ConstantOp.from_float(3.0)).results[0]
        apply_op = build_average_apply(n)
        body = apply_op.body.block
        ret = body.last_op
        value = ret.operands[0]
        ret.erase(safe=False)
        inner = Builder.at_end(body)
        scaled = inner.insert(arith.MulfOp(value, scale)).results[0]
        inner.insert(stencil.ReturnOp([scaled]))

        from repro.runtime import TempValue
        from repro.runtime.kernel_compiler import KernelCompiler

        compiler = KernelCompiler(use_shared_cache=False)
        bound = compiler.kernel_for(apply_op)
        assert bound is not None
        assert ("root", 0) in bound.kernel.external_paths
        assert any(p[0] == "body" for p in bound.kernel.external_paths)
        temp = TempValue(field_buf.data.copy(), (0, 0))
        externals = []
        for path in bound.kernel.external_paths:
            externals.append(temp if path == ("root", 0) else np.float64(3.0))
        lb, ub = (1, 1), (n - 1, n - 1)
        assert bound.kernel.apply_guards_pass(externals, lb, ub)
        [result] = bound.kernel.fn(externals, lb, ub)
        expected = (temp.data[0:n - 2, 1:n - 1] + temp.data[2:n, 1:n - 1]) * 0.5 * 3.0
        assert np.allclose(result, expected)

    def test_unknown_execution_mode_rejected(self):
        module, _ = build_shift_nest_module()
        with pytest.raises(InterpreterError, match="execution mode"):
            Interpreter([module], execution_mode="warp-speed")
        with pytest.raises(ValueError, match="execution_mode"):
            CompilerOptions(execution_mode="warp-speed")

    def test_options_carry_mode_to_interpreter(self):
        result = compile_fortran(
            gauss_seidel.generate_source(8, niters=1),
            Target.STENCIL_CPU,
            execution_mode="vectorize",
        )
        interp = result.interpreter()
        assert interp.execution_mode == "vectorize"
        assert result.interpreter(execution_mode="interpret").execution_mode == \
            "interpret"


# ---------------------------------------------------------------------------
# Vectorizability metadata through the transforms layer
# ---------------------------------------------------------------------------


class TestVectorizabilityMetadata:
    def test_discovery_tags_applies(self):
        result = compile_fortran(
            gauss_seidel.generate_source(10, niters=1), Target.STENCIL_CPU
        )
        applies = [op for op in result.stencil_module.walk()
                   if isinstance(op, stencil.ApplyOp)]
        assert applies
        assert all("stencil.vectorizable" in op.attributes for op in applies)

    def test_fusion_preserves_metadata(self):
        """PW advection fuses three applies into one; the fused apply must
        still carry the vectorizable marker and actually compile."""
        result = compile_fortran(pw_advection.generate_source(10), Target.STENCIL_CPU)
        applies = [op for op in result.stencil_module.walk()
                   if isinstance(op, stencil.ApplyOp)]
        assert len(applies) == 1 and len(applies[0].results) == 3  # fused
        assert "stencil.vectorizable" in applies[0].attributes
        kernel = compile_apply(applies[0])
        assert kernel.source.count("return [") == 1
