"""Differential tests for the distributed multi-rank execution engine.

Every backend that claims to compute the same thing must be made to prove
it: the distributed-vectorized path is checked against the single-rank
vectorized path, the scalar interpreter oracle, and the numpy reference —
bitwise where the execution plans are structurally identical, to 1e-12
everywhere else — across process grids, odd non-divisible domains, pool
sizes and repeated runs.
"""

import numpy as np
import pytest

import repro
from repro.api import OptionError, Session
from repro.apps import gauss_seidel
from repro.runtime import (
    CartesianDecomposition,
    DistributedExecutor,
    MPIError,
    SimulatedCommunicator,
)

GRIDS = [(1, 1), (2, 1), (2, 2), (4, 1)]


def run_distributed(session, grid, global_field, niters, execution_mode,
                    pool_size=None, threads=None):
    """One executor run of Gauss-Seidel through the fluent API."""
    n = global_field.shape[0]
    program = session.compile(
        gauss_seidel.generate_source_shaped((n + 2,) * 3, niters=1)
    )
    plan = program.lower("dmp", grid=grid, execution_mode=execution_mode).distribute(
        source_builder=gauss_seidel.generate_source_shaped,
        pool_size=pool_size, threads=threads,
    )
    return plan.run(global_field, iterations=niters)


@pytest.fixture(scope="module")
def session():
    # One session for the whole module: every distinct (shape, grid) compiles
    # once, every repeated compile is a measured cache hit.
    return Session()


class TestDifferentialAgreement:
    """Distributed-vectorized vs single-rank-vectorized vs scalar oracle."""

    NITERS = 2

    def global_field(self, n):
        rng = np.random.default_rng(11)
        return np.asfortranarray(rng.random((n, n, n)))

    @pytest.mark.parametrize("grid", GRIDS)
    @pytest.mark.parametrize("n", [12, 13])  # divisible and odd/non-divisible
    def test_distributed_matches_single_rank_bitwise(self, session, grid, n):
        field = self.global_field(n)
        single = run_distributed(session, (1, 1), field, self.NITERS, "vectorize")
        multi = run_distributed(session, grid, field, self.NITERS, "vectorize")
        # The executor pads every plan the same way (zero ghosts at the
        # global boundary, exchanged values at rank interfaces), and the
        # Jacobi update is pointwise — so any grid agrees with the
        # single-rank run bit for bit, on the whole domain.
        np.testing.assert_array_equal(multi.field, single.field)

    @pytest.mark.parametrize("grid", [(2, 2), (4, 1)])
    def test_vectorized_matches_scalar_oracle(self, session, grid):
        field = self.global_field(12)
        vectorized = run_distributed(session, grid, field, self.NITERS, "vectorize")
        oracle = run_distributed(session, grid, field, self.NITERS, "interpret")
        assert np.abs(vectorized.field - oracle.field).max() < 1e-12

    @pytest.mark.parametrize("n", [12, 13])
    def test_four_ranks_match_reference_interior(self, session, n):
        """The acceptance bar: the 4-rank vectorized distributed run agrees
        with the single-rank vectorized run to 1e-12 on the interior, and
        both reproduce the global Jacobi reference there."""
        field = self.global_field(n)
        reference = gauss_seidel.reference_jacobi(field, self.NITERS)
        single = run_distributed(session, (1, 1), field, self.NITERS, "vectorize")
        multi = run_distributed(session, (2, 2), field, self.NITERS, "vectorize")
        margin = self.NITERS
        interior = tuple(slice(margin, s - margin) for s in field.shape)
        assert np.abs(multi.field[interior] - single.field[interior]).max() < 1e-12
        assert multi.max_interior_error(reference, margin) < 1e-12
        assert single.max_interior_error(reference, margin) < 1e-12

    def test_input_field_not_mutated(self, session):
        field = self.global_field(12)
        saved = field.copy()
        run_distributed(session, (2, 2), field, self.NITERS, "vectorize")
        np.testing.assert_array_equal(field, saved)


class TestDeterminism:
    def test_identical_bits_across_pool_sizes(self, session):
        """Two runs with different rank-pool sizes (and hence different
        worker interleavings) must produce identical bits: rank execution is
        synchronised by messages, never by scheduling."""
        rng = np.random.default_rng(23)
        field = np.asfortranarray(rng.random((12, 12, 12)))
        first = run_distributed(session, (2, 2), field, 2, "vectorize",
                                pool_size=4)
        second = run_distributed(session, (2, 2), field, 2, "vectorize",
                                 pool_size=9)
        np.testing.assert_array_equal(first.field, second.field)
        assert first.messages == second.messages
        assert first.bytes == second.bytes

    def test_concurrent_runs_on_one_pool_complete(self, session):
        """Two distributed runs launched concurrently with the same worker
        count must serialise on the shared rank pool — not interleave their
        rank tasks and deadlock until the receive timeout."""
        import threading

        rng = np.random.default_rng(37)
        field = np.asfortranarray(rng.random((8, 8, 8)))
        results = {}

        def one_run(tag):
            results[tag] = run_distributed(session, (2, 2), field, 2,
                                           "vectorize")

        workers = [threading.Thread(target=one_run, args=(t,)) for t in (0, 1)]
        for t in workers:
            t.start()
        for t in workers:
            t.join(timeout=20.0)
        assert len(results) == 2
        np.testing.assert_array_equal(results[0].field, results[1].field)

    def test_repeated_runs_identical(self, session):
        rng = np.random.default_rng(29)
        field = np.asfortranarray(rng.random((8, 8, 8)))
        runs = [run_distributed(session, (2, 1), field, 2, "vectorize")
                for _ in range(2)]
        np.testing.assert_array_equal(runs[0].field, runs[1].field)


class TestExecutorMechanics:
    def test_scatter_physical_ghost_fill_and_gather(self):
        executor = DistributedExecutor((2, 2))
        rng = np.random.default_rng(5)
        field = np.asfortranarray(rng.random((8, 8, 4)))
        decomposition = executor.decomposition_for(field.shape)
        locals_by_rank = executor.scatter(field, decomposition)
        assert len(locals_by_rank) == 4
        # Rank 0 owns [0:4, 0:4, 0:4]: its low x/y ghosts sit beyond the
        # global boundary (zero), its high x/y ghost faces carry the global
        # planes x=4 / y=4 over the owned interior of the other dims.
        local = locals_by_rank[0]
        assert local.shape == (6, 6, 6)
        assert local.flags["F_CONTIGUOUS"]
        np.testing.assert_array_equal(local[1:-1, 1:-1, 1:-1], field[0:4, 0:4, :])
        assert np.all(local[0, :, :] == 0.0) and np.all(local[:, 0, :] == 0.0)
        np.testing.assert_array_equal(local[-1, 1:-1, 1:-1], field[4, 0:4, :])
        np.testing.assert_array_equal(local[1:-1, -1, 1:-1], field[0:4, 4, :])
        # z is not decomposed: no global data beyond the local box.
        assert np.all(local[:, :, 0] == 0.0) and np.all(local[:, :, -1] == 0.0)
        gathered = executor.gather(locals_by_rank, decomposition)
        np.testing.assert_array_equal(gathered, field)

    def test_rank_stats_accounting(self, session):
        rng = np.random.default_rng(31)
        field = np.asfortranarray(rng.random((8, 8, 8)))
        run = run_distributed(session, (2, 1), field, 2, "vectorize")
        assert [s.rank for s in run.rank_stats] == [0, 1]
        for stats in run.rank_stats:
            assert stats.messages == 2  # one send per iteration to the peer
            assert stats.bytes > 0
            assert stats.total_seconds > 0
            assert stats.local_shape == (6, 10, 10)
        assert run.messages == sum(s.messages for s in run.rank_stats)
        assert run.bytes == sum(s.bytes for s in run.rank_stats)

    def test_pool_never_smaller_than_rank_count(self):
        # A pool with fewer workers than ranks would let a blocked receive
        # starve the very neighbour it waits for.
        executor = DistributedExecutor((2, 2), pool_size=1)
        assert executor.pool_workers == 4
        assert DistributedExecutor((2, 2), pool_size=7).pool_workers == 7

    def test_indivisible_extent_rejected(self):
        executor = DistributedExecutor((4, 1))
        with pytest.raises(MPIError, match="cannot split"):
            executor.decomposition_for((3, 8, 8))

    def test_bad_iterations_rejected(self):
        executor = DistributedExecutor((1, 1))
        with pytest.raises(MPIError, match="iterations"):
            executor.run(np.zeros((4, 4, 4)), lambda *a: None, "e", iterations=0)


class TestFluentValidation:
    def test_non_dmp_backend_rejected(self, session):
        compiled = session.compile(
            gauss_seidel.generate_source(8)
        ).lower("cpu")
        with pytest.raises(OptionError, match="requires the 'dmp' backend"):
            compiled.distribute()

    def test_rank_count_must_match_grid(self, session):
        compiled = session.compile(
            gauss_seidel.generate_source(8)
        ).lower("dmp", grid=(2, 2))
        with pytest.raises(OptionError, match="ranks=3 does not match"):
            compiled.distribute(ranks=3)

    def test_shape_mismatch_diagnostic_without_source_builder(self, session):
        compiled = session.compile(
            gauss_seidel.generate_source(10)
        ).lower("dmp", grid=(2, 1))
        plan = compiled.distribute()
        with pytest.raises(OptionError, match="source_builder"):
            plan.run(np.zeros((12, 12, 12), order="F"))

    def test_uniform_domain_runs_without_source_builder(self, session):
        # (2, 1) over 8x8x8 gives every rank a (6, 10, 10) padded box, which
        # is what a (6, 10, 10) source compiles to — no builder needed.
        compiled = session.compile(
            gauss_seidel.generate_source_shaped((6, 10, 10))
        ).lower("dmp", grid=(2, 1), execution_mode="vectorize")
        rng = np.random.default_rng(3)
        field = np.asfortranarray(rng.random((8, 8, 8)))
        run = compiled.distribute(ranks=2).run(field, iterations=1)
        reference = gauss_seidel.reference_jacobi(field, 1)
        assert run.max_interior_error(reference, margin=1) < 1e-12


class TestCommunicatorDiagnostics:
    """Regression: a missing send must surface a diagnosable error fast,
    not hang CI for the full 30 s default timeout."""

    def test_timeout_message_names_rank_source_tag_and_pending(self):
        comm = SimulatedCommunicator(2, timeout=0.05)
        comm.send(0, 1, 7, np.ones(3))  # in flight, but NOT what we wait for
        with pytest.raises(MPIError) as excinfo:
            comm.receive(source=1, dest=0, tag=4)
        message = str(excinfo.value)
        assert "rank 0" in message
        assert "from rank 1" in message
        assert "tag 4" in message
        assert "0.05" in message
        assert "src=0 dest=1 tag=7" in message  # the pending-queue snapshot

    def test_timeout_message_reports_empty_queue(self):
        comm = SimulatedCommunicator(2)
        with pytest.raises(MPIError, match="pending messages: none"):
            comm.receive(source=1, dest=0, tag=0, timeout=0.01)

    def test_per_call_timeout_overrides_default(self):
        comm = SimulatedCommunicator(2, timeout=30.0)
        with pytest.raises(MPIError, match="after 0.01"):
            comm.receive(source=1, dest=0, tag=0, timeout=0.01)

    def test_deadlocked_distributed_run_is_diagnosable(self):
        """A rank that never sends (mismatched decomposition) fails with the
        pending-message diagnostic instead of hanging."""
        executor = DistributedExecutor((2, 1), timeout=0.1)
        decomposition = CartesianDecomposition((8, 8, 8), (2, 1), (0, 1))
        comm = SimulatedCommunicator(2, timeout=0.1)

        def broken_receiver(rank):
            # Rank 0 expects a message rank 1 never sends.
            if rank == 0:
                comm.receive(source=1, dest=0, tag=3)

        from repro.runtime import get_rank_pool

        pool = get_rank_pool(2)
        with pytest.raises(MPIError, match="pending messages"):
            pool.map_tiles(broken_receiver, [0, 1])

    def test_barrier_timeout_raises_instead_of_desynchronising(self):
        # A barrier no rank ever completes must fail loudly, not return as
        # if every rank had arrived.
        comm = SimulatedCommunicator(2, timeout=0.05)
        with pytest.raises(MPIError, match="barrier timed out.*1 of 2"):
            comm.barrier(0)

    def test_invalid_pool_size_rejected(self):
        with pytest.raises(MPIError, match="pool_size"):
            DistributedExecutor((2, 2), pool_size=0)
        with pytest.raises(MPIError, match="pool_size"):
            DistributedExecutor((2, 2), pool_size=-8)

    def test_invalid_timeout_rejected(self):
        with pytest.raises(MPIError, match="timeout"):
            SimulatedCommunicator(2, timeout=0.0)
