"""Tests for the vectorized GPU launch engine.

Covers the contract areas of :mod:`repro.runtime.gpu_kernel_engine`:

* **whole-lattice compilation** — outlined ``gpu.func`` kernels compile to
  one NumPy sweep whose iteration domain is the ``grid × block`` lattice
  clipped by the per-thread bounds guards;
* **oracle equivalence** — vectorized launches agree *bitwise* with the
  per-thread scalar interpreter on the lowered benchmark, and crosscheck
  mode replays every launch through that oracle;
* **guards and fallbacks** — aliased launch arguments and unsupported bodies
  (barriers) fall back to the scalar path, counted in the interpreter stats;
* **caching** — structurally identical kernels compile once, across sweeps
  and across interpreters sharing one :class:`KernelCompiler`.
"""

import numpy as np
import pytest

import repro
from repro.apps import gauss_seidel, pw_advection
from repro.dialects import arith, gpu, memref, scf
from repro.dialects.builtin import ModuleOp
from repro.dialects.func import FuncOp, ReturnOp
from repro.ir import Builder, MemRefType, default_context, f64, index
from repro.runtime import (
    Interpreter,
    InterpreterError,
    KernelCompiler,
    SimulatedGPU,
    compile_gpu_func,
)
from repro.runtime.gpu_kernel_engine import GpuLaunchKernel, KernelUnsupported
from repro.transforms import ConvertParallelLoopsToGpuPass, ParallelLoopTilingPass


# ---------------------------------------------------------------------------
# IR builder: an outlined 2-d shift kernel (dst[i,j] = 2 * src[i-1,j])
# ---------------------------------------------------------------------------


def build_launch_module(n=8, in_place=False, with_barrier=False,
                        tile=(4, 4)):
    """A module whose func 'shift' launches an outlined gpu.func computing
    ``dst[i, j] = src[i-1, j] * 2`` over ``[1, n-1)²``."""
    mtype = MemRefType((n, n), f64)
    fn = FuncOp.build("shift", [mtype, mtype], [])
    b = Builder.at_end(fn.entry_block)
    dst, src = fn.entry_block.args
    if in_place:
        src = dst
    low = b.insert(arith.ConstantOp.from_int(1, index)).results[0]
    high = b.insert(arith.ConstantOp.from_int(n - 1, index)).results[0]
    one = b.insert(arith.ConstantOp.from_int(1, index)).results[0]
    parallel = b.insert(scf.ParallelOp([low, low], [high, high], [one, one]))
    body = Builder.at_end(parallel.body.block)
    i, j = parallel.body.block.args
    amount = body.insert(arith.ConstantOp.from_int(1, index)).results[0]
    shifted = body.insert(arith.SubiOp(i, amount)).results[0]
    load = body.insert(memref.LoadOp(src, [shifted, j])).results[0]
    two = body.insert(arith.ConstantOp.from_float(2.0)).results[0]
    value = body.insert(arith.MulfOp(load, two)).results[0]
    body.insert(memref.StoreOp(value, dst, [i, j]))
    parallel.body.block.add_op(scf.YieldOp([]))
    b.insert(ReturnOp([]))

    module = ModuleOp([fn])
    ctx = default_context()
    ParallelLoopTilingPass(tile).apply(ctx, module)
    ConvertParallelLoopsToGpuPass().apply(ctx, module)
    module.verify()
    if with_barrier:
        kernel = next(op for op in module.walk() if op.name == "gpu.func")
        guarded = next(op for op in kernel.walk() if op.name == "scf.if")
        store = next(op for op in guarded.regions[0].block.ops
                     if op.name == "memref.store")
        guarded.regions[0].block.insert_op_before(gpu.GPUBarrierOp(), store)
    return module


def run_shift(module, mode, n=8, threads=1, kernel_compiler=None):
    rng = np.random.default_rng(7)
    src = np.asfortranarray(rng.random((n, n)))
    dst = np.zeros((n, n), order="F")
    interp = Interpreter(module, gpu=SimulatedGPU(), execution_mode=mode,
                         kernel_compiler=kernel_compiler, threads=threads)
    interp.call("shift", dst, src)
    return dst, src, interp


# ---------------------------------------------------------------------------
# Compilation unit tests
# ---------------------------------------------------------------------------


class TestCompileGpuFunc:
    def test_compiles_to_clipped_lattice_sweep(self):
        module = build_launch_module(n=8, tile=(4, 4))
        func_op = next(op for op in module.walk() if op.name == "gpu.func")
        kernel = compile_gpu_func(func_op)
        assert isinstance(kernel, GpuLaunchKernel)
        assert kernel.rank == 2
        # iv = lattice + 1, guard iv < 7  =>  lattice upper limit 6.
        assert kernel.upper_limits == (6, 6)
        # Lattice [0, grid*block) = [0, 8) clips to the guard bound 6.
        lowers, uppers = kernel.launch_domain((2, 2, 1), (4, 4, 1))
        assert lowers == [0, 0] and uppers == [6, 6]
        # The load is shifted by -1 relative to the store in lattice coords:
        # store at iv = lattice+1, load at iv-1 = lattice+0.
        assert kernel.stores[0][1] == ((0, 1), (1, 1))
        assert kernel.loads[0][1] == ((0, 0), (1, 1))

    def test_barrier_body_is_unsupported(self):
        module = build_launch_module(with_barrier=True)
        func_op = next(op for op in module.walk() if op.name == "gpu.func")
        with pytest.raises(KernelUnsupported):
            compile_gpu_func(func_op)

    def test_non_gpu_func_rejected(self):
        module = build_launch_module()
        fn = next(op for op in module.walk() if isinstance(op, FuncOp))
        with pytest.raises(KernelUnsupported):
            compile_gpu_func(fn)


# ---------------------------------------------------------------------------
# Oracle equivalence on the synthetic kernel
# ---------------------------------------------------------------------------


class TestLaunchExecution:
    def test_vectorized_matches_scalar_bitwise(self):
        module = build_launch_module()
        scalar_dst, _, _ = run_shift(module, "interpret")
        vector_dst, src, interp = run_shift(module, "vectorize")
        assert np.array_equal(scalar_dst, vector_dst)
        assert np.array_equal(vector_dst[1:7, 1:7], 2 * src[0:6, 1:7])
        assert interp.stats["gpu_launches_vectorized"] == 1
        assert interp.stats["gpu_launch_fallbacks"] == 0
        assert interp.stats["kernel_launches"] == 1

    def test_crosscheck_replays_through_oracle(self):
        module = build_launch_module()
        dst, src, interp = run_shift(module, "crosscheck")
        assert np.array_equal(dst[1:7, 1:7], 2 * src[0:6, 1:7])
        assert interp.stats["gpu_launches_vectorized"] == 1

    def test_crosscheck_raises_on_divergence(self):
        module = build_launch_module()
        compiler = KernelCompiler(use_shared_cache=False)
        # Prime the cache, then corrupt the compiled kernel's function.
        _, _, interp = run_shift(module, "vectorize", kernel_compiler=compiler)
        kernel = next(k for k in compiler._structural.values() if k is not None)

        def wrong(ext, lb, ub):
            ext[1].data[lb[0]:ub[0], lb[1]:ub[1]] += 1.0

        kernel.fn = wrong
        with pytest.raises(InterpreterError, match="diverged"):
            run_shift(module, "crosscheck", kernel_compiler=compiler)

    def test_aliased_arguments_fall_back_to_scalar(self):
        """dst aliasing src makes the sweep order-dependent: the runtime
        alias guard must reject vectorization, and the scalar fallback must
        reproduce the per-thread semantics exactly."""
        module = build_launch_module(in_place=True)
        rng = np.random.default_rng(3)
        init = np.asfortranarray(rng.random((8, 8)))

        results = {}
        for mode in ("interpret", "vectorize"):
            data = init.copy(order="F")
            unused = np.zeros((8, 8), order="F")
            interp = Interpreter(module, gpu=SimulatedGPU(),
                                 execution_mode=mode)
            interp.call("shift", data, unused)
            results[mode] = data
        assert np.array_equal(results["interpret"], results["vectorize"])
        assert interp.stats["gpu_launch_fallbacks"] == 1
        assert interp.stats["gpu_launches_vectorized"] == 0

    def test_unsupported_body_falls_back_to_scalar(self):
        module = build_launch_module(with_barrier=True)
        dst, src, interp = run_shift(module, "vectorize")
        assert np.array_equal(dst[1:7, 1:7], 2 * src[0:6, 1:7])
        assert interp.stats["gpu_launch_fallbacks"] == 1

    def test_kernel_compiles_once_across_sweeps_and_interpreters(self):
        module = build_launch_module()
        compiler = KernelCompiler(use_shared_cache=False)
        _, _, interp = run_shift(module, "vectorize", kernel_compiler=compiler)
        assert compiler.stats["compiled"] == 1
        run_shift(module, "vectorize", kernel_compiler=compiler)
        # Second interpreter, same compiler: structural hit, no new compile.
        assert compiler.stats["compiled"] == 1
        assert compiler.stats["cache_hits"] >= 1

    def test_per_kernel_stats_recorded(self):
        module = build_launch_module()
        compiler = KernelCompiler(use_shared_cache=False)
        _, _, interp = run_shift(module, "vectorize", kernel_compiler=compiler)
        per_kernel = compiler.stats["per_kernel"]
        assert len(per_kernel) == 1
        (label, entry), = per_kernel.items()
        assert label.startswith("gpu.func:shift_kernel_0")
        assert entry["invocations"] == 1


# ---------------------------------------------------------------------------
# Lowered benchmarks through the fluent API
# ---------------------------------------------------------------------------


class TestLoweredBenchmarks:
    @pytest.mark.parametrize("strategy", ["optimised", "host_register"])
    def test_gauss_seidel_vectorized_matches_oracle_bitwise(self, strategy):
        n = 10
        compiled = repro.compile(
            gauss_seidel.generate_source(n, niters=2)
        ).lower("gpu", data_strategy=strategy, lower_to_scf=True)
        init = gauss_seidel.initial_condition(n)

        results = {}
        for mode in ("interpret", "vectorize", "crosscheck"):
            work = init.copy(order="F")
            interp = compiled.interpreter(gpu=SimulatedGPU(),
                                          execution_mode=mode)
            interp.call("gauss_seidel", work)
            results[mode] = (work, interp)

        reference = gauss_seidel.reference_jacobi(init, 2)
        scalar, _ = results["interpret"]
        assert np.allclose(scalar, reference)
        for mode in ("vectorize", "crosscheck"):
            work, interp = results[mode]
            assert np.array_equal(work, scalar), mode
            assert interp.stats["gpu_launches_vectorized"] == 2
            assert interp.stats["gpu_launch_fallbacks"] == 0
            assert interp.stats["gpu_seconds"] > 0

    def test_pw_advection_vectorized_matches_reference(self):
        n = 12
        compiled = repro.compile(
            pw_advection.generate_source(n)
        ).lower("gpu", data_strategy="optimised", lower_to_scf=True,
                execution_mode="vectorize")
        fields = [f.copy(order="F") for f in pw_advection.initial_fields(n)]
        interp = compiled.run("pw_advection", *fields)
        rsu, rsv, rsw = pw_advection.reference(fields[0], fields[1], fields[2])
        assert np.allclose(fields[3], rsu)
        assert np.allclose(fields[4], rsv)
        assert np.allclose(fields[5], rsw)
        assert interp.stats["gpu_launches_vectorized"] >= 1
        assert interp.stats["gpu_launch_fallbacks"] == 0

    def test_launch_accounting_not_doubled_in_lowered_mode(self):
        """The extracted function carries gpu.launch *and* its body contains
        a gpu.launch_func: only the launch site may account."""
        n = 10
        compiled = repro.compile(
            gauss_seidel.generate_source(n, niters=2)
        ).lower("gpu", data_strategy="optimised", lower_to_scf=True)
        device = SimulatedGPU()
        interp = compiled.interpreter(gpu=device, execution_mode="vectorize")
        interp.call("gauss_seidel", gauss_seidel.initial_condition(n))
        assert len(device.launches) == 2  # niters, not 2 * niters
        assert interp.stats["kernel_launches"] == 2
        # The optimised strategy stages data explicitly: the device-resident
        # launch must not fabricate on-demand PCIe traffic.
        assert device.transferred_bytes(reason="on_demand") == 0

    def test_empty_domain_launch_executes_nothing(self):
        """A launch whose guards reject every lattice point is a no-op."""
        module = build_launch_module(n=2)  # domain [1, 1): empty
        dst, _, interp = run_shift(module, "vectorize", n=2)
        assert np.all(dst == 0)
