"""Tests for the schedule IR rewrites and their runtime execution paths.

Two contract areas below the fluent ``Schedule`` layer:

* **structural rejection** — directives a kernel's loop structure cannot
  carry (wrong tile rank, permutation deeper than the serial nest, a
  non-dividing unroll factor, loop directives at the stencil level without
  ``lower_to_scf``, re-tiling an already tiled chain) raise
  :class:`ScheduleError` *at derivation time*, naming the kernel;
* **box execution** — a ``schedule.tile`` annotation routes the sweep
  through the runtime's box planner: tiles are counted in interpreter
  stats, results stay bitwise-identical to the untiled run, and the
  threaded nest path distributes boxes without changing a single bit.

Plus a smoke run of the schedule fuzz farm (``python -m repro.fuzz
--schedules``) proving the wiring end to end.
"""

import numpy as np
import pytest

import repro
from repro.apps import gauss_seidel
from repro.fuzz.schedules import ScheduleFuzzFarm, default_schedule_matrix
from repro.fuzz.generator import DEFAULT_CONFIG, generate_spec
from repro.schedule import ScheduleError


@pytest.fixture
def session():
    return repro.Session()


# ---------------------------------------------------------------------------
# Structural rejection at derivation time
# ---------------------------------------------------------------------------


class TestStructuralRejection:
    def test_tile_rank_mismatch_names_the_kernel(self, session,
                                                 small_gs_source):
        with pytest.raises(ScheduleError,
                           match=r"tile: kernel '\S+' .* got 2 tile sizes"):
            session.compile(small_gs_source).lower(
                "cpu", lower_to_scf=True).schedule().tile(4, 4)

    def test_stencil_level_reorder_requires_scf(self, session,
                                                small_gs_source):
        with pytest.raises(ScheduleError,
                           match="reorder: requires lower_to_scf=True"):
            session.compile(small_gs_source).lower("cpu") \
                   .schedule().reorder(1, 0)

    def test_stencil_level_unroll_requires_scf(self, session,
                                               small_gs_source):
        with pytest.raises(ScheduleError,
                           match="unroll: requires lower_to_scf=True"):
            session.compile(small_gs_source).lower("cpu") \
                   .schedule().unroll(0, 2)

    def test_reorder_deeper_than_serial_nest(self, session, small_gs_source):
        # GS under scf has 2 serial loops below the parallel dimension; a
        # length-3 permutation cannot apply (parallel dims don't reorder).
        with pytest.raises(ScheduleError,
                           match=r"has only 2 serial loop\(s\)"):
            session.compile(small_gs_source).lower(
                "cpu", lower_to_scf=True).schedule().reorder(2, 0, 1)

    def test_unroll_non_dividing_factor(self, session, small_gs_source):
        # The interior extent is 8; factor 3 does not divide it.
        with pytest.raises(ScheduleError,
                           match="factor 3 does not divide the trip count 8"):
            session.compile(small_gs_source).lower(
                "cpu", lower_to_scf=True).schedule().unroll(0, 3)

    def test_unroll_loop_index_out_of_range(self, session, small_gs_source):
        with pytest.raises(ScheduleError, match="loop index 5 is out of"):
            session.compile(small_gs_source).lower(
                "cpu", lower_to_scf=True).schedule().unroll(5, 2)

    def test_double_tile_is_rejected(self, session, small_gs_source):
        with pytest.raises(ScheduleError, match="already tiled"):
            session.compile(small_gs_source).lower(
                "cpu", lower_to_scf=True).schedule() \
                .tile(1, 4, 4).tile(1, 2, 2)

    def test_flang_only_admits_only_reorder(self, session, small_gs_source):
        with pytest.raises(ScheduleError,
                           match="only 'reorder' applies"):
            session.compile(small_gs_source).lower("flang-only") \
                   .schedule().tile(4, 4, 4)

    def test_flang_reorder_deeper_than_any_band(self, session):
        # listing1-style 2-D kernel with no time loop: depth-2 bands only.
        source = """
subroutine shallow(a, b)
  implicit none
  integer, parameter :: n = 8
  real(kind=8), intent(in) :: a(n, n)
  real(kind=8), intent(inout) :: b(n, n)
  integer :: i, j
  do j = 2, n - 1
    do i = 2, n - 1
      b(i, j) = 0.25d0 * (a(i-1, j) + a(i+1, j) + a(i, j-1) + a(i, j+1))
    end do
  end do
end subroutine shallow
"""
        with pytest.raises(ScheduleError,
                           match="no fir.do_loop band of depth >= 3"):
            session.compile(source).lower("flang-only") \
                   .schedule().reorder(2, 0, 1)

    def test_rejection_does_not_poison_the_cache(self, session,
                                                 small_gs_source):
        program = session.compile(small_gs_source)
        base = program.lower("cpu", lower_to_scf=True)
        with pytest.raises(ScheduleError):
            base.schedule().tile(4, 4)
        # The failed derivation left no artifact behind; the good chain
        # still derives and runs.
        good = base.schedule().tile(1, 4, 4)
        assert good.compiled.artifact is not base.artifact


# ---------------------------------------------------------------------------
# Box execution: schedule.tile through the runtime
# ---------------------------------------------------------------------------


class TestTiledExecution:
    def _run(self, compiled, n=10):
        work = gauss_seidel.initial_condition(n)
        interp = compiled.vectorize().run("gauss_seidel", work)
        return work, interp.stats

    def test_tiled_nest_counts_boxes_and_matches_untiled(
            self, session, small_gs_source):
        program = session.compile(small_gs_source)
        base = program.lower("cpu", lower_to_scf=True)
        tiled = base.schedule().tile(1, 4, 4).compiled

        expected, base_stats = self._run(base)
        actual, tiled_stats = self._run(tiled)
        assert base_stats["schedule_tiles"] == 0
        # 8x8x8 interior, tiles (1,4,4) -> 8*2*2 boxes per sweep, 2 sweeps.
        assert tiled_stats["schedule_tiles"] == 64
        assert actual.tobytes() == expected.tobytes()

    def test_stencil_level_tile_counts_apply_boxes(self, session,
                                                   small_gs_source):
        program = session.compile(small_gs_source)
        base = program.lower("cpu")
        tiled = base.schedule().tile(4, 4, 4).compiled

        expected, _ = self._run(base)
        actual, stats = self._run(tiled)
        assert stats["schedule_tiles"] > 0
        assert actual.tobytes() == expected.tobytes()

    def test_threaded_boxes_stay_bitwise(self, session):
        source = gauss_seidel.generate_source(16, niters=2)
        program = session.compile(source)
        base = program.lower("cpu", lower_to_scf=True)
        tiled = base.schedule().tile(4, 4, 4).compiled

        expected = gauss_seidel.initial_condition(16)
        base.vectorize().run("gauss_seidel", expected)
        actual = gauss_seidel.initial_condition(16)
        interp = tiled.vectorize(threads=4).run("gauss_seidel", actual)
        assert interp.stats["schedule_tiles"] > 0
        assert actual.tobytes() == expected.tobytes()

    def test_degenerate_tile_equals_whole_domain(self, session,
                                                 small_gs_source):
        # Tile sizes >= the extent: a single whole-domain box short-circuits
        # to the untiled path (nothing counted), still bitwise.
        program = session.compile(small_gs_source)
        base = program.lower("cpu", lower_to_scf=True)
        tiled = base.schedule().tile(64, 64, 64).compiled
        expected, _ = self._run(base)
        actual, stats = self._run(tiled)
        assert stats["schedule_tiles"] == 0
        assert actual.tobytes() == expected.tobytes()


# ---------------------------------------------------------------------------
# Schedule fuzz farm smoke
# ---------------------------------------------------------------------------


class TestScheduleFuzzSmoke:
    def test_small_run_is_clean(self):
        report = ScheduleFuzzFarm(count=4).run()
        assert report.ok
        assert report.cases == 4
        assert report.chains_run > 0
        assert "0 divergences" in report.summary()

    def test_chains_are_deterministic_per_seed(self):
        first = ScheduleFuzzFarm(count=2)
        second = ScheduleFuzzFarm(count=2)
        spec = generate_spec(0, DEFAULT_CONFIG)
        assert first.run_case(spec).chains == second.run_case(spec).chains

    def test_matrix_adds_flang_config_for_comparable_specs(self):
        for seed in range(20):
            spec = generate_spec(seed, DEFAULT_CONFIG)
            labels = [c.label for c in default_schedule_matrix(spec)]
            assert labels[:3] == ["cpu-stencil", "cpu-scf", "openmp-scf"]
            if spec.flang_comparable and spec.rank >= 2:
                assert labels[-1] == "flang-reorder"

    def test_cli_exit_contract(self):
        from repro.fuzz.__main__ import run
        assert run(["--schedules", "--seeds", "2", "--quiet"]) == 0
