"""Tests for the user-schedulable kernel layer: ``CompiledProgram.schedule()``.

Five contract areas of ``repro.schedule``:

* **directive grammar** — chains normalize to canonical nested tuples and
  malformed directives are loud ``ScheduleError``s, surfaced as
  ``OptionError`` when they arrive through ``lower(schedule_chain=...)``;
* **derivation & caching** — every loop directive derives a *new* artifact
  through the session cache (the chain is cache-key material), while
  runtime-only knobs (threads, streams) share the parent's artifact;
* **oracle-proven equivalence** — multi-transform chains on both paper
  benchmarks verify bitwise against the unscheduled parent on every
  targeted backend, and semantically illegal schedules (a reordered
  loop-carried dependence) are rejected by ``verify()``;
* **backend knobs** — ``omp``/``blocks``/``streams``/``grid`` set the
  corresponding backend options and refuse the wrong backend;
* **persistence** — scheduled artifacts land in the on-disk store under
  schedule-extended keys and reload bitwise-identical.
"""

import numpy as np
import pytest

import repro
from repro.apps import gauss_seidel, pw_advection
from repro.schedule import (
    Schedule,
    ScheduleError,
    ScheduleVerificationError,
    describe_chain,
    normalize_schedule_chain,
)
from repro.schedule.schedule import synthesize_args
from repro.serve import ArtifactStore


@pytest.fixture
def session():
    return repro.Session()


#: Out-of-place single-sweep PW variant: only the ``su`` component, written
#: from read-only ``u``/``v``/``w``.  Under flang-only this is ONE perfect
#: fir.do_loop band of depth 4 ([it, k, j, i]), so the same depth-4
#: permutation that is illegal on Gauss-Seidel is structurally available
#: here — and legal, because no iteration reads what another wrote.
PW_SU_SOURCE = """
subroutine pw_su(u, v, w, su)
  implicit none
  integer, parameter :: n = 8
  integer, parameter :: niters = 2
  real(kind=8), parameter :: tcx = 0.5d0 / 100.0d0
  real(kind=8), parameter :: tcy = 0.5d0 / 100.0d0
  real(kind=8), parameter :: tcz = 0.5d0 / 100.0d0
  real(kind=8), intent(in) :: u(n, n, n), v(n, n, n), w(n, n, n)
  real(kind=8), intent(inout) :: su(n, n, n)
  integer :: i, j, k, it
  do it = 1, niters
    do k = 2, n - 1
      do j = 2, n - 1
        do i = 2, n - 1
          su(i, j, k) = tcx * (u(i-1, j, k) * (u(i, j, k) + u(i-1, j, k)) &
                             - u(i+1, j, k) * (u(i, j, k) + u(i+1, j, k))) &
                      + tcy * (u(i, j-1, k) * (v(i, j-1, k) + v(i-1, j-1, k)) &
                             - u(i, j+1, k) * (v(i, j, k) + v(i-1, j, k))) &
                      + tcz * (u(i, j, k-1) * (w(i, j, k-1) + w(i-1, j, k-1)) &
                             - u(i, j, k+1) * (w(i, j, k) + w(i-1, j, k)))
        end do
      end do
    end do
  end do
end subroutine pw_su
"""


# ---------------------------------------------------------------------------
# Directive grammar
# ---------------------------------------------------------------------------


class TestDirectiveGrammar:
    def test_chain_normalizes_lists_to_tuples(self):
        chain = normalize_schedule_chain(
            ["fuse", ("tile", [4, 8]), ("reorder", [1, 0]), ("unroll", [0, 2])]
        )
        assert chain == (("fuse",), ("tile", (4, 8)),
                         ("reorder", (1, 0)), ("unroll", (0, 2)))

    def test_none_is_the_empty_chain(self):
        assert normalize_schedule_chain(None) == ()

    @pytest.mark.parametrize("chain, message", [
        ([("warp", (2,))], "unknown schedule directive 'warp'"),
        ([()], "empty schedule directive"),
        ([("fuse", 3)], "fuse takes no arguments"),
        ([("tile", (0, 4))], "tile sizes must be positive"),
        ([("tile", ("a",))], "expected a sequence of integers"),
        ([("reorder", (0, 2))], "must be a permutation"),
        ([("reorder", (1,))], "must be a permutation"),
        ([("unroll", (0, 1))], "unroll factor must be >= 2"),
        ([("unroll", (-1, 2))], "unroll loop index must be >= 0"),
        ([("tile", (4,)), "fuse"], "fuse must precede loop transforms"),
    ])
    def test_malformed_chains_are_loud(self, chain, message):
        with pytest.raises(ScheduleError, match=message):
            normalize_schedule_chain(chain)

    def test_describe_chain_renders_compactly(self):
        chain = normalize_schedule_chain(
            ["fuse", ("tile", (1, 4, 8)), ("reorder", (1, 0))])
        assert describe_chain(chain) == "fuse().tile(1,4,8).reorder(1,0)"

    def test_invalid_chain_through_lower_is_an_option_error(
            self, session, small_gs_source):
        with pytest.raises(repro.OptionError,
                           match="invalid schedule_chain"):
            session.compile(small_gs_source).lower(
                "cpu", schedule_chain=[("tile", (0,))])


# ---------------------------------------------------------------------------
# Fluent derivation & session-cache semantics (mirrors TestDmpCacheKeys)
# ---------------------------------------------------------------------------


class TestScheduleCacheKeys:
    def test_each_loop_directive_derives_a_distinct_artifact(
            self, session, small_gs_source):
        base = session.compile(small_gs_source).lower(
            "cpu", lower_to_scf=True)
        tiled = base.schedule().tile(1, 4, 4)
        chained = tiled.reorder(1, 0)
        assert session.cache_stats == {"hits": 0, "misses": 3, "artifacts": 3}
        assert tiled.compiled.artifact is not base.artifact
        assert chained.compiled.artifact is not tiled.compiled.artifact
        assert chained.chain == (("tile", (1, 4, 4)), ("reorder", (1, 0)))

    def test_rederiving_the_same_chain_is_a_cache_hit(
            self, session, small_gs_source):
        program = session.compile(small_gs_source)
        a = program.lower("cpu", lower_to_scf=True).schedule().tile(1, 4, 4)
        b = program.lower("cpu", lower_to_scf=True).schedule().tile(1, 4, 4)
        assert b.compiled.artifact is a.compiled.artifact
        assert session.cache_stats["hits"] >= 2  # re-lower + re-derive

    def test_runtime_knobs_share_the_scheduled_artifact(
            self, session, small_gs_source):
        tiled = session.compile(small_gs_source).lower(
            "openmp", lower_to_scf=True).schedule().tile(1, 4, 4)
        threaded = tiled.compiled.with_options(threads=4)
        assert threaded.artifact is tiled.compiled.artifact
        assert session.cache_stats["artifacts"] == 2  # base + tiled only

    def test_chain_is_cache_key_material(self, session, small_gs_source):
        tiled = session.compile(small_gs_source).lower(
            "cpu", lower_to_scf=True,
            schedule_chain=(("tile", (1, 4, 4)),))
        key = tiled.options.cache_key()
        assert ("schedule_chain", (("tile", (1, 4, 4)),)) in key
        # threads is runtime-only: absent from the compile-time key.
        assert not any(field == "threads" for field, _ in key)

    def test_lists_normalize_to_one_cache_entry(self, session,
                                                small_gs_source):
        program = session.compile(small_gs_source)
        a = program.lower("cpu", schedule_chain=[["tile", [4, 4, 4]]])
        b = program.lower("cpu", schedule_chain=(("tile", (4, 4, 4)),))
        assert b.artifact is a.artifact


# ---------------------------------------------------------------------------
# Oracle-proven equivalence (the acceptance chains)
# ---------------------------------------------------------------------------


class TestVerifiedChains:
    """A >=3-transform chain must verify bitwise on both paper benchmarks,
    on every backend the loop directives target."""

    @pytest.mark.parametrize("backend, options", [
        ("cpu", {"lower_to_scf": True}),
        ("openmp", {"lower_to_scf": True, "threads": 2}),
    ])
    def test_three_transform_chain_on_gauss_seidel(
            self, session, small_gs_source, backend, options):
        schedule = (session.compile(small_gs_source)
                    .lower(backend, **options)
                    .schedule().fuse().tile(1, 4, 8).reorder(1, 0)
                    .verify())
        assert len(schedule.chain) == 3

    @pytest.mark.parametrize("backend, options", [
        ("cpu", {"lower_to_scf": True}),
        ("openmp", {"lower_to_scf": True, "threads": 2}),
    ])
    def test_four_transform_chain_on_pw_advection(
            self, session, small_pw_source, backend, options):
        schedule = (session.compile(small_pw_source)
                    .lower(backend, **options)
                    .schedule().fuse().tile(2, 4, 4).reorder(1, 0)
                    .unroll(0, 2)
                    .verify())
        assert len(schedule.chain) == 4

    def test_verified_schedule_runs_bitwise_equal_to_parent(
            self, session, small_gs_source):
        n = 10
        base = session.compile(small_gs_source).lower(
            "cpu", lower_to_scf=True)
        schedule = base.schedule().tile(1, 4, 4).reorder(1, 0).verify()
        expected = gauss_seidel.initial_condition(n)
        actual = gauss_seidel.initial_condition(n)
        base.run("gauss_seidel", expected)
        schedule.run("gauss_seidel", actual)
        assert actual.tobytes() == expected.tobytes()

    def test_stencil_level_tile_verifies_without_scf(self, session,
                                                     small_pw_source):
        (session.compile(small_pw_source)
         .lower("cpu")
         .schedule().fuse().tile(4, 4, 4)
         .verify())

    def test_empty_chain_verify_is_a_no_op(self, session, small_gs_source):
        schedule = session.compile(small_gs_source).lower("cpu").schedule()
        assert schedule.verify() is schedule

    def test_verify_returns_self_for_chaining(self, session,
                                              small_gs_source):
        schedule = (session.compile(small_gs_source)
                    .lower("cpu", lower_to_scf=True)
                    .schedule().tile(1, 4, 4))
        assert schedule.verify() is schedule


class TestFlangLegalityMatrix:
    """flang-only reorders whole fir.do_loop bands — including the time
    loop.  Spatial interchange of the Gauss-Seidel sweep is legal (any
    lexicographic order is a linear extension of the dependence DAG: the
    minus-direction neighbours are always updated first), but rotating the
    *time* loop into the spatial nest replays sweeps in a different
    interleaving and must be caught by verify()."""

    def test_gs_time_loop_rotation_is_rejected(self, session,
                                               small_gs_source):
        schedule = (session.compile(small_gs_source)
                    .lower("flang-only")
                    .schedule().reorder(1, 2, 3, 0))
        with pytest.raises(ScheduleVerificationError,
                           match=r"reorder\(1,2,3,0\) changes 'gauss_seidel'"):
            schedule.verify()

    def test_same_chain_passes_on_out_of_place_sweep(self, session):
        # The identical depth-4 permutation on the single-sweep PW variant:
        # out-of-place, so every loop order computes the same values.
        (session.compile(PW_SU_SOURCE)
         .lower("flang-only")
         .schedule().reorder(1, 2, 3, 0)
         .verify())

    def test_gs_spatial_interchange_is_legal(self, session, small_gs_source):
        (session.compile(small_gs_source)
         .lower("flang-only")
         .schedule().reorder(2, 1, 0)
         .verify())

    def test_pw_sibling_sweeps_each_reorder(self, session, small_pw_source):
        (session.compile(small_pw_source)
         .lower("flang-only")
         .schedule().reorder(2, 1, 0)
         .verify())

    def test_illegal_schedule_error_names_the_chain(self, session,
                                                    small_gs_source):
        schedule = (session.compile(small_gs_source)
                    .lower("flang-only")
                    .schedule().reorder(1, 2, 3, 0))
        with pytest.raises(ScheduleVerificationError) as excinfo:
            schedule.verify()
        message = str(excinfo.value)
        assert "arg0" in message and "illegal" in message


# ---------------------------------------------------------------------------
# verify() plumbing: entry resolution and argument synthesis
# ---------------------------------------------------------------------------


class TestVerifyPlumbing:
    def test_entry_inferred_when_unambiguous(self, session, small_gs_source):
        schedule = (session.compile(small_gs_source)
                    .lower("cpu", lower_to_scf=True)
                    .schedule().tile(1, 4, 4))
        schedule.verify()  # no entry= needed: one subroutine

    def test_ambiguous_entry_requires_explicit_name(self, session,
                                                    small_gs_source,
                                                    small_pw_source):
        program = session.compile(small_gs_source + small_pw_source)
        schedule = program.lower("cpu", lower_to_scf=True) \
                          .schedule().tile(1, 4, 4)
        with pytest.raises(ScheduleError, match="cannot infer the entry"):
            schedule.verify()
        schedule.verify(entry="gauss_seidel")

    def test_unknown_entry_is_loud(self, session, small_gs_source):
        schedule = session.compile(small_gs_source).lower("cpu").schedule()
        with pytest.raises(ScheduleError, match="no function 'nope'"):
            schedule.verify(entry="nope")

    def test_synthesized_args_are_deterministic(self, session,
                                                small_gs_source):
        compiled = session.compile(small_gs_source).lower("cpu")
        func_op = compiled.artifact.fir_module.get_symbol("gauss_seidel")
        first = synthesize_args(func_op)
        second = synthesize_args(func_op)
        assert len(first) == 1 and first[0].shape == (10, 10, 10)
        assert first[0].flags.f_contiguous
        assert first[0].tobytes() == second[0].tobytes()

    def test_caller_args_are_not_mutated(self, session, small_gs_source):
        schedule = (session.compile(small_gs_source)
                    .lower("cpu", lower_to_scf=True)
                    .schedule().tile(1, 4, 4))
        work = gauss_seidel.initial_condition(10)
        snapshot = work.tobytes()
        schedule.verify(args=[work])
        assert work.tobytes() == snapshot


# ---------------------------------------------------------------------------
# Backend knobs
# ---------------------------------------------------------------------------


class TestBackendKnobs:
    def test_omp_sets_the_worksharing_clause(self, session, small_gs_source):
        schedule = (session.compile(small_gs_source)
                    .lower("openmp")
                    .schedule().omp(schedule="dynamic", chunk=4))
        assert schedule.compiled.options.schedule == "dynamic"
        assert schedule.compiled.options.chunk_size == 4

    def test_blocks_sets_gpu_tile_sizes(self, session, small_gs_source):
        schedule = (session.compile(small_gs_source)
                    .lower("gpu")
                    .schedule().blocks(4, 4, 4))
        assert schedule.compiled.options.tile_sizes == (4, 4, 4)

    def test_streams_is_runtime_only(self, session, small_gs_source):
        base = session.compile(small_gs_source).lower("gpu")
        schedule = base.schedule().streams(4)
        assert schedule.compiled.options.streams == 4
        assert schedule.compiled.artifact is base.artifact

    def test_grid_sets_the_process_grid(self, session, small_gs_source):
        schedule = (session.compile(small_gs_source)
                    .lower("dmp")
                    .schedule().grid(2, 1))
        assert schedule.compiled.options.grid == (2, 1)

    @pytest.mark.parametrize("knob, call", [
        ("omp", lambda s: s.omp(schedule="static")),
        ("blocks", lambda s: s.blocks(4, 4, 4)),
        ("streams", lambda s: s.streams(2)),
        ("grid", lambda s: s.grid(2, 1)),
    ])
    def test_knobs_refuse_the_wrong_backend(self, session, small_gs_source,
                                            knob, call):
        schedule = session.compile(small_gs_source).lower("cpu").schedule()
        with pytest.raises(ScheduleError, match=knob):
            call(schedule)

    def test_gpu_loop_directives_point_at_the_knob(self, session,
                                                   small_gs_source):
        with pytest.raises(ScheduleError, match="Schedule.blocks"):
            session.compile(small_gs_source).lower("gpu").schedule() \
                   .tile(4, 4, 4)

    def test_dmp_loop_directives_point_at_the_knob(self, session,
                                                   small_gs_source):
        with pytest.raises(ScheduleError, match="Schedule.grid"):
            session.compile(small_gs_source).lower("dmp").schedule() \
                   .reorder(1, 0)

    def test_dmp_verify_is_refused(self, session, small_gs_source):
        schedule = session.compile(small_gs_source).lower("dmp").schedule()
        with pytest.raises(ScheduleError, match="distributed plan"):
            schedule.verify()


# ---------------------------------------------------------------------------
# Persistence: schedule-extended store keys
# ---------------------------------------------------------------------------


class TestScheduledArtifactPersistence:
    def test_scheduled_and_unscheduled_keys_are_distinct(self, tmp_path,
                                                         small_gs_source):
        store = ArtifactStore(tmp_path)
        session = repro.Session(store=store)
        program = session.compile(small_gs_source)
        program.lower("cpu")
        program.lower("cpu", schedule_chain=(("tile", (4, 4, 4)),))
        assert len(store) == 2

    def test_scheduled_artifact_reloads_bitwise(self, tmp_path,
                                                small_gs_source):
        store = ArtifactStore(tmp_path)
        chain = (("tile", (4, 4, 4)),)
        warm = repro.Session(store=store).compile(small_gs_source).lower(
            "cpu", lower_to_scf=True, schedule_chain=chain)

        cold_store = ArtifactStore(tmp_path)
        cold = repro.Session(store=cold_store).compile(small_gs_source).lower(
            "cpu", lower_to_scf=True, schedule_chain=chain)
        assert cold_store.stats["hits"] == 1  # reloaded, not recompiled

        expected = gauss_seidel.initial_condition(10)
        actual = gauss_seidel.initial_condition(10)
        warm.run("gauss_seidel", expected)
        interp = cold.vectorize().run("gauss_seidel", actual)
        assert actual.tobytes() == expected.tobytes()
        # The tile annotation survived the print->parse round-trip: the
        # reloaded artifact still executes through the box planner.
        assert interp.stats["schedule_tiles"] > 0
