"""CompileService: single-flight, backpressure, timeouts, metrics.

Deterministic concurrency: the tests register gate-controlled backends in a
private registry so a compile can be held in flight for exactly as long as a
test needs, instead of relying on scheduler timing.
"""

import threading
import time

import pytest

from repro.api import Session
from repro.api.backends import (
    BackendRegistry,
    CpuBackend,
    FlangOnlyBackend,
    GpuBackend,
    OpenMPBackend,
)
from repro.apps import gauss_seidel
from repro.harness import service_metrics_table
from repro.serve import (
    ArtifactStore,
    CompileService,
    ServiceRejected,
    ServiceTimeout,
)


class GatedCpuBackend(CpuBackend):
    """A cpu backend whose lowers block until the test opens the gate."""

    name = "gated"
    aliases = ()

    def __init__(self):
        self.gate = threading.Event()
        self.gate.set()
        self.started = threading.Event()
        self.lower_count = 0
        self._count_lock = threading.Lock()

    def lower(self, source, options=None, *, ctx=None, **overrides):
        self.started.set()
        self.gate.wait()
        with self._count_lock:
            self.lower_count += 1
        return super().lower(source, options, ctx=ctx, **overrides)


class FailingBackend(CpuBackend):
    """A backend whose every lower raises (for quarantine-sharing tests)."""

    name = "failing"
    aliases = ()

    def __init__(self):
        self.gate = threading.Event()
        self.gate.set()
        self.lower_count = 0
        self._count_lock = threading.Lock()

    def lower(self, source, options=None, *, ctx=None, **overrides):
        self.gate.wait()
        with self._count_lock:
            self.lower_count += 1
        raise ValueError("synthetic backend failure")


def _make_service(**kwargs):
    reg = BackendRegistry()
    gated = GatedCpuBackend()
    failing = FailingBackend()
    for backend in (gated, failing, CpuBackend(), OpenMPBackend(),
                    GpuBackend(), FlangOnlyBackend()):
        reg.register(backend)
    session = Session(registry=reg)
    service = CompileService(session, **kwargs)
    return service, gated, failing


SOURCE = gauss_seidel.generate_source(6)
OTHER_SOURCE = gauss_seidel.generate_source(6, name="other_kernel")


class TestSingleFlight:
    def test_duplicate_inflight_compiles_coalesce_to_one_lower(self):
        service, gated, _ = _make_service(workers=4, max_queue=32)
        try:
            gated.gate.clear()
            futures = [service.submit_compile(SOURCE, "gated")
                       for _ in range(6)]
            assert gated.started.wait(5.0)
            # Everybody shares the winner's future.
            assert all(f is futures[0] for f in futures)
            assert not futures[0].done()
            gated.gate.set()
            compiled = futures[0].result(5.0)
            assert gated.lower_count == 1
            metrics = service.metrics()
            assert metrics.coalesced == 5
            assert metrics.misses == 1
            assert metrics.submitted_compiles == 6
            # Every caller sees the same cached artifact.
            assert service.compile(SOURCE, "gated").artifact is compiled.artifact
        finally:
            gated.gate.set()
            service.close()

    def test_distinct_keys_do_not_coalesce(self):
        service, gated, _ = _make_service(workers=2)
        try:
            a = service.compile(SOURCE, "gated")
            b = service.compile(OTHER_SOURCE, "gated")
            c = service.compile(SOURCE, "gated", lower_to_scf=True)
            assert gated.lower_count == 3
            assert len({id(h.artifact) for h in (a, b, c)}) == 3
        finally:
            service.close()

    def test_runs_are_never_coalesced_but_their_compile_is(self):
        service, gated, _ = _make_service(workers=4)
        try:
            fields = [gauss_seidel.initial_condition(6) for _ in range(6)]
            futures = [
                service.submit_run(SOURCE, "gauss_seidel", [field],
                                   backend="gated")
                for field in fields
            ]
            interps = [f.result(10.0) for f in futures]
            assert gated.lower_count == 1
            assert len({id(i) for i in interps}) == 6  # one execution each
            metrics = service.metrics()
            assert metrics.submitted_runs == 6
            assert metrics.completed == 6
            assert metrics.misses == 1
        finally:
            service.close()

    def test_cached_key_fast_path_skips_the_queue(self):
        service, gated, _ = _make_service(workers=1)
        try:
            service.compile(SOURCE, "gated")
            baseline = service.metrics()
            future = service.submit_compile(SOURCE, "gated")
            assert future.done()  # resolved inline, no queue round-trip
            metrics = service.metrics()
            assert metrics.memory_hits == baseline.memory_hits + 1
            assert gated.lower_count == 1
        finally:
            service.close()

    def test_failed_compile_shares_one_exception_with_the_cohort(self):
        service, _, failing = _make_service(workers=4)
        service.session.compile_retries = 0
        try:
            failing.gate.clear()
            futures = [service.submit_compile(SOURCE, "failing")
                       for _ in range(4)]
            failing.gate.set()
            errors = []
            for future in futures:
                with pytest.raises(ValueError, match="synthetic"):
                    future.result(5.0)
                errors.append(future.exception())
            # One lower, one exception object, shared by the whole cohort.
            assert failing.lower_count == 1
            assert len({id(e) for e in errors}) == 1
            # Later requests short-circuit on the session quarantine with
            # the same original exception object.
            with pytest.raises(ValueError, match="synthetic"):
                service.compile(SOURCE, "failing")
            assert failing.lower_count == 1
            assert service.session.resilience_stats["quarantine_hits"] == 1
        finally:
            failing.gate.set()
            service.close()


class TestBackpressure:
    def test_queue_full_raises_typed_rejection(self):
        service, gated, _ = _make_service(workers=1, max_queue=1)
        try:
            gated.gate.clear()
            # Occupy the only worker...
            first = service.submit_compile(SOURCE, "gated")
            assert gated.started.wait(5.0)
            # ...fill the queue with a second key...
            second = service.submit_compile(OTHER_SOURCE, "gated")
            # ...and the third distinct key must be rejected, typed.
            with pytest.raises(ServiceRejected) as excinfo:
                service.submit_compile(SOURCE, "gated", lower_to_scf=True)
            assert excinfo.value.max_queue == 1
            metrics = service.metrics()
            assert metrics.rejected == 1
            assert metrics.queue_depth_high_water >= 1
            gated.gate.set()
            assert first.result(10.0) is not None
            assert second.result(10.0) is not None
        finally:
            gated.gate.set()
            service.close()

    def test_rejected_flight_resolves_coalesced_waiters(self):
        """A submit whose enqueue is rejected must fail its own future, so
        racers that coalesced onto it do not hang forever."""
        service, gated, _ = _make_service(workers=1, max_queue=1)
        try:
            gated.gate.clear()
            service.submit_compile(SOURCE, "gated")
            assert gated.started.wait(5.0)
            service.submit_compile(OTHER_SOURCE, "gated")
            with pytest.raises(ServiceRejected):
                service.submit_compile(SOURCE, "gated", lower_to_scf=True)
        finally:
            gated.gate.set()
            service.close()
        # The rejected request never reached a worker: no lower for its key.
        assert gated.lower_count == 2

    def test_coalesced_requests_do_not_consume_queue_capacity(self):
        service, gated, _ = _make_service(workers=1, max_queue=1)
        try:
            gated.gate.clear()
            first = service.submit_compile(SOURCE, "gated")
            assert gated.started.wait(5.0)
            queued = service.submit_compile(OTHER_SOURCE, "gated")
            # The queue is full, but duplicates of an in-flight key coalesce
            # without admission — no rejection.
            dup = service.submit_compile(SOURCE, "gated")
            assert dup is first
            gated.gate.set()
            assert queued.result(10.0) is not None
        finally:
            gated.gate.set()
            service.close()


class TestTimeouts:
    def test_blocking_compile_times_out_typed(self):
        service, gated, _ = _make_service(workers=1)
        try:
            gated.gate.clear()
            started = time.perf_counter()
            with pytest.raises(ServiceTimeout):
                service.compile(SOURCE, "gated", timeout=0.05)
            assert time.perf_counter() - started < 5.0
            assert service.metrics().timeouts == 1
            # The flight kept running: once the gate opens, a retry is served
            # from the cache without a second lower.
            gated.gate.set()
            compiled = service.compile(SOURCE, "gated", timeout=10.0)
            assert compiled is not None
            assert gated.lower_count == 1
        finally:
            gated.gate.set()
            service.close()

    def test_default_timeout_applies(self):
        service, gated, _ = _make_service(workers=1, default_timeout=0.05)
        try:
            gated.gate.clear()
            with pytest.raises(ServiceTimeout):
                service.compile(SOURCE, "gated")
        finally:
            gated.gate.set()
            service.close()


class TestLifecycleAndMetrics:
    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="workers"):
            CompileService(Session(), workers=0)
        with pytest.raises(ValueError, match="max_queue"):
            CompileService(Session(), max_queue=0)

    def test_conflicting_store_rejected(self, tmp_path):
        session = Session(store=ArtifactStore(tmp_path / "a"))
        with pytest.raises(ValueError, match="different store"):
            CompileService(session, store=ArtifactStore(tmp_path / "b"))

    def test_closed_service_rejects_requests(self):
        service, _, _ = _make_service(workers=1)
        service.close()
        with pytest.raises(RuntimeError, match="closed"):
            service.submit_compile(SOURCE, "cpu")
        service.close()  # idempotent

    def test_context_manager_closes(self):
        with _make_service(workers=1)[0] as service:
            service.compile(SOURCE, "cpu")
        with pytest.raises(RuntimeError, match="closed"):
            service.submit_compile(SOURCE, "cpu")

    def test_metrics_table_renders(self, tmp_path):
        with CompileService(store=ArtifactStore(tmp_path),
                            workers=2) as service:
            field = gauss_seidel.initial_condition(6)
            service.run(SOURCE, "gauss_seidel", [field],
                        execution_mode="vectorize")
            table = service_metrics_table(service.metrics())
        for needle in ("coalesced", "queue_depth_high_water", "disk_hits",
                       "lowers (misses)", "latency[execute]", "store"):
            assert needle in table

    def test_metrics_latency_percentiles_present(self):
        service, _, _ = _make_service(workers=2)
        try:
            for _ in range(3):
                service.compile(OTHER_SOURCE, "cpu")
            latency = service.metrics().latency
            assert latency["lower"]["count"] >= 1
            assert latency["queue_wait"]["count"] >= 1
            assert latency["lower"]["p50"] <= latency["lower"]["max"]
        finally:
            service.close()
