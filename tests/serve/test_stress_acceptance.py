"""Acceptance: fleet-wide single-flight + cross-process warm starts.

The ISSUE-8 contract, asserted end to end:

* N >= 8 concurrent client threads, each repeatedly running a mixed workload
  over both apps (Gauss-Seidel and PW advection) across several backends,
  perform **exactly one backend lower per distinct (source, backend,
  options) key** fleet-wide — measured by service metrics;
* every concurrent result is **bitwise identical** to a serial run;
* a **cold process** (fresh session, fresh store handle over the same
  directory) reloads every artifact from the store and performs **zero
  lowers**.
"""

import threading

import pytest

from repro.api import Session
from repro.apps import gauss_seidel, pw_advection
from repro.serve import ArtifactStore, CompileService

N_CLIENTS = 8
REPEATS = 3

GS_SOURCE = gauss_seidel.generate_source(8, niters=2)
PW_SOURCE = pw_advection.generate_source(8, niters=1)

#: The mixed workload: (label, source, backend, compile-time options).  Three
#: distinct artifact keys over both apps and three backends.
WORKLOADS = [
    ("gs-cpu", GS_SOURCE, "cpu", {"lower_to_scf": True}),
    ("gs-gpu", GS_SOURCE, "gpu", {"lower_to_scf": True}),
    ("pw-omp", PW_SOURCE, "openmp",
     {"lower_to_scf": True, "schedule": "dynamic", "chunk_size": 4}),
]


def _fresh_args(label):
    if label.startswith("gs"):
        return "gauss_seidel", [gauss_seidel.initial_condition(8)]
    u, v, w, su, sv, sw = pw_advection.initial_fields(8)
    return "pw_advection", [u, v, w, su, sv, sw]


def _result_bytes(args):
    return b"".join(a.tobytes() for a in args)


def _serial_reference():
    """One serial run of each workload on a plain session."""
    session = Session()
    reference = {}
    for label, source, backend, options in WORKLOADS:
        compiled = session.lower(source, backend, **options)
        entry, args = _fresh_args(label)
        compiled.run(entry, *args, execution_mode="vectorize")
        reference[label] = _result_bytes(args)
    return reference


@pytest.fixture(scope="module")
def serial_reference():
    return _serial_reference()


class TestStressAcceptance:
    def test_fleet_wide_single_flight_and_bitwise_identity(
            self, tmp_path, serial_reference):
        store = ArtifactStore(tmp_path / "store")
        outcomes = []
        failures = []
        barrier = threading.Barrier(N_CLIENTS)

        with CompileService(store=store, workers=4,
                            max_queue=128) as service:

            def client(client_id):
                try:
                    barrier.wait(timeout=30)
                    for repeat in range(REPEATS):
                        for label, source, backend, options in WORKLOADS:
                            entry, args = _fresh_args(label)
                            service.run(
                                source, entry, args, backend=backend,
                                execution_mode="vectorize", timeout=120,
                                **options)
                            outcomes.append((label, _result_bytes(args)))
                except BaseException as exc:  # pragma: no cover
                    failures.append((client_id, exc))

            threads = [threading.Thread(target=client, args=(i,))
                       for i in range(N_CLIENTS)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            metrics = service.metrics()

        assert not failures, failures

        # Exactly one backend lower per distinct key, fleet-wide, measured
        # by the service metrics.
        assert metrics.misses == len(WORKLOADS)
        assert metrics.submitted_runs == N_CLIENTS * REPEATS * len(WORKLOADS)
        assert metrics.completed == metrics.submitted_runs
        assert metrics.failed == 0
        assert metrics.rejected == 0

        # Every concurrent result is bitwise identical to the serial run.
        assert len(outcomes) == N_CLIENTS * REPEATS * len(WORKLOADS)
        for label, payload in outcomes:
            assert payload == serial_reference[label], (
                f"workload {label} diverged from the serial reference"
            )

        # The store now holds one entry per distinct key.
        assert len(store) == len(WORKLOADS)
        assert store.stats["writes"] == len(WORKLOADS)

    def test_cold_process_with_warm_store_performs_zero_lowers(
            self, tmp_path, serial_reference):
        store_dir = tmp_path / "store"
        warm = Session(store=ArtifactStore(store_dir))
        for _, source, backend, options in WORKLOADS:
            warm.lower(source, backend, **options)
        assert warm.cache_stats["misses"] == len(WORKLOADS)

        # "Kill the process": a brand-new session and a brand-new store
        # handle over the same directory share nothing in memory.
        cold = Session(store=ArtifactStore(store_dir))
        for label, source, backend, options in WORKLOADS:
            compiled = cold.lower(source, backend, **options)
            entry, args = _fresh_args(label)
            compiled.run(entry, *args, execution_mode="vectorize")
            assert _result_bytes(args) == serial_reference[label], (
                f"store-reloaded workload {label} diverged"
            )
        stats = cold.cache_stats
        assert stats["misses"] == 0, "cold process must skip every lower"
        assert stats["disk_hits"] == len(WORKLOADS)

    def test_concurrent_cold_sessions_share_the_store(self, tmp_path):
        """Separate sessions (simulating separate processes) racing the same
        cold store stay correct: results identical, store intact."""
        store_dir = tmp_path / "race"
        source = GS_SOURCE
        payloads = []
        failures = []
        barrier = threading.Barrier(4)

        def process(i):
            try:
                session = Session(store=ArtifactStore(store_dir))
                barrier.wait(timeout=30)
                compiled = session.lower(source, "cpu", lower_to_scf=True)
                entry, args = _fresh_args("gs")
                compiled.run(entry, *args, execution_mode="vectorize")
                payloads.append(_result_bytes(args))
            except BaseException as exc:  # pragma: no cover
                failures.append((i, exc))

        threads = [threading.Thread(target=process, args=(i,))
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not failures, failures
        assert len(set(payloads)) == 1
        store = ArtifactStore(store_dir)
        assert len(store) == 1
