"""ArtifactStore: persistence round-trip and every failure path.

The store's contract is "corruption is a miss, never a crash": truncated IR,
checksum mismatches, unreadable sidecars, version skew and racing writers
must all surface as ``None`` (→ recompile), with the failure counted, and
never as an exception to the client.
"""

import json
import os
import threading

import pytest

from repro.api import Session
from repro.api.backends import registry
from repro.api.program import source_fingerprint
from repro.apps import gauss_seidel, pw_advection
from repro.serve import ArtifactStore, STORE_FORMAT_VERSION, key_digest
from repro.serve.store import serialize_artifact


def _compile_artifact(source, backend="cpu", **overrides):
    backend_obj = registry.get(backend)
    options = backend_obj.make_options(None, **overrides)
    artifact = backend_obj.lower(source, options)
    key = (source_fingerprint(source), backend_obj.name, options.cache_key())
    return key, artifact, options


def _entry_paths(store, key):
    digest = key_digest(key)
    return (store._dir / f"{digest}.ir", store._dir / f"{digest}.json")


class TestRoundTrip:
    def test_save_load_round_trip_executes_bitwise(self, tmp_path):
        source = gauss_seidel.generate_source(8, niters=2)
        key, artifact, options = _compile_artifact(
            source, "cpu", lower_to_scf=True)
        store = ArtifactStore(tmp_path)
        assert store.save(key, artifact)

        loaded = store.load(key, source=source, backend="cpu",
                            options=options)
        assert loaded is not None
        assert loaded.discovered_stencils == artifact.discovered_stencils
        assert loaded.extracted_functions == artifact.extracted_functions

        # The reloaded artifact must execute bitwise-identically.
        from repro.api.backends import get_backend
        from repro.api.program import build_interpreter

        u_orig = gauss_seidel.initial_condition(8)
        u_loaded = gauss_seidel.initial_condition(8)
        backend = get_backend("cpu")
        build_interpreter(backend, options, artifact.modules,
                          execution_mode="vectorize").call(
                              "gauss_seidel", u_orig)
        build_interpreter(backend, options, loaded.modules,
                          execution_mode="vectorize").call(
                              "gauss_seidel", u_loaded)
        assert u_orig.tobytes() == u_loaded.tobytes()

    @pytest.mark.parametrize("backend,overrides", [
        ("flang-only", {}),
        ("gpu", {"lower_to_scf": True}),
        ("dmp", {"grid": (2, 1)}),
    ])
    def test_every_backend_round_trips(self, tmp_path, backend, overrides):
        source = gauss_seidel.generate_source(6)
        key, artifact, options = _compile_artifact(source, backend,
                                                   **overrides)
        store = ArtifactStore(tmp_path)
        assert store.save(key, artifact)
        loaded = store.load(key, source=source, backend=backend,
                            options=options)
        assert loaded is not None
        assert (loaded.stencil_module is None) == (
            artifact.stencil_module is None)
        assert store.stats["hits"] == 1

    def test_absent_key_is_a_plain_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        source = gauss_seidel.generate_source(6)
        key = (source_fingerprint(source), "cpu", ())
        assert store.load(key, source=source, backend="cpu",
                          options=None) is None
        assert store.stats["misses"] == 1
        assert store.stats["corrupt_entries"] == 0

    def test_key_digest_is_stable_and_distinct(self):
        fp = "a" * 64
        key_a = (fp, "cpu", (("lower_to_scf", True),))
        key_b = (fp, "cpu", (("lower_to_scf", False),))
        assert key_digest(key_a) == key_digest(key_a)
        assert key_digest(key_a) != key_digest(key_b)
        assert key_digest(key_a) != key_digest((fp, "gpu", key_a[2]))


class TestFailurePaths:
    """Every corruption mode is a safe miss + recompile, never an exception."""

    def _stored(self, tmp_path, **overrides):
        source = gauss_seidel.generate_source(6)
        key, artifact, options = _compile_artifact(source, "cpu", **overrides)
        store = ArtifactStore(tmp_path)
        store.save(key, artifact)
        return store, key, source, options

    def test_truncated_ir_is_a_miss_and_entry_is_dropped(self, tmp_path):
        store, key, source, options = self._stored(tmp_path)
        ir_path, meta_path = _entry_paths(store, key)
        ir_path.write_text(ir_path.read_text()[: 100], encoding="utf-8")
        assert store.load(key, source=source, backend="cpu",
                          options=options) is None
        assert store.stats["corrupt_entries"] == 1
        assert not ir_path.exists() and not meta_path.exists()

    def test_bad_checksum_is_a_miss(self, tmp_path):
        store, key, source, options = self._stored(tmp_path)
        ir_path, _ = _entry_paths(store, key)
        ir_path.write_text(ir_path.read_text() + "\n// tampered",
                           encoding="utf-8")
        assert store.load(key, source=source, backend="cpu",
                          options=options) is None
        assert store.stats["corrupt_entries"] == 1

    def test_missing_ir_file_is_a_miss(self, tmp_path):
        store, key, source, options = self._stored(tmp_path)
        ir_path, _ = _entry_paths(store, key)
        ir_path.unlink()
        assert store.load(key, source=source, backend="cpu",
                          options=options) is None
        assert store.stats["corrupt_entries"] == 1

    def test_garbage_sidecar_is_a_miss(self, tmp_path):
        store, key, source, options = self._stored(tmp_path)
        _, meta_path = _entry_paths(store, key)
        meta_path.write_text("{not json", encoding="utf-8")
        assert store.load(key, source=source, backend="cpu",
                          options=options) is None
        assert store.stats["corrupt_entries"] == 1

    def test_checksum_matches_but_ir_unparseable_is_a_miss(self, tmp_path):
        store, key, source, options = self._stored(tmp_path)
        ir_path, meta_path = _entry_paths(store, key)
        bogus = "this is not IR"
        ir_path.write_text(bogus, encoding="utf-8")
        meta = json.loads(meta_path.read_text())
        import hashlib
        meta["checksum"] = hashlib.sha256(bogus.encode()).hexdigest()
        meta_path.write_text(json.dumps(meta), encoding="utf-8")
        assert store.load(key, source=source, backend="cpu",
                          options=options) is None
        assert store.stats["corrupt_entries"] == 1

    def test_version_mismatch_is_a_counted_miss_not_corruption(self, tmp_path):
        store, key, source, options = self._stored(tmp_path)
        _, meta_path = _entry_paths(store, key)
        meta = json.loads(meta_path.read_text())
        meta["format_version"] = STORE_FORMAT_VERSION + 1
        meta_path.write_text(json.dumps(meta), encoding="utf-8")
        assert store.load(key, source=source, backend="cpu",
                          options=options) is None
        stats = store.stats
        assert stats["version_mismatches"] == 1
        assert stats["corrupt_entries"] == 0
        # A version-skewed entry is left alone (an old reader must not
        # destroy a future writer's data).
        assert meta_path.exists()

    def test_session_recompiles_through_a_corrupt_entry(self, tmp_path):
        """End to end: corruption costs one recompile, never an exception."""
        source = gauss_seidel.generate_source(6)
        store = ArtifactStore(tmp_path)
        warm = Session(store=store)
        warm.lower(source, "cpu", lower_to_scf=True)
        # Corrupt every IR payload on disk.
        for ir_file in store._dir.glob("*.ir"):
            ir_file.write_text("garbage", encoding="utf-8")
        cold = Session(store=ArtifactStore(tmp_path))
        compiled = cold.lower(source, "cpu", lower_to_scf=True)
        assert compiled.artifact is not None
        stats = cold.cache_stats
        assert stats["misses"] == 1  # recompiled
        assert stats["disk_hits"] == 0

    def test_invalid_max_bytes_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="max_bytes"):
            ArtifactStore(tmp_path, max_bytes=0)


class TestConcurrentWriters:
    def test_racing_writers_same_key_leave_a_loadable_entry(self, tmp_path):
        source = pw_advection.generate_source(6)
        key, artifact, options = _compile_artifact(
            source, "cpu", lower_to_scf=True)
        store = ArtifactStore(tmp_path)
        barrier = threading.Barrier(8)
        failures = []

        def write():
            barrier.wait()
            try:
                assert store.save(key, artifact)
            except BaseException as exc:  # pragma: no cover
                failures.append(exc)

        threads = [threading.Thread(target=write) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not failures
        assert len(store) == 1
        loaded = store.load(key, source=source, backend="cpu",
                            options=options)
        assert loaded is not None
        # No temp files left behind by the racing writers.
        assert not list(store._dir.glob("*.tmp"))

    def test_concurrent_reader_during_write_never_crashes(self, tmp_path):
        source = gauss_seidel.generate_source(6)
        key, artifact, options = _compile_artifact(source, "cpu")
        store = ArtifactStore(tmp_path)
        stop = threading.Event()
        failures = []

        def reader():
            while not stop.is_set():
                try:
                    store.load(key, source=source, backend="cpu",
                               options=options)
                except BaseException as exc:  # pragma: no cover
                    failures.append(exc)
                    return

        t = threading.Thread(target=reader)
        t.start()
        for _ in range(10):
            store.save(key, artifact)
        stop.set()
        t.join()
        assert not failures


class TestLRUEviction:
    def _save_n(self, store, n, backend="cpu"):
        keys = []
        for i in range(n):
            source = gauss_seidel.generate_source(6, name=f"kernel_{i}")
            key, artifact, options = _compile_artifact(source, backend)
            store.save(key, artifact)
            keys.append((key, source, options))
        return keys

    def test_evicts_least_recently_used_first(self, tmp_path):
        store = ArtifactStore(tmp_path)
        keys = self._save_n(store, 3)
        # Age the entries deterministically: keys[0] oldest ... keys[2]
        # newest, then touch keys[0] by reading it (a hit is a use).
        for age, (key, _, _) in enumerate(keys):
            _, meta_path = _entry_paths(store, key)
            os.utime(meta_path, (1000.0 + age, 1000.0 + age))
        store.load(keys[0][0], source=keys[0][1], backend="cpu",
                   options=keys[0][2])

        # Cap so exactly one entry must go: keys[1] is now the LRU.
        sizes = {digest: size for digest, size, _ in store.entries()}
        store.max_bytes = sum(sizes.values()) - 1
        store._evict_to_cap()
        assert store.stats["evictions"] == 1
        remaining = {digest for digest, _, _ in store.entries()}
        assert key_digest(keys[1][0]) not in remaining
        assert key_digest(keys[0][0]) in remaining
        assert key_digest(keys[2][0]) in remaining

    def test_eviction_after_save_respects_cap(self, tmp_path):
        probe = ArtifactStore(tmp_path / "probe")
        self._save_n(probe, 1)
        entry_bytes = probe.total_bytes()

        store = ArtifactStore(tmp_path / "capped",
                              max_bytes=int(entry_bytes * 2.5))
        keys = self._save_n(store, 4)
        assert store.total_bytes() <= store.max_bytes
        assert store.stats["evictions"] >= 1
        # The newest write always survives its own eviction pass.
        newest = key_digest(keys[-1][0])
        assert newest in {digest for digest, _, _ in store.entries()}

    def test_evicted_entry_is_a_safe_miss_then_recompile(self, tmp_path):
        source = gauss_seidel.generate_source(6)
        store = ArtifactStore(tmp_path, max_bytes=1)
        session = Session(store=store)
        session.lower(source, "cpu")
        # The cap is below one artifact: the write happened, then the entry
        # was evicted.  A fresh process misses and recompiles.
        cold = Session(store=ArtifactStore(tmp_path, max_bytes=1))
        cold.lower(source, "cpu")
        assert cold.cache_stats["misses"] == 1
        assert cold.cache_stats["disk_hits"] == 0

    def test_same_mtime_eviction_is_deterministic(self, tmp_path):
        # Coarse filesystem clocks routinely stamp several entries with one
        # mtime; eviction used to fall back to directory-enumeration order.
        # The digest tiebreak makes the victim a pure function of the keys.
        def populate(root):
            store = ArtifactStore(root)
            keys = self._save_n(store, 3)
            for key, _, _ in keys:
                _, meta_path = _entry_paths(store, key)
                os.utime(meta_path, (1000.0, 1000.0))
            return store, keys

        survivors = []
        for attempt in range(2):
            store, keys = populate(tmp_path / f"run{attempt}")
            sizes = {digest: size for digest, size, _ in store.entries()}
            store.max_bytes = sum(sizes.values()) - 1
            store._evict_to_cap()
            assert store.stats["evictions"] == 1
            survivors.append(sorted(d for d, _, _ in store.entries()))
            # entries() itself lists the tied entries digest-ordered.
            listed = [d for d, _, _ in store.entries()]
            assert listed == sorted(listed)
            # The victim is the lexicographically smallest digest.
            victim = min(key_digest(key) for key, _, _ in keys)
            assert victim not in set(listed)
        assert survivors[0] == survivors[1]
