"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.apps import gauss_seidel, pw_advection


@pytest.fixture
def small_gs_source():
    return gauss_seidel.generate_source(10, niters=2)


@pytest.fixture
def small_pw_source():
    return pw_advection.generate_source(8)


@pytest.fixture
def listing1_source():
    """The 2-D averaging example of the paper's Listing 1."""
    return """
subroutine average(data)
  implicit none
  integer, parameter :: n = 16
  real(kind=8), intent(inout) :: data(n, n)
  integer :: i, j
  do i = 2, n - 1
    do j = 2, n - 1
      data(j, i) = (data(j, i-1) + data(j, i+1) + data(j-1, i) + data(j+1, i)) * 0.25
    end do
  end do
end subroutine average
"""


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def fuzz_seeds(request):
    """Seed count for the differential fuzz smoke, set by ``--fuzz-seeds``."""
    return request.config.getoption("--fuzz-seeds")
