"""Printer/parser round-trip tests, including property-based ones."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dialects import arith, func, math_dialect, memref, scf
from repro.dialects.builtin import ModuleOp
from repro.frontend import compile_to_fir
from repro.ir import (
    Builder,
    FloatAttr,
    IntegerAttr,
    MemRefType,
    ParseError,
    f64,
    i32,
    index,
    parse_module,
    print_module,
)


def roundtrip(module):
    text = print_module(module)
    reparsed = parse_module(text)
    reparsed.verify()
    assert print_module(reparsed) == text
    return reparsed


class TestBasicRoundTrip:
    def test_empty_module(self):
        roundtrip(ModuleOp([]))

    def test_simple_function(self):
        f = func.FuncOp.build("axpy", [f64, f64], [f64])
        b = Builder.at_end(f.entry_block)
        c = b.insert(arith.ConstantOp.from_float(2.0))
        m = b.insert(arith.MulfOp(c.result, f.entry_block.args[0]))
        a = b.insert(arith.AddfOp(m.result, f.entry_block.args[1]))
        b.insert(func.ReturnOp([a.result]))
        roundtrip(ModuleOp([f]))

    def test_nested_loops_and_memref(self):
        f = func.FuncOp.build("fill", [MemRefType([8, 8], f64)], [])
        b = Builder.at_end(f.entry_block)
        zero = b.insert(arith.ConstantOp.from_int(0, index)).result
        eight = b.insert(arith.ConstantOp.from_int(8, index)).result
        one = b.insert(arith.ConstantOp.from_int(1, index)).result
        val = b.insert(arith.ConstantOp.from_float(3.5)).result
        loop = b.insert(scf.ForOp(zero, eight, one))
        lb = Builder.at_end(loop.body.block)
        lb.insert(memref.StoreOp(val, f.entry_block.args[0],
                                 [loop.induction_variable, loop.induction_variable]))
        lb.insert(scf.YieldOp([]))
        b.insert(func.ReturnOp([]))
        roundtrip(ModuleOp([f]))

    def test_fir_module_roundtrip(self, listing1_source=None):
        source = """
subroutine axb(a)
  implicit none
  real(kind=8), intent(inout) :: a(8)
  integer :: i
  do i = 1, 8
    a(i) = sqrt(a(i)) * 2.0
  end do
end subroutine axb
"""
        roundtrip(compile_to_fir(source))

    def test_math_ops_roundtrip(self):
        f = func.FuncOp.build("m", [f64], [f64])
        b = Builder.at_end(f.entry_block)
        s = b.insert(math_dialect.SqrtOp(f.entry_block.args[0]))
        e = b.insert(math_dialect.ExpOp(s.result))
        b.insert(func.ReturnOp([e.result]))
        roundtrip(ModuleOp([f]))

    def test_unregistered_op_preserved(self):
        text = '"builtin.module"() ({\n^bb0():\n  "mydialect.op"() {"x" = 1 : i64} : () -> ()\n}) : () -> ()\n'
        module = parse_module(text)
        assert any(op.name == "mydialect.op" for op in module.walk())


class TestParseErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            '"builtin.module"() ({',  # truncated
            '%0 = "arith.constant"() : () -> (f64) extra',  # trailing tokens
            '"builtin.module"(%undefined) : (f64) -> ()',  # undefined value
            '"builtin.module"() : (f64) -> ()',  # operand count mismatch
        ],
    )
    def test_malformed_input_raises(self, bad):
        with pytest.raises(ParseError):
            parse_module(bad)

    def test_type_mismatch_detected(self):
        text = (
            '"builtin.module"() ({\n^bb0():\n'
            '  %0 = "arith.constant"() {"value" = 1.0 : f64} : () -> (f64)\n'
            '  %1 = "arith.negf"(%0) : (i32) -> (i32)\n'
            "}) : () -> ()\n"
        )
        with pytest.raises(ParseError):
            parse_module(text)


@st.composite
def arith_expressions(draw):
    """Random arithmetic expression DAGs as (module, depth)."""
    f = func.FuncOp.build("expr", [f64, f64], [f64])
    b = Builder.at_end(f.entry_block)
    values = [f.entry_block.args[0], f.entry_block.args[1]]
    n_ops = draw(st.integers(min_value=1, max_value=12))
    for _ in range(n_ops):
        choice = draw(st.integers(min_value=0, max_value=4))
        if choice == 0:
            value = draw(st.floats(min_value=-1e3, max_value=1e3,
                                   allow_nan=False, allow_infinity=False))
            values.append(b.insert(arith.ConstantOp.from_float(value)).result)
        else:
            lhs = values[draw(st.integers(0, len(values) - 1))]
            rhs = values[draw(st.integers(0, len(values) - 1))]
            cls = [arith.AddfOp, arith.SubfOp, arith.MulfOp, arith.DivfOp][choice - 1]
            values.append(b.insert(cls(lhs, rhs)).result)
    b.insert(func.ReturnOp([values[-1]]))
    return ModuleOp([f])


class TestPropertyRoundTrip:
    @given(arith_expressions())
    @settings(max_examples=40, deadline=None)
    def test_random_expression_roundtrip(self, module):
        module.verify()
        roundtrip(module)

    @given(st.lists(st.integers(min_value=-1000, max_value=1000), min_size=1, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_dense_array_attr_roundtrip(self, values):
        from repro.ir import DenseArrayAttr
        from repro.ir.parser import IRParser

        attr = DenseArrayAttr(values)
        parsed = IRParser(attr.print()).parse_attribute()
        assert parsed == attr

    @given(st.floats(allow_nan=False, allow_infinity=False, width=64),
           st.integers(min_value=-2**31, max_value=2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_scalar_attr_roundtrip(self, fval, ival):
        from repro.ir.parser import IRParser

        f_attr = FloatAttr(fval, f64)
        i_attr = IntegerAttr(ival, i32)
        assert IRParser(f_attr.print()).parse_attribute() == f_attr
        assert IRParser(i_attr.print()).parse_attribute() == i_attr
