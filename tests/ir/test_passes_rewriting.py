"""Pass manager, pipeline parsing, rewriting and cleanup pass tests."""

import pytest

from repro.dialects import arith, func
from repro.dialects.builtin import ModuleOp
from repro.ir import (
    Builder,
    ModulePass,
    PassManager,
    PatternRewriter,
    RewritePattern,
    apply_patterns,
    f64,
    index,
    parse_pipeline,
)
from repro.ir.pass_manager import GLOBAL_PASS_REGISTRY
from repro.transforms import CanonicalizePass, CSEPass, DeadCodeEliminationPass
from repro.ir import default_context


def build_module_with_redundancy():
    f = func.FuncOp.build("f", [f64], [f64])
    b = Builder.at_end(f.entry_block)
    c1 = b.insert(arith.ConstantOp.from_float(2.0))
    c2 = b.insert(arith.ConstantOp.from_float(2.0))  # duplicate
    dead = b.insert(arith.ConstantOp.from_float(99.0))  # unused
    m1 = b.insert(arith.MulfOp(f.entry_block.args[0], c1.result))
    m2 = b.insert(arith.MulfOp(f.entry_block.args[0], c2.result))
    s = b.insert(arith.AddfOp(m1.result, m2.result))
    b.insert(func.ReturnOp([s.result]))
    return ModuleOp([f])


class TestPipelineParsing:
    def test_simple_list(self):
        assert parse_pipeline("a,b,c") == [("a", {}), ("b", {}), ("c", {})]

    def test_options(self):
        parsed = parse_pipeline("tile{sizes=32,32,1 flag=true name=foo}")
        assert parsed == [("tile", {"sizes": (32, 32, 1), "flag": True, "name": "foo"})]

    def test_paper_listing4_style_options(self):
        parsed = parse_pipeline(
            "scf-parallel-loop-tiling{parallel-loop-tile-sizes=32,32,1},canonicalize"
        )
        assert parsed[0][1]["parallel_loop_tile_sizes"] == (32, 32, 1)
        assert parsed[1][0] == "canonicalize"

    def test_unbalanced_braces_rejected(self):
        with pytest.raises(ValueError):
            parse_pipeline("a{b=1")

    def test_registry_contains_paper_passes(self):
        for name in (
            "discover-stencils", "extract-stencils", "convert-stencil-to-scf",
            "convert-scf-to-openmp", "convert-parallel-loops-to-gpu",
            "scf-parallel-loop-tiling", "convert-stencil-to-dmp", "convert-dmp-to-mpi",
            "canonicalize", "cse", "dce",
        ):
            assert name in GLOBAL_PASS_REGISTRY, name


class TestCleanupPasses:
    def test_dce_removes_unused(self):
        module = build_module_with_redundancy()
        before = sum(1 for _ in module.walk())
        DeadCodeEliminationPass().apply(default_context(), module)
        after = sum(1 for _ in module.walk())
        assert after == before - 1  # the unused constant disappears
        module.verify()

    def test_cse_merges_duplicates(self):
        module = build_module_with_redundancy()
        CSEPass().apply(default_context(), module)
        constants = [op for op in module.walk() if isinstance(op, arith.ConstantOp)]
        values = sorted(c.literal for c in constants)
        assert values == [2.0]  # duplicate and dead constants are gone
        muls = [op for op in module.walk() if isinstance(op, arith.MulfOp)]
        assert len(muls) == 1
        module.verify()

    def test_canonicalize_folds_constants(self):
        f = func.FuncOp.build("g", [], [index])
        b = Builder.at_end(f.entry_block)
        c2 = b.insert(arith.ConstantOp.from_int(2, index))
        c3 = b.insert(arith.ConstantOp.from_int(3, index))
        s = b.insert(arith.AddiOp(c2.result, c3.result))
        b.insert(func.ReturnOp([s.result]))
        module = ModuleOp([f])
        CanonicalizePass().apply(default_context(), module)
        constants = [op.literal for op in module.walk() if isinstance(op, arith.ConstantOp)]
        assert 5 in constants
        assert not any(isinstance(op, arith.AddiOp) for op in module.walk())

    def test_canonicalize_idempotent(self):
        module = build_module_with_redundancy()
        ctx = default_context()
        CanonicalizePass().apply(ctx, module)
        text1 = sum(1 for _ in module.walk())
        CanonicalizePass().apply(ctx, module)
        assert sum(1 for _ in module.walk()) == text1


class TestPassManager:
    def test_run_pipeline_collects_statistics(self):
        module = build_module_with_redundancy()
        pm = PassManager()
        pm.add_pipeline("canonicalize,cse,dce")
        stats = pm.run(module)
        assert [s.name for s in stats] == ["canonicalize", "cse", "dce"]
        assert all(s.seconds >= 0 for s in stats)

    def test_unknown_pass_rejected(self):
        pm = PassManager()
        with pytest.raises(KeyError):
            pm.add("definitely-not-a-pass")

    def test_custom_pass_instance(self):
        class CountOps(ModulePass):
            name = "count-ops"

            def __init__(self):
                self.count = 0

            def apply(self, ctx, module):
                self.count = sum(1 for _ in module.walk())

        module = build_module_with_redundancy()
        counter = CountOps()
        PassManager().add(counter).run(module)
        assert counter.count > 0


class TestPatternRewriting:
    def test_pattern_replaces_op(self):
        class FoldMulByTwo(RewritePattern):
            op_name = "arith.mulf"

            def match_and_rewrite(self, op, rewriter):
                rhs = op.operands[1]
                defining = getattr(rhs, "op", None)
                if isinstance(defining, arith.ConstantOp) and defining.literal == 2.0:
                    double = arith.AddfOp(op.operands[0], op.operands[0])
                    rewriter.replace_op(op, [double])

        module = build_module_with_redundancy()
        result = apply_patterns(module, [FoldMulByTwo()])
        assert result.converged
        assert result.rewrites >= 2
        assert not any(isinstance(op, arith.MulfOp) for op in module.walk())
        module.verify()

    def test_rewriter_insert_before_counts_as_action(self):
        module = build_module_with_redundancy()
        target = next(op for op in module.walk() if isinstance(op, arith.AddfOp))
        rewriter = PatternRewriter(target)
        rewriter.insert_op_before(arith.ConstantOp.from_float(0.0))
        assert rewriter.has_done_action

    def test_insert_ops_before_preserves_order(self):
        """Multi-op inserts must land in sequence order (not reversed):
        ``insert_ops_before([a, b, c], anchor)`` yields ``a, b, c, anchor``."""
        module = build_module_with_redundancy()
        target = next(op for op in module.walk() if isinstance(op, arith.AddfOp))
        new_ops = [arith.ConstantOp.from_float(float(i)) for i in range(3)]
        rewriter = PatternRewriter(target)
        inserted = rewriter.insert_ops_before(new_ops, target)
        assert inserted == new_ops
        block = target.parent_block()
        index = block.index_of(target)
        assert list(block.ops[index - 3:index]) == new_ops
        assert [op.literal for op in block.ops[index - 3:index]] == [0.0, 1.0, 2.0]
        module.verify()

    def test_block_insert_ops_before_preserves_order(self):
        """The Block-level primitive used by the rewriter keeps order too."""
        module = build_module_with_redundancy()
        target = next(op for op in module.walk() if isinstance(op, arith.AddfOp))
        block = target.parent_block()
        new_ops = [arith.ConstantOp.from_float(float(10 + i)) for i in range(3)]
        block.insert_ops_before(new_ops, target)
        index = block.index_of(target)
        assert [op.literal for op in block.ops[index - 3:index]] == [10.0, 11.0, 12.0]
        module.verify()
