"""Unit tests for the attribute and type system."""

import pytest

from repro.ir import (
    ArrayAttr,
    BoolAttr,
    DenseArrayAttr,
    DictionaryAttr,
    FloatAttr,
    FloatType,
    FunctionType,
    IndexType,
    IntegerAttr,
    IntegerType,
    MemRefType,
    StringAttr,
    SymbolRefAttr,
    TypeAttr,
    UnitAttr,
    DYNAMIC,
    f32,
    f64,
    i1,
    i32,
    i64,
    index,
)
from repro.dialects import fir, stencil
from repro.dialects.llvm import LLVMPointerType


class TestScalarAttributes:
    def test_string_attr_equality(self):
        assert StringAttr("abc") == StringAttr("abc")
        assert StringAttr("abc") != StringAttr("abd")

    def test_string_attr_print_escapes_quotes(self):
        assert StringAttr('say "hi"').print() == '"say \\"hi\\""'

    def test_integer_attr_carries_type(self):
        attr = IntegerAttr(42, i32)
        assert attr.value == 42
        assert attr.type == i32
        assert "42" in attr.print()

    def test_integer_attr_helpers(self):
        assert IntegerAttr.from_index(3).type == index
        assert IntegerAttr.from_int(3).type == i64

    def test_float_attr(self):
        attr = FloatAttr(0.25, f64)
        assert attr.value == 0.25
        assert attr == FloatAttr(0.25, f64)
        assert attr != FloatAttr(0.25, f32)

    def test_bool_and_unit(self):
        assert BoolAttr(True).print() == "true"
        assert BoolAttr(False).print() == "false"
        assert UnitAttr() == UnitAttr()

    def test_array_attr_iteration(self):
        arr = ArrayAttr([IntegerAttr(1, i32), IntegerAttr(2, i32)])
        assert len(arr) == 2
        assert [a.value for a in arr] == [1, 2]

    def test_array_attr_rejects_non_attributes(self):
        with pytest.raises(TypeError):
            ArrayAttr([1, 2])

    def test_dense_array_attr(self):
        attr = DenseArrayAttr([1, -2, 3])
        assert attr.as_tuple() == (1, -2, 3)
        assert attr[1] == -2
        assert "array<i64:" in attr.print()

    def test_dictionary_attr_sorted_and_equal(self):
        a = DictionaryAttr({"b": IntegerAttr(1, i32), "a": IntegerAttr(2, i32)})
        b = DictionaryAttr({"a": IntegerAttr(2, i32), "b": IntegerAttr(1, i32)})
        assert a == b

    def test_symbol_ref(self):
        ref = SymbolRefAttr("kernel")
        assert ref.print() == "@kernel"
        nested = SymbolRefAttr("mod", ["fn"])
        assert nested.print() == "@mod::@fn"

    def test_type_attr_wraps_types_only(self):
        assert TypeAttr(f64).type == f64
        with pytest.raises(TypeError):
            TypeAttr(IntegerAttr(1, i32))

    def test_attr_hashable(self):
        s = {IntegerAttr(1, i32), IntegerAttr(1, i32), IntegerAttr(2, i32)}
        assert len(s) == 2


class TestBuiltinTypes:
    def test_integer_type_print(self):
        assert IntegerType(32).print() == "i32"
        assert IntegerType(8, signed=False).print() == "ui8"

    def test_float_type_widths(self):
        assert FloatType(64).print() == "f64"
        with pytest.raises(ValueError):
            FloatType(80)

    def test_index_and_singletons(self):
        assert index.print() == "index"
        assert i1.width == 1 and i64.width == 64

    def test_function_type_print(self):
        ft = FunctionType([f64, i32], [f64])
        assert ft.print() == "(f64, i32) -> f64"
        multi = FunctionType([], [f64, f64])
        assert multi.print() == "() -> (f64, f64)"

    def test_memref_type(self):
        m = MemRefType([4, 8], f64)
        assert m.print() == "memref<4x8xf64>"
        assert m.num_elements() == 32
        dyn = MemRefType([DYNAMIC, 8], f32)
        assert dyn.print() == "memref<?x8xf32>"
        assert dyn.num_elements() is None

    def test_type_equality_structural(self):
        assert MemRefType([2, 2], f64) == MemRefType([2, 2], f64)
        assert MemRefType([2, 2], f64) != MemRefType([2, 3], f64)


class TestDialectTypes:
    def test_fir_reference(self):
        ref = fir.ReferenceType(f64)
        assert ref.print() == "!fir.ref<f64>"
        assert fir.is_reference_like(ref)

    def test_fir_sequence(self):
        seq = fir.SequenceType([10, 20], f64)
        assert seq.print() == "!fir.array<10x20xf64>"
        assert seq.num_elements() == 200
        assert fir.element_type_of(fir.ReferenceType(seq)) == f64
        assert fir.array_shape_of(fir.ReferenceType(seq)) == (10, 20)

    def test_fir_heap_and_llvm_ptr(self):
        heap = fir.HeapType(fir.SequenceType([4], f32))
        assert heap.print() == "!fir.heap<!fir.array<4xf32>>"
        ptr = fir.LLVMPointerType(f64)
        assert ptr.print() == "!fir.llvm_ptr<f64>"
        assert fir.is_reference_like(ptr)

    def test_stencil_field_and_temp(self):
        field = stencil.FieldType([[-1, 255], [-1, 255]], f64)
        assert field.print() == "!stencil.field<[-1,255]x[-1,255]xf64>"
        assert field.shape == (256, 256)
        temp = stencil.TempType([[0, 16]], f64)
        assert temp.rank == 1

    def test_stencil_bounds_validation(self):
        with pytest.raises(ValueError):
            stencil.FieldType([[5, 2]], f64)

    def test_llvm_pointer(self):
        assert LLVMPointerType(f64).print() == "!llvm.ptr<f64>"
        assert LLVMPointerType(None).print() == "!llvm.ptr<>"
