"""Unit tests for SSA values, operations, blocks, regions, builder and traits."""

import pytest

from repro.dialects import arith, func, scf
from repro.dialects.builtin import ModuleOp
from repro.ir import (
    Block,
    Builder,
    IRError,
    InsertPoint,
    Operation,
    Region,
    VerifyException,
    f64,
    index,
)


def make_add_function():
    f = func.FuncOp.build("add", [f64, f64], [f64])
    b = Builder.at_end(f.entry_block)
    add = b.insert(arith.AddfOp(f.entry_block.args[0], f.entry_block.args[1]))
    b.insert(func.ReturnOp([add.result]))
    return f, add


class TestUseDefChains:
    def test_results_track_uses(self):
        f, add = make_add_function()
        arg0 = f.entry_block.args[0]
        assert any(u.operation is add for u in arg0.uses)
        assert len(add.result.uses) == 1

    def test_replace_all_uses_with(self):
        f, add = make_add_function()
        b = Builder.at_start(f.entry_block)
        c = b.insert(arith.ConstantOp.from_float(1.0))
        add.result.replace_all_uses_with(c.result)
        ret = f.entry_block.last_op
        assert ret.operands[0] is c.result
        assert not add.result.has_uses

    def test_erase_with_uses_raises(self):
        f, add = make_add_function()
        with pytest.raises(IRError):
            add.erase()

    def test_erase_after_dropping_uses(self):
        f, add = make_add_function()
        ret = f.entry_block.last_op
        ret.erase()
        add.erase()
        assert len(f.entry_block.ops) == 0

    def test_set_operand_updates_uses(self):
        f, add = make_add_function()
        arg0, arg1 = f.entry_block.args
        add.set_operand(0, arg1)
        assert not any(u.operation is add for u in arg0.uses)
        assert sum(1 for u in arg1.uses if u.operation is add) == 2


class TestStructure:
    def test_parent_links(self):
        f, add = make_add_function()
        assert add.parent_block() is f.entry_block
        assert add.parent_op() is f
        module = ModuleOp([f])
        assert f.parent_op() is module
        assert module.is_ancestor_of(add)

    def test_walk_order(self):
        f, add = make_add_function()
        module = ModuleOp([f])
        names = [op.name for op in module.walk()]
        assert names == ["builtin.module", "func.func", "arith.addf", "func.return"]

    def test_next_prev_op(self):
        f, add = make_add_function()
        ret = f.entry_block.last_op
        assert add.next_op() is ret
        assert ret.prev_op() is add
        assert add.prev_op() is None

    def test_block_insert_before_after(self):
        block = Block()
        a = arith.ConstantOp.from_float(1.0)
        c = arith.ConstantOp.from_float(3.0)
        block.add_op(a)
        block.add_op(c)
        b = arith.ConstantOp.from_float(2.0)
        block.insert_op_after(b, a)
        assert [op.literal for op in block.ops] == [1.0, 2.0, 3.0]

    def test_cannot_attach_twice(self):
        block = Block()
        op = arith.ConstantOp.from_float(1.0)
        block.add_op(op)
        other = Block()
        with pytest.raises(IRError):
            other.add_op(op)

    def test_module_symbol_lookup(self):
        f, _ = make_add_function()
        module = ModuleOp([f])
        assert module.get_symbol("add") is f
        assert module.get_symbol("missing") is None


class TestClone:
    def test_clone_is_deep_and_independent(self):
        f, add = make_add_function()
        clone = f.clone()
        assert clone is not f
        assert len(clone.entry_block.ops) == len(f.entry_block.ops)
        clone.entry_block.ops[0].attributes["marker"] = arith.StringAttr("x") \
            if hasattr(arith, "StringAttr") else None
        # original remains unchanged structurally
        assert len(f.entry_block.ops) == 2

    def test_clone_remaps_internal_values(self):
        f, add = make_add_function()
        clone = f.clone()
        cloned_add = clone.entry_block.ops[0]
        cloned_ret = clone.entry_block.ops[1]
        assert cloned_ret.operands[0] is cloned_add.results[0]
        assert cloned_add.operands[0] is clone.entry_block.args[0]


class TestVerification:
    def test_valid_function_verifies(self):
        f, _ = make_add_function()
        ModuleOp([f]).verify()

    def test_return_type_mismatch_detected(self):
        f = func.FuncOp.build("bad", [f64], [f64])
        b = Builder.at_end(f.entry_block)
        b.insert(func.ReturnOp([]))
        with pytest.raises(VerifyException):
            f.verify()

    def test_terminator_must_be_last(self):
        f = func.FuncOp.build("bad2", [f64], [])
        b = Builder.at_end(f.entry_block)
        b.insert(func.ReturnOp([]))
        b.insert(arith.ConstantOp.from_float(1.0))
        with pytest.raises(VerifyException):
            f.verify()

    def test_binary_op_type_mismatch(self):
        block = Block(arg_types=[f64, index])
        with pytest.raises(VerifyException):
            arith.AddfOp(block.args[0], block.args[1]).verify()

    def test_isolated_from_above(self):
        outer = func.FuncOp.build("outer", [f64], [])
        inner = func.FuncOp.build("inner", [], [])
        bi = Builder.at_end(inner.entry_block)
        # Illegally reference the outer function's argument.
        bi.insert(arith.NegfOp(outer.entry_block.args[0]))
        bi.insert(func.ReturnOp([]))
        with pytest.raises(VerifyException):
            inner.verify()


class TestBuilder:
    def test_insertion_points(self):
        block = Block()
        builder = Builder.at_end(block)
        first = builder.insert(arith.ConstantOp.from_int(1, index))
        builder.set_insertion_point_before(first)
        zero = builder.insert(arith.ConstantOp.from_int(0, index))
        assert block.ops[0] is zero

    def test_guarded_restores_position(self):
        block_a = Block()
        block_b = Block()
        builder = Builder.at_end(block_a)
        with builder.guarded():
            builder.set_insertion_point_to_end(block_b)
            builder.insert(arith.ConstantOp.from_int(1, index))
        builder.insert(arith.ConstantOp.from_int(2, index))
        assert len(block_a.ops) == 1 and len(block_b.ops) == 1

    def test_builder_without_point_raises(self):
        with pytest.raises(IRError):
            Builder(None).insert(arith.ConstantOp.from_int(1, index))


class TestScfStructure:
    def test_for_loop_structure(self):
        b = Builder.at_end(Block())
        lb = b.insert(arith.ConstantOp.from_int(0, index))
        ub = b.insert(arith.ConstantOp.from_int(10, index))
        st = b.insert(arith.ConstantOp.from_int(1, index))
        loop = scf.ForOp(lb.result, ub.result, st.result)
        assert loop.induction_variable.type == index
        loop.body.block.add_op(scf.YieldOp([]))
        loop.verify()

    def test_parallel_rank(self):
        b = Builder.at_end(Block())
        c0 = b.insert(arith.ConstantOp.from_int(0, index)).result
        c4 = b.insert(arith.ConstantOp.from_int(4, index)).result
        c1 = b.insert(arith.ConstantOp.from_int(1, index)).result
        par = scf.ParallelOp([c0, c0], [c4, c4], [c1, c1])
        assert par.rank == 2
        assert len(par.induction_variables) == 2
        par.body.block.add_op(scf.YieldOp([]))
        par.verify()
