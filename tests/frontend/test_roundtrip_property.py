"""Seeded generative round-trip tests for the frontend and the IR text.

A deterministic generator (``random.Random(seed)`` — no hypothesis
dependency) produces small Fortran kernels that vary array rank, loop-nest
depth, neighbour-access offsets, intrinsics and expression shape.  For every
kernel the full frontend must succeed (lex → parse → FIR generation +
verification), and the printed IR must re-parse to a structurally equal
module (equal printed form, which for the generic syntax is a structural
identity).
"""

import random

import pytest

from repro.frontend import compile_to_fir, parse_source, tokenize
from repro.ir import parse_module, print_module

#: Unary intrinsics that lower to single math ops (safe at any nesting).
UNARY_INTRINSICS = ("sqrt", "abs", "exp", "sin", "cos", "tan", "tanh")
BINARY_OPS = ("+", "-", "*", "/")
LOOP_VARS = ("i", "j", "k")


def gen_expression(rng: random.Random, arrays, indices, depth: int) -> str:
    """A random scalar-valued Fortran expression over array accesses."""
    if depth <= 0 or rng.random() < 0.3:
        kind = rng.randrange(3)
        if kind == 0 and arrays:
            name, rank = rng.choice(arrays)
            subscripts = []
            for dim in range(rank):
                offset = rng.choice((-1, 0, 1))
                var = indices[dim]
                if offset == 0:
                    subscripts.append(var)
                else:
                    subscripts.append(f"{var}{'+' if offset > 0 else '-'}{abs(offset)}")
            return f"{name}({', '.join(subscripts)})"
        if kind == 1:
            return f"{rng.uniform(0.5, 4.0):.3f}d0"
        return "s"
    choice = rng.randrange(4)
    if choice == 0:
        intrinsic = rng.choice(UNARY_INTRINSICS)
        return f"{intrinsic}({gen_expression(rng, arrays, indices, depth - 1)})"
    if choice == 1:
        fn = rng.choice(("min", "max"))
        lhs = gen_expression(rng, arrays, indices, depth - 1)
        rhs = gen_expression(rng, arrays, indices, depth - 1)
        return f"{fn}({lhs}, {rhs})"
    op = rng.choice(BINARY_OPS)
    lhs = gen_expression(rng, arrays, indices, depth - 1)
    rhs = gen_expression(rng, arrays, indices, depth - 1)
    return f"({lhs} {op} {rhs})"


def gen_kernel(seed: int) -> str:
    """A random small Fortran subroutine: rank-1..3 arrays, a loop nest over
    every dimension, 1-2 assignments with neighbour accesses and intrinsics."""
    rng = random.Random(seed)
    rank = rng.randrange(1, 4)
    extents = [rng.randrange(5, 9) for _ in range(rank)]
    indices = LOOP_VARS[:rank]
    arrays = [("a", rank)]
    if rng.random() < 0.6:
        arrays.append(("b", rank))
    dim_params = ", ".join(f"n{d + 1} = {extent}" for d, extent in enumerate(extents))
    dim_names = ", ".join(f"n{d + 1}" for d in range(rank))
    declarations = "\n".join(
        f"  real(kind=8), intent(inout) :: {name}({dim_names})"
        for name, _ in arrays
    )
    statements = []
    for _ in range(rng.randrange(1, 3)):
        target, target_rank = arrays[0]
        lhs = f"{target}({', '.join(indices)})"
        rhs = gen_expression(rng, arrays, indices, depth=rng.randrange(1, 4))
        statements.append(f"{lhs} = {rhs}")
    body = "\n".join("      " + s for s in statements)
    # Offsets reach at most one cell, so 2..n-1 loop bounds stay in bounds.
    opening = "\n".join(
        f"  do {var} = 2, n{dim + 1} - 1"
        for dim, var in reversed(list(enumerate(indices)))
    )
    closing = "\n".join("  end do" for _ in indices)
    return f"""
subroutine kernel{seed}({', '.join(name for name, _ in arrays)}, s)
  implicit none
  integer, parameter :: {dim_params}
  real(kind=8), intent(inout) :: s
{declarations}
  integer :: {', '.join(indices)}
{opening}
{body}
{closing}
end subroutine kernel{seed}
"""


@pytest.mark.parametrize("seed", range(40))
def test_generated_kernel_roundtrips(seed):
    source = gen_kernel(seed)
    # lex → parse → FIR generation must all succeed...
    assert tokenize(source)
    assert parse_source(source).units
    module = compile_to_fir(source)
    module.verify()
    # ... and the printed module must re-parse to a structurally equal one.
    text = print_module(module)
    reparsed = parse_module(text)
    reparsed.verify()
    assert print_module(reparsed) == text


def test_generator_is_deterministic():
    assert gen_kernel(7) == gen_kernel(7)
    assert gen_kernel(7) != gen_kernel(8)


def test_generator_covers_every_rank():
    ranks = {random.Random(seed).randrange(1, 4) for seed in range(40)}
    assert ranks == {1, 2, 3}
