"""Seeded generative round-trip tests for the frontend and the IR text.

The deterministic kernel generator lives in :mod:`repro.fuzz.generator`
(it started here and was promoted when the differential fuzz farm grew
around it); these tests keep its parse-only contract pinned: for every
seed the full frontend must succeed (lex → parse → FIR generation +
verification), and the printed IR must re-parse to a structurally equal
module (equal printed form, which for the generic syntax is a structural
identity).
"""

import random

import pytest

from repro.frontend import compile_to_fir, parse_source, tokenize
from repro.fuzz.generator import gen_expression, gen_kernel
from repro.ir import parse_module, print_module


@pytest.mark.parametrize("seed", range(40))
def test_generated_kernel_roundtrips(seed):
    source = gen_kernel(seed)
    # lex → parse → FIR generation must all succeed...
    assert tokenize(source)
    assert parse_source(source).units
    module = compile_to_fir(source)
    module.verify()
    # ... and the printed module must re-parse to a structurally equal one.
    text = print_module(module)
    reparsed = parse_module(text)
    reparsed.verify()
    assert print_module(reparsed) == text


def test_generator_is_deterministic():
    assert gen_kernel(7) == gen_kernel(7)
    assert gen_kernel(7) != gen_kernel(8)


def test_generator_covers_every_rank():
    ranks = {random.Random(seed).randrange(1, 4) for seed in range(40)}
    assert ranks == {1, 2, 3}


def test_gen_expression_importable_and_deterministic():
    rng_a, rng_b = random.Random(3), random.Random(3)
    arrays = [("a", 2)]
    expr_a = gen_expression(rng_a, arrays, ("i", "j"), depth=3)
    expr_b = gen_expression(rng_b, arrays, ("i", "j"), depth=3)
    assert expr_a == expr_b
