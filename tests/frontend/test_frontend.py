"""Frontend tests: lexer, parser, symbol table and FIR generation."""

import numpy as np
import pytest

from repro.dialects import fir
from repro.dialects.func import FuncOp
from repro.frontend import (
    FortranSyntaxError,
    SemanticError,
    SymbolTable,
    compile_to_fir,
    parse_source,
    tokenize,
)
from repro.frontend.ast_nodes import Assignment, BinaryOp, DoLoop, IfBlock, IntrinsicCall
from repro.runtime import Interpreter


class TestLexer:
    def test_keywords_and_identifiers_lowercased(self):
        tokens = tokenize("DO I = 1, N")
        assert tokens[0].kind == "KEYWORD" and tokens[0].value == "do"
        assert tokens[1].value == "i"

    def test_numbers(self):
        kinds = [t.kind for t in tokenize("x = 1 + 2.5 + 1.0d0 + 3e-2")]
        assert kinds.count("REAL") == 3
        assert kinds.count("INT") == 1

    def test_comments_stripped(self):
        tokens = tokenize("x = 1 ! a comment with = signs\n")
        assert all("comment" not in t.value for t in tokens)

    def test_continuation_lines_folded(self):
        tokens = tokenize("x = 1 + &\n    2")
        values = [t.value for t in tokens if t.kind in ("INT",)]
        assert values == ["1", "2"]

    def test_relational_operators(self):
        kinds = [t.kind for t in tokenize("if (a <= b .and. c /= d) then")]
        assert "LE" in kinds and "NE" in kinds and "DOTOP" in kinds

    def test_unexpected_character(self):
        from repro.frontend.lexer import LexError

        with pytest.raises(LexError):
            tokenize("x = `oops`")


class TestParser:
    def test_subroutine_skeleton(self, small_gs_source):
        source_file = parse_source(small_gs_source)
        unit = source_file.unit("gauss_seidel")
        assert unit.kind == "subroutine"
        assert unit.args == ["u"]
        assert len(unit.declarations) >= 3

    def test_nested_do_loops(self, small_gs_source):
        unit = parse_source(small_gs_source).unit("gauss_seidel")
        outer = unit.body[0]
        assert isinstance(outer, DoLoop) and outer.var == "it"
        k_loop = outer.body[0]
        j_loop = k_loop.body[0]
        i_loop = j_loop.body[0]
        assert [l.var for l in (k_loop, j_loop, i_loop)] == ["k", "j", "i"]
        assert isinstance(i_loop.body[0], Assignment)

    def test_expression_precedence(self):
        src = """
subroutine p(x)
  implicit none
  real(kind=8), intent(inout) :: x
  x = 1.0 + 2.0 * 3.0 ** 2
end subroutine p
"""
        stmt = parse_source(src).unit("p").body[0]
        assert isinstance(stmt.value, BinaryOp) and stmt.value.op == "+"
        assert stmt.value.rhs.op == "*"
        assert stmt.value.rhs.rhs.op == "**"

    def test_if_block_with_else(self):
        src = """
subroutine q(x)
  implicit none
  real(kind=8), intent(inout) :: x
  if (x > 0.0) then
    x = x * 2.0
  else
    x = -x
  end if
end subroutine q
"""
        stmt = parse_source(src).unit("q").body[0]
        assert isinstance(stmt, IfBlock)
        assert len(stmt.branches) == 1 and len(stmt.else_body) == 1

    def test_intrinsics_recognised(self):
        src = """
subroutine r(x, y)
  implicit none
  real(kind=8), intent(in) :: x
  real(kind=8), intent(out) :: y
  y = sqrt(abs(x)) + max(x, 2.0)
end subroutine r
"""
        stmt = parse_source(src).unit("r").body[0]
        assert isinstance(stmt.value.lhs, IntrinsicCall)

    def test_syntax_error_reports_line(self):
        with pytest.raises(FortranSyntaxError):
            parse_source("subroutine s(\n")

    def test_program_unit(self):
        src = """
program main
  implicit none
  integer :: i
  i = 1
end program main
"""
        assert parse_source(src).unit("main").kind == "program"


class TestSymbolTable:
    def test_parameter_evaluation(self, small_gs_source):
        unit = parse_source(small_gs_source).unit("gauss_seidel")
        table = SymbolTable(unit)
        assert table["n"].parameter_value == 10
        assert table["niters"].parameter_value == 2

    def test_array_shape_from_parameters(self, small_gs_source):
        unit = parse_source(small_gs_source).unit("gauss_seidel")
        table = SymbolTable(unit)
        assert table["u"].static_shape() == (10, 10, 10)
        assert table["u"].is_dummy

    def test_parameter_expression_dims(self):
        src = """
subroutine s(a)
  implicit none
  integer, parameter :: nx = 8
  real(kind=8), intent(inout) :: a(nx + 2, 2 * nx)
  a(1, 1) = 0.0
end subroutine s
"""
        table = SymbolTable(parse_source(src).unit("s"))
        assert table["a"].static_shape() == (10, 16)

    def test_custom_lower_bounds(self):
        src = """
subroutine s(a)
  implicit none
  real(kind=8), intent(inout) :: a(0:9, -1:8)
  integer :: i
  a(0, -1) = 1.0
end subroutine s
"""
        table = SymbolTable(parse_source(src).unit("s"))
        dims = table["a"].dims
        assert (dims[0].lower, dims[0].upper) == (0, 9)
        assert (dims[1].lower, dims[1].upper) == (-1, 8)
        assert table["a"].static_shape() == (10, 10)

    def test_undeclared_name_rejected(self):
        src = """
subroutine s(a)
  implicit none
  real(kind=8), intent(inout) :: a(4)
  a(1) = 1.0
end subroutine s
"""
        table = SymbolTable(parse_source(src).unit("s"))
        with pytest.raises(SemanticError):
            table["zz"]


class TestFIRGeneration:
    def test_flang_idioms_present(self, listing1_source):
        module = compile_to_fir(listing1_source)
        names = [op.name for op in module.walk()]
        for expected in ("fir.declare", "fir.alloca", "fir.do_loop",
                         "fir.coordinate_of", "fir.load", "fir.store", "fir.convert"):
            assert expected in names, expected

    def test_loop_variable_stored_each_iteration(self, listing1_source):
        module = compile_to_fir(listing1_source)
        loops = [op for op in module.walk() if isinstance(op, fir.DoLoopOp)]
        assert len(loops) == 2
        for loop in loops:
            first_ops = loop.body.block.ops[:2]
            assert isinstance(first_ops[0], fir.ConvertOp)
            assert isinstance(first_ops[1], fir.StoreOp)

    def test_dummy_arrays_become_references(self, small_pw_source):
        module = compile_to_fir(small_pw_source)
        func_op = next(op for op in module.walk() if isinstance(op, FuncOp))
        for arg in func_op.entry_block.args:
            assert isinstance(arg.type, fir.ReferenceType)
            assert isinstance(arg.type.element_type, fir.SequenceType)

    def test_module_verifies(self, small_gs_source):
        compile_to_fir(small_gs_source).verify()

    @pytest.mark.parametrize("expr,expected", [
        ("y = x + 1.5", 3.5),
        ("y = x * x", 4.0),
        ("y = sqrt(x)", np.sqrt(2.0)),
        ("y = max(x, 5.0)", 5.0),
        ("y = min(x, 1.0)", 1.0),
        ("y = abs(-x)", 2.0),
        ("y = x ** 3", 8.0),
        ("y = exp(0.0) + cos(0.0)", 2.0),
        ("y = (x + 1.0) / 2.0", 1.5),
        ("y = mod(7, 3) * x", 2.0),
    ])
    def test_scalar_expression_semantics(self, expr, expected):
        src = f"""
subroutine calc(x, y)
  implicit none
  real(kind=8), intent(in) :: x
  real(kind=8), intent(out) :: y
  {expr}
end subroutine calc
"""
        module = compile_to_fir(src)
        interp = Interpreter(module)
        x = np.full((), 2.0)
        y = np.full((), 0.0)
        interp.call("calc", x, y)
        assert np.isclose(float(y), expected)

    def test_if_statement_semantics(self):
        src = """
subroutine clamp(x, y)
  implicit none
  real(kind=8), intent(in) :: x
  real(kind=8), intent(out) :: y
  if (x > 1.0) then
    y = 1.0
  else if (x < 0.0) then
    y = 0.0
  else
    y = x
  end if
end subroutine clamp
"""
        module = compile_to_fir(src)
        interp = Interpreter(module)
        for value, expected in [(2.0, 1.0), (-3.0, 0.0), (0.4, 0.4)]:
            y = np.full((), -1.0)
            interp.call("clamp", np.full((), value), y)
            assert float(y) == expected

    def test_loop_with_stride(self):
        src = """
subroutine stride(a)
  implicit none
  real(kind=8), intent(inout) :: a(10)
  integer :: i
  do i = 1, 10, 2
    a(i) = 1.0
  end do
end subroutine stride
"""
        a = np.zeros(10)
        Interpreter(compile_to_fir(src)).call("stride", a)
        assert list(a) == [1, 0, 1, 0, 1, 0, 1, 0, 1, 0]

    def test_call_between_subroutines(self):
        src = """
subroutine scale(a, factor)
  implicit none
  real(kind=8), intent(inout) :: a(4)
  real(kind=8), intent(in) :: factor
  integer :: i
  do i = 1, 4
    a(i) = a(i) * factor
  end do
end subroutine scale

subroutine driver(a)
  implicit none
  real(kind=8), intent(inout) :: a(4)
  call scale(a, 3.0d0)
end subroutine driver
"""
        a = np.ones(4)
        Interpreter(compile_to_fir(src)).call("driver", a)
        assert np.allclose(a, 3.0)

    def test_unsupported_construct_raises(self):
        from repro.frontend import CodegenError

        src = """
subroutine s(x)
  implicit none
  real(kind=8), intent(inout) :: x
  do while (x > 1.0)
    x = x / 2.0
  end do
end subroutine s
"""
        with pytest.raises(CodegenError):
            compile_to_fir(src)
