"""Session compile resilience: single retry, then quarantine.

A transient compile failure (injected through the session's compile hook)
is absorbed by one retry; a persistent one exhausts the retry, poisons the
cache key, and every later lower of that key re-raises the original
exception object instead of retry-storming the backend.
"""

import pytest

from repro.api import Session
from repro.fuzz import DEFAULT_CONFIG, generate_spec
from repro.resilience import (
    CompileFault,
    FaultInjector,
    FaultPlan,
    InjectedFault,
)

SOURCE = generate_spec(0, DEFAULT_CONFIG).render()
OTHER_SOURCE = generate_spec(1, DEFAULT_CONFIG).render()


def session_with(faults):
    session = Session()
    injector = FaultInjector(FaultPlan(compile_faults=faults))
    session.compile_hook = injector.on_compile
    return session


class TestTransientRecovery:
    def test_single_transient_failure_recovered_by_retry(self):
        session = session_with((CompileFault(index=0, count=1),))
        compiled = session.compile(SOURCE).lower("cpu")
        assert compiled is not None
        assert session.resilience_stats == {
            "compile_retries": 1,
            "compiles_quarantined": 0,
            "quarantine_hits": 0,
        }
        assert session.cache_stats == {"hits": 0, "misses": 1, "artifacts": 1}

    def test_recovered_artifact_is_cached_normally(self):
        session = session_with((CompileFault(index=0, count=1),))
        session.compile(SOURCE).lower("cpu")
        session.compile(SOURCE).lower("cpu")
        assert session.cache_stats["hits"] == 1
        assert session.resilience_stats["compile_retries"] == 1


class TestQuarantine:
    def test_persistent_failure_quarantines_after_one_retry(self):
        session = session_with((CompileFault(index=0, count=2),))
        with pytest.raises(InjectedFault, match="injected transient compile"):
            session.compile(SOURCE).lower("cpu")
        stats = session.resilience_stats
        assert stats["compile_retries"] == 1
        assert stats["compiles_quarantined"] == 1

    def test_quarantine_hit_reraises_original_exception_object(self):
        session = session_with((CompileFault(index=0, count=2),))
        with pytest.raises(InjectedFault) as first:
            session.compile(SOURCE).lower("cpu")
        with pytest.raises(InjectedFault) as second:
            session.compile(SOURCE).lower("cpu")
        assert second.value is first.value
        stats = session.resilience_stats
        assert stats["quarantine_hits"] == 1
        # The quarantine hit never reached the backend: no retry storm.
        assert stats["compile_retries"] == 1

    def test_quarantine_is_per_cache_key(self):
        session = session_with((CompileFault(index=0, count=2),))
        with pytest.raises(InjectedFault):
            session.compile(SOURCE).lower("cpu")
        # A different source compiles fine; so does the same source on a
        # different backend (its own cache key, its own compile index).
        assert session.compile(OTHER_SOURCE).lower("cpu") is not None
        assert session.compile(SOURCE).lower("openmp") is not None

    def test_quarantined_record_lookup(self):
        session = session_with((CompileFault(index=0, count=2),))
        assert session.quarantined_record(SOURCE, "cpu") is None
        with pytest.raises(InjectedFault) as err:
            session.compile(SOURCE).lower("cpu")
        assert session.quarantined_record(SOURCE, "cpu") is err.value
        assert session.quarantined_record(OTHER_SOURCE, "cpu") is None

    def test_clear_cache_lifts_quarantine(self):
        session = session_with((CompileFault(index=0, count=2),))
        with pytest.raises(InjectedFault):
            session.compile(SOURCE).lower("cpu")
        session.clear_cache()
        assert session.quarantined_record(SOURCE, "cpu") is None
        assert session.resilience_stats == {
            "compile_retries": 0,
            "compiles_quarantined": 0,
            "quarantine_hits": 0,
        }
        # The injector's fault window is spent, so the compile now succeeds.
        assert session.compile(SOURCE).lower("cpu") is not None

    def test_configurable_retry_budget(self):
        session = session_with((CompileFault(index=0, count=3),))
        session.compile_retries = 3
        assert session.compile(SOURCE).lower("cpu") is not None
        assert session.resilience_stats["compile_retries"] == 3


class TestDefaultBehaviourUnchanged:
    def test_hookless_session_has_zero_resilience_stats(self):
        session = Session()
        session.compile(SOURCE).lower("cpu")
        assert session.resilience_stats == {
            "compile_retries": 0,
            "compiles_quarantined": 0,
            "quarantine_hits": 0,
        }
