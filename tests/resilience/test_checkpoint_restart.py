"""Checkpoint/restart: rank crashes recovered at iteration boundaries.

The acceptance bar for the whole resilience subsystem: a distributed
Gauss-Seidel run under a serialized FaultPlan — message faults plus a
mid-run rank crash — produces output **bitwise identical** to the
fault-free run, with the recovery visible in the RecoveryReport.
"""

import numpy as np
import pytest

from repro.api import OptionError, Session
from repro.apps import gauss_seidel
from repro.resilience import (
    CommFault,
    FaultPlan,
    RankCrash,
    ResilienceError,
    ResilienceOptions,
)
from repro.runtime import MPIError


@pytest.fixture(scope="module")
def session():
    return Session()


def plan_for(session, grid, n, timeout=10.0):
    program = session.compile(
        gauss_seidel.generate_source_shaped((n + 2,) * 3, niters=1))
    compiled = program.lower("dmp", grid=grid, execution_mode="vectorize")
    return compiled.distribute(
        source_builder=gauss_seidel.generate_source_shaped, timeout=timeout)


def global_field(n, seed=5):
    rng = np.random.default_rng(seed)
    return np.asfortranarray(rng.random((n, n, n)))


class TestCrashRecovery:
    def test_rank_crash_recovers_bitwise(self, session):
        field = global_field(12)
        plan = plan_for(session, (2, 1), 12)
        baseline = plan.run(field, iterations=3)
        crashed = plan.run(field, iterations=3, resilience=ResilienceOptions(
            plan=FaultPlan(rank_crashes=(RankCrash(rank=1, iteration=1),))))
        np.testing.assert_array_equal(crashed.field, baseline.field)
        assert crashed.restarts == 1
        assert crashed.recovery.crashes_detected == 1
        assert crashed.recovery.checkpoint_restores == 1
        assert crashed.recovery.rank_respawns == 2
        assert crashed.recovery.ok

    def test_fault_free_resilient_run_matches_legacy_bitwise(self, session):
        field = global_field(12)
        plan = plan_for(session, (2, 2), 12)
        legacy = plan.run(field, iterations=2)
        resilient = plan.run(field, iterations=2,
                             resilience=ResilienceOptions())
        np.testing.assert_array_equal(resilient.field, legacy.field)
        assert resilient.restarts == 0
        assert resilient.recovery.checkpoint_saves >= 1
        assert resilient.recovery.faults_injected == 0

    def test_crash_at_iteration_zero_recovers(self, session):
        field = global_field(12)
        plan = plan_for(session, (2, 1), 12)
        baseline = plan.run(field, iterations=2)
        crashed = plan.run(field, iterations=2, resilience=ResilienceOptions(
            plan=FaultPlan(rank_crashes=(RankCrash(rank=0, iteration=0),))))
        np.testing.assert_array_equal(crashed.field, baseline.field)
        assert crashed.restarts == 1

    def test_repeated_crashes_exhaust_restart_budget(self, session):
        field = global_field(12)
        plan = plan_for(session, (2, 1), 12)
        crashes = tuple(RankCrash(rank=0, iteration=0) for _ in range(3))
        with pytest.raises(MPIError, match="gave up after 2 restarts"):
            plan.run(field, iterations=2, resilience=ResilienceOptions(
                max_restarts=2, plan=FaultPlan(rank_crashes=crashes)))

    def test_with_resilience_fluent_derivation(self, session):
        field = global_field(12)
        base = plan_for(session, (2, 1), 12)
        resilient = base.with_resilience(ResilienceOptions(
            plan=FaultPlan(rank_crashes=(RankCrash(rank=1, iteration=0),))))
        baseline = base.run(field, iterations=2)
        recovered = resilient.run(field, iterations=2)
        np.testing.assert_array_equal(recovered.field, baseline.field)
        assert recovered.restarts == 1

    def test_stats_carried_across_restart(self, session):
        """The retired generation's communication is folded into the final
        stats: a crashed-and-restarted run reports at least the fault-free
        run's message volume, never less."""
        field = global_field(12)
        plan = plan_for(session, (2, 1), 12)
        baseline = plan.run(field, iterations=3)
        crashed = plan.run(field, iterations=3, resilience=ResilienceOptions(
            plan=FaultPlan(rank_crashes=(RankCrash(rank=1, iteration=1),))))
        assert crashed.messages >= baseline.messages


class TestCombinedAcceptance:
    def test_serialized_plan_with_comm_faults_and_crash_bitwise(self, session):
        """The ISSUE acceptance criterion, replayed from JSON: drops,
        delays, duplicates, corruptions *and* a rank crash, recovered to
        the exact bits of the fault-free run."""
        plan_json = FaultPlan(
            seed=42,
            comm_faults=(CommFault("drop", 3), CommFault("delay", 5),
                         CommFault("duplicate", 7), CommFault("corrupt", 9)),
            rank_crashes=(RankCrash(rank=1, iteration=1),),
        ).to_json()
        fault_plan = FaultPlan.from_json(plan_json)
        field = global_field(12, seed=42)
        plan = plan_for(session, (2, 2), 12)
        baseline = plan.run(field, iterations=3)
        faulted = plan.run(field, iterations=3,
                           resilience=ResilienceOptions(plan=fault_plan))
        np.testing.assert_array_equal(faulted.field, baseline.field)
        recovery = faulted.recovery
        assert recovery.ok
        assert recovery.injected.get("crash") == 1
        assert sum(recovery.injected.get(kind, 0) for kind in
                   ("drop", "delay", "duplicate", "corrupt")) >= 1
        assert faulted.restarts == 1

    def test_replay_is_deterministic(self, session):
        fault_plan = FaultPlan(
            comm_faults=(CommFault("drop", 2), CommFault("corrupt", 4)),
            rank_crashes=(RankCrash(rank=0, iteration=1),))
        field = global_field(12, seed=9)
        plan = plan_for(session, (2, 1), 12)
        first = plan.run(field, iterations=3,
                         resilience=ResilienceOptions(plan=fault_plan))
        second = plan.run(field, iterations=3,
                          resilience=ResilienceOptions(plan=fault_plan))
        np.testing.assert_array_equal(first.field, second.field)
        assert first.recovery.injected == second.recovery.injected


class TestOptionValidation:
    def test_resilience_options_validated(self):
        with pytest.raises(ResilienceError, match="checkpoint_interval"):
            ResilienceOptions(checkpoint_interval=0)
        with pytest.raises(ResilienceError, match="max_restarts"):
            ResilienceOptions(max_restarts=-1)
        with pytest.raises(ResilienceError, match="backoff"):
            ResilienceOptions(backoff_initial=0.0)

    def test_distribute_rejects_non_options_resilience(self, session):
        program = session.compile(
            gauss_seidel.generate_source_shaped((14,) * 3, niters=1))
        compiled = program.lower("dmp", grid=(2, 1),
                                 execution_mode="vectorize")
        with pytest.raises(OptionError,
                           match="resilience must be a ResilienceOptions"):
            compiled.distribute(
                source_builder=gauss_seidel.generate_source_shaped,
                resilience={"max_restarts": 2})

    @pytest.mark.parametrize("bad", [0, -1.5, "fast", True])
    def test_distribute_rejects_bad_timeout_naming_backend(self, session,
                                                           bad):
        program = session.compile(
            gauss_seidel.generate_source_shaped((14,) * 3, niters=1))
        compiled = program.lower("dmp", grid=(2, 1),
                                 execution_mode="vectorize")
        with pytest.raises(OptionError, match="'dmp'"):
            compiled.distribute(
                source_builder=gauss_seidel.generate_source_shaped,
                timeout=bad)
