"""GPU graceful degradation: OOM -> evict idle -> host staging -> scalar.

Also the device-pool failure-path coverage: what the OOM diagnostic
actually says, how peak tracking behaves across alloc/dealloc cycles, and
that a forced launch fallback is counted and still computes the right bits.
"""

import numpy as np
import pytest

from repro.dialects import arith, memref, scf
from repro.dialects.builtin import ModuleOp
from repro.dialects.func import FuncOp, ReturnOp
from repro.fuzz import DEFAULT_CONFIG, DifferentialRunner, generate_spec
from repro.ir import Builder, MemRefType, default_context, f64, index
from repro.resilience import AllocFault, FaultInjector, FaultPlan, ReportSink
from repro.runtime import Interpreter, SimulatedGPU
from repro.runtime.gpu_runtime import DeviceMemoryPool
from repro.runtime.memory import MemoryBuffer
from repro.transforms import (
    ConvertParallelLoopsToGpuPass,
    ParallelLoopTilingPass,
)


def build_launch_module(n=8):
    """A module whose func 'shift' launches an outlined gpu.func computing
    ``dst[i, j] = src[i-1, j] * 2`` over ``[1, n-1)²`` (the engine-test
    idiom: tile the parallel loop, outline it to a gpu kernel)."""
    mtype = MemRefType((n, n), f64)
    fn = FuncOp.build("shift", [mtype, mtype], [])
    b = Builder.at_end(fn.entry_block)
    dst, src = fn.entry_block.args
    low = b.insert(arith.ConstantOp.from_int(1, index)).results[0]
    high = b.insert(arith.ConstantOp.from_int(n - 1, index)).results[0]
    one = b.insert(arith.ConstantOp.from_int(1, index)).results[0]
    parallel = b.insert(scf.ParallelOp([low, low], [high, high], [one, one]))
    body = Builder.at_end(parallel.body.block)
    i, j = parallel.body.block.args
    amount = body.insert(arith.ConstantOp.from_int(1, index)).results[0]
    shifted = body.insert(arith.SubiOp(i, amount)).results[0]
    load = body.insert(memref.LoadOp(src, [shifted, j])).results[0]
    two = body.insert(arith.ConstantOp.from_float(2.0)).results[0]
    value = body.insert(arith.MulfOp(load, two)).results[0]
    body.insert(memref.StoreOp(value, dst, [i, j]))
    parallel.body.block.add_op(scf.YieldOp([]))
    b.insert(ReturnOp([]))
    module = ModuleOp([fn])
    ctx = default_context()
    ParallelLoopTilingPass((4, 4)).apply(ctx, module)
    ConvertParallelLoopsToGpuPass().apply(ctx, module)
    module.verify()
    return module


def nbytes(shape):
    return int(np.prod(shape)) * 8


class TestDeviceMemoryPoolFailurePaths:
    def test_oom_message_names_buffer_usage_and_live_allocations(self):
        pool = DeviceMemoryPool(capacity_bytes=200)
        held = MemoryBuffer.for_array((4, 4), f64, space="device",
                                      label="halo")
        pool.allocate(held)  # 128 of 200 bytes
        big = MemoryBuffer.for_array((4, 4), f64, space="device",
                                     label="scratch")
        with pytest.raises(MemoryError) as err:
            pool.allocate(big)
        message = str(err.value)
        assert "'scratch' (128 bytes)" in message
        assert "128 bytes already in use of 200 capacity" in message
        assert "halo=128" in message

    def test_oom_message_on_empty_pool_says_none(self):
        pool = DeviceMemoryPool(capacity_bytes=64)
        buffer = MemoryBuffer.for_array((4, 4), f64, space="device")
        with pytest.raises(MemoryError,
                           match="'<unnamed>'.*live allocations: none"):
            pool.allocate(buffer)

    def test_peak_tracks_high_water_mark_across_alloc_dealloc_alloc(self):
        pool = DeviceMemoryPool(capacity_bytes=1000)
        a = MemoryBuffer.for_array((4, 4), f64, space="device", label="a")
        b = MemoryBuffer.for_array((4, 4), f64, space="device", label="b")
        c = MemoryBuffer.for_array((2, 4), f64, space="device", label="c")
        pool.allocate(a)
        assert pool.peak_bytes == nbytes((4, 4))
        pool.allocate(b)
        assert pool.peak_bytes == 2 * nbytes((4, 4))
        assert pool.release(a) == nbytes((4, 4))
        pool.allocate(c)
        # The later, smaller allocation never disturbs the high-water mark.
        assert pool.in_use_bytes == nbytes((4, 4)) + nbytes((2, 4))
        assert pool.peak_bytes == 2 * nbytes((4, 4))
        assert pool.alloc_count == 3
        assert pool.dealloc_count == 1

    def test_release_of_unowned_buffer_reclaims_nothing(self):
        pool = DeviceMemoryPool(capacity_bytes=1000)
        stranger = MemoryBuffer.for_array((4,), f64, space="device")
        assert pool.release(stranger) == 0
        assert pool.dealloc_count == 0


class TestDegradationLadder:
    def test_injected_alloc_failure_message_names_label_and_device(self):
        injector = FaultInjector(FaultPlan(alloc_faults=(AllocFault(0),)))
        gpu = SimulatedGPU(alloc_hook=injector.on_device_alloc)
        with pytest.raises(MemoryError,
                           match="injected device allocation failure for "
                                 "'halo' on V100"):
            gpu.alloc((4, 4), f64, label="halo")

    def test_oom_with_idle_buffer_recovers_on_device(self):
        gpu = SimulatedGPU(memory_bytes=200)
        first = gpu.alloc((4, 4), f64, label="first")  # 128 of 200
        gpu.mark_idle(first)
        second = gpu.alloc_degraded((4, 4), f64, label="second")
        assert second.space == "device"
        assert gpu.degradation == {"oom_detected": 1, "oom_evictions": 1,
                                   "oom_host_staged": 0}
        assert gpu.allocated_bytes == 128

    def test_oom_without_idle_buffers_stages_in_host_memory(self):
        gpu = SimulatedGPU(memory_bytes=200)
        gpu.alloc((4, 4), f64, label="busy")  # live and not evictable
        staged = gpu.alloc_degraded((4, 4), f64, label="late")
        assert staged.space == "host"
        assert staged.registered
        assert staged in gpu.registered_buffers
        assert gpu.degradation["oom_host_staged"] == 1
        # Host staging zero-fills exactly like a device allocation.
        assert not staged.data.any()

    def test_mark_busy_withdraws_eviction_candidate(self):
        gpu = SimulatedGPU(memory_bytes=200)
        first = gpu.alloc((4, 4), f64, label="first")
        gpu.mark_idle(first)
        gpu.mark_busy(first)
        staged = gpu.alloc_degraded((4, 4), f64)
        assert staged.space == "host"
        assert gpu.degradation["oom_evictions"] == 0

    def test_dealloc_unregisters_host_staged_buffer(self):
        gpu = SimulatedGPU(memory_bytes=0)
        staged = gpu.alloc_degraded((4, 4), f64, label="staged")
        assert staged.registered
        assert gpu.dealloc(staged) == 0  # never held pool bytes
        assert not staged.registered
        assert staged not in gpu.registered_buffers

    def test_degradation_counters_in_summary(self):
        gpu = SimulatedGPU(memory_bytes=0)
        gpu.alloc_degraded((2, 2), f64)
        assert gpu.summary()["degradation"]["oom_host_staged"] == 1

    def test_degraded_run_stays_bitwise_identical(self):
        """The ladder's whole point: a run that loses the device allocation
        race computes exactly the same bits as the healthy run."""
        runner = DifferentialRunner()
        spec = generate_spec(0, DEFAULT_CONFIG)
        baseline, _ = runner._run_plain(spec, "gpu", "vectorize", 1, {})
        report = ReportSink()
        injector = FaultInjector(
            FaultPlan(alloc_faults=(AllocFault(index=0, count=2),)), report)
        gpu = SimulatedGPU(alloc_hook=injector.on_device_alloc)
        compiled = runner.session.compile(spec.render()).lower(
            "gpu", execution_mode="vectorize")
        arrays, scalar = runner.inputs_for(spec)
        work = {name: arr.copy(order="F") for name, arr in arrays.items()}
        interp = compiled.interpreter(gpu=gpu)
        with np.errstate(over="ignore", invalid="ignore"):
            interp.call(spec.entry, *runner._call_args(spec, work, scalar))
        for name in baseline:
            np.testing.assert_array_equal(work[name], baseline[name])
        assert gpu.degradation["oom_detected"] >= 1


class TestForcedLaunchFallback:
    def test_forced_fallback_is_counted_and_correct(self):
        """With the launch engine refusing every kernel, the interpreter
        falls back to the per-thread scalar path: counted in
        ``gpu_launch_fallbacks`` and still matching the healthy run."""

        class RefusingEngine:
            def kernel_for(self, op, kernel_op):
                return None

        n = 8
        module = build_launch_module(n)
        rng = np.random.default_rng(7)
        src = np.asfortranarray(rng.random((n, n)))
        healthy_dst = np.zeros((n, n), order="F")
        healthy = Interpreter(module, gpu=SimulatedGPU(),
                              execution_mode="vectorize")
        healthy.call("shift", healthy_dst, src)
        assert healthy.stats["gpu_launches_vectorized"] >= 1

        forced_dst = np.zeros((n, n), order="F")
        forced = Interpreter(module, gpu=SimulatedGPU(),
                             execution_mode="vectorize")
        forced._gpu_engine = RefusingEngine()
        forced.call("shift", forced_dst, src)
        assert forced.stats["gpu_launch_fallbacks"] >= 1
        assert forced.stats["gpu_launches_vectorized"] == 0
        np.testing.assert_array_equal(forced_dst, healthy_dst)
