"""Chaos mode end-to-end, its report rendering, and the CLI exit codes.

The chaos smoke is the subsystem's integration bar: several seeds, every
scenario, zero divergences and zero unrecovered faults.  The CLI contract
(0 clean / 1 divergence / 2 harness crash) is pinned so CI can rely on it.
"""

import pytest

from repro.fuzz import ChaosFarm, ChaosReport, generate_spec, DEFAULT_CONFIG
from repro.fuzz.__main__ import main as fuzz_main, run as fuzz_run
from repro.fuzz.runner import Divergence
from repro.harness import recovery_report_table
from repro.resilience import RecoveryReport


class TestChaosFarm:
    def test_smoke_recovers_every_seed_bitwise(self):
        # Seeds 0-5 cover both general and distributed-style specs, so all
        # three scenarios (dmp, gpu, compile) run at least once.
        report = ChaosFarm(count=6).run()
        assert report.cases == 6
        assert report.scenarios_run >= 12
        assert report.divergences == []
        assert report.recovery.unrecovered == 0
        assert report.recovery.faults_injected > 0
        assert report.ok

    def test_distributed_seed_exercises_checkpoint_restart(self):
        styles = {generate_spec(seed, DEFAULT_CONFIG).style
                  for seed in range(6)}
        assert "distributed" in styles  # the smoke above covered dmp-chaos
        report = ChaosFarm(seeds=[1]).run()  # seed 1 is distributed-style
        assert report.recovery.injected.get("crash", 0) >= 1
        assert report.recovery.checkpoint_restores >= 1
        assert report.ok

    def test_chaos_is_deterministic(self):
        first = ChaosFarm(count=3).run()
        second = ChaosFarm(count=3).run()
        assert first.recovery.injected == second.recovery.injected
        assert first.scenarios_run == second.scenarios_run

    def test_time_budget_skips_remaining_seeds(self):
        report = ChaosFarm(count=5, time_budget=0.0).run()
        assert report.budget_exhausted
        assert report.seeds_skipped == 5
        assert report.cases == 0


class TestRecoveryReportTable:
    def test_renders_injections_mechanisms_and_verdict(self):
        report = ChaosFarm(count=2).run()
        table = recovery_report_table(report)
        assert "chaos_recovery" in table
        assert "injected[" in table
        assert "unrecovered" in table
        assert "note[verdict] = clean" in table
        assert "note[cases] = 2" in table

    def test_renders_bare_recovery_report(self):
        recovery = RecoveryReport()
        recovery.record_injected("drop")
        recovery.receive_retries = 2
        table = recovery_report_table(recovery)
        assert "injected[drop]" in table
        assert "receive_retries" in table
        assert "note[cases]" not in table

    def test_unrecovered_verdict(self):
        recovery = RecoveryReport()
        recovery.unrecovered = 1
        assert "note[verdict] = NOT RECOVERED" in recovery_report_table(recovery)


class TestCliExitCodes:
    def test_clean_chaos_run_exits_zero(self, capsys):
        assert fuzz_main(["--chaos", "--seeds", "2", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "chaos_recovery" in out
        assert "note[verdict] = clean" in out

    def test_divergence_exits_one(self, capsys, monkeypatch):
        import repro.fuzz.__main__ as cli

        class DivergingFarm:
            def __init__(self, **kwargs):
                pass

            def run(self, on_case=None):
                report = ChaosReport(cases=1, scenarios_run=1)
                report.divergences.append(Divergence(
                    seed=0, config_label="gpu-chaos", backend="gpu-chaos",
                    kind="bitwise", detail="recovered outputs differ",
                    spec=generate_spec(0, DEFAULT_CONFIG)))
                return report

        monkeypatch.setattr(cli, "ChaosFarm", DivergingFarm)
        assert cli.main(["--chaos", "--quiet"]) == 1
        assert "recovered outputs differ" in capsys.readouterr().out

    def test_unrecovered_fault_exits_one(self, monkeypatch):
        import repro.fuzz.__main__ as cli

        class UnrecoveredFarm:
            def __init__(self, **kwargs):
                pass

            def run(self, on_case=None):
                report = ChaosReport(cases=1, scenarios_run=1)
                report.recovery.unrecovered = 1
                return report

        monkeypatch.setattr(cli, "ChaosFarm", UnrecoveredFarm)
        assert cli.main(["--chaos", "--quiet"]) == 1

    def test_harness_crash_exits_two(self, capsys, monkeypatch):
        import repro.fuzz.__main__ as cli

        def exploding_main(argv=None):
            raise RuntimeError("the harness itself fell over")

        monkeypatch.setattr(cli, "main", exploding_main)
        assert cli.run(["--chaos"]) == 2
        assert "the harness itself fell over" in capsys.readouterr().err

    def test_usage_error_exits_two(self, capsys):
        assert fuzz_run(["--no-such-flag"]) == 2
