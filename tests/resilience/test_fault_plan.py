"""FaultPlan serialization, seeded generation, and injector semantics.

The whole resilience discipline rests on one property: (seed, FaultPlan)
is a complete replay identity.  These tests pin it — a plan survives a
JSON round trip exactly, generation from a seed is deterministic, and the
injector fires each fault exactly once at exactly the scheduled point.
"""

import pytest

from repro.resilience import (
    AllocFault,
    CommFault,
    CompileFault,
    FaultInjector,
    FaultPlan,
    FaultPlanError,
    RankCrash,
    RecoveryReport,
    ReportSink,
)


def full_plan():
    return FaultPlan(
        seed=7,
        comm_faults=(CommFault("drop", 2),
                     CommFault("corrupt", 0, source=1, dest=0, tag=3)),
        rank_crashes=(RankCrash(rank=1, iteration=2),),
        alloc_faults=(AllocFault(index=1, count=2),),
        compile_faults=(CompileFault(index=0),),
    )


class TestFaultPlan:
    def test_json_round_trip_is_exact(self):
        plan = full_plan()
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_empty_and_size(self):
        assert FaultPlan().empty
        assert FaultPlan().size() == 0
        assert not full_plan().empty
        assert full_plan().size() == 5

    def test_generate_is_deterministic(self):
        kwargs = dict(comm_faults=4, ranks=4, crash_iterations=(0, 1),
                      alloc_faults=2, compile_faults=1)
        assert FaultPlan.generate(11, **kwargs) == FaultPlan.generate(11, **kwargs)

    def test_generate_differs_across_seeds(self):
        plans = {FaultPlan.generate(seed, comm_faults=4) for seed in range(8)}
        assert len(plans) > 1

    def test_generated_plan_round_trips(self):
        plan = FaultPlan.generate(3, comm_faults=3, ranks=4,
                                  crash_iterations=(0, 1), alloc_faults=1,
                                  compile_faults=1)
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_unknown_comm_kind_rejected(self):
        with pytest.raises(FaultPlanError, match="kind must be one of"):
            CommFault("truncate", 0)

    def test_negative_indices_rejected(self):
        with pytest.raises(FaultPlanError, match="match_index"):
            CommFault("drop", -1)
        with pytest.raises(FaultPlanError, match="rank"):
            RankCrash(rank=-1, iteration=0)
        with pytest.raises(FaultPlanError, match="count"):
            AllocFault(index=0, count=0)

    def test_comm_fault_wildcards(self):
        any_fault = CommFault("drop", 0)
        assert any_fault.matches(0, 1, 9)
        pinned = CommFault("drop", 0, source=1, dest=0, tag=3)
        assert pinned.matches(1, 0, 3)
        assert not pinned.matches(0, 1, 3)


class TestFaultInjector:
    def test_comm_fault_fires_once_at_match_index(self):
        injector = FaultInjector(FaultPlan(comm_faults=(CommFault("drop", 2),)))
        # Sends 0 and 1 pass clean; send 2 is dropped; all later sends clean.
        assert [injector.on_send(0, 1, 0) for _ in range(5)] == [
            None, None, "drop", None, None]

    def test_comm_fault_filter_only_counts_matching_traffic(self):
        injector = FaultInjector(FaultPlan(
            comm_faults=(CommFault("corrupt", 1, source=1),)))
        assert injector.on_send(0, 1, 0) is None  # wrong source: not counted
        assert injector.on_send(1, 0, 0) is None  # match 0
        assert injector.on_send(1, 0, 0) == "corrupt"  # match 1: fires

    def test_rank_crash_fires_once(self):
        injector = FaultInjector(FaultPlan(
            rank_crashes=(RankCrash(rank=1, iteration=2),)))
        assert not injector.should_crash(1, 0)
        assert not injector.should_crash(0, 2)
        assert injector.should_crash(1, 2)
        assert not injector.should_crash(1, 2)  # respawned rank survives

    def test_alloc_fault_window(self):
        injector = FaultInjector(FaultPlan(
            alloc_faults=(AllocFault(index=1, count=2),)))
        assert [injector.on_device_alloc() for _ in range(4)] == [
            False, True, True, False]

    def test_compile_fault_window(self):
        injector = FaultInjector(FaultPlan(
            compile_faults=(CompileFault(index=0, count=1),)))
        assert injector.on_compile("abc")
        assert not injector.on_compile("abc")

    def test_injections_recorded_on_sink(self):
        report = RecoveryReport()
        injector = FaultInjector(FaultPlan(
            comm_faults=(CommFault("drop", 0),),
            alloc_faults=(AllocFault(index=0),)), ReportSink(report))
        injector.on_send(0, 1, 0)
        injector.on_device_alloc("scratch")
        assert report.injected == {"drop": 1, "alloc": 1}
        assert report.faults_injected == 2


class TestRecoveryReport:
    def test_merge_and_counters(self):
        a = RecoveryReport()
        a.record_injected("drop")
        a.add_counters({"receive_retries": 2, "not_a_counter": 99})
        b = RecoveryReport()
        b.record_injected("drop")
        b.record_injected("crash")
        b.unrecovered = 1
        a.merge(b)
        assert a.injected == {"drop": 2, "crash": 1}
        assert a.receive_retries == 2
        assert not a.ok
        assert "1 unrecovered" in a.summary_line()

    def test_to_dict_has_every_counter(self):
        data = RecoveryReport().to_dict()
        assert data["injected"] == {}
        for name in RecoveryReport._COUNTER_FIELDS:
            assert data[name] == 0
