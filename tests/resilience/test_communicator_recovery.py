"""Self-healing communicator: recovery from every message-level fault.

Each test injects exactly one fault kind through a deterministic hook and
asserts both sides of the contract: the receiver still gets the pristine
payload (bitwise) and the recovery mechanism that saved it is visible in
``comm.stats``.
"""

import threading

import numpy as np
import pytest

from repro.resilience import CommFault, FaultInjector, FaultPlan
from repro.runtime import MPIAbort, MPIError, SimulatedCommunicator


def payload(value, n=4):
    return np.full(n, float(value))


def resilient_comm(size=2, timeout=5.0, fault_hook=None, **knobs):
    return SimulatedCommunicator(size, timeout=timeout, fault_hook=fault_hook,
                                 resilient=True, backoff_initial=0.001,
                                 backoff_cap=0.01, **knobs)


def hook_for(*faults):
    """A fault hook driven by a FaultPlan, as the executor builds it."""
    return FaultInjector(FaultPlan(comm_faults=tuple(faults))).on_send


class TestDropRecovery:
    def test_dropped_message_recovered_by_retransmission(self):
        comm = resilient_comm(fault_hook=hook_for(CommFault("drop", 0)))
        comm.send(0, 1, 0, payload(1))
        out = comm.receive(0, 1, 0)
        np.testing.assert_array_equal(out, payload(1))
        assert comm.stats["retransmissions"] >= 1
        assert comm.stats["receive_retries"] >= 1

    def test_later_arrival_does_not_mask_a_dropped_predecessor(self):
        """Regression: a seq-1 message already in the mailbox must not
        satisfy the wait for seq 0 — the NACK that retransmits the dropped
        seq 0 has to fire even while later traffic is queued."""
        comm = resilient_comm(fault_hook=hook_for(CommFault("drop", 0)))
        comm.send(0, 1, 0, payload(1))  # dropped, survives in the outbox
        comm.send(0, 1, 0, payload(2))  # delivered, seq 1
        np.testing.assert_array_equal(comm.receive(0, 1, 0), payload(1))
        np.testing.assert_array_equal(comm.receive(0, 1, 0), payload(2))
        assert comm.stats["retransmissions"] >= 1

    def test_drop_of_never_retransmittable_message_still_times_out(self):
        comm = resilient_comm(timeout=0.2)
        with pytest.raises(MPIError, match="receive timed out"):
            comm.receive(0, 1, 0)


class TestDelayRecovery:
    def test_delayed_message_released_by_nack(self):
        comm = resilient_comm(fault_hook=hook_for(CommFault("delay", 0)))
        comm.send(0, 1, 0, payload(3))
        np.testing.assert_array_equal(comm.receive(0, 1, 0), payload(3))
        assert comm.stats["delays_released"] == 1

    def test_delayed_message_behind_later_traffic_is_released(self):
        comm = resilient_comm(fault_hook=hook_for(CommFault("delay", 0)))
        comm.send(0, 1, 0, payload(1))  # held back
        comm.send(0, 1, 0, payload(2))  # delivered first
        np.testing.assert_array_equal(comm.receive(0, 1, 0), payload(1))
        np.testing.assert_array_equal(comm.receive(0, 1, 0), payload(2))
        assert comm.stats["delays_released"] == 1


class TestDuplicateRecovery:
    def test_duplicate_deduplicated_by_sequence_number(self):
        comm = resilient_comm(fault_hook=hook_for(CommFault("duplicate", 0)))
        comm.send(0, 1, 0, payload(4))
        comm.send(0, 1, 0, payload(5))
        np.testing.assert_array_equal(comm.receive(0, 1, 0), payload(4))
        # The stale copy of seq 0 is purged while scanning for seq 1.
        np.testing.assert_array_equal(comm.receive(0, 1, 0), payload(5))
        assert comm.stats["duplicates_dropped"] == 1

    def test_logical_message_count_excludes_recovery_traffic(self):
        comm = resilient_comm(fault_hook=hook_for(CommFault("duplicate", 0)))
        comm.send(0, 1, 0, payload(4))
        assert comm.message_count == 1


class TestCorruptionRecovery:
    def test_corrupted_payload_detected_and_retransmitted(self):
        comm = resilient_comm(fault_hook=hook_for(CommFault("corrupt", 0)))
        original = np.arange(6, dtype=float)
        comm.send(0, 1, 0, original)
        np.testing.assert_array_equal(comm.receive(0, 1, 0), original)
        assert comm.stats["corruptions_detected"] == 1
        assert comm.stats["retransmissions"] == 1

    def test_try_receive_detects_corruption(self):
        comm = resilient_comm(fault_hook=hook_for(CommFault("corrupt", 0)))
        original = np.arange(6, dtype=float)
        comm.send(0, 1, 0, original)
        first = comm.try_receive(0, 1, 0)  # corrupted copy rejected
        assert first is None
        out = comm.try_receive(0, 1, 0)  # pristine retransmission
        np.testing.assert_array_equal(out, original)


class TestResilientEqualsLegacy:
    def test_fault_free_traffic_identical_across_modes(self):
        legacy = SimulatedCommunicator(2, timeout=5.0)
        resilient = resilient_comm()
        for comm in (legacy, resilient):
            comm.send(0, 1, 7, payload(9))
            comm.send(1, 0, 8, payload(10))
        np.testing.assert_array_equal(legacy.receive(0, 1, 7),
                                      resilient.receive(0, 1, 7))
        np.testing.assert_array_equal(legacy.receive(1, 0, 8),
                                      resilient.receive(1, 0, 8))
        assert legacy.message_count == resilient.message_count
        assert legacy.bytes_sent == resilient.bytes_sent


class TestAbort:
    def test_abort_wakes_blocked_receive(self):
        comm = resilient_comm(timeout=30.0)
        errors = []

        def blocked():
            try:
                comm.receive(0, 1, 0)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        thread = threading.Thread(target=blocked)
        thread.start()
        comm.abort("rank 0 crashed")
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert len(errors) == 1
        assert isinstance(errors[0], MPIAbort)
        assert "rank 0 crashed" in str(errors[0])

    def test_abort_wakes_blocked_barrier(self):
        comm = SimulatedCommunicator(2, timeout=30.0)
        errors = []

        def blocked():
            try:
                comm.barrier(0)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        thread = threading.Thread(target=blocked)
        thread.start()
        comm.abort("peer died")
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert isinstance(errors[0], MPIAbort)

    def test_send_after_abort_raises(self):
        comm = resilient_comm()
        comm.abort("gone")
        with pytest.raises(MPIAbort):
            comm.send(0, 1, 0, payload(1))


class TestBarrierDiagnostics:
    def test_barrier_timeout_names_arrived_and_missing_ranks(self):
        comm = SimulatedCommunicator(3, timeout=0.1)
        comm.send(0, 1, 5, payload(1))  # in-flight traffic for the snapshot
        with pytest.raises(MPIError) as err:
            comm.barrier(2)
        message = str(err.value)
        assert "barrier timed out after 0.1s" in message
        assert "1 of 3 ranks arrived" in message
        assert "arrived: [2]" in message
        assert "missing: [0, 1]" in message
        assert "src=0 dest=1 tag=5" in message

    def test_barrier_timeout_reports_empty_mailboxes(self):
        comm = SimulatedCommunicator(2, timeout=0.1)
        with pytest.raises(MPIError, match="pending messages: none"):
            comm.barrier(0)
