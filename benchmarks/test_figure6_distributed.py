"""Figure 6 — distributed-memory Gauss-Seidel via DMP/MPI, up to 8192 cores."""

import pytest

from repro.harness import (
    distributed_functional_check,
    figure6_distributed,
    format_table,
    measured_distributed_scaling,
)


def test_simulated_multirank_execution(benchmark):
    outcome = benchmark(distributed_functional_check, 6, (2, 2), 2)
    assert outcome["max_interior_error"] < 1e-12
    assert outcome["messages"] > 0


def test_measured_multirank_scaling_series():
    """The measured 1→8-rank series: every rank count reproduces the global
    reference to 1e-12 on the interior, with halo traffic growing with the
    number of rank-rank interfaces."""
    measured = measured_distributed_scaling(
        rank_grids=((1, 1), (2, 1), (2, 2), (4, 2)), n=16, niters=2, repeats=1
    )
    ranks_seen = [row[0] for row in measured.rows]
    assert ranks_seen == [1, 2, 4, 8]
    for ranks, grid, seconds, mcells, speedup, error in measured.rows:
        assert error < 1e-12, (ranks, error)
        assert seconds > 0 and mcells > 0
    messages = {row[0]: measured.notes[f"ranks={row[0]}"]["messages"]
                for row in measured.rows}
    assert messages[1] == 0
    assert messages[2] < messages[4] < messages[8]


def test_figure6_table_regeneration(benchmark):
    result = benchmark(figure6_distributed, False)
    print()
    print(format_table(result))
    hand = {row[0]: row[3] for row in result.rows if row[2] == "hand_parallelised"}
    auto = {row[0]: row[3] for row in result.rows if row[2] == "stencil_auto_parallelised"}
    # Hand-parallelised Cray outperforms and out-scales the automatic version,
    # but the automatic version still scales to 8192 cores (64 nodes).
    for nodes in hand:
        assert hand[nodes] > auto[nodes]
    assert auto[64] > auto[1] * 10
    assert hand[64] / hand[1] >= auto[64] / auto[1]
    # The last model-only figure now carries a measured multi-rank series
    # (vectorized in-process ranks, real halo exchanges) next to the model
    # curves, validated against the global reference.
    measured = [row for row in result.rows if row[2] == "stencil_measured"]
    assert [row[1] for row in measured] == [1, 2, 4, 8]
    assert result.notes["measured"]["max_interior_error"] < 1e-12
