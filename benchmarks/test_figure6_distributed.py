"""Figure 6 — distributed-memory Gauss-Seidel via DMP/MPI, up to 8192 cores."""

import pytest

from repro.harness import distributed_functional_check, figure6_distributed, format_table


def test_simulated_multirank_execution(benchmark):
    outcome = benchmark(distributed_functional_check, 6, (2, 2), 2)
    assert outcome["max_interior_error"] < 1e-12
    assert outcome["messages"] > 0


def test_figure6_table_regeneration(benchmark):
    result = benchmark(figure6_distributed, False)
    print()
    print(format_table(result))
    hand = {row[0]: row[3] for row in result.rows if row[2] == "hand_parallelised"}
    auto = {row[0]: row[3] for row in result.rows if row[2] == "stencil_auto_parallelised"}
    # Hand-parallelised Cray outperforms and out-scales the automatic version,
    # but the automatic version still scales to 8192 cores (64 nodes).
    for nodes in hand:
        assert hand[nodes] > auto[nodes]
    assert auto[64] > auto[1] * 10
    assert hand[64] / hand[1] >= auto[64] / auto[1]
