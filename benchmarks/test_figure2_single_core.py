"""Figure 2 — single-core CPU performance (Cray vs Flang-only vs Stencil).

The benchmark times the two real execution paths of this reproduction (the
interpreted FIR "Flang only" path and the vectorised stencil path) on a
reduced grid, and regenerates the paper's full figure from the machine model,
asserting its qualitative shape.
"""

import numpy as np
import pytest

from repro.apps import gauss_seidel, pw_advection
from repro.compiler import Target, compile_fortran
from repro.harness import figure2_single_core, format_table


@pytest.fixture(scope="module")
def compiled_gs(gs_grid):
    n, _ = gs_grid
    return compile_fortran(gauss_seidel.generate_source(n, niters=1), Target.STENCIL_CPU)


def test_stencil_path_gauss_seidel(benchmark, gs_grid, compiled_gs):
    n, init = gs_grid
    interp = compiled_gs.interpreter()

    def run():
        interp.call("gauss_seidel", init.copy(order="F"))

    benchmark(run)
    cells = (n - 2) ** 3
    benchmark.extra_info["mcells_per_s"] = cells / benchmark.stats["mean"] / 1e6


def test_flang_only_path_gauss_seidel(benchmark, gs_grid):
    # The FIR loop nest is interpreted point by point, so use a smaller grid.
    n = 16
    source = gauss_seidel.generate_source(n, niters=1)
    result = compile_fortran(source, Target.FLANG_ONLY)
    init = gauss_seidel.initial_condition(n)
    interp = result.interpreter()

    def run():
        interp.call("gauss_seidel", init.copy(order="F"))

    benchmark(run)


def test_stencil_path_pw_advection(benchmark, pw_grid):
    n, fields = pw_grid
    result = compile_fortran(pw_advection.generate_source(n), Target.STENCIL_CPU)
    interp = result.interpreter()
    u, v, w, su, sv, sw = [f.copy(order="F") for f in fields]

    def run():
        interp.call("pw_advection", u, v, w, su, sv, sw)

    benchmark(run)
    benchmark.extra_info["flops_per_cell"] = pw_advection.FLOPS_PER_CELL


def test_figure2_table_regeneration(benchmark):
    result = benchmark(figure2_single_core, False)
    print()
    print(format_table(result))
    series = {}
    for bench, size, compiler, mcells in result.rows:
        series.setdefault((bench, compiler), []).append(mcells)
    for bench in ("gauss_seidel", "pw_advection"):
        flang = np.mean(series[(bench, "flang")])
        sten = np.mean(series[(bench, "stencil")])
        cray = np.mean(series[(bench, "cray")])
        # Paper: stencil delivers 2-10x over Flang and Cray leads on one core.
        assert flang < sten < cray
        assert 2.0 <= sten / flang <= 12.0
