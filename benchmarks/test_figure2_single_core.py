"""Figure 2 — single-core CPU performance (Cray vs Flang-only vs Stencil).

The benchmark times the two real execution paths of this reproduction (the
interpreted FIR "Flang only" path and the vectorised stencil path) on a
reduced grid, and regenerates the paper's full figure from the machine model,
asserting its qualitative shape.
"""

import time

import numpy as np
import pytest

from repro.apps import gauss_seidel, pw_advection
import repro
from repro.harness import figure2_single_core, format_table


@pytest.fixture(scope="module")
def compiled_gs(gs_grid):
    n, _ = gs_grid
    return repro.compile(gauss_seidel.generate_source(n, niters=1)).lower("cpu")


def test_stencil_path_gauss_seidel(benchmark, gs_grid, compiled_gs):
    n, init = gs_grid
    interp = compiled_gs.interpreter()

    def run():
        interp.call("gauss_seidel", init.copy(order="F"))

    benchmark(run)
    cells = (n - 2) ** 3
    benchmark.extra_info["mcells_per_s"] = cells / benchmark.stats["mean"] / 1e6


def test_flang_only_path_gauss_seidel(benchmark, gs_grid):
    # The FIR loop nest is interpreted point by point, so use a smaller grid.
    n = 16
    source = gauss_seidel.generate_source(n, niters=1)
    result = repro.compile(source).lower("flang-only")
    init = gauss_seidel.initial_condition(n)
    interp = result.interpreter()

    def run():
        interp.call("gauss_seidel", init.copy(order="F"))

    benchmark(run)


def test_stencil_path_pw_advection(benchmark, pw_grid):
    n, fields = pw_grid
    result = repro.compile(pw_advection.generate_source(n)).lower("cpu")
    interp = result.interpreter()
    u, v, w, su, sv, sw = [f.copy(order="F") for f in fields]

    def run():
        interp.call("pw_advection", u, v, w, su, sv, sw)

    benchmark(run)
    benchmark.extra_info["flops_per_cell"] = pw_advection.FLOPS_PER_CELL


def _time_lowered_run(result, entry, args, mode, repeats=1):
    """Wall-clock of one sweep in the given execution mode (best of N).
    Best-of keeps the microsecond-scale vectorized timings robust against
    GC pauses and scheduler noise; the first repeat also absorbs the
    one-off kernel compilation."""
    best = float("inf")
    for _ in range(repeats):
        run_args = [a.copy(order="F") for a in args]
        interp = result.interpreter(execution_mode=mode)
        start = time.perf_counter()
        interp.call(entry, *run_args)
        best = min(best, time.perf_counter() - start)
    return best, run_args, interp


def test_vectorized_mode_speedup_gauss_seidel():
    """The compiled-kernel backend must beat point-by-point interpretation of
    the lowered scf loop nest by >= 10x (it is typically >100x) while
    producing the same field."""
    n = 20
    result = repro.compile(
        gauss_seidel.generate_source(n, niters=1)
    ).lower("cpu", lower_to_scf=True)
    init = gauss_seidel.initial_condition(n)
    t_interp, u_interp, _ = _time_lowered_run(result, "gauss_seidel", [init], "interpret")
    t_vec, u_vec, interp = _time_lowered_run(result, "gauss_seidel", [init],
                                             "vectorize", repeats=7)
    assert interp.stats["vectorized_sweeps"] == 1
    assert np.allclose(u_interp[0], u_vec[0])
    assert t_interp / t_vec >= 10.0, (
        f"vectorized mode only {t_interp / t_vec:.1f}x faster "
        f"({t_interp:.4f}s vs {t_vec:.4f}s)"
    )


def test_vectorized_mode_speedup_pw_advection():
    n = 10
    result = repro.compile(
        pw_advection.generate_source(n)
    ).lower("cpu", lower_to_scf=True)
    fields = pw_advection.initial_fields(n)
    t_interp, f_interp, _ = _time_lowered_run(result, "pw_advection", fields, "interpret")
    t_vec, f_vec, interp = _time_lowered_run(result, "pw_advection", fields,
                                             "vectorize", repeats=7)
    assert interp.stats["vectorized_sweeps"] >= 1
    for ref, vec in zip(f_interp, f_vec):
        assert np.allclose(ref, vec)
    assert t_interp / t_vec >= 10.0, (
        f"vectorized mode only {t_interp / t_vec:.1f}x faster "
        f"({t_interp:.4f}s vs {t_vec:.4f}s)"
    )


def test_figure2_table_regeneration(benchmark):
    result = benchmark(figure2_single_core, False)
    print()
    print(format_table(result))
    series = {}
    for bench, size, compiler, mcells in result.rows:
        series.setdefault((bench, compiler), []).append(mcells)
    for bench in ("gauss_seidel", "pw_advection"):
        flang = np.mean(series[(bench, "flang")])
        sten = np.mean(series[(bench, "stencil")])
        cray = np.mean(series[(bench, "cray")])
        # Paper: stencil delivers 2-10x over Flang and Cray leads on one core.
        assert flang < sten < cray
        assert 2.0 <= sten / flang <= 12.0
