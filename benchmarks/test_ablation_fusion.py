"""Ablation E9 — stencil fusion on/off for PW advection."""

import pytest

from repro.apps import pw_advection
import repro
from repro.harness import format_table, fusion_ablation


@pytest.mark.parametrize("fuse", [True, False], ids=["fused", "unfused"])
def test_compile_and_run_pw(benchmark, fuse):
    n = 16
    result = repro.compile(
        pw_advection.generate_source(n)
    ).lower("cpu", fuse_stencils=fuse)
    fields = [f.copy(order="F") for f in pw_advection.initial_fields(n)]
    interp = result.interpreter()

    def run():
        interp.call("pw_advection", *fields)

    benchmark(run)
    applies = sum(1 for op in result.stencil_module.walk() if op.name == "stencil.apply")
    benchmark.extra_info["stencil_applies"] = applies
    assert applies == (1 if fuse else 3)


def test_fusion_ablation_table(benchmark):
    result = benchmark(fusion_ablation, 10)
    print()
    print(format_table(result))
    rows = {row[0]: row for row in result.rows}
    assert rows["fused"][2] > rows["unfused"][2]
