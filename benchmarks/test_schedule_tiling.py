"""Schedule acceptance: a tiled schedule measurably beats the default.

The PW advection apply kernel builds dozens of whole-domain temporaries per
sweep; at n=96 the working set leaves cache and the sweep is memory-bound.
``fuse().tile(32, 32, 32)`` re-runs the identical NumPy expressions over
cache-sized boxes — bitwise-equal output (proved by ``verify()``), with the
temporaries staying resident.  Measured locally this is ~1.6x; the assertion
demands a conservative 1.1x so scheduler noise cannot flake the suite.
"""

import time

import pytest

import repro
from repro.apps import pw_advection

_N = 96
_TILE = (32, 32, 32)


def _best_of(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.fixture(scope="module")
def pw_handles():
    base = repro.Session().compile(
        pw_advection.generate_source(_N)).lower("cpu")
    schedule = base.schedule().fuse().tile(*_TILE).verify()
    return base, schedule.compiled


def test_tiled_schedule_beats_default(pw_handles):
    base, tiled = pw_handles
    fields = pw_advection.initial_fields(_N)

    def runner(handle):
        args = [f.copy(order="F") for f in fields]
        interp = handle.vectorize()
        return lambda: interp.run("pw_advection", *args)

    default_s = _best_of(runner(base))
    tiled_s = _best_of(runner(tiled))
    speedup = default_s / tiled_s
    assert speedup > 1.1, (
        f"fuse().tile{_TILE} on pw_advection n={_N}: {tiled_s * 1e3:.1f} ms "
        f"vs default {default_s * 1e3:.1f} ms — only {speedup:.2f}x"
    )


def test_tiled_schedule_is_bitwise_equal(pw_handles):
    base, tiled = pw_handles
    fields = pw_advection.initial_fields(_N)
    expected = [f.copy(order="F") for f in fields]
    actual = [f.copy(order="F") for f in fields]
    base.vectorize().run("pw_advection", *expected)
    interp = tiled.vectorize().run("pw_advection", *actual)
    assert interp.stats["schedule_tiles"] > 0
    assert all(e.tobytes() == a.tobytes()
               for e, a in zip(expected, actual))
