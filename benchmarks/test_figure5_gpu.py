"""Figure 5 — GPU performance and the data-management comparison (+ ablation E8)."""

import time

import pytest

from repro.apps import gauss_seidel
import repro
from repro.harness import (
    figure5_gpu,
    format_table,
    gpu_data_ablation,
    measured_gpu_scaling,
)
from repro.runtime import SimulatedGPU


@pytest.mark.parametrize("strategy", ["optimised", "host_register"])
def test_gpu_execution_per_strategy(benchmark, strategy):
    n = 24
    result = repro.compile(
        gauss_seidel.generate_source(n, niters=1)
    ).lower("gpu", data_strategy=strategy)
    init = gauss_seidel.initial_condition(n)

    def run():
        device = SimulatedGPU()
        interp = result.interpreter(gpu=device)
        interp.call("gauss_seidel", init.copy(order="F"))
        return device

    device = benchmark(run)
    benchmark.extra_info["pcie_bytes"] = device.transferred_bytes()


def test_gpu_data_ablation_traffic(benchmark):
    result = benchmark(gpu_data_ablation, 12, 4)
    print()
    print(format_table(result))
    rows = {row[0]: row for row in result.rows}
    assert rows["host_register"][4] > 0
    assert rows["optimised"][4] == 0


def test_vectorized_engine_speedup_over_scalar_launch():
    """The whole-lattice GPU engine must beat the per-thread scalar path by
    >= 5x on the lowered (outlined) Gauss-Seidel kernel."""
    n = 16
    compiled = repro.compile(
        gauss_seidel.generate_source(n, niters=1)
    ).lower("gpu", data_strategy="optimised", lower_to_scf=True)
    init = gauss_seidel.initial_condition(n)

    def timed(mode):
        # One interpreter: the warm-up compiles + binds the kernels, so the
        # timed calls measure launch execution only.
        interp = compiled.interpreter(gpu=SimulatedGPU(), execution_mode=mode)
        interp.call("gauss_seidel", init.copy(order="F"))
        best = float("inf")
        for _ in range(3):
            work = init.copy(order="F")
            start = time.perf_counter()
            interp.call("gauss_seidel", work)
            best = min(best, time.perf_counter() - start)
        return best, interp

    scalar_seconds, _ = timed("interpret")
    vector_seconds, interp = timed("vectorize")
    assert interp.stats["gpu_launches_vectorized"] == 4  # warm-up + 3 repeats
    assert interp.stats["gpu_launch_fallbacks"] == 0
    assert scalar_seconds >= 5 * vector_seconds, (
        f"vectorized GPU engine only {scalar_seconds / vector_seconds:.1f}x "
        f"faster than the per-thread scalar path"
    )


def test_measured_gpu_series_validates_against_reference():
    """Both data strategies run for real through the vectorized engine; every
    row must sit < 1e-12 from the NumPy reference (the harness raises
    otherwise) and every launch must have gone through the engine."""
    result = measured_gpu_scaling()
    print()
    print(format_table(result))
    strategies = {row[0] for row in result.rows}
    assert strategies == {"optimised", "host_register"}
    for _, _, _, launches, vectorized, error in result.rows:
        assert error < 1e-12
        assert vectorized == launches
    # The optimised strategy moves each field across PCIe once; host_register
    # pages on demand at every launch.
    assert result.notes["optimised"]["on_demand_bytes"] == 0
    assert result.notes["host_register"]["on_demand_bytes"] > 0


def test_figure5_includes_measured_series():
    result = figure5_gpu(validate=False, measure=True)
    measured = {row[2] for row in result.rows if str(row[2]).startswith("measured_")}
    assert measured == {"measured_optimised", "measured_host_register"}
    assert result.notes["measured"]["max_error"] < 1e-12


def test_figure5_table_regeneration(benchmark):
    result = benchmark(figure5_gpu, False)
    print()
    print(format_table(result))
    by_config = {}
    for bench, size, strategy, mcells in result.rows:
        by_config.setdefault((bench, size), {})[strategy] = mcells
    for (bench, size), values in by_config.items():
        # The optimised data pass always beats the initial host_register approach.
        assert values["stencil_optimised"] > values["stencil_host_register"]
        # PW advection beats hand-written OpenACC for every size (paper ~15x).
        if bench == "pw_advection":
            assert values["stencil_optimised"] > 3 * values["openacc_nvidia"]
        else:
            # Gauss-Seidel: comparable (within ~2.5x) as reported in the paper.
            ratio = values["stencil_optimised"] / values["openacc_nvidia"]
            assert 0.5 <= ratio <= 2.5
