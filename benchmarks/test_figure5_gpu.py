"""Figure 5 — GPU performance and the data-management comparison (+ ablation E8)."""

import pytest

from repro.apps import gauss_seidel
import repro
from repro.harness import figure5_gpu, format_table, gpu_data_ablation
from repro.runtime import SimulatedGPU


@pytest.mark.parametrize("strategy", ["optimised", "host_register"])
def test_gpu_execution_per_strategy(benchmark, strategy):
    n = 24
    result = repro.compile(
        gauss_seidel.generate_source(n, niters=1)
    ).lower("gpu", data_strategy=strategy)
    init = gauss_seidel.initial_condition(n)

    def run():
        device = SimulatedGPU()
        interp = result.interpreter(gpu=device)
        interp.call("gauss_seidel", init.copy(order="F"))
        return device

    device = benchmark(run)
    benchmark.extra_info["pcie_bytes"] = device.transferred_bytes()


def test_gpu_data_ablation_traffic(benchmark):
    result = benchmark(gpu_data_ablation, 12, 4)
    print()
    print(format_table(result))
    rows = {row[0]: row for row in result.rows}
    assert rows["host_register"][4] > 0
    assert rows["optimised"][4] == 0


def test_figure5_table_regeneration(benchmark):
    result = benchmark(figure5_gpu, False)
    print()
    print(format_table(result))
    by_config = {}
    for bench, size, strategy, mcells in result.rows:
        by_config.setdefault((bench, size), {})[strategy] = mcells
    for (bench, size), values in by_config.items():
        # The optimised data pass always beats the initial host_register approach.
        assert values["stencil_optimised"] > values["stencil_host_register"]
        # PW advection beats hand-written OpenACC for every size (paper ~15x).
        if bench == "pw_advection":
            assert values["stencil_optimised"] > 3 * values["openacc_nvidia"]
        else:
            # Gauss-Seidel: comparable (within ~2.5x) as reported in the paper.
            ratio = values["stencil_optimised"] / values["openacc_nvidia"]
            assert 0.5 <= ratio <= 2.5
