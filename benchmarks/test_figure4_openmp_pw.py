"""Figure 4 — multithreaded (OpenMP) PW advection: stencil wins at 64/128 threads.

Besides the model-regenerated figure, this file measures the *real* tiled
parallel execution of the lowered ``omp.wsloop`` nests (PR 2): correctness
through the crosscheck oracle at ``threads > 1``, and the wall-clock speedup
of the 4-thread tiled backend over the single-thread vectorized backend.
"""

import os

import numpy as np
import pytest

from repro.apps import pw_advection
import repro
from repro.harness import (
    figure4_openmp_pw_advection,
    format_table,
    measured_openmp_scaling,
)


def test_openmp_lowered_execution_pw(benchmark):
    n = 16
    result = repro.compile(
        pw_advection.generate_source(n)
    ).lower("openmp", lower_to_scf=True)
    fields = [f.copy(order="F") for f in pw_advection.initial_fields(n)]
    interp = result.interpreter()

    def run():
        interp.call("pw_advection", *fields)

    benchmark(run)


def test_crosscheck_passes_with_threads_pw():
    """Every tiled parallel sweep of the lowered PW advection replays through
    the scalar oracle at threads=4 without divergence."""
    n = 14
    result = repro.compile(
        pw_advection.generate_source(n)
    ).lower("openmp", lower_to_scf=True)
    fields = [f.copy(order="F") for f in pw_advection.initial_fields(n)]
    interp = result.interpreter(execution_mode="crosscheck", threads=4)
    interp.call("pw_advection", *fields)
    assert interp.stats["vectorized_sweeps"] >= 1
    assert interp.stats["parallel_sweeps"] >= 1
    assert interp.stats["parallel_tiles"] >= 2 * interp.stats["parallel_sweeps"]
    u, v, w = pw_advection.initial_fields(n)[:3]
    rsu, rsv, rsw = pw_advection.reference(u, v, w)
    for field, ref in zip(fields[3:], (rsu, rsv, rsw)):
        assert np.allclose(field, ref)


@pytest.mark.skipif((os.cpu_count() or 1) < 4,
                    reason="needs >= 4 cores to demonstrate parallel speedup")
@pytest.mark.skipif(bool(os.environ.get("CI")),
                    reason="wall-clock threshold; shared CI runners are too "
                           "noisy for a hard 2x timing assertion")
def test_tiled_parallel_speedup_at_4_threads():
    """Acceptance: the 4-thread tiled backend is >= 2x faster than the
    1-thread vectorized backend on the lowered PW-advection sweep."""
    result = measured_openmp_scaling("pw_advection", thread_counts=(1, 4), n=96)
    seconds = {row[1]: row[2] for row in result.rows}
    speedup = {row[1]: row[4] for row in result.rows}
    assert result.notes["threads=4"]["parallel_sweeps"] >= 1
    assert speedup[4] >= 2.0, (
        f"4-thread tiled execution only {speedup[4]:.2f}x faster "
        f"({seconds[1]:.4f}s vs {seconds[4]:.4f}s)"
    )


def test_figure4_table_regeneration(benchmark):
    result = benchmark(figure4_openmp_pw_advection)
    print()
    print(format_table(result))
    by_threads = {}
    for _, threads, compiler, mcells in result.rows:
        by_threads.setdefault(threads, {})[compiler] = mcells
    # Low thread counts: Cray ahead (as in the paper).
    assert by_threads[1]["cray"] > by_threads[1]["stencil"]
    # 64 and 128 threads: the stencil flow delivers the highest throughput.
    for threads in (64, 128):
        values = by_threads[threads]
        assert values["stencil"] > values["cray"] > values["flang"]


def test_figure4_measured_series(benchmark):
    """The figure can carry measured tiled-parallel rows next to the model
    series; each measured thread count contributes exactly one row."""
    counts = (1, 2)
    result = benchmark(figure4_openmp_pw_advection, counts, 48)
    print()
    print(format_table(result))
    measured = [row for row in result.rows if row[2] == "stencil-measured"]
    assert [row[1] for row in measured] == list(counts)
    assert all(row[3] > 0 for row in measured)
    assert result.notes["measured"]["speedups"][1] == pytest.approx(1.0)
