"""Figure 4 — multithreaded (OpenMP) PW advection: stencil wins at 64/128 threads."""

import pytest

from repro.apps import pw_advection
from repro.compiler import Target, compile_fortran
from repro.harness import figure4_openmp_pw_advection, format_table


def test_openmp_lowered_execution_pw(benchmark):
    n = 16
    result = compile_fortran(pw_advection.generate_source(n),
                             Target.STENCIL_OPENMP, lower_to_scf=True)
    fields = [f.copy(order="F") for f in pw_advection.initial_fields(n)]
    interp = result.interpreter()

    def run():
        interp.call("pw_advection", *fields)

    benchmark(run)


def test_figure4_table_regeneration(benchmark):
    result = benchmark(figure4_openmp_pw_advection)
    print()
    print(format_table(result))
    by_threads = {}
    for _, threads, compiler, mcells in result.rows:
        by_threads.setdefault(threads, {})[compiler] = mcells
    # Low thread counts: Cray ahead (as in the paper).
    assert by_threads[1]["cray"] > by_threads[1]["stencil"]
    # 64 and 128 threads: the stencil flow delivers the highest throughput.
    for threads in (64, 128):
        values = by_threads[threads]
        assert values["stencil"] > values["cray"] > values["flang"]
