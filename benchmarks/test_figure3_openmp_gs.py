"""Figure 3 — multithreaded (OpenMP) Gauss-Seidel at 2.1 billion cells.

The model-regenerated figure plus real tiled parallel execution of the
lowered ``omp.wsloop`` nest (PR 2): schedule-clause coverage, crosscheck at
``threads > 1``, and measured rows next to the model series.
"""

import numpy as np
import pytest

from repro.apps import gauss_seidel
import repro
from repro.harness import figure3_openmp_gauss_seidel, format_table


def test_openmp_lowered_execution(benchmark):
    n = 24
    result = repro.compile(
        gauss_seidel.generate_source(n, niters=1)
    ).lower("openmp", lower_to_scf=True)
    init = gauss_seidel.initial_condition(n)
    interp = result.interpreter()

    def run():
        interp.call("gauss_seidel", init.copy(order="F"))

    benchmark(run)
    assert interp.stats["omp_regions"] >= 1


@pytest.mark.parametrize("schedule,chunk", [
    ("static", None), ("dynamic", 4), ("guided", 2),
])
def test_crosscheck_passes_with_threads_gs(schedule, chunk):
    """Tiled parallel sweeps of the lowered Gauss-Seidel replay through the
    scalar oracle at threads=4 under every schedule kind."""
    n = 18
    result = repro.compile(
        gauss_seidel.generate_source(n, niters=2)
    ).lower("openmp", lower_to_scf=True, schedule=schedule, chunk_size=chunk)
    u = gauss_seidel.initial_condition(n)
    interp = result.interpreter(execution_mode="crosscheck", threads=4)
    interp.call("gauss_seidel", u)
    assert interp.stats["parallel_sweeps"] >= 1
    reference = gauss_seidel.reference_jacobi(gauss_seidel.initial_condition(n), 2)
    assert np.allclose(u, reference)


def test_figure3_table_regeneration(benchmark):
    result = benchmark(figure3_openmp_gauss_seidel)
    print()
    print(format_table(result))
    by_threads = {}
    for _, threads, compiler, mcells in result.rows:
        by_threads.setdefault(threads, {})[compiler] = mcells
    for threads, values in by_threads.items():
        assert values["cray"] > values["stencil"] > values["flang"], threads
    # Scaling: every flow speeds up from 1 to 128 threads.
    assert by_threads[128]["stencil"] > 5 * by_threads[1]["stencil"]


def test_figure3_measured_series(benchmark):
    counts = (1, 2)
    result = benchmark(figure3_openmp_gauss_seidel, counts, 40)
    print()
    print(format_table(result))
    measured = [row for row in result.rows if row[2] == "stencil-measured"]
    assert [row[1] for row in measured] == list(counts)
    assert all(row[3] > 0 for row in measured)
