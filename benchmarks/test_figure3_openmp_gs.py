"""Figure 3 — multithreaded (OpenMP) Gauss-Seidel at 2.1 billion cells."""

import pytest

from repro.apps import gauss_seidel
from repro.compiler import Target, compile_fortran
from repro.harness import figure3_openmp_gauss_seidel, format_table


def test_openmp_lowered_execution(benchmark):
    n = 24
    result = compile_fortran(gauss_seidel.generate_source(n, niters=1),
                             Target.STENCIL_OPENMP, lower_to_scf=True)
    init = gauss_seidel.initial_condition(n)
    interp = result.interpreter()

    def run():
        interp.call("gauss_seidel", init.copy(order="F"))

    benchmark(run)
    assert interp.stats["omp_regions"] >= 1


def test_figure3_table_regeneration(benchmark):
    result = benchmark(figure3_openmp_gauss_seidel)
    print()
    print(format_table(result))
    by_threads = {}
    for _, threads, compiler, mcells in result.rows:
        by_threads.setdefault(threads, {})[compiler] = mcells
    for threads, values in by_threads.items():
        assert values["cray"] > values["stencil"] > values["flang"], threads
    # Scaling: every flow speeds up from 1 to 128 threads.
    assert by_threads[128]["stencil"] > 5 * by_threads[1]["stencil"]
