"""Shared helpers for the benchmark harness (pytest-benchmark).

Tests in this tree that time paper figures through the ``benchmark`` fixture
are tagged ``slow_figure`` during collection and **skipped by default** so the
tier-1 test run stays fast; pass ``--figures`` (registered in the repo-root
conftest) to run them.  Plain assertion tests — e.g. the vectorized-mode
speedup checks — always run.
"""

import os
import pathlib

# Pin library-internal threading to one thread BEFORE NumPy (and through it
# OpenBLAS/MKL) is imported — these libraries read the variables once at load
# time.  Single-thread baselines must not be silently accelerated by a
# threaded BLAS, or every measured tiled-parallel speedup in this tree would
# be polluted.  setdefault keeps an explicit operator override working.
for _var in (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
):
    os.environ.setdefault(_var, "1")

import numpy as np
import pytest

from repro.apps import gauss_seidel, pw_advection

_BENCHMARKS_DIR = pathlib.Path(__file__).resolve().parent


def pytest_collection_modifyitems(config, items):
    run_figures = config.getoption("--figures", default=False)
    skip = pytest.mark.skip(reason="slow figure benchmark; pass --figures to run")
    for item in items:
        # This hook sees the whole session's items; only gate this tree.
        item_path = pathlib.Path(str(getattr(item, "fspath", ""))).resolve()
        if _BENCHMARKS_DIR not in item_path.parents:
            continue
        uses_benchmark = "benchmark" in getattr(item, "fixturenames", ())
        if uses_benchmark and item.get_closest_marker("slow_figure") is None:
            item.add_marker(pytest.mark.slow_figure)
        if not run_figures and (uses_benchmark or item.get_closest_marker("slow_figure")):
            item.add_marker(skip)


@pytest.fixture(scope="session")
def gs_grid():
    """A grid large enough for meaningful timing yet fast in pure Python."""
    n = 48
    return n, gauss_seidel.initial_condition(n)


@pytest.fixture(scope="session")
def pw_grid():
    n = 32
    return n, pw_advection.initial_fields(n)
