"""Shared helpers for the benchmark harness (pytest-benchmark)."""

import numpy as np
import pytest

from repro.apps import gauss_seidel, pw_advection


@pytest.fixture(scope="session")
def gs_grid():
    """A grid large enough for meaningful timing yet fast in pure Python."""
    n = 48
    return n, gauss_seidel.initial_condition(n)


@pytest.fixture(scope="session")
def pw_grid():
    n = 32
    return n, pw_advection.initial_fields(n)
