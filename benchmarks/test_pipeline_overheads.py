"""Compile-time benchmarks: discovery, extraction and the Listing-4 pipeline."""

import pytest

from repro.apps import gauss_seidel, pw_advection
import repro
from repro.frontend import compile_to_fir
from repro.ir import PassManager, default_context, parse_pipeline, print_module, parse_module
from repro.transforms import GPU_PIPELINE, StencilDiscoveryPass, ExtractStencilsPass


def test_frontend_compile_time(benchmark):
    source = pw_advection.generate_source(64)
    benchmark(compile_to_fir, source)


def test_discovery_pass_time(benchmark):
    source = pw_advection.generate_source(64)

    def run():
        module = compile_to_fir(source)
        StencilDiscoveryPass().apply(default_context(), module)
        return module

    module = benchmark(run)
    assert any(op.name == "stencil.apply" for op in module.walk())


def test_full_stencil_flow_compile_time(benchmark):
    source = gauss_seidel.generate_source(64, niters=10)
    result = benchmark(lambda: repro.Session().compile(source).lower("cpu"))
    assert result.extracted_functions


def test_listing4_pipeline_parse_and_run(benchmark):
    """The paper's Listing 4 mlir-opt pipeline, parsed and applied."""
    source = gauss_seidel.generate_source(32, niters=1)
    result = repro.compile(source).lower("cpu")

    def run():
        module = result.stencil_module.clone()
        pm = PassManager(verify_each=False)
        pm.add_pipeline("convert-stencil-to-scf{target=gpu}," + GPU_PIPELINE)
        pm.run(module)
        return module

    module = benchmark(run)
    assert any(op.name == "gpu.launch_func" for op in module.walk())


def test_ir_print_parse_roundtrip_time(benchmark):
    module = compile_to_fir(pw_advection.generate_source(32))

    def run():
        return parse_module(print_module(module))

    reparsed = benchmark(run)
    assert print_module(reparsed) == print_module(module)
