#!/usr/bin/env python3
"""PW advection on the (simulated) GPU: fusion + data-management strategies.

Shows the three stencils of the Piacsek-Williams advection scheme being fused
into one stencil region, then compares the paper's two GPU data strategies by
running both against the simulated V100 and reporting the PCIe traffic each
one generates (the reason the optimised pass wins in Figure 5).
"""

import numpy as np

import repro
from repro.apps import pw_advection
from repro.harness import figure5_gpu, format_table
from repro.runtime import SimulatedGPU

N = 24


def main() -> None:
    program = repro.compile(pw_advection.generate_source(N, niters=4))

    for strategy in ("host_register", "optimised"):
        compiled = program.lower("gpu", data_strategy=strategy)
        applies = sum(1 for op in compiled.stencil_module.walk()
                      if op.name == "stencil.apply")
        device = SimulatedGPU()
        fields = [f.copy(order="F") for f in pw_advection.initial_fields(N)]
        interp = compiled.interpreter(gpu=device)
        interp.call("pw_advection", *fields)

        rsu, _, _ = pw_advection.reference(fields[0], fields[1], fields[2])
        assert np.allclose(fields[3], rsu)

        summary = device.summary()
        print(f"strategy={strategy:14s} fused applies={applies} "
              f"launches={summary['launches']:3.0f} "
              f"explicit h2d={summary['h2d_bytes']:>12,.0f} B "
              f"on-demand PCIe={summary['on_demand_bytes']:>14,.0f} B")

    # The fully lowered path: kernel outlining + the vectorized GPU engine
    # executing each gpu.launch_func as one batched whole-lattice sweep.
    lowered = program.lower("gpu", data_strategy="optimised",
                            lower_to_scf=True, execution_mode="vectorize")
    device = SimulatedGPU(num_streams=2)
    fields = [f.copy(order="F") for f in pw_advection.initial_fields(N)]
    interp = lowered.run("pw_advection", *fields, gpu=device)
    rsu, _, _ = pw_advection.reference(fields[0], fields[1], fields[2])
    assert np.allclose(fields[3], rsu)
    summary = device.summary()
    print(f"\nvectorized engine: {interp.stats['gpu_launches_vectorized']} of "
          f"{interp.stats['kernel_launches']} launches batched, "
          f"gpu={interp.stats['gpu_seconds']*1e3:.2f} ms "
          f"transfers={interp.stats['transfer_seconds']*1e3:.2f} ms "
          f"per-kernel={summary['kernel_invocations']}")

    print()
    print(format_table(figure5_gpu(validate=False)))


if __name__ == "__main__":
    main()
