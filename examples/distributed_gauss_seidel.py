#!/usr/bin/env python3
"""Automatic distributed-memory parallelisation of serial Fortran (Figure 6).

The unchanged Gauss-Seidel source is compiled through the DMP and MPI dialects
and executed on a 2x2 simulated communicator (four in-process ranks with real
halo exchanges); the result is compared against the global numpy reference,
and the paper-scale scaling figure is regenerated from the machine model.
"""

import threading

import numpy as np

import repro
from repro.apps import gauss_seidel
from repro.harness import figure6_distributed, format_table
from repro.runtime import CartesianDecomposition, Interpreter, SimulatedCommunicator

LOCAL_N = 12      # interior cells per rank per decomposed dimension
GRID = (2, 2)     # process grid
NITERS = 3


def main() -> None:
    num_ranks = GRID[0] * GRID[1]
    global_shape = (LOCAL_N * GRID[0], LOCAL_N * GRID[1], LOCAL_N)
    rng = np.random.default_rng(42)
    global_field = np.asfortranarray(rng.random(global_shape))
    reference = gauss_seidel.reference_jacobi(global_field, NITERS)

    # One compilation, shared by every rank (same unmodified serial source).
    source = gauss_seidel.generate_source(LOCAL_N + 2, niters=1)
    compiled = repro.compile(source).lower("dmp", grid=GRID)

    comm = SimulatedCommunicator(num_ranks)
    decomposition = CartesianDecomposition(global_shape, GRID, (0, 1))

    locals_by_rank = {}
    for rank in range(num_ranks):
        (xl, xu), (yl, yu), _ = decomposition.local_bounds(rank)
        local = np.zeros((LOCAL_N + 2,) * 3, order="F")
        local[1:-1, 1:-1, 1:-1] = global_field[xl:xu, yl:yu, :]
        locals_by_rank[rank] = local

    def run_rank(rank: int) -> None:
        interp = compiled.interpreter(comm=comm, rank=rank, decomposition=decomposition)
        for _ in range(NITERS):
            interp.call("gauss_seidel", locals_by_rank[rank])

    threads = [threading.Thread(target=run_rank, args=(r,)) for r in range(num_ranks)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    # Compare the sub-domain interiors far enough from the global boundary.
    margin = NITERS
    max_err = 0.0
    for rank in range(num_ranks):
        (xl, xu), (yl, yu), _ = decomposition.local_bounds(rank)
        gx0, gx1 = max(xl, margin), min(xu, global_shape[0] - margin)
        gy0, gy1 = max(yl, margin), min(yu, global_shape[1] - margin)
        mine = locals_by_rank[rank][1 + gx0 - xl:1 + gx1 - xl,
                                    1 + gy0 - yl:1 + gy1 - yl, 1 + margin:-1 - margin]
        ref = reference[gx0:gx1, gy0:gy1, margin:-margin]
        max_err = max(max_err, float(np.abs(mine - ref).max()))

    print(f"ranks={num_ranks}  halo messages={comm.message_count}  "
          f"bytes exchanged={comm.bytes_sent:,}  max interior error={max_err:.2e}")

    print()
    print(format_table(figure6_distributed(validate=False)))


if __name__ == "__main__":
    main()
