#!/usr/bin/env python3
"""Automatic distributed-memory parallelisation of serial Fortran (Figure 6).

The unchanged Gauss-Seidel source is compiled through the DMP and MPI dialects
and executed on a 2x2 simulated communicator — four in-process *vectorized*
ranks with real halo exchanges, orchestrated end to end by the fluent
``.distribute(...)`` handle: ``run(global_field)`` scatters the global domain
(physical ghost planes included), runs every rank concurrently on the
persistent rank pool, and gathers the result.  The gathered field is compared
against the global numpy reference, and the paper-scale scaling figure is
regenerated from the machine model next to the measured multi-rank series.
"""

import numpy as np

import repro
from repro.apps import gauss_seidel
from repro.harness import figure6_distributed, format_table

LOCAL_N = 12      # interior cells per rank per decomposed dimension
GRID = (2, 2)     # process grid
NITERS = 3


def main() -> None:
    global_shape = (LOCAL_N * GRID[0], LOCAL_N * GRID[1], LOCAL_N)
    rng = np.random.default_rng(42)
    global_field = np.asfortranarray(rng.random(global_shape))
    reference = gauss_seidel.reference_jacobi(global_field, NITERS)

    # One compilation per distinct rank-local shape, shared by every rank
    # that owns a box of that shape (all of them, here: the domain divides).
    program = repro.compile(
        gauss_seidel.generate_source_shaped((LOCAL_N + 2,) * 3, niters=1)
    )
    distributed = (
        program.lower("dmp", grid=GRID, execution_mode="vectorize")
               .distribute(source_builder=gauss_seidel.generate_source_shaped)
    )

    result = distributed.run(global_field, iterations=NITERS)
    max_err = result.max_interior_error(reference, margin=NITERS)

    print(f"ranks={result.ranks}  halo messages={result.messages}  "
          f"bytes exchanged={result.bytes:,}  max interior error={max_err:.2e}")
    for stats in result.rank_stats:
        print(f"  rank {stats.rank}: bounds={stats.bounds}  "
              f"messages={stats.messages}  bytes={stats.bytes:,}  "
              f"halo={stats.halo_seconds * 1e3:.2f}ms  "
              f"kernel={stats.kernel_seconds * 1e3:.2f}ms")

    print()
    print(format_table(figure6_distributed(validate=False)))


if __name__ == "__main__":
    main()
