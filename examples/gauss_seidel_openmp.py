#!/usr/bin/env python3
"""Gauss-Seidel benchmark: Flang-only vs stencil flow, plus automatic OpenMP.

Compiles the same unmodified serial Fortran three ways (plain FIR, the stencil
flow, and the stencil flow lowered through scf.parallel -> OpenMP), checks all
of them numerically, and prints the modelled ARCHER2 throughput for each
compiler at several thread counts (the paper's Figures 2 and 3).
"""

import time

import numpy as np

import repro
from repro.apps import gauss_seidel
from repro.harness import figure3_openmp_gauss_seidel, format_table

N = 32
NITERS = 2


def main() -> None:
    source = gauss_seidel.generate_source(N, NITERS)
    initial = gauss_seidel.initial_condition(N)
    program = repro.compile(source)

    # --- Flang only (plain FIR loop nests, true Gauss-Seidel sweeps) --------
    flang_only = program.lower("flang-only")
    flang_data = initial.copy(order="F")
    start = time.perf_counter()
    flang_only.run("gauss_seidel", flang_data)
    flang_time = time.perf_counter() - start

    # --- Stencil flow (discovery + extraction, vectorised execution) --------
    stencil_flow = program.lower("cpu")
    stencil_data = initial.copy(order="F")
    start = time.perf_counter()
    stencil_flow.run("gauss_seidel", stencil_data)
    stencil_time = time.perf_counter() - start

    print(f"Flang-only execution : {flang_time * 1e3:8.1f} ms")
    print(f"Stencil flow         : {stencil_time * 1e3:8.1f} ms "
          f"({flang_time / stencil_time:.1f}x faster in this reproduction)")
    print("residual (stencil)   :", gauss_seidel.residual(stencil_data))

    # --- Automatic OpenMP parallelisation (no source changes) --------------
    # The omp.wsloop sweeps execute for real on a 4-worker thread pool: each
    # compiled kernel sweep is tiled along its outermost parallel dimension.
    openmp = program.lower("openmp", lower_to_scf=True).vectorize(threads=4)
    omp_data = initial.copy(order="F")
    interp = openmp.interpreter()
    interp.call("gauss_seidel", omp_data)
    assert np.allclose(omp_data, stencil_data)
    print("OpenMP-lowered module executed; parallel regions:",
          interp.stats["omp_regions"],
          "| tiled sweeps:", interp.stats["parallel_sweeps"],
          "| tiles:", interp.stats["parallel_tiles"])

    # --- Paper-scale figure from the machine model --------------------------
    print()
    print(format_table(figure3_openmp_gauss_seidel()))


if __name__ == "__main__":
    main()
