#!/usr/bin/env python3
"""Compilation as a service: a persistent artifact store + concurrent clients.

Demonstrates the ``repro.serve`` subsystem end to end:

1. a :class:`CompileService` backed by an on-disk :class:`ArtifactStore`
   serves a small fleet of concurrent client threads running both benchmark
   apps — single-flight coalescing means the whole fleet performs exactly
   one backend lower per distinct (source, backend, options) artifact;
2. the process-shared half: run the script a second time with the same
   ``--store`` directory and every compile reloads from disk (zero lowers),
   which is also how the CI cold-start smoke asserts the warm-process
   speedup.

Usage::

    PYTHONPATH=src python examples/serve_quickstart.py --store /tmp/repro-store
    PYTHONPATH=src python examples/serve_quickstart.py --store /tmp/repro-store --expect-warm

``--expect-warm`` exits non-zero if any backend lower happened, proving the
store served every artifact.
"""

import argparse
import sys
import tempfile
import threading
import time

from repro.apps import gauss_seidel, pw_advection
from repro.harness import service_metrics_table
from repro.serve import ArtifactStore, CompileService

N_CLIENTS = 8

WORKLOADS = [
    ("gauss_seidel/cpu", gauss_seidel.generate_source(16, niters=2),
     "cpu", {"lower_to_scf": True}),
    ("pw_advection/openmp", pw_advection.generate_source(16),
     "openmp", {"lower_to_scf": True, "schedule": "dynamic", "chunk_size": 4}),
]


def fresh_args(label):
    if label.startswith("gauss_seidel"):
        return "gauss_seidel", [gauss_seidel.initial_condition(16)]
    u, v, w, su, sv, sw = pw_advection.initial_fields(16)
    return "pw_advection", [u, v, w, su, sv, sw]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="artifact store directory (default: a fresh "
                             "temp dir, i.e. a cold start)")
    parser.add_argument("--expect-warm", action="store_true",
                        help="fail unless every artifact came from the "
                             "store (zero backend lowers)")
    args = parser.parse_args(argv)

    store_dir = args.store or tempfile.mkdtemp(prefix="repro-store-")
    store = ArtifactStore(store_dir)
    started = time.perf_counter()

    with CompileService(store=store, workers=4, max_queue=64) as service:
        failures = []

        def client(client_id):
            try:
                for label, source, backend, options in WORKLOADS:
                    entry, call_args = fresh_args(label)
                    service.run(source, entry, call_args, backend=backend,
                                execution_mode="vectorize", timeout=120,
                                **options)
            except BaseException as exc:
                failures.append((client_id, exc))

        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(N_CLIENTS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - started
        metrics = service.metrics()

    if failures:
        for client_id, exc in failures:
            print(f"client {client_id} failed: {exc!r}", file=sys.stderr)
        return 1

    print(f"store               : {store_dir}")
    print(f"clients x workloads : {N_CLIENTS} x {len(WORKLOADS)} "
          f"({metrics.submitted_runs} requests in {elapsed:.2f}s)")
    print(f"backend lowers      : {metrics.misses} "
          f"(disk hits {metrics.disk_hits}, memory hits {metrics.memory_hits}, "
          f"coalesced {metrics.coalesced})")
    print()
    print(service_metrics_table(metrics))

    if args.expect_warm and metrics.misses > 0:
        print(f"\nexpected a warm store but {metrics.misses} lower(s) "
              f"happened", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
