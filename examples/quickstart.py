#!/usr/bin/env python3
"""Quickstart: compile a Fortran stencil kernel with the stencil flow and run it.

This reproduces the paper's core idea on the Listing 1 example: unmodified
serial Fortran goes in, the compiler discovers the stencil in the FIR, extracts
it into a separate stencil-dialect module, and the program runs with the
optimised (vectorised) stencil execution path — all through the fluent API:
``repro.compile(source)`` returns a ``Program``, ``program.lower("cpu", ...)``
a compiled handle you derive and run.

Usage::

    PYTHONPATH=src python examples/quickstart.py [--execution-mode MODE] [--threads N]

where MODE is ``interpret`` (scalar oracle, the default), ``vectorize``
(compiled NumPy whole-array kernels) or ``crosscheck`` (run both, compare).
``--threads N`` (with vectorize/crosscheck) executes each compiled sweep as
tiles of its outermost dimension on a persistent N-worker thread pool.
"""

import argparse

import numpy as np

import repro
from repro.ir import print_module

FORTRAN_SOURCE = """
subroutine average(data)
  implicit none
  integer, parameter :: n = 128
  real(kind=8), intent(inout) :: data(n, n)
  integer :: i, j
  do i = 2, n - 1
    do j = 2, n - 1
      data(j, i) = (data(j, i-1) + data(j, i+1) + data(j-1, i) + data(j+1, i)) * 0.25
    end do
  end do
end subroutine average
"""


def main(execution_mode: str = "interpret", threads: int = 1) -> float:
    # 1. Compile: Fortran -> FIR -> stencil discovery -> extraction.
    program = repro.compile(FORTRAN_SOURCE)
    compiled = program.lower("cpu", execution_mode=execution_mode,
                             threads=threads)
    print(f"execution mode      : {execution_mode} (threads={threads})")
    if threads > 1 and execution_mode == "interpret":
        print("note: --threads only affects compiled sweeps; the scalar "
              "'interpret' mode runs single-threaded "
              "(use --execution-mode vectorize or crosscheck)")
    print(f"discovered stencils : {compiled.discovered_stencils}")
    print(f"extracted functions : {compiled.extracted_functions}")

    # 2. Inspect the extracted stencil module (the paper's Listing 2 shape).
    print("\n--- extracted stencil module (excerpt) ---")
    print("\n".join(print_module(compiled.stencil_module).splitlines()[:24]))

    # 3. Execute and check against a numpy reference.
    rng = np.random.default_rng(0)
    data = np.asfortranarray(rng.random((128, 128)))
    expected = data.copy()
    expected[1:-1, 1:-1] = (
        expected[1:-1, :-2] + expected[1:-1, 2:]
        + expected[:-2, 1:-1] + expected[2:, 1:-1]
    ) * 0.25

    compiled.run("average", data)
    error = float(np.abs(data - expected).max())
    print("\nmax |error| vs numpy reference:", error)
    return error


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--execution-mode",
        choices=("interpret", "vectorize", "crosscheck"),
        default="interpret",
        help="how the interpreter executes the extracted stencil",
    )
    parser.add_argument(
        "--threads",
        type=int,
        default=1,
        help="worker threads for tiled parallel execution of compiled sweeps",
    )
    args = parser.parse_args()
    main(args.execution_mode, threads=args.threads)
