
subroutine kernel_s11(a)
  implicit none
  integer, parameter :: n1 = 5
  real(kind=8), intent(inout) :: a(n1)
  integer :: i
  do i = 2, n1 - 1
      a(i) = 1.000d0
  end do
end subroutine kernel_s11
