
subroutine kernel_s17(a)
  implicit none
  integer, parameter :: n1 = 5
  real(kind=8), intent(inout) :: a(n1)
  integer :: i
  do i = 2, n1 - 1
      a(i) = 0.981d0
  end do
end subroutine kernel_s17
