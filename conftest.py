"""Repo-level pytest configuration.

Registers the ``slow_figure`` marker and the ``--figures`` flag that opts the
paper-figure benchmarks back in; the skip logic itself lives in
``benchmarks/conftest.py`` so it only applies to the benchmark tree.  The
tier-1 command (``PYTHONPATH=src python -m pytest -x -q``) therefore runs the
full correctness suite plus the fast benchmark smoke checks, while the
pytest-benchmark timing runs stay behind ``--figures``.

``--fuzz-seeds N`` scales the differential fuzz test
(``tests/fuzz/test_differential_fuzz.py``) from the fast tier-1 smoke
(default 10 seeds) to a deep local run without code edits, e.g.::

    PYTHONPATH=src python -m pytest tests/fuzz -q --fuzz-seeds 200
"""


def pytest_addoption(parser):
    parser.addoption(
        "--figures",
        action="store_true",
        default=False,
        help="run the slow paper-figure benchmarks (skipped by default)",
    )
    parser.addoption(
        "--fuzz-seeds",
        action="store",
        type=int,
        default=10,
        metavar="N",
        help="seeds for the differential fuzz smoke test (default: 10)",
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "slow_figure: a slow paper-figure benchmark, skipped unless --figures "
        "is passed",
    )
