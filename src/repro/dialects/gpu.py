"""The ``gpu`` dialect: kernels, device memory and host/device transfers.

The paper's GPU flow (§4.3) relies on two data-management strategies that are
both representable here:

* the *initial* approach: ``gpu.host_register`` on every stencil array, which
  pages data across PCIe on demand, and
* the *optimised* approach produced by the bespoke data-management pass:
  explicit ``gpu.alloc`` / ``gpu.memcpy`` / ``gpu.dealloc`` calls inserted
  around the stencil invocations.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..ir.attributes import DenseArrayAttr, StringAttr, SymbolRefAttr, UnitAttr
from ..ir.context import Dialect
from ..ir.operation import Block, Operation, Region, VerifyException
from ..ir.ssa import SSAValue
from ..ir.traits import (
    HasMemoryEffect,
    IsTerminator,
    IsolatedFromAbove,
    NoTerminator,
    SingleBlockRegion,
    SymbolOpInterface,
)
from ..ir.types import FunctionType, MemRefType, TypeAttribute, index


class GPUModuleOp(Operation):
    """``gpu.module`` — container of device kernels."""

    name = "gpu.module"
    traits = (SingleBlockRegion, NoTerminator, IsolatedFromAbove, SymbolOpInterface)

    def __init__(self, sym_name: str, ops: Sequence[Operation] = ()):
        super().__init__(
            attributes={"sym_name": StringAttr(sym_name)},
            regions=[Region([Block(ops=ops)])],
        )

    @property
    def sym_name(self) -> str:
        return self.get_attr("sym_name").data  # type: ignore[union-attr]


class GPUFuncOp(Operation):
    """``gpu.func`` — a device kernel."""

    name = "gpu.func"
    traits = (IsolatedFromAbove, SymbolOpInterface)

    def __init__(self, sym_name: str, arg_types: Sequence[TypeAttribute]):
        region = Region([Block(arg_types=arg_types)])
        super().__init__(
            attributes={
                "sym_name": StringAttr(sym_name),
                "function_type": _function_type_attr(arg_types),
                "kernel": UnitAttr(),
            },
            regions=[region],
        )

    @property
    def sym_name(self) -> str:
        return self.get_attr("sym_name").data  # type: ignore[union-attr]

    @property
    def entry_block(self) -> Block:
        return self.body.block


def _function_type_attr(arg_types: Sequence[TypeAttribute]):
    from ..ir.attributes import TypeAttr

    return TypeAttr(FunctionType(arg_types, ()))


class ReturnOp(Operation):
    """``gpu.return`` — terminator of device kernels."""

    name = "gpu.return"
    traits = (IsTerminator,)

    def __init__(self):
        super().__init__()


class LaunchFuncOp(Operation):
    """``gpu.launch_func`` — launch a kernel with a static grid/block shape.

    Grid and block dimensions are carried as attributes (the sizes are known
    after tiling); operands are the kernel arguments.
    """

    name = "gpu.launch_func"

    def __init__(
        self,
        kernel: str,
        grid_size: Sequence[int],
        block_size: Sequence[int],
        arguments: Sequence[SSAValue] = (),
        asynchronous: bool = False,
    ):
        attributes = {
            "kernel": SymbolRefAttr(kernel),
            "grid_size": DenseArrayAttr(grid_size),
            "block_size": DenseArrayAttr(block_size),
        }
        if asynchronous:
            attributes["async"] = UnitAttr()
        super().__init__(operands=arguments, attributes=attributes)

    @property
    def kernel(self) -> str:
        return self.get_attr("kernel").root  # type: ignore[union-attr]

    @property
    def grid_size(self) -> Sequence[int]:
        return self.get_attr("grid_size").as_tuple()  # type: ignore[union-attr]

    @property
    def block_size(self) -> Sequence[int]:
        return self.get_attr("block_size").as_tuple()  # type: ignore[union-attr]

    def verify_(self) -> None:
        if len(self.grid_size) != 3 or len(self.block_size) != 3:
            raise VerifyException(
                "gpu.launch_func: grid_size and block_size must have 3 entries"
            )


class AllocOp(Operation):
    """``gpu.alloc`` — allocate device memory."""

    name = "gpu.alloc"
    traits = (HasMemoryEffect,)

    def __init__(self, result_type: MemRefType, dynamic_sizes: Sequence[SSAValue] = ()):
        super().__init__(operands=dynamic_sizes, result_types=[result_type])

    @property
    def memref_type(self) -> MemRefType:
        return self.results[0].type  # type: ignore[return-value]


class DeallocOp(Operation):
    """``gpu.dealloc`` — free device memory."""

    name = "gpu.dealloc"
    traits = (HasMemoryEffect,)

    def __init__(self, memref: SSAValue):
        super().__init__(operands=[memref])


class MemcpyOp(Operation):
    """``gpu.memcpy`` — copy between host and device memrefs (dst, src)."""

    name = "gpu.memcpy"
    traits = (HasMemoryEffect,)

    def __init__(self, dst: SSAValue, src: SSAValue):
        super().__init__(operands=[dst, src])

    @property
    def dst(self) -> SSAValue:
        return self.operands[0]

    @property
    def src(self) -> SSAValue:
        return self.operands[1]


class HostRegisterOp(Operation):
    """``gpu.host_register`` — page-lock host memory and make it device
    accessible (the paper's *initial*, slow, data strategy)."""

    name = "gpu.host_register"
    traits = (HasMemoryEffect,)

    def __init__(self, memref: SSAValue):
        super().__init__(operands=[memref])


class HostUnregisterOp(Operation):
    """``gpu.host_unregister`` — undo ``gpu.host_register``."""

    name = "gpu.host_unregister"
    traits = (HasMemoryEffect,)

    def __init__(self, memref: SSAValue):
        super().__init__(operands=[memref])


class _IdOp(Operation):
    """Base of thread/block id and dim queries; the dimension is x, y or z."""

    def __init__(self, dimension: str):
        if dimension not in ("x", "y", "z"):
            raise ValueError("gpu id dimension must be 'x', 'y' or 'z'")
        super().__init__(
            result_types=[index], attributes={"dimension": StringAttr(dimension)}
        )

    @property
    def dimension(self) -> str:
        return self.get_attr("dimension").data  # type: ignore[union-attr]


class ThreadIdOp(_IdOp):
    name = "gpu.thread_id"


class BlockIdOp(_IdOp):
    name = "gpu.block_id"


class BlockDimOp(_IdOp):
    name = "gpu.block_dim"


class GridDimOp(_IdOp):
    name = "gpu.grid_dim"


class GPUBarrierOp(Operation):
    """``gpu.barrier`` — synchronise threads within a block."""

    name = "gpu.barrier"

    def __init__(self):
        super().__init__()


GPU = Dialect(
    "gpu",
    [
        GPUModuleOp,
        GPUFuncOp,
        ReturnOp,
        LaunchFuncOp,
        AllocOp,
        DeallocOp,
        MemcpyOp,
        HostRegisterOp,
        HostUnregisterOp,
        ThreadIdOp,
        BlockIdOp,
        BlockDimOp,
        GridDimOp,
        GPUBarrierOp,
    ],
)

__all__ = [
    "GPUModuleOp",
    "GPUFuncOp",
    "ReturnOp",
    "LaunchFuncOp",
    "AllocOp",
    "DeallocOp",
    "MemcpyOp",
    "HostRegisterOp",
    "HostUnregisterOp",
    "ThreadIdOp",
    "BlockIdOp",
    "BlockDimOp",
    "GridDimOp",
    "GPUBarrierOp",
    "GPU",
]
