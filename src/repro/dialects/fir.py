"""The FIR dialect — Flang's Fortran IR (the subset this flow manipulates).

Flang lowers parsed Fortran to FIR; our mini-Flang frontend
(:mod:`repro.frontend`) produces the same idioms:

* scalar and loop variables live in ``fir.alloca`` slots and are accessed via
  ``fir.load`` / ``fir.store``,
* arrays are ``fir.alloca`` (stack) or ``fir.allocmem`` (heap) of
  ``!fir.array<...>`` sequence types,
* array element addresses are computed with ``fir.coordinate_of``,
* counted loops are ``fir.do_loop`` with an ``index`` block argument,
* ``fir.convert`` performs Fortran's implicit numeric conversions and
  ``fir.no_reassoc`` blocks reassociation exactly as described in §3.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence, Tuple

from ..ir.attributes import StringAttr, TypeAttr, UnitAttr
from ..ir.context import Dialect
from ..ir.operation import Block, Operation, Region, VerifyException
from ..ir.ssa import BlockArgument, SSAValue
from ..ir.traits import HasMemoryEffect, IsTerminator, SingleBlockRegion
from ..ir.types import DYNAMIC, IndexType, TypeAttribute, index


# ---------------------------------------------------------------------------
# FIR types
# ---------------------------------------------------------------------------


class ReferenceType(TypeAttribute):
    """``!fir.ref<T>`` — the address of a T in memory."""

    name = "fir.ref"

    def __init__(self, element_type: TypeAttribute):
        self.element_type = element_type

    def _key(self) -> Tuple[Any, ...]:
        return (self.element_type,)

    def print(self) -> str:
        return f"!fir.ref<{self.element_type.print()}>"


class HeapType(TypeAttribute):
    """``!fir.heap<T>`` — a heap allocation of T (result of ``fir.allocmem``)."""

    name = "fir.heap"

    def __init__(self, element_type: TypeAttribute):
        self.element_type = element_type

    def _key(self) -> Tuple[Any, ...]:
        return (self.element_type,)

    def print(self) -> str:
        return f"!fir.heap<{self.element_type.print()}>"


class SequenceType(TypeAttribute):
    """``!fir.array<d0 x d1 x ... x T>`` — a Fortran array value type.

    Extents use :data:`repro.ir.types.DYNAMIC` for assumed/deferred shapes.
    Fortran is column-major; the shape here is stored in *declaration order*
    (first extent varies fastest), matching Flang.
    """

    name = "fir.array"

    def __init__(self, shape: Sequence[int], element_type: TypeAttribute):
        self.shape: Tuple[int, ...] = tuple(int(s) for s in shape)
        self.element_type = element_type

    @property
    def rank(self) -> int:
        return len(self.shape)

    def has_static_shape(self) -> bool:
        return all(s != DYNAMIC for s in self.shape)

    def num_elements(self) -> Optional[int]:
        if not self.has_static_shape():
            return None
        total = 1
        for extent in self.shape:
            total *= extent
        return total

    def _key(self) -> Tuple[Any, ...]:
        return (self.shape, self.element_type)

    def print(self) -> str:
        dims = "x".join("?" if s == DYNAMIC else str(s) for s in self.shape)
        return f"!fir.array<{dims}x{self.element_type.print()}>"


class LLVMPointerType(TypeAttribute):
    """``!fir.llvm_ptr<T>`` — FIR's view of an LLVM pointer.

    The paper relies on the fact that this is semantically identical to the
    ``llvm`` dialect pointer, so an FIR module can pass one to an extracted
    stencil function that accepts the LLVM form (see §3).
    """

    name = "fir.llvm_ptr"

    def __init__(self, element_type: TypeAttribute):
        self.element_type = element_type

    def _key(self) -> Tuple[Any, ...]:
        return (self.element_type,)

    def print(self) -> str:
        return f"!fir.llvm_ptr<{self.element_type.print()}>"


def is_reference_like(t: TypeAttribute) -> bool:
    """References, heap pointers and llvm_ptrs all address memory."""
    return isinstance(t, (ReferenceType, HeapType, LLVMPointerType))


def element_type_of(t: TypeAttribute) -> TypeAttribute:
    """The pointee of a reference-like type, looking through sequences."""
    if is_reference_like(t):
        inner = t.element_type  # type: ignore[union-attr]
        if isinstance(inner, SequenceType):
            return inner.element_type
        return inner
    if isinstance(t, SequenceType):
        return t.element_type
    raise TypeError(f"type {t.print()} has no element type")


def array_shape_of(t: TypeAttribute) -> Optional[Tuple[int, ...]]:
    """The declared shape behind a reference-like type, or None for scalars."""
    if is_reference_like(t):
        inner = t.element_type  # type: ignore[union-attr]
        if isinstance(inner, SequenceType):
            return inner.shape
        return None
    if isinstance(t, SequenceType):
        return t.shape
    return None


# ---------------------------------------------------------------------------
# FIR operations
# ---------------------------------------------------------------------------


class AllocaOp(Operation):
    """``fir.alloca`` — stack allocation; result is ``!fir.ref<in_type>``."""

    name = "fir.alloca"
    traits = (HasMemoryEffect,)

    def __init__(
        self,
        in_type: TypeAttribute,
        uniq_name: Optional[str] = None,
        bindc_name: Optional[str] = None,
        dynamic_extents: Sequence[SSAValue] = (),
    ):
        attributes = {"in_type": TypeAttr(in_type)}
        if uniq_name is not None:
            attributes["uniq_name"] = StringAttr(uniq_name)
        if bindc_name is not None:
            attributes["bindc_name"] = StringAttr(bindc_name)
        super().__init__(
            operands=dynamic_extents,
            result_types=[ReferenceType(in_type)],
            attributes=attributes,
        )

    @property
    def in_type(self) -> TypeAttribute:
        return self.get_attr("in_type").type  # type: ignore[union-attr]

    @property
    def uniq_name(self) -> Optional[str]:
        attr = self.get_attr_or_none("uniq_name")
        return attr.data if isinstance(attr, StringAttr) else None

    def verify_(self) -> None:
        result_type = self.results[0].type
        if not isinstance(result_type, ReferenceType):
            raise VerifyException("fir.alloca: result must be a !fir.ref")
        if result_type.element_type != self.in_type:
            raise VerifyException("fir.alloca: result pointee must equal in_type")


class AllocMemOp(Operation):
    """``fir.allocmem`` — heap allocation; result is ``!fir.heap<in_type>``."""

    name = "fir.allocmem"
    traits = (HasMemoryEffect,)

    def __init__(
        self,
        in_type: TypeAttribute,
        uniq_name: Optional[str] = None,
        dynamic_extents: Sequence[SSAValue] = (),
    ):
        attributes = {"in_type": TypeAttr(in_type)}
        if uniq_name is not None:
            attributes["uniq_name"] = StringAttr(uniq_name)
        super().__init__(
            operands=dynamic_extents,
            result_types=[HeapType(in_type)],
            attributes=attributes,
        )

    @property
    def in_type(self) -> TypeAttribute:
        return self.get_attr("in_type").type  # type: ignore[union-attr]

    @property
    def uniq_name(self) -> Optional[str]:
        attr = self.get_attr_or_none("uniq_name")
        return attr.data if isinstance(attr, StringAttr) else None


class FreeMemOp(Operation):
    """``fir.freemem`` — release a heap allocation."""

    name = "fir.freemem"
    traits = (HasMemoryEffect,)

    def __init__(self, heapref: SSAValue):
        super().__init__(operands=[heapref])


class DeclareOp(Operation):
    """``fir.declare`` — bind a memory reference to a source-level variable name."""

    name = "fir.declare"

    def __init__(self, memref: SSAValue, uniq_name: str):
        super().__init__(
            operands=[memref],
            result_types=[memref.type],
            attributes={"uniq_name": StringAttr(uniq_name)},
        )

    @property
    def memref(self) -> SSAValue:
        return self.operands[0]

    @property
    def uniq_name(self) -> str:
        return self.get_attr("uniq_name").data  # type: ignore[union-attr]


class LoadOp(Operation):
    """``fir.load`` — read a value from a reference."""

    name = "fir.load"
    traits = (HasMemoryEffect,)

    def __init__(self, memref: SSAValue):
        if not is_reference_like(memref.type):
            raise TypeError(
                f"fir.load expects a reference-like operand, got {memref.type.print()}"
            )
        pointee = memref.type.element_type  # type: ignore[union-attr]
        super().__init__(operands=[memref], result_types=[pointee])

    @property
    def memref(self) -> SSAValue:
        return self.operands[0]


class StoreOp(Operation):
    """``fir.store`` — write a value through a reference."""

    name = "fir.store"
    traits = (HasMemoryEffect,)

    def __init__(self, value: SSAValue, memref: SSAValue):
        super().__init__(operands=[value, memref])

    @property
    def value(self) -> SSAValue:
        return self.operands[0]

    @property
    def memref(self) -> SSAValue:
        return self.operands[1]

    def verify_(self) -> None:
        ref_type = self.operands[1].type
        if not is_reference_like(ref_type):
            raise VerifyException("fir.store: second operand must be reference-like")


class CoordinateOfOp(Operation):
    """``fir.coordinate_of`` — compute the address of an array element.

    Operands are the array reference followed by one zero-based ``index``
    per dimension (in Fortran declaration order, i.e. first index varies
    fastest).  The result is a reference to the element.
    """

    name = "fir.coordinate_of"

    def __init__(self, ref: SSAValue, indices: Sequence[SSAValue]):
        elem = element_type_of(ref.type)
        super().__init__(operands=[ref, *indices], result_types=[ReferenceType(elem)])

    @property
    def ref(self) -> SSAValue:
        return self.operands[0]

    @property
    def indices(self) -> Sequence[SSAValue]:
        return self.operands[1:]

    def verify_(self) -> None:
        if not is_reference_like(self.operands[0].type):
            raise VerifyException(
                "fir.coordinate_of: first operand must be reference-like"
            )
        shape = array_shape_of(self.operands[0].type)
        if shape is not None and len(self.indices) != len(shape):
            raise VerifyException(
                f"fir.coordinate_of: expected {len(shape)} indices, got {len(self.indices)}"
            )


class ResultOp(Operation):
    """``fir.result`` — terminator of ``fir.do_loop`` / ``fir.if`` bodies."""

    name = "fir.result"
    traits = (IsTerminator,)

    def __init__(self, values: Sequence[SSAValue] = ()):
        super().__init__(operands=values)


class DoLoopOp(Operation):
    """``fir.do_loop`` — Fortran counted DO loop.

    Operands are lower bound, upper bound (inclusive, Fortran semantics) and
    step, all of ``index`` type.  The single body block receives the loop
    index as its argument.
    """

    name = "fir.do_loop"
    traits = (SingleBlockRegion,)

    def __init__(
        self,
        lower_bound: SSAValue,
        upper_bound: SSAValue,
        step: SSAValue,
        body: Optional[Region] = None,
        unordered: bool = False,
    ):
        if body is None:
            body = Region([Block(arg_types=[index])])
        attributes = {}
        if unordered:
            attributes["unordered"] = UnitAttr()
        super().__init__(
            operands=[lower_bound, upper_bound, step],
            regions=[body],
            attributes=attributes,
        )

    @property
    def lower_bound(self) -> SSAValue:
        return self.operands[0]

    @property
    def upper_bound(self) -> SSAValue:
        return self.operands[1]

    @property
    def step(self) -> SSAValue:
        return self.operands[2]

    @property
    def induction_variable(self) -> BlockArgument:
        return self.body.block.args[0]

    def verify_(self) -> None:
        block = self.body.block
        if len(block.args) != 1 or not isinstance(block.args[0].type, IndexType):
            raise VerifyException(
                "fir.do_loop: body block must have exactly one index argument"
            )


class IfOp(Operation):
    """``fir.if`` — conditional execution in FIR."""

    name = "fir.if"

    def __init__(
        self,
        condition: SSAValue,
        then_region: Optional[Region] = None,
        else_region: Optional[Region] = None,
    ):
        if then_region is None:
            then_region = Region([Block()])
        if else_region is None:
            else_region = Region()
        super().__init__(operands=[condition], regions=[then_region, else_region])

    @property
    def condition(self) -> SSAValue:
        return self.operands[0]


class ConvertOp(Operation):
    """``fir.convert`` — numeric / reference conversions.

    This is also the operation Flang uses to reduce array references to
    ``!fir.llvm_ptr`` values when interfacing with foreign code, which is how
    the extracted stencil functions receive their data (see §3).
    """

    name = "fir.convert"

    def __init__(self, value: SSAValue, result_type: TypeAttribute):
        super().__init__(operands=[value], result_types=[result_type])

    @property
    def value(self) -> SSAValue:
        return self.operands[0]


class NoReassocOp(Operation):
    """``fir.no_reassoc`` — barrier preventing reassociation of its operand."""

    name = "fir.no_reassoc"

    def __init__(self, value: SSAValue):
        super().__init__(operands=[value], result_types=[value.type])

    @property
    def value(self) -> SSAValue:
        return self.operands[0]


class CallOp(Operation):
    """``fir.call`` — call a function from FIR."""

    name = "fir.call"

    def __init__(
        self,
        callee: str,
        arguments: Sequence[SSAValue],
        result_types: Sequence[TypeAttribute] = (),
    ):
        from ..ir.attributes import SymbolRefAttr

        super().__init__(
            operands=arguments,
            result_types=result_types,
            attributes={"callee": SymbolRefAttr(callee)},
        )

    @property
    def callee(self) -> str:
        return self.get_attr("callee").root  # type: ignore[union-attr]


class UnreachableOp(Operation):
    """``fir.unreachable`` — marks unreachable control flow."""

    name = "fir.unreachable"
    traits = (IsTerminator,)

    def __init__(self):
        super().__init__()


# ---------------------------------------------------------------------------
# Dialect registration (including textual type parsers)
# ---------------------------------------------------------------------------


def _parse_ref(parser) -> ReferenceType:
    parser.expect("<")
    elem = parser.parse_type()
    parser.expect(">")
    return ReferenceType(elem)


def _parse_heap(parser) -> HeapType:
    parser.expect("<")
    elem = parser.parse_type()
    parser.expect(">")
    return HeapType(elem)


def _parse_llvm_ptr(parser) -> LLVMPointerType:
    parser.expect("<")
    elem = parser.parse_type()
    parser.expect(">")
    return LLVMPointerType(elem)


def _parse_array(parser) -> SequenceType:
    shape, elem = parser._parse_shaped_body()
    return SequenceType(shape, elem)


FIR = Dialect(
    "fir",
    [
        AllocaOp,
        AllocMemOp,
        FreeMemOp,
        DeclareOp,
        LoadOp,
        StoreOp,
        CoordinateOfOp,
        ResultOp,
        DoLoopOp,
        IfOp,
        ConvertOp,
        NoReassocOp,
        CallOp,
        UnreachableOp,
    ],
    type_parsers={
        "ref": _parse_ref,
        "heap": _parse_heap,
        "llvm_ptr": _parse_llvm_ptr,
        "array": _parse_array,
    },
)

__all__ = [
    "ReferenceType",
    "HeapType",
    "SequenceType",
    "LLVMPointerType",
    "is_reference_like",
    "element_type_of",
    "array_shape_of",
    "AllocaOp",
    "AllocMemOp",
    "FreeMemOp",
    "DeclareOp",
    "LoadOp",
    "StoreOp",
    "CoordinateOfOp",
    "ResultOp",
    "DoLoopOp",
    "IfOp",
    "ConvertOp",
    "NoReassocOp",
    "CallOp",
    "UnreachableOp",
    "FIR",
]
