"""The ``scf`` dialect: structured control flow (serial and parallel loops, if).

The stencil lowering targets ``scf.parallel`` + ``scf.for`` on CPUs and a
coalesced ``scf.parallel`` on GPUs, exactly as described in §3 of the paper.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..ir.attributes import IntegerAttr, StringAttr
from ..ir.context import Dialect
from ..ir.operation import Block, Operation, Region, VerifyException
from ..ir.ssa import BlockArgument, SSAValue
from ..ir.traits import IsTerminator, SingleBlockRegion
from ..ir.types import IndexType, TypeAttribute, i64, index


class YieldOp(Operation):
    """``scf.yield`` — terminator of scf region bodies."""

    name = "scf.yield"
    traits = (IsTerminator,)

    def __init__(self, values: Sequence[SSAValue] = ()):
        super().__init__(operands=values)


class ForOp(Operation):
    """``scf.for`` — a serial counted loop with optional iteration arguments."""

    name = "scf.for"
    traits = (SingleBlockRegion,)

    def __init__(
        self,
        lower_bound: SSAValue,
        upper_bound: SSAValue,
        step: SSAValue,
        iter_args: Sequence[SSAValue] = (),
        body: Optional[Region] = None,
    ):
        if body is None:
            body = Region([Block(arg_types=[index] + [v.type for v in iter_args])])
        super().__init__(
            operands=[lower_bound, upper_bound, step, *iter_args],
            result_types=[v.type for v in iter_args],
            regions=[body],
        )

    @property
    def lower_bound(self) -> SSAValue:
        return self.operands[0]

    @property
    def upper_bound(self) -> SSAValue:
        return self.operands[1]

    @property
    def step(self) -> SSAValue:
        return self.operands[2]

    @property
    def iter_args(self) -> Sequence[SSAValue]:
        return self.operands[3:]

    @property
    def induction_variable(self) -> BlockArgument:
        return self.body.block.args[0]

    def verify_(self) -> None:
        block = self.body.block
        if not block.args or not isinstance(block.args[0].type, IndexType):
            raise VerifyException("scf.for: first block argument must be of index type")
        if len(block.args) != 1 + len(self.iter_args):
            raise VerifyException(
                "scf.for: block must have one argument per iter_arg plus the induction "
                "variable"
            )


class ParallelOp(Operation):
    """``scf.parallel`` — a multi-dimensional parallel loop nest.

    Operands are ``rank`` lower bounds, ``rank`` upper bounds and ``rank``
    steps; the body block has ``rank`` index arguments.
    """

    name = "scf.parallel"
    traits = (SingleBlockRegion,)

    def __init__(
        self,
        lower_bounds: Sequence[SSAValue],
        upper_bounds: Sequence[SSAValue],
        steps: Sequence[SSAValue],
        body: Optional[Region] = None,
    ):
        rank = len(lower_bounds)
        if len(upper_bounds) != rank or len(steps) != rank:
            raise ValueError("scf.parallel: bounds/steps must all have the same rank")
        if body is None:
            body = Region([Block(arg_types=[index] * rank)])
        super().__init__(
            operands=[*lower_bounds, *upper_bounds, *steps],
            attributes={"rank": IntegerAttr(rank, i64)},
            regions=[body],
        )

    @property
    def rank(self) -> int:
        return int(self.get_attr("rank").value)  # type: ignore[union-attr]

    @property
    def lower_bounds(self) -> Sequence[SSAValue]:
        return self.operands[: self.rank]

    @property
    def upper_bounds(self) -> Sequence[SSAValue]:
        return self.operands[self.rank : 2 * self.rank]

    @property
    def steps(self) -> Sequence[SSAValue]:
        return self.operands[2 * self.rank : 3 * self.rank]

    @property
    def induction_variables(self) -> Sequence[BlockArgument]:
        return self.body.block.args

    def verify_(self) -> None:
        if len(self.operands) != 3 * self.rank:
            raise VerifyException(
                f"scf.parallel: expected {3 * self.rank} operands, got {len(self.operands)}"
            )
        block = self.body.block
        if len(block.args) != self.rank:
            raise VerifyException(
                f"scf.parallel: body must have {self.rank} index arguments"
            )
        for arg in block.args:
            if not isinstance(arg.type, IndexType):
                raise VerifyException("scf.parallel: body arguments must be of index type")


class IfOp(Operation):
    """``scf.if`` — conditional with then/else regions and optional results."""

    name = "scf.if"

    def __init__(
        self,
        condition: SSAValue,
        result_types: Sequence[TypeAttribute] = (),
        then_region: Optional[Region] = None,
        else_region: Optional[Region] = None,
    ):
        if then_region is None:
            then_region = Region([Block()])
        if else_region is None:
            else_region = Region([Block()] if result_types else [])
        super().__init__(
            operands=[condition],
            result_types=result_types,
            regions=[then_region, else_region],
        )

    @property
    def condition(self) -> SSAValue:
        return self.operands[0]

    @property
    def then_block(self) -> Block:
        return self.regions[0].block

    @property
    def else_block(self) -> Optional[Block]:
        return self.regions[1].blocks[0] if self.regions[1].blocks else None


class ReduceOp(Operation):
    """``scf.reduce`` — declares a reduction inside ``scf.parallel`` (modelled
    but unused by the main flow; kept for completeness of the dialect)."""

    name = "scf.reduce"

    def __init__(self, operand: SSAValue, body: Optional[Region] = None):
        if body is None:
            body = Region([Block(arg_types=[operand.type, operand.type])])
        super().__init__(operands=[operand], regions=[body])


class ExecuteRegionOp(Operation):
    """``scf.execute_region`` — an inline region producing values."""

    name = "scf.execute_region"

    def __init__(self, result_types: Sequence[TypeAttribute], body: Optional[Region] = None):
        if body is None:
            body = Region([Block()])
        super().__init__(result_types=result_types, regions=[body])


Scf = Dialect("scf", [YieldOp, ForOp, ParallelOp, IfOp, ReduceOp, ExecuteRegionOp])

__all__ = [
    "YieldOp",
    "ForOp",
    "ParallelOp",
    "IfOp",
    "ReduceOp",
    "ExecuteRegionOp",
    "Scf",
]
