"""The ``memref`` dialect: allocation, load/store and shape queries."""

from __future__ import annotations

from typing import Sequence

from ..ir.attributes import IntegerAttr, UnitAttr
from ..ir.context import Dialect
from ..ir.operation import Operation, VerifyException
from ..ir.ssa import SSAValue
from ..ir.traits import HasMemoryEffect
from ..ir.types import DYNAMIC, IndexType, MemRefType, i64, index


class AllocOp(Operation):
    """``memref.alloc`` — heap allocation of a memref."""

    name = "memref.alloc"
    traits = (HasMemoryEffect,)

    def __init__(self, result_type: MemRefType, dynamic_sizes: Sequence[SSAValue] = ()):
        super().__init__(operands=dynamic_sizes, result_types=[result_type])

    @property
    def memref_type(self) -> MemRefType:
        return self.results[0].type  # type: ignore[return-value]

    def verify_(self) -> None:
        mtype = self.results[0].type
        if not isinstance(mtype, MemRefType):
            raise VerifyException(f"{self.name}: result must be a memref")
        dynamic = sum(1 for s in mtype.shape if s == DYNAMIC)
        if dynamic != len(self.operands):
            raise VerifyException(
                f"{self.name}: expected {dynamic} dynamic size operands, "
                f"got {len(self.operands)}"
            )


class AllocaOp(AllocOp):
    """``memref.alloca`` — stack allocation of a memref."""

    name = "memref.alloca"


class DeallocOp(Operation):
    """``memref.dealloc`` — free a heap allocation."""

    name = "memref.dealloc"
    traits = (HasMemoryEffect,)

    def __init__(self, memref: SSAValue):
        super().__init__(operands=[memref])

    @property
    def memref(self) -> SSAValue:
        return self.operands[0]


class LoadOp(Operation):
    """``memref.load`` — read one element."""

    name = "memref.load"
    traits = (HasMemoryEffect,)

    def __init__(self, memref: SSAValue, indices: Sequence[SSAValue]):
        if not isinstance(memref.type, MemRefType):
            raise TypeError("memref.load expects a memref operand")
        super().__init__(
            operands=[memref, *indices], result_types=[memref.type.element_type]
        )

    @property
    def memref(self) -> SSAValue:
        return self.operands[0]

    @property
    def indices(self) -> Sequence[SSAValue]:
        return self.operands[1:]

    def verify_(self) -> None:
        mtype = self.operands[0].type
        if not isinstance(mtype, MemRefType):
            raise VerifyException("memref.load: first operand must be a memref")
        if len(self.indices) != mtype.rank:
            raise VerifyException(
                f"memref.load: expected {mtype.rank} indices, got {len(self.indices)}"
            )
        for idx in self.indices:
            if not isinstance(idx.type, IndexType):
                raise VerifyException("memref.load: indices must be of index type")


class StoreOp(Operation):
    """``memref.store`` — write one element."""

    name = "memref.store"
    traits = (HasMemoryEffect,)

    def __init__(self, value: SSAValue, memref: SSAValue, indices: Sequence[SSAValue]):
        super().__init__(operands=[value, memref, *indices])

    @property
    def value(self) -> SSAValue:
        return self.operands[0]

    @property
    def memref(self) -> SSAValue:
        return self.operands[1]

    @property
    def indices(self) -> Sequence[SSAValue]:
        return self.operands[2:]

    def verify_(self) -> None:
        mtype = self.operands[1].type
        if not isinstance(mtype, MemRefType):
            raise VerifyException("memref.store: second operand must be a memref")
        if len(self.indices) != mtype.rank:
            raise VerifyException(
                f"memref.store: expected {mtype.rank} indices, got {len(self.indices)}"
            )
        if self.operands[0].type != mtype.element_type:
            raise VerifyException(
                "memref.store: value type must match the memref element type"
            )


class DimOp(Operation):
    """``memref.dim`` — query the extent of one dimension."""

    name = "memref.dim"

    def __init__(self, memref: SSAValue, dimension: SSAValue):
        super().__init__(operands=[memref, dimension], result_types=[index])

    @property
    def memref(self) -> SSAValue:
        return self.operands[0]

    @property
    def dimension(self) -> SSAValue:
        return self.operands[1]


class CopyOp(Operation):
    """``memref.copy`` — copy the contents of one memref into another."""

    name = "memref.copy"
    traits = (HasMemoryEffect,)

    def __init__(self, source: SSAValue, target: SSAValue):
        super().__init__(operands=[source, target])

    @property
    def source(self) -> SSAValue:
        return self.operands[0]

    @property
    def target(self) -> SSAValue:
        return self.operands[1]


class CastOp(Operation):
    """``memref.cast`` — reinterpret a memref with a compatible type."""

    name = "memref.cast"

    def __init__(self, source: SSAValue, result_type: MemRefType):
        super().__init__(operands=[source], result_types=[result_type])

    @property
    def source(self) -> SSAValue:
        return self.operands[0]


MemRef = Dialect(
    "memref",
    [AllocOp, AllocaOp, DeallocOp, LoadOp, StoreOp, DimOp, CopyOp, CastOp],
)

__all__ = [
    "AllocOp",
    "AllocaOp",
    "DeallocOp",
    "LoadOp",
    "StoreOp",
    "DimOp",
    "CopyOp",
    "CastOp",
    "MemRef",
]
