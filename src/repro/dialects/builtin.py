"""The builtin dialect: module container and unrealized conversion casts."""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..ir.attributes import Attribute, StringAttr
from ..ir.context import Dialect
from ..ir.operation import Block, Operation, Region
from ..ir.ssa import SSAValue
from ..ir.traits import IsolatedFromAbove, NoTerminator, SingleBlockRegion
from ..ir.types import TypeAttribute


class ModuleOp(Operation):
    """Top-level container of functions and globals (``builtin.module``)."""

    name = "builtin.module"
    traits = (NoTerminator, SingleBlockRegion, IsolatedFromAbove)

    def __init__(
        self,
        ops: Sequence[Operation] = (),
        attributes: Optional[Dict[str, Attribute]] = None,
        sym_name: Optional[str] = None,
    ):
        attributes = dict(attributes or {})
        if sym_name is not None:
            attributes["sym_name"] = StringAttr(sym_name)
        block = Block(ops=ops)
        super().__init__(attributes=attributes, regions=[Region([block])])

    @property
    def ops(self):
        return self.body.block.ops

    def add_op(self, op: Operation) -> None:
        self.body.block.add_op(op)

    def get_symbol(self, name: str) -> Optional[Operation]:
        """Find a directly nested operation whose ``sym_name`` is ``name``."""
        for op in self.ops:
            sym = op.get_attr_or_none("sym_name")
            if isinstance(sym, StringAttr) and sym.data == name:
                return op
        return None


class UnrealizedConversionCastOp(Operation):
    """Type-system escape hatch converting values between incompatible types."""

    name = "builtin.unrealized_conversion_cast"

    def __init__(self, inputs: Sequence[SSAValue], result_types: Sequence[TypeAttribute]):
        super().__init__(operands=inputs, result_types=result_types)


Builtin = Dialect("builtin", [ModuleOp, UnrealizedConversionCastOp])

__all__ = ["ModuleOp", "UnrealizedConversionCastOp", "Builtin"]
