"""The stencil dialect (Open Earth Compiler / xDSL).

Types:

* ``!stencil.field<[l0,u0]x[l1,u1]x...xT>`` — a named storage field with halo
  bounds, created from external memory (``stencil.external_load``).
* ``!stencil.temp<[l0,u0]x...xT>`` — a value-semantics snapshot of a field used
  as input/output of ``stencil.apply``.

Operations follow the paper's Listing 2: ``stencil.apply`` runs its body once
per output grid point, ``stencil.access`` reads a neighbouring cell at a
constant offset, ``stencil.return`` yields the computed value(s), and
``stencil.load`` / ``stencil.store`` / ``stencil.external_load`` connect
fields to memory.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from ..ir.attributes import DenseArrayAttr, IntegerAttr
from ..ir.context import Dialect
from ..ir.operation import Block, Operation, Region, VerifyException
from ..ir.ssa import SSAValue
from ..ir.traits import IsTerminator, SingleBlockRegion
from ..ir.types import TypeAttribute, i64, index


Bounds = Tuple[Tuple[int, int], ...]


def _normalise_bounds(bounds: Sequence[Sequence[int]]) -> Bounds:
    out: List[Tuple[int, int]] = []
    for b in bounds:
        lb, ub = int(b[0]), int(b[1])
        if ub < lb:
            raise ValueError(f"invalid stencil bound [{lb},{ub}]")
        out.append((lb, ub))
    return tuple(out)


class _BoundedType(TypeAttribute):
    """Shared implementation of field/temp types: per-dimension [lb, ub] bounds."""

    def __init__(self, bounds: Sequence[Sequence[int]], element_type: TypeAttribute):
        self.bounds: Bounds = _normalise_bounds(bounds)
        self.element_type = element_type

    @property
    def rank(self) -> int:
        return len(self.bounds)

    @property
    def shape(self) -> Tuple[int, ...]:
        """Number of grid points covered in each dimension (ub - lb + 1... exclusive).

        Bounds follow the Open Earth convention: ``[lb, ub)`` half-open, so the
        extent is ``ub - lb``.
        """
        return tuple(ub - lb for lb, ub in self.bounds)

    def _key(self) -> Tuple[Any, ...]:
        return (self.bounds, self.element_type)

    def _print_body(self) -> str:
        dims = "x".join(f"[{lb},{ub}]" for lb, ub in self.bounds)
        return f"{dims}x{self.element_type.print()}"


class FieldType(_BoundedType):
    """``!stencil.field<...>`` — storage with halo, backed by external memory."""

    name = "stencil.field"

    def print(self) -> str:
        return f"!stencil.field<{self._print_body()}>"


class TempType(_BoundedType):
    """``!stencil.temp<...>`` — a value-semantics temporary over a sub-domain."""

    name = "stencil.temp"

    def print(self) -> str:
        return f"!stencil.temp<{self._print_body()}>"


class ResultType(TypeAttribute):
    """``!stencil.result<T>`` — the per-cell result inside an apply (kept for
    dialect parity; our flow returns element types directly)."""

    name = "stencil.result"

    def __init__(self, element_type: TypeAttribute):
        self.element_type = element_type

    def _key(self) -> Tuple[Any, ...]:
        return (self.element_type,)

    def print(self) -> str:
        return f"!stencil.result<{self.element_type.print()}>"


# ---------------------------------------------------------------------------
# Operations
# ---------------------------------------------------------------------------


class ExternalLoadOp(Operation):
    """``stencil.external_load`` — view external memory (memref / fir ref /
    llvm_ptr) as a stencil field."""

    name = "stencil.external_load"

    def __init__(self, source: SSAValue, field_type: FieldType):
        super().__init__(operands=[source], result_types=[field_type])

    @property
    def source(self) -> SSAValue:
        return self.operands[0]

    @property
    def field(self) -> SSAValue:
        return self.results[0]


class ExternalStoreOp(Operation):
    """``stencil.external_store`` — write a field back to external memory."""

    name = "stencil.external_store"

    def __init__(self, field: SSAValue, target: SSAValue):
        super().__init__(operands=[field, target])


class CastOp(Operation):
    """``stencil.cast`` — constrain a field to static bounds."""

    name = "stencil.cast"

    def __init__(self, field: SSAValue, result_type: FieldType):
        super().__init__(operands=[field], result_types=[result_type])

    @property
    def field(self) -> SSAValue:
        return self.operands[0]


class LoadOp(Operation):
    """``stencil.load`` — take a read-only temp snapshot of a field."""

    name = "stencil.load"

    def __init__(self, field: SSAValue, result_type: Optional[TempType] = None):
        if result_type is None:
            ftype = field.type
            if not isinstance(ftype, FieldType):
                raise TypeError("stencil.load expects a !stencil.field operand")
            result_type = TempType(ftype.bounds, ftype.element_type)
        super().__init__(operands=[field], result_types=[result_type])

    @property
    def field(self) -> SSAValue:
        return self.operands[0]

    @property
    def temp(self) -> SSAValue:
        return self.results[0]

    def verify_(self) -> None:
        if not isinstance(self.operands[0].type, FieldType):
            raise VerifyException("stencil.load: operand must be a !stencil.field")
        if not isinstance(self.results[0].type, TempType):
            raise VerifyException("stencil.load: result must be a !stencil.temp")


class ApplyOp(Operation):
    """``stencil.apply`` — execute the body once per grid point of the output
    domain ``[lb, ub)``.

    The body block receives one argument per operand (same types); operands
    are typically ``!stencil.temp`` values plus any scalars the computation
    needs.  The terminator is ``stencil.return``.
    """

    name = "stencil.apply"
    traits = (SingleBlockRegion,)

    def __init__(
        self,
        inputs: Sequence[SSAValue],
        lb: Sequence[int],
        ub: Sequence[int],
        result_types: Sequence[TypeAttribute],
        body: Optional[Region] = None,
    ):
        if body is None:
            body = Region([Block(arg_types=[v.type for v in inputs])])
        super().__init__(
            operands=inputs,
            result_types=result_types,
            regions=[body],
            attributes={
                "lb": DenseArrayAttr(lb),
                "ub": DenseArrayAttr(ub),
            },
        )

    @property
    def lb(self) -> Tuple[int, ...]:
        return self.get_attr("lb").as_tuple()  # type: ignore[union-attr]

    @property
    def ub(self) -> Tuple[int, ...]:
        return self.get_attr("ub").as_tuple()  # type: ignore[union-attr]

    @property
    def rank(self) -> int:
        return len(self.lb)

    @property
    def domain_shape(self) -> Tuple[int, ...]:
        return tuple(u - l for l, u in zip(self.lb, self.ub))

    def verify_(self) -> None:
        if len(self.lb) != len(self.ub):
            raise VerifyException("stencil.apply: lb and ub must have the same rank")
        block = self.body.block
        if len(block.args) != len(self.operands):
            raise VerifyException(
                "stencil.apply: body must have one argument per operand"
            )
        for arg, operand in zip(block.args, self.operands):
            if arg.type != operand.type:
                raise VerifyException(
                    "stencil.apply: body argument types must match operand types"
                )
        last = block.last_op
        if last is None or last.name != "stencil.return":
            raise VerifyException("stencil.apply: body must end with stencil.return")
        if len(last.operands) != len(self.results):
            raise VerifyException(
                "stencil.apply: stencil.return operand count must match results"
            )


class AccessOp(Operation):
    """``stencil.access`` — read the input temp at a constant offset from the
    current grid point."""

    name = "stencil.access"

    def __init__(self, temp: SSAValue, offset: Sequence[int]):
        ttype = temp.type
        if not isinstance(ttype, TempType):
            raise TypeError("stencil.access expects a !stencil.temp operand")
        super().__init__(
            operands=[temp],
            result_types=[ttype.element_type],
            attributes={"offset": DenseArrayAttr(offset)},
        )

    @property
    def temp(self) -> SSAValue:
        return self.operands[0]

    @property
    def offset(self) -> Tuple[int, ...]:
        return self.get_attr("offset").as_tuple()  # type: ignore[union-attr]

    def verify_(self) -> None:
        ttype = self.operands[0].type
        if not isinstance(ttype, TempType):
            raise VerifyException("stencil.access: operand must be a !stencil.temp")
        if len(self.offset) != ttype.rank:
            raise VerifyException(
                f"stencil.access: offset rank {len(self.offset)} does not match "
                f"temp rank {ttype.rank}"
            )


class IndexOp(Operation):
    """``stencil.index`` — the current grid point's index along ``dim``."""

    name = "stencil.index"

    def __init__(self, dim: int, offset: Sequence[int] = ()):
        super().__init__(
            result_types=[index],
            attributes={
                "dim": IntegerAttr(dim, i64),
                "offset": DenseArrayAttr(offset),
            },
        )

    @property
    def dim(self) -> int:
        return int(self.get_attr("dim").value)  # type: ignore[union-attr]


class DynAccessOp(Operation):
    """``stencil.dyn_access`` — access at a runtime-computed offset."""

    name = "stencil.dyn_access"

    def __init__(self, temp: SSAValue, offsets: Sequence[SSAValue]):
        ttype = temp.type
        if not isinstance(ttype, TempType):
            raise TypeError("stencil.dyn_access expects a !stencil.temp operand")
        super().__init__(operands=[temp, *offsets], result_types=[ttype.element_type])


class StoreOp(Operation):
    """``stencil.store`` — write a computed temp into a field over ``[lb, ub)``."""

    name = "stencil.store"

    def __init__(self, temp: SSAValue, field: SSAValue, lb: Sequence[int], ub: Sequence[int]):
        super().__init__(
            operands=[temp, field],
            attributes={"lb": DenseArrayAttr(lb), "ub": DenseArrayAttr(ub)},
        )

    @property
    def temp(self) -> SSAValue:
        return self.operands[0]

    @property
    def field(self) -> SSAValue:
        return self.operands[1]

    @property
    def lb(self) -> Tuple[int, ...]:
        return self.get_attr("lb").as_tuple()  # type: ignore[union-attr]

    @property
    def ub(self) -> Tuple[int, ...]:
        return self.get_attr("ub").as_tuple()  # type: ignore[union-attr]

    def verify_(self) -> None:
        if not isinstance(self.operands[0].type, TempType):
            raise VerifyException("stencil.store: first operand must be a !stencil.temp")
        if not isinstance(self.operands[1].type, FieldType):
            raise VerifyException("stencil.store: second operand must be a !stencil.field")


class ReturnOp(Operation):
    """``stencil.return`` — yields the per-grid-point value(s) of an apply."""

    name = "stencil.return"
    traits = (IsTerminator,)

    def __init__(self, values: Sequence[SSAValue]):
        super().__init__(operands=values)


class BufferOp(Operation):
    """``stencil.buffer`` — materialise a temp into its own storage."""

    name = "stencil.buffer"

    def __init__(self, temp: SSAValue):
        super().__init__(operands=[temp], result_types=[temp.type])


# ---------------------------------------------------------------------------
# Textual type parsers
# ---------------------------------------------------------------------------

import re as _re

_BOUND_RE = _re.compile(r"\[\s*(-?\d+)\s*,\s*(-?\d+)\s*\]x")


def _parse_bounded_body(parser) -> Tuple[List[Tuple[int, int]], TypeAttribute]:
    parser.expect("<")
    bounds: List[Tuple[int, int]] = []
    while True:
        parser._skip_ws()
        match = _BOUND_RE.match(parser.text, parser.pos)
        if match is None:
            break
        parser.pos = match.end()
        bounds.append((int(match.group(1)), int(match.group(2))))
    elem = parser.parse_type()
    parser.expect(">")
    return bounds, elem


def _parse_field(parser) -> FieldType:
    bounds, elem = _parse_bounded_body(parser)
    return FieldType(bounds, elem)


def _parse_temp(parser) -> TempType:
    bounds, elem = _parse_bounded_body(parser)
    return TempType(bounds, elem)


def _parse_result(parser) -> ResultType:
    parser.expect("<")
    elem = parser.parse_type()
    parser.expect(">")
    return ResultType(elem)


Stencil = Dialect(
    "stencil",
    [
        ExternalLoadOp,
        ExternalStoreOp,
        CastOp,
        LoadOp,
        ApplyOp,
        AccessOp,
        IndexOp,
        DynAccessOp,
        StoreOp,
        ReturnOp,
        BufferOp,
    ],
    type_parsers={"field": _parse_field, "temp": _parse_temp, "result": _parse_result},
)

__all__ = [
    "FieldType",
    "TempType",
    "ResultType",
    "ExternalLoadOp",
    "ExternalStoreOp",
    "CastOp",
    "LoadOp",
    "ApplyOp",
    "AccessOp",
    "IndexOp",
    "DynAccessOp",
    "StoreOp",
    "ReturnOp",
    "BufferOp",
    "Stencil",
]
