"""The ``func`` dialect: functions, calls and returns."""

from __future__ import annotations

from typing import Optional, Sequence

from ..ir.attributes import StringAttr, SymbolRefAttr, TypeAttr
from ..ir.context import Dialect
from ..ir.operation import Block, Operation, Region, VerifyException
from ..ir.ssa import SSAValue
from ..ir.traits import IsTerminator, IsolatedFromAbove, SymbolOpInterface
from ..ir.types import FunctionType, TypeAttribute


class FuncOp(Operation):
    """``func.func`` — a named function.

    A function with an empty body region acts as a declaration (external
    symbol), which is how the FIR module references the extracted stencil
    functions in the paper's flow.
    """

    name = "func.func"
    traits = (IsolatedFromAbove, SymbolOpInterface)

    def __init__(
        self,
        sym_name: str,
        function_type: FunctionType,
        body: Optional[Region] = None,
        visibility: str = "public",
    ):
        attributes = {
            "sym_name": StringAttr(sym_name),
            "function_type": TypeAttr(function_type),
            "sym_visibility": StringAttr(visibility),
        }
        if body is None:
            body = Region()
        super().__init__(attributes=attributes, regions=[body])

    @staticmethod
    def build(
        sym_name: str,
        arg_types: Sequence[TypeAttribute],
        result_types: Sequence[TypeAttribute],
        visibility: str = "public",
    ) -> "FuncOp":
        """Create a function with an entry block whose args match the signature."""
        func_type = FunctionType(arg_types, result_types)
        region = Region([Block(arg_types=arg_types)])
        return FuncOp(sym_name, func_type, region, visibility)

    @staticmethod
    def declaration(
        sym_name: str,
        arg_types: Sequence[TypeAttribute],
        result_types: Sequence[TypeAttribute],
    ) -> "FuncOp":
        return FuncOp(
            sym_name, FunctionType(arg_types, result_types), Region(), "private"
        )

    @property
    def sym_name(self) -> str:
        return self.get_attr("sym_name").data  # type: ignore[union-attr]

    @property
    def function_type(self) -> FunctionType:
        return self.get_attr("function_type").type  # type: ignore[union-attr]

    @property
    def is_declaration(self) -> bool:
        return len(self.body.blocks) == 0

    @property
    def entry_block(self) -> Block:
        return self.body.blocks[0]

    def verify_(self) -> None:
        if self.is_declaration:
            return
        entry = self.entry_block
        expected = self.function_type.inputs
        actual = tuple(a.type for a in entry.args)
        if expected != actual:
            raise VerifyException(
                f"func.func @{self.sym_name}: entry block argument types "
                f"{[t.print() for t in actual]} do not match the signature "
                f"{[t.print() for t in expected]}"
            )


class ReturnOp(Operation):
    """``func.return`` — terminate a function, yielding its results."""

    name = "func.return"
    traits = (IsTerminator,)

    def __init__(self, values: Sequence[SSAValue] = ()):
        super().__init__(operands=values)

    def verify_(self) -> None:
        parent = self.parent_op()
        if isinstance(parent, FuncOp):
            expected = parent.function_type.results
            actual = tuple(o.type for o in self.operands)
            if expected != actual:
                raise VerifyException(
                    f"func.return: operand types {[t.print() for t in actual]} do not "
                    f"match function results {[t.print() for t in expected]}"
                )


class CallOp(Operation):
    """``func.call`` — direct call to a symbol."""

    name = "func.call"

    def __init__(
        self,
        callee: str,
        arguments: Sequence[SSAValue],
        result_types: Sequence[TypeAttribute] = (),
    ):
        super().__init__(
            operands=arguments,
            result_types=result_types,
            attributes={"callee": SymbolRefAttr(callee)},
        )

    @property
    def callee(self) -> str:
        return self.get_attr("callee").root  # type: ignore[union-attr]


Func = Dialect("func", [FuncOp, ReturnOp, CallOp])

__all__ = ["FuncOp", "ReturnOp", "CallOp", "Func"]
