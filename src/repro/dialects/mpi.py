"""The MPI dialect (xDSL): point-to-point and collective message passing.

The DMP-to-MPI lowering turns ``dmp.halo_swap`` into non-blocking
isend/irecv pairs plus waits; the simulated MPI runtime
(:mod:`repro.runtime.mpi_runtime`) then executes these between in-process
ranks with real data movement.
"""

from __future__ import annotations

from typing import Any, Sequence, Tuple

from ..ir.attributes import IntegerAttr, StringAttr
from ..ir.context import Dialect
from ..ir.operation import Operation
from ..ir.ssa import SSAValue
from ..ir.traits import HasMemoryEffect
from ..ir.types import TypeAttribute, i32, i64


class RequestType(TypeAttribute):
    """``!mpi.request`` — handle for a pending non-blocking operation."""

    name = "mpi.request"

    def _key(self) -> Tuple[Any, ...]:
        return ()

    def print(self) -> str:
        return "!mpi.request"


class StatusType(TypeAttribute):
    """``!mpi.status`` — completion status of a receive."""

    name = "mpi.status"

    def _key(self) -> Tuple[Any, ...]:
        return ()

    def print(self) -> str:
        return "!mpi.status"


class InitOp(Operation):
    """``mpi.init``."""

    name = "mpi.init"
    traits = (HasMemoryEffect,)

    def __init__(self):
        super().__init__()


class FinalizeOp(Operation):
    """``mpi.finalize``."""

    name = "mpi.finalize"
    traits = (HasMemoryEffect,)

    def __init__(self):
        super().__init__()


class CommRankOp(Operation):
    """``mpi.comm.rank`` — this process's rank in MPI_COMM_WORLD."""

    name = "mpi.comm.rank"

    def __init__(self):
        super().__init__(result_types=[i32])


class CommSizeOp(Operation):
    """``mpi.comm.size`` — number of ranks in MPI_COMM_WORLD."""

    name = "mpi.comm.size"

    def __init__(self):
        super().__init__(result_types=[i32])


class _P2POp(Operation):
    """Shared structure of send/recv style operations.

    Operands: buffer (memref / ref), destination-or-source rank (i32), tag (i32).
    """

    def __init__(self, buffer: SSAValue, peer: SSAValue, tag: SSAValue,
                 result_types: Sequence[TypeAttribute] = ()):
        super().__init__(operands=[buffer, peer, tag], result_types=result_types)

    @property
    def buffer(self) -> SSAValue:
        return self.operands[0]

    @property
    def peer(self) -> SSAValue:
        return self.operands[1]

    @property
    def tag(self) -> SSAValue:
        return self.operands[2]


class SendOp(_P2POp):
    """``mpi.send`` — blocking send."""

    name = "mpi.send"
    traits = (HasMemoryEffect,)


class RecvOp(_P2POp):
    """``mpi.recv`` — blocking receive."""

    name = "mpi.recv"
    traits = (HasMemoryEffect,)


class ISendOp(_P2POp):
    """``mpi.isend`` — non-blocking send returning a request."""

    name = "mpi.isend"
    traits = (HasMemoryEffect,)

    def __init__(self, buffer: SSAValue, peer: SSAValue, tag: SSAValue):
        super().__init__(buffer, peer, tag, result_types=[RequestType()])


class IRecvOp(_P2POp):
    """``mpi.irecv`` — non-blocking receive returning a request."""

    name = "mpi.irecv"
    traits = (HasMemoryEffect,)

    def __init__(self, buffer: SSAValue, peer: SSAValue, tag: SSAValue):
        super().__init__(buffer, peer, tag, result_types=[RequestType()])


class WaitOp(Operation):
    """``mpi.wait`` — block until one request completes."""

    name = "mpi.wait"
    traits = (HasMemoryEffect,)

    def __init__(self, request: SSAValue):
        super().__init__(operands=[request])


class WaitAllOp(Operation):
    """``mpi.waitall`` — block until all given requests complete."""

    name = "mpi.waitall"
    traits = (HasMemoryEffect,)

    def __init__(self, requests: Sequence[SSAValue]):
        super().__init__(operands=requests)


class BarrierOp(Operation):
    """``mpi.barrier``."""

    name = "mpi.barrier"
    traits = (HasMemoryEffect,)

    def __init__(self):
        super().__init__()


class AllReduceOp(Operation):
    """``mpi.allreduce`` — reduce a scalar across ranks (sum/min/max)."""

    name = "mpi.allreduce"
    traits = (HasMemoryEffect,)

    def __init__(self, value: SSAValue, op: str = "sum"):
        super().__init__(
            operands=[value],
            result_types=[value.type],
            attributes={"op": StringAttr(op)},
        )

    @property
    def reduction(self) -> str:
        return self.get_attr("op").data  # type: ignore[union-attr]


def _parse_request(parser) -> RequestType:
    return RequestType()


def _parse_status(parser) -> StatusType:
    return StatusType()


MPI = Dialect(
    "mpi",
    [
        InitOp,
        FinalizeOp,
        CommRankOp,
        CommSizeOp,
        SendOp,
        RecvOp,
        ISendOp,
        IRecvOp,
        WaitOp,
        WaitAllOp,
        BarrierOp,
        AllReduceOp,
    ],
    type_parsers={"request": _parse_request, "status": _parse_status},
)

__all__ = [
    "RequestType",
    "StatusType",
    "InitOp",
    "FinalizeOp",
    "CommRankOp",
    "CommSizeOp",
    "SendOp",
    "RecvOp",
    "ISendOp",
    "IRecvOp",
    "WaitOp",
    "WaitAllOp",
    "BarrierOp",
    "AllReduceOp",
    "MPI",
]
