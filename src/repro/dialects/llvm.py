"""A minimal ``llvm`` dialect: pointer type and calls.

Only the pieces needed to mirror the paper's FIR/LLVM pointer interoperability
trick are modelled: the extracted stencil functions accept ``!llvm.ptr``
arguments while the FIR module passes ``!fir.llvm_ptr`` values, the two being
semantically identical (§3).
"""

from __future__ import annotations

from typing import Any, Optional, Sequence, Tuple

from ..ir.attributes import SymbolRefAttr
from ..ir.context import Dialect
from ..ir.operation import Operation
from ..ir.ssa import SSAValue
from ..ir.types import TypeAttribute


class LLVMPointerType(TypeAttribute):
    """``!llvm.ptr`` (optionally carrying a pointee type for readability)."""

    name = "llvm.ptr"

    def __init__(self, pointee: Optional[TypeAttribute] = None):
        self.pointee = pointee

    @property
    def element_type(self) -> Optional[TypeAttribute]:
        return self.pointee

    def _key(self) -> Tuple[Any, ...]:
        return (self.pointee,)

    def print(self) -> str:
        if self.pointee is None:
            return "!llvm.ptr<>"
        return f"!llvm.ptr<{self.pointee.print()}>"


class CallOp(Operation):
    """``llvm.call`` — call into a linked symbol."""

    name = "llvm.call"

    def __init__(
        self,
        callee: str,
        arguments: Sequence[SSAValue],
        result_types: Sequence[TypeAttribute] = (),
    ):
        super().__init__(
            operands=arguments,
            result_types=result_types,
            attributes={"callee": SymbolRefAttr(callee)},
        )

    @property
    def callee(self) -> str:
        return self.get_attr("callee").root  # type: ignore[union-attr]


def _parse_ptr(parser) -> LLVMPointerType:
    if parser.try_consume("<"):
        if parser.try_consume(">"):
            return LLVMPointerType(None)
        pointee = parser.parse_type()
        parser.expect(">")
        return LLVMPointerType(pointee)
    return LLVMPointerType(None)


LLVM = Dialect("llvm", [CallOp], type_parsers={"ptr": _parse_ptr})

__all__ = ["LLVMPointerType", "CallOp", "LLVM"]
