"""The ``omp`` dialect: OpenMP shared-memory parallelism (subset).

``convert-scf-to-openmp`` lowers ``scf.parallel`` into an ``omp.parallel``
region containing an ``omp.wsloop`` worksharing loop, which is the structure
the paper's multithreaded CPU results rely on (Figures 3 and 4).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..ir.attributes import IntegerAttr, StringAttr
from ..ir.context import Dialect
from ..ir.operation import Block, Operation, Region, VerifyException
from ..ir.ssa import SSAValue
from ..ir.traits import IsTerminator, SingleBlockRegion
from ..ir.types import i64, index


class ParallelOp(Operation):
    """``omp.parallel`` — fork a team of threads executing the region."""

    name = "omp.parallel"
    traits = (SingleBlockRegion,)

    def __init__(self, body: Optional[Region] = None, num_threads: Optional[int] = None):
        if body is None:
            body = Region([Block()])
        attributes = {}
        if num_threads is not None:
            attributes["num_threads"] = IntegerAttr(num_threads, i64)
        super().__init__(regions=[body], attributes=attributes)

    @property
    def num_threads(self) -> Optional[int]:
        attr = self.get_attr_or_none("num_threads")
        return int(attr.value) if attr is not None else None


class WsLoopOp(Operation):
    """``omp.wsloop`` — a work-shared loop nest over ``rank`` dimensions.

    Mirrors the structure of ``scf.parallel``: operands are lower bounds,
    upper bounds and steps; the body receives ``rank`` index arguments and is
    terminated by ``omp.yield``.

    The worksharing schedule clause is carried as the ``omp.schedule`` /
    ``omp.chunk_size`` attributes (set by ``convert-scf-to-openmp``); the
    tiled parallel executor honours it when partitioning the outermost loop
    dimension across threads.  The clause is execution policy, not
    semantics, so the kernel compiler excludes it from the structural hash.
    """

    name = "omp.wsloop"
    traits = (SingleBlockRegion,)

    #: Schedule kinds accepted by the ``omp.schedule`` attribute.
    SCHEDULE_KINDS = ("static", "dynamic", "guided")

    def __init__(
        self,
        lower_bounds: Sequence[SSAValue],
        upper_bounds: Sequence[SSAValue],
        steps: Sequence[SSAValue],
        body: Optional[Region] = None,
        schedule: Optional[str] = None,
        chunk_size: Optional[int] = None,
    ):
        rank = len(lower_bounds)
        if body is None:
            body = Region([Block(arg_types=[index] * rank)])
        attributes = {"rank": IntegerAttr(rank, i64)}
        if schedule is not None:
            attributes["omp.schedule"] = StringAttr(schedule)
        if chunk_size is not None:
            attributes["omp.chunk_size"] = IntegerAttr(chunk_size, i64)
        super().__init__(
            operands=[*lower_bounds, *upper_bounds, *steps],
            regions=[body],
            attributes=attributes,
        )

    @property
    def rank(self) -> int:
        return int(self.get_attr("rank").value)  # type: ignore[union-attr]

    @property
    def schedule(self) -> str:
        attr = self.get_attr_or_none("omp.schedule")
        return attr.data if isinstance(attr, StringAttr) else "static"

    @property
    def chunk_size(self) -> Optional[int]:
        attr = self.get_attr_or_none("omp.chunk_size")
        return int(attr.value) if isinstance(attr, IntegerAttr) else None

    @property
    def lower_bounds(self) -> Sequence[SSAValue]:
        return self.operands[: self.rank]

    @property
    def upper_bounds(self) -> Sequence[SSAValue]:
        return self.operands[self.rank : 2 * self.rank]

    @property
    def steps(self) -> Sequence[SSAValue]:
        return self.operands[2 * self.rank :]

    def verify_(self) -> None:
        if len(self.operands) != 3 * self.rank:
            raise VerifyException("omp.wsloop: expected 3*rank operands")
        if len(self.body.block.args) != self.rank:
            raise VerifyException("omp.wsloop: body must have rank index arguments")
        # The accessor properties degrade malformed attributes to defaults;
        # the verifier must reject the malformed attributes themselves.
        schedule_attr = self.get_attr_or_none("omp.schedule")
        if schedule_attr is not None and not isinstance(schedule_attr, StringAttr):
            raise VerifyException("omp.wsloop: omp.schedule must be a string")
        if self.schedule not in self.SCHEDULE_KINDS:
            raise VerifyException(
                f"omp.wsloop: unknown schedule kind '{self.schedule}'"
            )
        chunk_attr = self.get_attr_or_none("omp.chunk_size")
        if chunk_attr is not None and not isinstance(chunk_attr, IntegerAttr):
            raise VerifyException("omp.wsloop: omp.chunk_size must be an integer")
        chunk = self.chunk_size
        if chunk is not None and chunk <= 0:
            raise VerifyException("omp.wsloop: chunk size must be positive")


class YieldOp(Operation):
    """``omp.yield`` — terminator of ``omp.wsloop`` bodies."""

    name = "omp.yield"
    traits = (IsTerminator,)

    def __init__(self, values: Sequence[SSAValue] = ()):
        super().__init__(operands=values)


class TerminatorOp(Operation):
    """``omp.terminator`` — terminator of ``omp.parallel`` regions."""

    name = "omp.terminator"
    traits = (IsTerminator,)

    def __init__(self):
        super().__init__()


class BarrierOp(Operation):
    """``omp.barrier`` — synchronise the thread team."""

    name = "omp.barrier"

    def __init__(self):
        super().__init__()


OMP = Dialect("omp", [ParallelOp, WsLoopOp, YieldOp, TerminatorOp, BarrierOp])

__all__ = ["ParallelOp", "WsLoopOp", "YieldOp", "TerminatorOp", "BarrierOp", "OMP"]
