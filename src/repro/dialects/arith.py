"""The ``arith`` dialect: integer/float arithmetic, comparisons and casts."""

from __future__ import annotations

from typing import Union

from ..ir.attributes import Attribute, FloatAttr, IntegerAttr, StringAttr
from ..ir.context import Dialect
from ..ir.operation import Operation, VerifyException
from ..ir.ssa import SSAValue
from ..ir.traits import Pure
from ..ir.types import (
    FloatType,
    IndexType,
    IntegerType,
    TypeAttribute,
    f64,
    i1,
    index,
)


class ConstantOp(Operation):
    """``arith.constant`` — materialise a compile-time constant."""

    name = "arith.constant"
    traits = (Pure,)

    def __init__(self, value: Union[Attribute, int, float], type: TypeAttribute = None):
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            if type is None:
                type = index if isinstance(value, int) else f64
            if isinstance(type, FloatType):
                value = FloatAttr(float(value), type)
            else:
                value = IntegerAttr(int(value), type)
        if not isinstance(value, (IntegerAttr, FloatAttr)):
            raise TypeError("arith.constant expects an IntegerAttr or FloatAttr value")
        super().__init__(attributes={"value": value}, result_types=[value.type])

    @property
    def value(self) -> Attribute:
        return self.get_attr("value")

    @property
    def literal(self) -> Union[int, float]:
        return self.value.value  # type: ignore[union-attr]

    def verify_(self) -> None:
        value = self.get_attr("value")
        if not isinstance(value, (IntegerAttr, FloatAttr)):
            raise VerifyException("arith.constant 'value' must be an integer or float attr")
        if self.results[0].type != value.type:
            raise VerifyException(
                "arith.constant result type must match the value attribute type"
            )

    @staticmethod
    def from_int(value: int, type: TypeAttribute = index) -> "ConstantOp":
        return ConstantOp(IntegerAttr(value, type))

    @staticmethod
    def from_float(value: float, type: TypeAttribute = f64) -> "ConstantOp":
        return ConstantOp(FloatAttr(value, type))


class _BinaryOp(Operation):
    """Shared implementation of two-operand, one-result arithmetic ops."""

    traits = (Pure,)

    #: Set by subclasses: result type equals operand type unless overridden.
    result_is_bool = False

    def __init__(self, lhs: SSAValue, rhs: SSAValue, result_type: TypeAttribute = None):
        if result_type is None:
            result_type = i1 if self.result_is_bool else lhs.type
        super().__init__(operands=[lhs, rhs], result_types=[result_type])

    @property
    def lhs(self) -> SSAValue:
        return self.operands[0]

    @property
    def rhs(self) -> SSAValue:
        return self.operands[1]

    def verify_(self) -> None:
        if self.operands[0].type != self.operands[1].type:
            raise VerifyException(
                f"{self.name}: operand types differ "
                f"({self.operands[0].type.print()} vs {self.operands[1].type.print()})"
            )


class _FloatBinaryOp(_BinaryOp):
    def verify_(self) -> None:
        super().verify_()
        if not isinstance(self.operands[0].type, FloatType):
            raise VerifyException(f"{self.name}: operands must be floats")


class _IntBinaryOp(_BinaryOp):
    def verify_(self) -> None:
        super().verify_()
        if not isinstance(self.operands[0].type, (IntegerType, IndexType)):
            raise VerifyException(f"{self.name}: operands must be integers or index")


class AddfOp(_FloatBinaryOp):
    name = "arith.addf"


class SubfOp(_FloatBinaryOp):
    name = "arith.subf"


class MulfOp(_FloatBinaryOp):
    name = "arith.mulf"


class DivfOp(_FloatBinaryOp):
    name = "arith.divf"


class MaximumfOp(_FloatBinaryOp):
    name = "arith.maximumf"


class MinimumfOp(_FloatBinaryOp):
    name = "arith.minimumf"


class AddiOp(_IntBinaryOp):
    name = "arith.addi"


class SubiOp(_IntBinaryOp):
    name = "arith.subi"


class MuliOp(_IntBinaryOp):
    name = "arith.muli"


class DivSIOp(_IntBinaryOp):
    name = "arith.divsi"


class RemSIOp(_IntBinaryOp):
    name = "arith.remsi"


class MaxSIOp(_IntBinaryOp):
    name = "arith.maxsi"


class MinSIOp(_IntBinaryOp):
    name = "arith.minsi"


class AndIOp(_IntBinaryOp):
    name = "arith.andi"


class OrIOp(_IntBinaryOp):
    name = "arith.ori"


class XOrIOp(_IntBinaryOp):
    name = "arith.xori"


class NegfOp(Operation):
    name = "arith.negf"
    traits = (Pure,)

    def __init__(self, operand: SSAValue):
        super().__init__(operands=[operand], result_types=[operand.type])

    @property
    def operand(self) -> SSAValue:
        return self.operands[0]


#: Valid comparison predicates for floats and integers respectively.
FLOAT_PREDICATES = ("oeq", "one", "olt", "ole", "ogt", "oge")
INT_PREDICATES = ("eq", "ne", "slt", "sle", "sgt", "sge")


class CmpfOp(_BinaryOp):
    """``arith.cmpf`` — ordered float comparison producing an ``i1``."""

    name = "arith.cmpf"
    result_is_bool = True

    def __init__(self, predicate: str, lhs: SSAValue, rhs: SSAValue):
        super().__init__(lhs, rhs, i1)
        self.attributes["predicate"] = StringAttr(predicate)

    @property
    def predicate(self) -> str:
        return self.get_attr("predicate").data  # type: ignore[union-attr]

    def verify_(self) -> None:
        super().verify_()
        if self.predicate not in FLOAT_PREDICATES:
            raise VerifyException(f"arith.cmpf: invalid predicate '{self.predicate}'")


class CmpiOp(_BinaryOp):
    """``arith.cmpi`` — signed integer comparison producing an ``i1``."""

    name = "arith.cmpi"
    result_is_bool = True

    def __init__(self, predicate: str, lhs: SSAValue, rhs: SSAValue):
        super().__init__(lhs, rhs, i1)
        self.attributes["predicate"] = StringAttr(predicate)

    @property
    def predicate(self) -> str:
        return self.get_attr("predicate").data  # type: ignore[union-attr]

    def verify_(self) -> None:
        super().verify_()
        if self.predicate not in INT_PREDICATES:
            raise VerifyException(f"arith.cmpi: invalid predicate '{self.predicate}'")


class SelectOp(Operation):
    """``arith.select`` — choose between two values based on an ``i1``."""

    name = "arith.select"
    traits = (Pure,)

    def __init__(self, condition: SSAValue, true_value: SSAValue, false_value: SSAValue):
        super().__init__(
            operands=[condition, true_value, false_value],
            result_types=[true_value.type],
        )

    def verify_(self) -> None:
        if self.operands[1].type != self.operands[2].type:
            raise VerifyException("arith.select: value operands must have the same type")


class _CastOp(Operation):
    traits = (Pure,)

    def __init__(self, operand: SSAValue, result_type: TypeAttribute):
        super().__init__(operands=[operand], result_types=[result_type])

    @property
    def operand(self) -> SSAValue:
        return self.operands[0]


class IndexCastOp(_CastOp):
    name = "arith.index_cast"


class SIToFPOp(_CastOp):
    name = "arith.sitofp"


class FPToSIOp(_CastOp):
    name = "arith.fptosi"


class ExtFOp(_CastOp):
    name = "arith.extf"


class TruncFOp(_CastOp):
    name = "arith.truncf"


Arith = Dialect(
    "arith",
    [
        ConstantOp,
        AddfOp,
        SubfOp,
        MulfOp,
        DivfOp,
        MaximumfOp,
        MinimumfOp,
        AddiOp,
        SubiOp,
        MuliOp,
        DivSIOp,
        RemSIOp,
        MaxSIOp,
        MinSIOp,
        AndIOp,
        OrIOp,
        XOrIOp,
        NegfOp,
        CmpfOp,
        CmpiOp,
        SelectOp,
        IndexCastOp,
        SIToFPOp,
        FPToSIOp,
        ExtFOp,
        TruncFOp,
    ],
)

__all__ = [
    "ConstantOp",
    "AddfOp",
    "SubfOp",
    "MulfOp",
    "DivfOp",
    "MaximumfOp",
    "MinimumfOp",
    "AddiOp",
    "SubiOp",
    "MuliOp",
    "DivSIOp",
    "RemSIOp",
    "MaxSIOp",
    "MinSIOp",
    "AndIOp",
    "OrIOp",
    "XOrIOp",
    "NegfOp",
    "CmpfOp",
    "CmpiOp",
    "SelectOp",
    "IndexCastOp",
    "SIToFPOp",
    "FPToSIOp",
    "ExtFOp",
    "TruncFOp",
    "FLOAT_PREDICATES",
    "INT_PREDICATES",
    "Arith",
]
