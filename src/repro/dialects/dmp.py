"""The DMP (Distributed Memory Parallelism) dialect.

This is the xDSL dialect the paper lowers stencils through on the way to MPI
(§2.1, §4.4).  It expresses node-level parallelism in a technology-agnostic
way: a process grid decomposition of the global domain plus halo exchange
operations, without committing to MPI yet.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence, Tuple

from ..ir.attributes import DenseArrayAttr, IntegerAttr
from ..ir.context import Dialect
from ..ir.operation import Operation, VerifyException
from ..ir.ssa import SSAValue
from ..ir.traits import HasMemoryEffect
from ..ir.types import TypeAttribute, i64, index


class GridType(TypeAttribute):
    """``!dmp.grid<PxQ[xR]>`` — a logical process grid."""

    name = "dmp.grid"

    def __init__(self, shape: Sequence[int]):
        self.shape: Tuple[int, ...] = tuple(int(s) for s in shape)

    def _key(self) -> Tuple[Any, ...]:
        return (self.shape,)

    def print(self) -> str:
        return "!dmp.grid<" + "x".join(str(s) for s in self.shape) + ">"


class GridOp(Operation):
    """``dmp.grid`` — materialise the process grid decomposition."""

    name = "dmp.grid"

    def __init__(self, shape: Sequence[int]):
        super().__init__(
            result_types=[GridType(shape)],
            attributes={"shape": DenseArrayAttr(shape)},
        )

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.get_attr("shape").as_tuple()  # type: ignore[union-attr]


class RankOp(Operation):
    """``dmp.rank`` — this process's coordinate along ``dim`` of the grid."""

    name = "dmp.rank"

    def __init__(self, grid: SSAValue, dim: int):
        super().__init__(
            operands=[grid],
            result_types=[index],
            attributes={"dim": IntegerAttr(dim, i64)},
        )

    @property
    def dim(self) -> int:
        return int(self.get_attr("dim").value)  # type: ignore[union-attr]


class LocalDomainOp(Operation):
    """``dmp.local_domain`` — the sub-domain bounds owned by this rank.

    Results are ``(lb, ub)`` pairs for each decomposed dimension of the global
    iteration space described by the ``global_lb`` / ``global_ub`` attributes.
    """

    name = "dmp.local_domain"

    def __init__(self, grid: SSAValue, global_lb: Sequence[int], global_ub: Sequence[int]):
        rank = len(global_lb)
        super().__init__(
            operands=[grid],
            result_types=[index] * (2 * rank),
            attributes={
                "global_lb": DenseArrayAttr(global_lb),
                "global_ub": DenseArrayAttr(global_ub),
            },
        )

    @property
    def global_lb(self) -> Tuple[int, ...]:
        return self.get_attr("global_lb").as_tuple()  # type: ignore[union-attr]

    @property
    def global_ub(self) -> Tuple[int, ...]:
        return self.get_attr("global_ub").as_tuple()  # type: ignore[union-attr]

    def verify_(self) -> None:
        rank = len(self.global_lb)
        if len(self.results) != 2 * rank:
            raise VerifyException(
                "dmp.local_domain: must produce a (lb, ub) pair per dimension"
            )


class HaloSwapOp(Operation):
    """``dmp.halo_swap`` — exchange halo regions of a field with neighbours.

    ``halo`` gives the halo width per dimension; ``decomposed_dims`` lists the
    dimensions that are split across the process grid.
    """

    name = "dmp.halo_swap"
    traits = (HasMemoryEffect,)

    def __init__(
        self,
        field: SSAValue,
        grid: SSAValue,
        halo: Sequence[int],
        decomposed_dims: Optional[Sequence[int]] = None,
    ):
        if decomposed_dims is None:
            decomposed_dims = list(range(len(halo)))
        super().__init__(
            operands=[field, grid],
            attributes={
                "halo": DenseArrayAttr(halo),
                "decomposed_dims": DenseArrayAttr(decomposed_dims),
            },
        )

    @property
    def field(self) -> SSAValue:
        return self.operands[0]

    @property
    def grid(self) -> SSAValue:
        return self.operands[1]

    @property
    def halo(self) -> Tuple[int, ...]:
        return self.get_attr("halo").as_tuple()  # type: ignore[union-attr]

    @property
    def decomposed_dims(self) -> Tuple[int, ...]:
        return self.get_attr("decomposed_dims").as_tuple()  # type: ignore[union-attr]


class GatherOp(Operation):
    """``dmp.gather`` — gather a distributed field onto the root rank."""

    name = "dmp.gather"
    traits = (HasMemoryEffect,)

    def __init__(self, field: SSAValue, grid: SSAValue):
        super().__init__(operands=[field, grid])


def _parse_grid_type(parser) -> GridType:
    parser.expect("<")
    shape = [parser.parse_integer()]
    while parser.try_consume("x"):
        shape.append(parser.parse_integer())
    parser.expect(">")
    return GridType(shape)


DMP = Dialect(
    "dmp",
    [GridOp, RankOp, LocalDomainOp, HaloSwapOp, GatherOp],
    type_parsers={"grid": _parse_grid_type},
)

__all__ = [
    "GridType",
    "GridOp",
    "RankOp",
    "LocalDomainOp",
    "HaloSwapOp",
    "GatherOp",
    "DMP",
]
