"""Dialect definitions and the convenience all-dialect registration helper."""

from ..ir.context import Context
from .arith import Arith
from .builtin import Builtin
from .dmp import DMP
from .fir import FIR
from .func import Func
from .gpu import GPU
from .llvm import LLVM
from .math_dialect import Math
from .memref import MemRef
from .mpi import MPI
from .omp import OMP
from .scf import Scf
from .stencil import Stencil

ALL_DIALECTS = [
    Builtin,
    Arith,
    Math,
    Func,
    Scf,
    MemRef,
    FIR,
    Stencil,
    OMP,
    GPU,
    DMP,
    MPI,
    LLVM,
]


def register_all_dialects(ctx: Context) -> Context:
    """Register every dialect shipped by this package into ``ctx``."""
    for dialect in ALL_DIALECTS:
        ctx.register_dialect(dialect)
    return ctx


__all__ = ["ALL_DIALECTS", "register_all_dialects"]
