"""The ``math`` dialect: transcendental and other math intrinsics.

Flang lowers Fortran intrinsics such as ``sqrt``/``abs``/``exp`` to this
dialect, which is registered with ``mlir-opt`` and therefore survives the
stencil extraction unchanged (see §3 of the paper).
"""

from __future__ import annotations

from ..ir.context import Dialect
from ..ir.operation import Operation, VerifyException
from ..ir.ssa import SSAValue
from ..ir.traits import Pure
from ..ir.types import FloatType


class _UnaryMathOp(Operation):
    traits = (Pure,)

    def __init__(self, operand: SSAValue):
        super().__init__(operands=[operand], result_types=[operand.type])

    @property
    def operand(self) -> SSAValue:
        return self.operands[0]

    def verify_(self) -> None:
        if not isinstance(self.operands[0].type, FloatType):
            raise VerifyException(f"{self.name}: operand must be a float")


class SqrtOp(_UnaryMathOp):
    name = "math.sqrt"


class AbsFOp(_UnaryMathOp):
    name = "math.absf"


class SinOp(_UnaryMathOp):
    name = "math.sin"


class CosOp(_UnaryMathOp):
    name = "math.cos"


class TanOp(_UnaryMathOp):
    name = "math.tan"


class TanhOp(_UnaryMathOp):
    name = "math.tanh"


class ExpOp(_UnaryMathOp):
    name = "math.exp"


class LogOp(_UnaryMathOp):
    name = "math.log"


class Log10Op(_UnaryMathOp):
    name = "math.log10"


class PowFOp(Operation):
    """``math.powf`` — floating point exponentiation."""

    name = "math.powf"
    traits = (Pure,)

    def __init__(self, base: SSAValue, exponent: SSAValue):
        super().__init__(operands=[base, exponent], result_types=[base.type])

    @property
    def lhs(self) -> SSAValue:
        return self.operands[0]

    @property
    def rhs(self) -> SSAValue:
        return self.operands[1]


class FmaOp(Operation):
    """``math.fma`` — fused multiply add ``a*b + c``."""

    name = "math.fma"
    traits = (Pure,)

    def __init__(self, a: SSAValue, b: SSAValue, c: SSAValue):
        super().__init__(operands=[a, b, c], result_types=[a.type])


Math = Dialect(
    "math",
    [SqrtOp, AbsFOp, SinOp, CosOp, TanOp, TanhOp, ExpOp, LogOp, Log10Op, PowFOp, FmaOp],
)

__all__ = [
    "SqrtOp",
    "AbsFOp",
    "SinOp",
    "CosOp",
    "TanOp",
    "TanhOp",
    "ExpOp",
    "LogOp",
    "Log10Op",
    "PowFOp",
    "FmaOp",
    "Math",
]
