"""Attribute system for the IR.

Attributes are immutable, uniqued-by-value pieces of compile-time data attached
to operations (and, for :class:`TypeAttribute` subclasses, to SSA values).  The
design mirrors MLIR/xDSL: every attribute knows how to print itself in the
generic textual syntax and compares structurally.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Sequence, Tuple


class Attribute:
    """Base class of all attributes.

    Attributes are immutable value objects: equality and hashing are structural,
    based on :meth:`_key`.
    """

    #: Dialect-qualified name used by the printer/parser, e.g. ``"arith.fastmath"``.
    name: str = "attribute"

    def _key(self) -> Tuple[Any, ...]:
        raise NotImplementedError(
            f"{type(self).__name__} must implement _key() for structural equality"
        )

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if type(self) is not type(other):
            return False
        return self._key() == other._key()  # type: ignore[union-attr]

    def __hash__(self) -> int:
        return hash((type(self).__name__,) + self._key())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self._key()})"

    def print(self) -> str:
        """Return the textual form of this attribute (generic syntax)."""
        raise NotImplementedError(type(self).__name__)


class TypeAttribute(Attribute):
    """Marker base class: attributes that can be used as SSA value types."""

    def print(self) -> str:
        raise NotImplementedError(type(self).__name__)


# ---------------------------------------------------------------------------
# Scalar / builtin attributes
# ---------------------------------------------------------------------------


class UnitAttr(Attribute):
    """A valueless attribute whose presence alone conveys information."""

    name = "unit"

    def _key(self) -> Tuple[Any, ...]:
        return ()

    def print(self) -> str:
        return "unit"


class StringAttr(Attribute):
    """A string constant."""

    name = "string"

    def __init__(self, data: str):
        if not isinstance(data, str):
            raise TypeError(f"StringAttr expects str, got {type(data).__name__}")
        self.data = data

    def _key(self) -> Tuple[Any, ...]:
        return (self.data,)

    def print(self) -> str:
        escaped = self.data.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'


class BoolAttr(Attribute):
    """A boolean constant."""

    name = "bool"

    def __init__(self, value: bool):
        self.value = bool(value)

    def _key(self) -> Tuple[Any, ...]:
        return (self.value,)

    def print(self) -> str:
        return "true" if self.value else "false"


class IntegerAttr(Attribute):
    """An integer constant carrying its type (width)."""

    name = "integer"

    def __init__(self, value: int, type: "TypeAttribute"):
        self.value = int(value)
        self.type = type

    def _key(self) -> Tuple[Any, ...]:
        return (self.value, self.type)

    def print(self) -> str:
        return f"{self.value} : {self.type.print()}"

    @staticmethod
    def from_int(value: int, width: int = 64) -> "IntegerAttr":
        from .types import IntegerType

        return IntegerAttr(value, IntegerType(width))

    @staticmethod
    def from_index(value: int) -> "IntegerAttr":
        from .types import IndexType

        return IntegerAttr(value, IndexType())


class FloatAttr(Attribute):
    """A floating point constant carrying its type."""

    name = "float"

    def __init__(self, value: float, type: "TypeAttribute"):
        self.value = float(value)
        self.type = type

    def _key(self) -> Tuple[Any, ...]:
        return (self.value, self.type)

    def print(self) -> str:
        return f"{self.value!r} : {self.type.print()}"

    @staticmethod
    def from_float(value: float, width: int = 64) -> "FloatAttr":
        from .types import FloatType

        return FloatAttr(value, FloatType(width))


class ArrayAttr(Attribute):
    """An ordered list of attributes."""

    name = "array"

    def __init__(self, data: Iterable[Attribute]):
        self.data: Tuple[Attribute, ...] = tuple(data)
        for elem in self.data:
            if not isinstance(elem, Attribute):
                raise TypeError(
                    f"ArrayAttr elements must be Attributes, got {type(elem).__name__}"
                )

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self.data)

    def __len__(self) -> int:
        return len(self.data)

    def __getitem__(self, idx: int) -> Attribute:
        return self.data[idx]

    def _key(self) -> Tuple[Any, ...]:
        return (self.data,)

    def print(self) -> str:
        return "[" + ", ".join(a.print() for a in self.data) + "]"


class DenseArrayAttr(Attribute):
    """A flat list of integers (used e.g. for stencil bounds / offsets)."""

    name = "dense_array"

    def __init__(self, values: Iterable[int]):
        self.values: Tuple[int, ...] = tuple(int(v) for v in values)

    def __iter__(self) -> Iterator[int]:
        return iter(self.values)

    def __len__(self) -> int:
        return len(self.values)

    def __getitem__(self, idx: int) -> int:
        return self.values[idx]

    def as_tuple(self) -> Tuple[int, ...]:
        return self.values

    def _key(self) -> Tuple[Any, ...]:
        return (self.values,)

    def print(self) -> str:
        return "array<i64: " + ", ".join(str(v) for v in self.values) + ">"


class DictionaryAttr(Attribute):
    """A mapping from names to attributes."""

    name = "dictionary"

    def __init__(self, data: dict):
        items = []
        for key, value in data.items():
            if not isinstance(key, str):
                raise TypeError("DictionaryAttr keys must be strings")
            if not isinstance(value, Attribute):
                raise TypeError("DictionaryAttr values must be Attributes")
            items.append((key, value))
        self.data: Tuple[Tuple[str, Attribute], ...] = tuple(sorted(items))

    def as_dict(self) -> dict:
        return dict(self.data)

    def _key(self) -> Tuple[Any, ...]:
        return (self.data,)

    def print(self) -> str:
        inner = ", ".join(f"{k} = {v.print()}" for k, v in self.data)
        return "{" + inner + "}"


class SymbolRefAttr(Attribute):
    """A reference to a symbol (e.g. a function) by name."""

    name = "symbol_ref"

    def __init__(self, root: str, nested: Sequence[str] = ()):
        self.root = root
        self.nested: Tuple[str, ...] = tuple(nested)

    @property
    def string_value(self) -> str:
        return self.root if not self.nested else "::".join((self.root,) + self.nested)

    def _key(self) -> Tuple[Any, ...]:
        return (self.root, self.nested)

    def print(self) -> str:
        out = f"@{self.root}"
        for part in self.nested:
            out += f"::@{part}"
        return out


class TypeAttr(Attribute):
    """Wraps a type so it can be stored in an attribute dictionary."""

    name = "type"

    def __init__(self, type: TypeAttribute):
        if not isinstance(type, TypeAttribute):
            raise TypeError("TypeAttr expects a TypeAttribute")
        self.type = type

    def _key(self) -> Tuple[Any, ...]:
        return (self.type,)

    def print(self) -> str:
        return self.type.print()


class DenseElementsAttr(Attribute):
    """A dense constant over a shaped type (used for small array constants)."""

    name = "dense"

    def __init__(self, values: Iterable[float], type: TypeAttribute):
        self.values: Tuple[float, ...] = tuple(values)
        self.type = type

    def _key(self) -> Tuple[Any, ...]:
        return (self.values, self.type)

    def print(self) -> str:
        vals = ", ".join(repr(v) for v in self.values)
        return f"dense<[{vals}]> : {self.type.print()}"


__all__ = [
    "Attribute",
    "TypeAttribute",
    "UnitAttr",
    "StringAttr",
    "BoolAttr",
    "IntegerAttr",
    "FloatAttr",
    "ArrayAttr",
    "DenseArrayAttr",
    "DictionaryAttr",
    "SymbolRefAttr",
    "TypeAttr",
    "DenseElementsAttr",
]
