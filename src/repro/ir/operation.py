"""Operations, blocks and regions — the structural core of the IR.

The three classes are mutually recursive (operations contain regions, regions
contain blocks, blocks contain operations) and therefore live in one module.
``repro.ir`` re-exports them individually.
"""

from __future__ import annotations

from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from .attributes import Attribute, TypeAttribute
from .ssa import BlockArgument, OpResult, SSAValue, Use


class IRError(Exception):
    """Base class for IR construction / manipulation errors."""


class VerifyException(IRError):
    """Raised when an operation or module fails verification."""


class Operation:
    """A generic SSA operation.

    Concrete operations subclass this and set :attr:`name`; the base class is
    also usable directly for unregistered operations (e.g. round-tripping IR
    containing dialects we do not model).
    """

    #: Fully qualified operation name, e.g. ``"arith.addf"``.
    name: str = "builtin.unregistered"

    #: Trait classes attached to the operation (see :mod:`repro.ir.traits`).
    traits: Tuple[type, ...] = ()

    def __init__(
        self,
        operands: Sequence[SSAValue] = (),
        result_types: Sequence[TypeAttribute] = (),
        attributes: Optional[Dict[str, Attribute]] = None,
        regions: Sequence["Region"] = (),
    ):
        self._operands: List[SSAValue] = []
        self.results: List[OpResult] = [
            OpResult(t, self, i) for i, t in enumerate(result_types)
        ]
        self.attributes: Dict[str, Attribute] = dict(attributes or {})
        self.regions: List[Region] = []
        self.parent: Optional[Block] = None

        for operand in operands:
            self.add_operand(operand)
        for region in regions:
            self.add_region(region)

    # ------------------------------------------------------------------
    # Operand management
    # ------------------------------------------------------------------

    @property
    def operands(self) -> Tuple[SSAValue, ...]:
        return tuple(self._operands)

    def add_operand(self, value: SSAValue) -> None:
        if not isinstance(value, SSAValue):
            raise IRError(
                f"operand of {self.name} must be an SSAValue, got {type(value).__name__}"
            )
        index = len(self._operands)
        self._operands.append(value)
        value.add_use(Use(self, index))

    def set_operand(self, index: int, value: SSAValue) -> None:
        old = self._operands[index]
        old.remove_use(Use(self, index))
        self._operands[index] = value
        value.add_use(Use(self, index))

    def set_operands(self, values: Sequence[SSAValue]) -> None:
        """Replace the whole operand list."""
        for i, operand in enumerate(self._operands):
            operand.remove_use(Use(self, i))
        self._operands = []
        for value in values:
            self.add_operand(value)

    def drop_all_operand_uses(self) -> None:
        for i, operand in enumerate(self._operands):
            operand.remove_use(Use(self, i))
        self._operands = []

    # ------------------------------------------------------------------
    # Results / attributes
    # ------------------------------------------------------------------

    @property
    def result(self) -> OpResult:
        if len(self.results) != 1:
            raise IRError(
                f"operation {self.name} has {len(self.results)} results; "
                "'.result' requires exactly one"
            )
        return self.results[0]

    def get_attr(self, name: str) -> Attribute:
        try:
            return self.attributes[name]
        except KeyError:
            raise VerifyException(
                f"operation {self.name} is missing required attribute '{name}'"
            ) from None

    def get_attr_or_none(self, name: str) -> Optional[Attribute]:
        return self.attributes.get(name)

    # ------------------------------------------------------------------
    # Region management
    # ------------------------------------------------------------------

    def add_region(self, region: "Region") -> None:
        if region.parent is not None:
            raise IRError("region is already attached to an operation")
        region.parent = self
        self.regions.append(region)

    @property
    def body(self) -> "Region":
        """Convenience accessor for single-region operations."""
        if len(self.regions) != 1:
            raise IRError(f"operation {self.name} has {len(self.regions)} regions")
        return self.regions[0]

    # ------------------------------------------------------------------
    # Position / structure queries
    # ------------------------------------------------------------------

    def parent_block(self) -> Optional["Block"]:
        return self.parent

    def parent_region(self) -> Optional["Region"]:
        return self.parent.parent if self.parent is not None else None

    def parent_op(self) -> Optional["Operation"]:
        region = self.parent_region()
        return region.parent if region is not None else None

    def is_ancestor_of(self, other: "Operation") -> bool:
        current: Optional[Operation] = other
        while current is not None:
            if current is self:
                return True
            current = current.parent_op()
        return False

    def next_op(self) -> Optional["Operation"]:
        if self.parent is None:
            return None
        ops = self.parent.ops
        idx = ops.index(self)
        return ops[idx + 1] if idx + 1 < len(ops) else None

    def prev_op(self) -> Optional["Operation"]:
        if self.parent is None:
            return None
        ops = self.parent.ops
        idx = ops.index(self)
        return ops[idx - 1] if idx > 0 else None

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def detach(self) -> "Operation":
        """Remove the operation from its parent block without destroying it."""
        if self.parent is not None:
            self.parent._detach_op(self)
        return self

    def erase(self, *, safe: bool = True) -> None:
        """Remove the operation from the IR and drop its operand uses.

        With ``safe=True`` (the default) erasing an operation whose results are
        still used raises :class:`IRError`.
        """
        if safe:
            for res in self.results:
                if res.has_uses:
                    raise IRError(
                        f"cannot erase {self.name}: result %{res.index} still has "
                        f"{len(res.uses)} use(s)"
                    )
        self.detach()
        self.drop_all_operand_uses()
        # Recursively erase nested operations so their operand uses are released.
        for region in self.regions:
            for block in region.blocks:
                for op in list(block.ops):
                    op.erase(safe=False)

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------

    def walk(self, *, include_self: bool = True) -> Iterator["Operation"]:
        """Pre-order walk over this operation and everything nested inside it."""
        if include_self:
            yield self
        for region in self.regions:
            for block in region.blocks:
                for op in list(block.ops):
                    yield from op.walk(include_self=True)

    def walk_type(self, op_type: type) -> Iterator["Operation"]:
        for op in self.walk():
            if isinstance(op, op_type):
                yield op

    # ------------------------------------------------------------------
    # Cloning
    # ------------------------------------------------------------------

    def clone(
        self, value_map: Optional[Dict[SSAValue, SSAValue]] = None
    ) -> "Operation":
        """Deep-copy the operation (and nested regions).

        ``value_map`` maps values defined *outside* the clone to replacements;
        it is extended with mappings for every value defined inside.
        """
        if value_map is None:
            value_map = {}
        new_operands = [value_map.get(o, o) for o in self._operands]
        new_op = object.__new__(type(self))
        Operation.__init__(
            new_op,
            operands=new_operands,
            result_types=[r.type for r in self.results],
            attributes=dict(self.attributes),
        )
        for old_res, new_res in zip(self.results, new_op.results):
            value_map[old_res] = new_res
            new_res.name_hint = old_res.name_hint
        for region in self.regions:
            new_op.add_region(region.clone(value_map))
        return new_op

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------

    def verify_(self) -> None:
        """Per-operation verification hook; subclasses override."""

    def verify(self) -> None:
        """Verify this operation and everything nested within it."""
        for i, operand in enumerate(self._operands):
            found = any(
                use.operation is self and use.index == i for use in operand.uses
            )
            if not found:
                raise VerifyException(
                    f"{self.name}: operand {i} does not have a registered use"
                )
        for region in self.regions:
            if region.parent is not self:
                raise VerifyException(f"{self.name}: region has wrong parent")
            for block in region.blocks:
                if block.parent is not region:
                    raise VerifyException(f"{self.name}: block has wrong parent region")
                for op in block.ops:
                    if op.parent is not block:
                        raise VerifyException(
                            f"{self.name}: nested op {op.name} has wrong parent block"
                        )
        for trait in self.traits:
            verifier = getattr(trait, "verify_trait", None)
            if verifier is not None:
                verifier(self)
        self.verify_()
        for region in self.regions:
            for block in region.blocks:
                for op in block.ops:
                    op.verify()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} '{self.name}'>"


class Block:
    """A straight-line sequence of operations with block arguments."""

    def __init__(
        self,
        arg_types: Sequence[TypeAttribute] = (),
        ops: Sequence[Operation] = (),
    ):
        self.args: List[BlockArgument] = [
            BlockArgument(t, self, i) for i, t in enumerate(arg_types)
        ]
        self._ops: List[Operation] = []
        self.parent: Optional[Region] = None
        for op in ops:
            self.add_op(op)

    # -- argument management --------------------------------------------

    def add_arg(self, type: TypeAttribute) -> BlockArgument:
        arg = BlockArgument(type, self, len(self.args))
        self.args.append(arg)
        return arg

    # -- op list management ----------------------------------------------

    @property
    def ops(self) -> Tuple[Operation, ...]:
        return tuple(self._ops)

    @property
    def first_op(self) -> Optional[Operation]:
        return self._ops[0] if self._ops else None

    @property
    def last_op(self) -> Optional[Operation]:
        return self._ops[-1] if self._ops else None

    def add_op(self, op: Operation) -> None:
        if op.parent is not None:
            raise IRError(f"operation {op.name} is already attached to a block")
        op.parent = self
        self._ops.append(op)

    def add_ops(self, ops: Iterable[Operation]) -> None:
        for op in ops:
            self.add_op(op)

    def index_of(self, op: Operation) -> int:
        for i, existing in enumerate(self._ops):
            if existing is op:
                return i
        raise IRError(f"operation {op.name} is not in this block")

    def insert_op_at(self, index: int, op: Operation) -> None:
        if op.parent is not None:
            raise IRError(f"operation {op.name} is already attached to a block")
        op.parent = self
        self._ops.insert(index, op)

    def insert_op_before(self, new_op: Operation, existing: Operation) -> None:
        self.insert_op_at(self.index_of(existing), new_op)

    def insert_op_after(self, new_op: Operation, existing: Operation) -> None:
        self.insert_op_at(self.index_of(existing) + 1, new_op)

    def insert_ops_before(
        self, new_ops: Sequence[Operation], existing: Operation
    ) -> None:
        for op in new_ops:
            self.insert_op_before(op, existing)

    def _detach_op(self, op: Operation) -> None:
        self._ops.remove(op)
        op.parent = None

    def erase_op(self, op: Operation, *, safe: bool = True) -> None:
        if op.parent is not self:
            raise IRError("operation is not in this block")
        op.erase(safe=safe)

    # -- queries ----------------------------------------------------------

    def walk(self) -> Iterator[Operation]:
        for op in list(self._ops):
            yield from op.walk()

    def parent_op(self) -> Optional[Operation]:
        return self.parent.parent if self.parent is not None else None

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Block with {len(self._ops)} ops, {len(self.args)} args>"


class Region:
    """A list of blocks owned by an operation."""

    def __init__(self, blocks: Sequence[Block] = ()):
        self.blocks: List[Block] = []
        self.parent: Optional[Operation] = None
        for block in blocks:
            self.add_block(block)

    @property
    def block(self) -> Block:
        """Convenience accessor for single-block regions."""
        if len(self.blocks) != 1:
            raise IRError(f"region has {len(self.blocks)} blocks, expected exactly 1")
        return self.blocks[0]

    @property
    def first_block(self) -> Optional[Block]:
        return self.blocks[0] if self.blocks else None

    def add_block(self, block: Block) -> None:
        if block.parent is not None:
            raise IRError("block is already attached to a region")
        block.parent = self
        self.blocks.append(block)

    def walk(self) -> Iterator[Operation]:
        for block in self.blocks:
            yield from block.walk()

    def clone(self, value_map: Optional[Dict[SSAValue, SSAValue]] = None) -> "Region":
        if value_map is None:
            value_map = {}
        new_region = Region()
        # First create all blocks and their arguments so forward references work.
        for block in self.blocks:
            new_block = Block(arg_types=[a.type for a in block.args])
            for old_arg, new_arg in zip(block.args, new_block.args):
                value_map[old_arg] = new_arg
                new_arg.name_hint = old_arg.name_hint
            new_region.add_block(new_block)
        for block, new_block in zip(self.blocks, new_region.blocks):
            for op in block.ops:
                new_block.add_op(op.clone(value_map))
        return new_region

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Region with {len(self.blocks)} blocks>"


__all__ = ["Operation", "Block", "Region", "IRError", "VerifyException"]
