"""Textual IR printer (MLIR generic operation syntax).

The printer emits every operation in the generic form::

    %0 = "arith.addf"(%1, %2) : (f64, f64) -> f64
    "func.return"(%0) : (f64) -> ()

Regions are printed inline between ``({`` and ``})``.  The output of
:func:`print_module` is accepted by :mod:`repro.ir.parser`, and the pair is
round-trip stable (property-tested).
"""

from __future__ import annotations

from io import StringIO
from typing import Dict, Optional

from .attributes import Attribute
from .operation import Block, Operation, Region
from .ssa import SSAValue


class Printer:
    """Stateful printer tracking SSA value names and indentation."""

    def __init__(self, indent_width: int = 2):
        self._out = StringIO()
        self._indent = 0
        self._indent_width = indent_width
        self._value_names: Dict[int, str] = {}
        self._used_names: set = set()
        self._next_id = 0
        self._next_block_id = 0
        self._block_names: Dict[int, str] = {}

    # -- low level emit -------------------------------------------------------

    def _emit(self, text: str) -> None:
        self._out.write(text)

    def _newline(self) -> None:
        self._out.write("\n" + " " * (self._indent * self._indent_width))

    def result(self) -> str:
        return self._out.getvalue()

    # -- naming ----------------------------------------------------------------

    def name_of(self, value: SSAValue) -> str:
        key = id(value)
        if key in self._value_names:
            return self._value_names[key]
        hint = value.name_hint
        if hint and hint not in self._used_names:
            name = hint
        else:
            name = str(self._next_id)
            self._next_id += 1
            while name in self._used_names:
                name = str(self._next_id)
                self._next_id += 1
        self._value_names[key] = name
        self._used_names.add(name)
        return name

    def block_name(self, block: Block) -> str:
        key = id(block)
        if key not in self._block_names:
            self._block_names[key] = f"bb{self._next_block_id}"
            self._next_block_id += 1
        return self._block_names[key]

    # -- structural printing -----------------------------------------------------

    def print_operation(self, op: Operation) -> None:
        if op.results:
            names = ", ".join(f"%{self.name_of(r)}" for r in op.results)
            self._emit(f"{names} = ")
        self._emit(f'"{op.name}"')
        self._emit("(")
        self._emit(", ".join(f"%{self.name_of(o)}" for o in op.operands))
        self._emit(")")

        if op.regions:
            self._emit(" (")
            for i, region in enumerate(op.regions):
                if i:
                    self._emit(", ")
                self.print_region(region)
            self._emit(")")

        if op.attributes:
            self._emit(" {")
            parts = []
            for key in sorted(op.attributes):
                parts.append(f'"{key}" = {self.print_attribute(op.attributes[key])}')
            self._emit(", ".join(parts))
            self._emit("}")

        operand_types = ", ".join(o.type.print() for o in op.operands)
        result_types = ", ".join(r.type.print() for r in op.results)
        self._emit(f" : ({operand_types}) -> ({result_types})")

    def print_region(self, region: Region) -> None:
        self._emit("{")
        self._indent += 1
        for block in region.blocks:
            self._newline()
            self.print_block(block)
        self._indent -= 1
        self._newline()
        self._emit("}")

    def print_block(self, block: Block) -> None:
        args = ", ".join(
            f"%{self.name_of(a)} : {a.type.print()}" for a in block.args
        )
        self._emit(f"^{self.block_name(block)}({args}):")
        self._indent += 1
        for op in block.ops:
            self._newline()
            self.print_operation(op)
        self._indent -= 1

    # -- attributes ------------------------------------------------------------------

    def print_attribute(self, attr: Attribute) -> str:
        return attr.print()


def print_op(op: Operation) -> str:
    """Print a single operation (and anything nested) to a string."""
    printer = Printer()
    printer.print_operation(op)
    return printer.result()


def print_module(module: Operation) -> str:
    """Print a top-level module operation followed by a trailing newline."""
    return print_op(module) + "\n"


__all__ = ["Printer", "print_op", "print_module"]
