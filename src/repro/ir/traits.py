"""Operation traits.

Traits declare structural invariants shared by many operations and are checked
during verification.  They are deliberately lightweight: a trait is a class
with an optional ``verify_trait(op)`` static method.
"""

from __future__ import annotations

from .operation import Operation, VerifyException


class IsTerminator:
    """The operation must be the last operation of its block."""

    @staticmethod
    def verify_trait(op: Operation) -> None:
        block = op.parent_block()
        if block is not None and block.last_op is not op:
            raise VerifyException(
                f"terminator {op.name} must be the last operation in its block"
            )


class NoTerminator:
    """Regions of this operation do not require a terminator (e.g. builtin.module)."""


class Pure:
    """The operation has no side effects and can be freely removed when unused."""


class HasMemoryEffect:
    """The operation reads or writes memory and must not be removed by DCE."""


class SingleBlockRegion:
    """Every region of the operation must contain exactly one block."""

    @staticmethod
    def verify_trait(op: Operation) -> None:
        for i, region in enumerate(op.regions):
            if len(region.blocks) != 1:
                raise VerifyException(
                    f"{op.name}: region {i} must contain exactly one block, "
                    f"found {len(region.blocks)}"
                )


class IsolatedFromAbove:
    """Operations inside regions may not reference values defined outside."""

    @staticmethod
    def verify_trait(op: Operation) -> None:
        inner_values = set()
        for region in op.regions:
            for block in region.blocks:
                inner_values.update(id(a) for a in block.args)
                for inner in block.walk():
                    inner_values.update(id(r) for r in inner.results)
                    for b in _nested_block_args(inner):
                        inner_values.add(id(b))
        for region in op.regions:
            for block in region.blocks:
                for inner in block.walk():
                    for operand in inner.operands:
                        if id(operand) not in inner_values:
                            raise VerifyException(
                                f"{op.name}: operation {inner.name} references a value "
                                "defined outside of an IsolatedFromAbove region"
                            )


def _nested_block_args(op: Operation):
    for region in op.regions:
        for block in region.blocks:
            yield from block.args


class SymbolOpInterface:
    """The operation defines a symbol via a ``sym_name`` attribute."""

    @staticmethod
    def verify_trait(op: Operation) -> None:
        if "sym_name" not in op.attributes:
            raise VerifyException(f"{op.name}: symbol operation requires 'sym_name'")


def has_trait(op: Operation, trait: type) -> bool:
    """Return True if ``op`` (or its class) declares ``trait``."""
    return trait in type(op).traits


__all__ = [
    "IsTerminator",
    "NoTerminator",
    "Pure",
    "HasMemoryEffect",
    "SingleBlockRegion",
    "IsolatedFromAbove",
    "SymbolOpInterface",
    "has_trait",
]
