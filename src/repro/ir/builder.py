"""IR builder with insertion points.

The builder keeps an insertion point (a block plus position) and appends
operations there, mirroring ``mlir::OpBuilder`` / xDSL's ``Builder``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, TypeVar

from .operation import Block, IRError, Operation, Region

OpT = TypeVar("OpT", bound=Operation)


class InsertPoint:
    """A position inside a block: before ``anchor`` or at the block's end."""

    def __init__(self, block: Block, anchor: Optional[Operation] = None):
        self.block = block
        self.anchor = anchor

    @staticmethod
    def at_end(block: Block) -> "InsertPoint":
        return InsertPoint(block, None)

    @staticmethod
    def before(op: Operation) -> "InsertPoint":
        if op.parent is None:
            raise IRError("cannot create an insertion point before a detached op")
        return InsertPoint(op.parent, op)

    @staticmethod
    def after(op: Operation) -> "InsertPoint":
        if op.parent is None:
            raise IRError("cannot create an insertion point after a detached op")
        nxt = op.next_op()
        return InsertPoint(op.parent, nxt)


class Builder:
    """Inserts operations at a movable insertion point."""

    def __init__(self, insert_point: Optional[InsertPoint] = None):
        self._insert_point = insert_point

    # -- insertion point management ---------------------------------------

    @property
    def insertion_point(self) -> InsertPoint:
        if self._insert_point is None:
            raise IRError("builder has no insertion point set")
        return self._insert_point

    def set_insertion_point_to_end(self, block: Block) -> None:
        self._insert_point = InsertPoint.at_end(block)

    def set_insertion_point_to_start(self, block: Block) -> None:
        self._insert_point = InsertPoint(block, block.first_op)

    def set_insertion_point_before(self, op: Operation) -> None:
        self._insert_point = InsertPoint.before(op)

    def set_insertion_point_after(self, op: Operation) -> None:
        self._insert_point = InsertPoint.after(op)

    class _Guard:
        def __init__(self, builder: "Builder"):
            self.builder = builder
            self.saved = builder._insert_point

        def __enter__(self) -> "Builder":
            return self.builder

        def __exit__(self, *exc) -> None:
            self.builder._insert_point = self.saved

    def guarded(self) -> "_Guard":
        """Context manager restoring the insertion point on exit."""
        return Builder._Guard(self)

    # -- insertion ----------------------------------------------------------

    def insert(self, op: OpT) -> OpT:
        point = self.insertion_point
        if point.anchor is None:
            point.block.add_op(op)
        else:
            point.block.insert_op_before(op, point.anchor)
        return op

    def insert_all(self, ops: Sequence[Operation]) -> List[Operation]:
        return [self.insert(op) for op in ops]

    # -- convenience --------------------------------------------------------

    @staticmethod
    def at_end(block: Block) -> "Builder":
        return Builder(InsertPoint.at_end(block))

    @staticmethod
    def at_start(block: Block) -> "Builder":
        return Builder(InsertPoint(block, block.first_op))

    @staticmethod
    def before(op: Operation) -> "Builder":
        return Builder(InsertPoint.before(op))

    @staticmethod
    def after(op: Operation) -> "Builder":
        return Builder(InsertPoint.after(op))

    def create_block(self, region: Region, arg_types: Sequence = ()) -> Block:
        """Append a fresh block to ``region`` and move the insertion point there."""
        block = Block(arg_types=arg_types)
        region.add_block(block)
        self.set_insertion_point_to_end(block)
        return block


__all__ = ["Builder", "InsertPoint"]
