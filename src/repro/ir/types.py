"""Builtin type attributes.

These are the core types shared across dialects: integers, floats, index,
function types and memrefs.  Dialect-specific types (FIR references, stencil
fields, ...) live with their dialects but follow the same conventions.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence, Tuple

from .attributes import TypeAttribute

#: Sentinel used in shaped types for a dynamic (unknown at compile time) extent.
DYNAMIC = -1


class IntegerType(TypeAttribute):
    """An integer type of a given bit width, e.g. ``i32``."""

    name = "builtin.integer_type"

    def __init__(self, width: int, signed: bool = True):
        self.width = int(width)
        self.signed = bool(signed)

    def _key(self) -> Tuple[Any, ...]:
        return (self.width, self.signed)

    def print(self) -> str:
        prefix = "i" if self.signed else "ui"
        return f"{prefix}{self.width}"


class IndexType(TypeAttribute):
    """The platform-sized index type used for loop bounds and subscripts."""

    name = "builtin.index_type"

    def _key(self) -> Tuple[Any, ...]:
        return ()

    def print(self) -> str:
        return "index"


class FloatType(TypeAttribute):
    """An IEEE float type of width 16, 32 or 64."""

    name = "builtin.float_type"

    def __init__(self, width: int):
        if width not in (16, 32, 64):
            raise ValueError(f"unsupported float width {width}")
        self.width = int(width)

    def _key(self) -> Tuple[Any, ...]:
        return (self.width,)

    def print(self) -> str:
        return f"f{self.width}"


class NoneType(TypeAttribute):
    """Absence of a value."""

    name = "builtin.none_type"

    def _key(self) -> Tuple[Any, ...]:
        return ()

    def print(self) -> str:
        return "none"


class FunctionType(TypeAttribute):
    """A function signature ``(inputs) -> (results)``."""

    name = "builtin.function_type"

    def __init__(self, inputs: Sequence[TypeAttribute], results: Sequence[TypeAttribute]):
        self.inputs: Tuple[TypeAttribute, ...] = tuple(inputs)
        self.results: Tuple[TypeAttribute, ...] = tuple(results)

    def _key(self) -> Tuple[Any, ...]:
        return (self.inputs, self.results)

    def print(self) -> str:
        ins = ", ".join(t.print() for t in self.inputs)
        if len(self.results) == 1:
            outs = self.results[0].print()
        else:
            outs = "(" + ", ".join(t.print() for t in self.results) + ")"
        return f"({ins}) -> {outs}"


class MemRefType(TypeAttribute):
    """A shaped buffer type, e.g. ``memref<256x256xf64>``.

    ``shape`` entries may be :data:`DYNAMIC` for runtime-determined extents
    (printed as ``?``).
    """

    name = "builtin.memref_type"

    def __init__(self, shape: Sequence[int], element_type: TypeAttribute):
        self.shape: Tuple[int, ...] = tuple(int(s) for s in shape)
        self.element_type = element_type

    @property
    def rank(self) -> int:
        return len(self.shape)

    def has_static_shape(self) -> bool:
        return all(s != DYNAMIC for s in self.shape)

    def num_elements(self) -> Optional[int]:
        if not self.has_static_shape():
            return None
        total = 1
        for s in self.shape:
            total *= s
        return total

    def _key(self) -> Tuple[Any, ...]:
        return (self.shape, self.element_type)

    def print(self) -> str:
        dims = "x".join("?" if s == DYNAMIC else str(s) for s in self.shape)
        if dims:
            return f"memref<{dims}x{self.element_type.print()}>"
        return f"memref<{self.element_type.print()}>"


class TensorType(TypeAttribute):
    """A value-semantics shaped type (rarely used in this flow, kept for parity)."""

    name = "builtin.tensor_type"

    def __init__(self, shape: Sequence[int], element_type: TypeAttribute):
        self.shape: Tuple[int, ...] = tuple(int(s) for s in shape)
        self.element_type = element_type

    def _key(self) -> Tuple[Any, ...]:
        return (self.shape, self.element_type)

    def print(self) -> str:
        dims = "x".join("?" if s == DYNAMIC else str(s) for s in self.shape)
        if dims:
            return f"tensor<{dims}x{self.element_type.print()}>"
        return f"tensor<{self.element_type.print()}>"


# Convenience singletons -----------------------------------------------------

i1 = IntegerType(1)
i32 = IntegerType(32)
i64 = IntegerType(64)
f32 = FloatType(32)
f64 = FloatType(64)
index = IndexType()
none = NoneType()


def is_float_type(t: TypeAttribute) -> bool:
    return isinstance(t, FloatType)


def is_integer_like(t: TypeAttribute) -> bool:
    return isinstance(t, (IntegerType, IndexType))


__all__ = [
    "DYNAMIC",
    "IntegerType",
    "IndexType",
    "FloatType",
    "NoneType",
    "FunctionType",
    "MemRefType",
    "TensorType",
    "i1",
    "i32",
    "i64",
    "f32",
    "f64",
    "index",
    "none",
    "is_float_type",
    "is_integer_like",
]
