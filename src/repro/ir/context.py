"""Dialect and context registries.

A :class:`Context` knows every registered dialect, and hence how to map a
textual operation name back to its Python class and how to parse dialect types
(``!fir.ref<...>``, ``!stencil.temp<...>`` and friends).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Type

from .attributes import TypeAttribute
from .operation import Operation


class Dialect:
    """A named collection of operations and type parsers."""

    def __init__(
        self,
        name: str,
        operations: List[Type[Operation]] = (),
        type_parsers: Optional[Dict[str, Callable]] = None,
    ):
        self.name = name
        self.operations: List[Type[Operation]] = list(operations)
        #: Maps a type mnemonic (e.g. ``"ref"`` for ``!fir.ref<...>``) to a
        #: callable ``(parser) -> TypeAttribute``.
        self.type_parsers: Dict[str, Callable] = dict(type_parsers or {})

    def register_operation(self, op_class: Type[Operation]) -> None:
        self.operations.append(op_class)


class Context:
    """Registry of dialects used when parsing or verifying IR."""

    def __init__(self, allow_unregistered: bool = True):
        self.dialects: Dict[str, Dialect] = {}
        self._op_classes: Dict[str, Type[Operation]] = {}
        self.allow_unregistered = allow_unregistered

    # -- registration --------------------------------------------------------

    def register_dialect(self, dialect: Dialect) -> None:
        if dialect.name in self.dialects:
            raise ValueError(f"dialect '{dialect.name}' registered twice")
        self.dialects[dialect.name] = dialect
        for op_class in dialect.operations:
            self.register_op(op_class)

    def register_op(self, op_class: Type[Operation]) -> None:
        existing = self._op_classes.get(op_class.name)
        if existing is not None and existing is not op_class:
            raise ValueError(f"operation '{op_class.name}' registered twice")
        self._op_classes[op_class.name] = op_class

    # -- lookup ----------------------------------------------------------------

    def get_op_class(self, name: str) -> Optional[Type[Operation]]:
        return self._op_classes.get(name)

    def get_dialect(self, name: str) -> Optional[Dialect]:
        return self.dialects.get(name)

    def get_type_parser(self, dialect_name: str, mnemonic: str) -> Optional[Callable]:
        dialect = self.dialects.get(dialect_name)
        if dialect is None:
            return None
        return dialect.type_parsers.get(mnemonic)

    def clone(self) -> "Context":
        ctx = Context(allow_unregistered=self.allow_unregistered)
        for dialect in self.dialects.values():
            ctx.register_dialect(
                Dialect(dialect.name, list(dialect.operations), dict(dialect.type_parsers))
            )
        return ctx


def default_context() -> Context:
    """A context with every dialect shipped by this package registered."""
    # Imported lazily to avoid a circular import at package load time.
    from ..dialects import register_all_dialects

    ctx = Context()
    register_all_dialects(ctx)
    return ctx


__all__ = ["Dialect", "Context", "default_context"]
