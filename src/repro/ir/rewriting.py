"""Pattern rewriting infrastructure.

Mirrors MLIR's greedy pattern rewriter at the granularity this project needs:
patterns match single operations and mutate the IR through a
:class:`PatternRewriter`, and :func:`apply_patterns` walks the module applying
patterns until a fixed point (or an iteration cap) is reached.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from .builder import Builder, InsertPoint
from .operation import Block, IRError, Operation, Region
from .ssa import SSAValue


class RewritePattern:
    """Base class for rewrite patterns.

    Subclasses implement :meth:`match_and_rewrite`; they must call methods on
    the rewriter (rather than mutating the IR directly) so that the driver can
    detect progress.
    """

    #: Optional operation name filter; if set, the driver only calls the
    #: pattern on operations with this exact name.
    op_name: Optional[str] = None

    def match_and_rewrite(self, op: Operation, rewriter: "PatternRewriter") -> None:
        raise NotImplementedError


class PatternRewriter:
    """Mutation interface handed to patterns; records whether anything changed."""

    def __init__(self, current_op: Operation):
        self.current_op = current_op
        self.has_done_action = False

    # -- insertion ---------------------------------------------------------

    def insert_op_before(self, new_op: Operation, anchor: Optional[Operation] = None) -> Operation:
        anchor = anchor or self.current_op
        block = anchor.parent_block()
        if block is None:
            raise IRError("anchor operation is not attached to a block")
        block.insert_op_before(new_op, anchor)
        self.has_done_action = True
        return new_op

    def insert_op_after(self, new_op: Operation, anchor: Optional[Operation] = None) -> Operation:
        anchor = anchor or self.current_op
        block = anchor.parent_block()
        if block is None:
            raise IRError("anchor operation is not attached to a block")
        block.insert_op_after(new_op, anchor)
        self.has_done_action = True
        return new_op

    def insert_ops_before(
        self, new_ops: Sequence[Operation], anchor: Optional[Operation] = None
    ) -> List[Operation]:
        """Insert ``new_ops`` before ``anchor``, preserving their relative
        order: afterwards the block reads ``new_ops[0], ..., new_ops[-1],
        anchor``.  (Each op is inserted immediately before the anchor, so
        successive inserts land *after* the previously inserted ones — the
        sequence is not reversed; see test_insert_ops_before_preserves_order.)
        """
        return [self.insert_op_before(op, anchor) for op in new_ops]

    # -- replacement / erasure ------------------------------------------------

    def replace_op(
        self,
        op: Operation,
        new_ops: Sequence[Operation] = (),
        new_results: Optional[Sequence[Optional[SSAValue]]] = None,
    ) -> None:
        """Replace ``op`` with ``new_ops``.

        ``new_results`` gives, for each result of ``op``, the value that should
        replace it (``None`` keeps dangling and requires the result to be
        unused).  If omitted, the results of the last new operation are used.
        """
        block = op.parent_block()
        if block is None:
            raise IRError("cannot replace a detached operation")
        for new_op in new_ops:
            block.insert_op_before(new_op, op)
        if new_results is None:
            new_results = list(new_ops[-1].results) if new_ops else []
        if len(new_results) != len(op.results):
            raise IRError(
                f"replace_op: {op.name} has {len(op.results)} results but "
                f"{len(new_results)} replacements were given"
            )
        for old, new in zip(op.results, new_results):
            if new is None:
                if old.has_uses:
                    raise IRError(
                        f"replace_op: result of {op.name} still has uses but no "
                        "replacement value was provided"
                    )
            else:
                old.replace_all_uses_with(new)
        op.erase()
        self.has_done_action = True

    def replace_matched_op(
        self,
        new_ops: Sequence[Operation] = (),
        new_results: Optional[Sequence[Optional[SSAValue]]] = None,
    ) -> None:
        self.replace_op(self.current_op, new_ops, new_results)

    def erase_op(self, op: Optional[Operation] = None, *, safe: bool = True) -> None:
        (op or self.current_op).erase(safe=safe)
        self.has_done_action = True

    def erase_matched_op(self, *, safe: bool = True) -> None:
        self.erase_op(self.current_op, safe=safe)

    def replace_all_uses_with(self, old: SSAValue, new: SSAValue) -> None:
        old.replace_all_uses_with(new)
        self.has_done_action = True

    # -- region surgery ----------------------------------------------------------

    def inline_block_before(self, block: Block, anchor: Operation,
                            arg_values: Sequence[SSAValue] = ()) -> None:
        """Move the operations of ``block`` before ``anchor``, substituting the
        block arguments with ``arg_values``."""
        if len(arg_values) != len(block.args):
            raise IRError("inline_block_before: argument count mismatch")
        for arg, value in zip(block.args, arg_values):
            arg.replace_all_uses_with(value)
        target = anchor.parent_block()
        if target is None:
            raise IRError("anchor operation is not attached to a block")
        for op in list(block.ops):
            op.detach()
            target.insert_op_before(op, anchor)
        self.has_done_action = True

    def notify_change(self) -> None:
        """Mark that the pattern modified the IR through some other mechanism."""
        self.has_done_action = True


class GreedyRewriteResult:
    """Outcome of :func:`apply_patterns`."""

    def __init__(self, converged: bool, iterations: int, rewrites: int):
        self.converged = converged
        self.iterations = iterations
        self.rewrites = rewrites


def apply_patterns(
    root: Operation,
    patterns: Iterable[RewritePattern],
    *,
    max_iterations: int = 32,
) -> GreedyRewriteResult:
    """Greedily apply ``patterns`` to every op under ``root`` until fixpoint."""
    patterns = list(patterns)
    total_rewrites = 0
    for iteration in range(1, max_iterations + 1):
        changed = False
        # Snapshot the op list: patterns may add/remove operations while we walk.
        for op in list(root.walk(include_self=False)):
            if op.parent is None:
                continue  # erased by an earlier rewrite in this sweep
            for pattern in patterns:
                if pattern.op_name is not None and op.name != pattern.op_name:
                    continue
                rewriter = PatternRewriter(op)
                pattern.match_and_rewrite(op, rewriter)
                if rewriter.has_done_action:
                    changed = True
                    total_rewrites += 1
                    break  # the op may no longer exist; move to the next op
        if not changed:
            return GreedyRewriteResult(True, iteration, total_rewrites)
    return GreedyRewriteResult(False, max_iterations, total_rewrites)


__all__ = [
    "RewritePattern",
    "PatternRewriter",
    "GreedyRewriteResult",
    "apply_patterns",
    "Builder",
    "InsertPoint",
]
