"""Module passes, the pass registry and ``mlir-opt``-style pipeline strings.

A pass pipeline can be described textually, e.g.::

    canonicalize,scf-parallel-loop-tiling{parallel-loop-tile-sizes=32,32,1},cse

which mirrors how the paper drives ``mlir-opt`` (Listing 4).  Options are
parsed into strings / ints / int-lists and passed to the pass constructor as
keyword arguments (dashes become underscores).
"""

from __future__ import annotations

import re
import time
from typing import Callable, Dict, List, Optional, Tuple, Type, Union

from .context import Context
from .operation import Operation

PassOption = Union[str, int, float, bool, Tuple[int, ...]]


class ModulePass:
    """Base class: a transformation applied to a whole module."""

    #: Pipeline name of the pass, e.g. ``"convert-scf-to-openmp"``.
    name: str = "unnamed-pass"

    def apply(self, ctx: Context, module: Operation) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover
        return f"<pass {self.name}>"


class PassStatistics:
    """Timing and change statistics for one executed pass."""

    def __init__(self, name: str, seconds: float, ops_before: int, ops_after: int):
        self.name = name
        self.seconds = seconds
        self.ops_before = ops_before
        self.ops_after = ops_after

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<{self.name}: {self.seconds * 1e3:.2f} ms, "
            f"{self.ops_before}->{self.ops_after} ops>"
        )


class PassRegistry:
    """Global registry mapping pipeline names to pass classes or factories."""

    def __init__(self):
        self._passes: Dict[str, Callable[..., ModulePass]] = {}

    def register(self, pass_class: Type[ModulePass], name: Optional[str] = None) -> None:
        key = name or pass_class.name
        self._passes[key] = pass_class

    def register_factory(self, name: str, factory: Callable[..., ModulePass]) -> None:
        self._passes[name] = factory

    def get(self, name: str) -> Callable[..., ModulePass]:
        if name not in self._passes:
            raise KeyError(
                f"unknown pass '{name}'; registered passes: {sorted(self._passes)}"
            )
        return self._passes[name]

    def names(self) -> List[str]:
        return sorted(self._passes)

    def __contains__(self, name: str) -> bool:
        return name in self._passes


#: The process-wide registry used by :class:`PassManager` by default.
GLOBAL_PASS_REGISTRY = PassRegistry()


def register_pass(pass_class: Type[ModulePass]) -> Type[ModulePass]:
    """Class decorator registering a pass in the global registry."""
    GLOBAL_PASS_REGISTRY.register(pass_class)
    return pass_class


def _parse_option_value(raw: str) -> PassOption:
    raw = raw.strip()
    if raw in ("true", "false"):
        return raw == "true"
    if re.fullmatch(r"-?\d+", raw):
        return int(raw)
    if re.fullmatch(r"-?\d+(,-?\d+)+", raw):
        return tuple(int(v) for v in raw.split(","))
    if re.fullmatch(r"-?\d*\.\d+", raw):
        return float(raw)
    return raw


def parse_pipeline(pipeline: str) -> List[Tuple[str, Dict[str, PassOption]]]:
    """Parse ``"a,b{x=1 y=2,3},c"`` into ``[(name, options), ...]``.

    Commas inside ``{...}`` belong to option values (matching mlir-opt), so the
    splitter tracks brace depth.
    """
    entries: List[str] = []
    depth = 0
    current = ""
    for ch in pipeline:
        if ch == "{":
            depth += 1
        elif ch == "}":
            depth -= 1
            if depth < 0:
                raise ValueError(f"unbalanced '}}' in pipeline '{pipeline}'")
        if ch == "," and depth == 0:
            entries.append(current)
            current = ""
        else:
            current += ch
    if depth != 0:
        raise ValueError(f"unbalanced '{{' in pipeline '{pipeline}'")
    if current.strip():
        entries.append(current)

    result: List[Tuple[str, Dict[str, PassOption]]] = []
    for entry in entries:
        entry = entry.strip()
        if not entry:
            continue
        match = re.fullmatch(r"([A-Za-z0-9_.\-]+)(\{(.*)\})?", entry, re.DOTALL)
        if match is None:
            raise ValueError(f"malformed pipeline entry '{entry}'")
        name = match.group(1)
        options: Dict[str, PassOption] = {}
        body = match.group(3)
        if body:
            for item in body.split():
                if "=" not in item:
                    options[item.replace("-", "_")] = True
                    continue
                key, value = item.split("=", 1)
                options[key.replace("-", "_")] = _parse_option_value(value)
        result.append((name, options))
    return result


class PassManager:
    """Runs a sequence of module passes, optionally verifying between passes."""

    def __init__(
        self,
        ctx: Optional[Context] = None,
        *,
        verify_each: bool = True,
        registry: Optional[PassRegistry] = None,
    ):
        if ctx is None:
            from .context import default_context

            ctx = default_context()
        self.ctx = ctx
        self.verify_each = verify_each
        self.registry = registry or GLOBAL_PASS_REGISTRY
        self.passes: List[ModulePass] = []
        self.statistics: List[PassStatistics] = []

    # -- building the pipeline ---------------------------------------------

    def add(self, pass_or_name: Union[ModulePass, str], **options: PassOption) -> "PassManager":
        if isinstance(pass_or_name, str):
            factory = self.registry.get(pass_or_name)
            pass_instance = factory(**options)
        else:
            pass_instance = pass_or_name
        self.passes.append(pass_instance)
        return self

    def add_pipeline(self, pipeline: str) -> "PassManager":
        for name, options in parse_pipeline(pipeline):
            self.add(name, **options)
        return self

    # -- execution ----------------------------------------------------------------

    def run(self, module: Operation) -> List[PassStatistics]:
        self.statistics = []
        for pass_instance in self.passes:
            ops_before = sum(1 for _ in module.walk())
            start = time.perf_counter()
            pass_instance.apply(self.ctx, module)
            elapsed = time.perf_counter() - start
            ops_after = sum(1 for _ in module.walk())
            self.statistics.append(
                PassStatistics(pass_instance.name, elapsed, ops_before, ops_after)
            )
            if self.verify_each:
                module.verify()
        return self.statistics


__all__ = [
    "ModulePass",
    "PassManager",
    "PassRegistry",
    "PassStatistics",
    "GLOBAL_PASS_REGISTRY",
    "register_pass",
    "parse_pipeline",
]
