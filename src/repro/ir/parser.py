"""Textual IR parser for the generic operation syntax emitted by the printer.

The parser is character-based recursive descent.  It accepts the output of
:mod:`repro.ir.printer` (round-trip stable) as well as modestly hand-written
generic-syntax IR used in tests.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from .attributes import (
    ArrayAttr,
    Attribute,
    BoolAttr,
    DenseArrayAttr,
    DenseElementsAttr,
    DictionaryAttr,
    FloatAttr,
    IntegerAttr,
    StringAttr,
    SymbolRefAttr,
    TypeAttr,
    UnitAttr,
)
from .context import Context
from .operation import Block, Operation, Region
from .ssa import SSAValue
from .types import (
    DYNAMIC,
    FloatType,
    FunctionType,
    IndexType,
    IntegerType,
    MemRefType,
    NoneType,
    TensorType,
    TypeAttribute,
)


class ParseError(Exception):
    """Raised on malformed textual IR, with line/column context."""

    def __init__(self, message: str, text: str = "", pos: int = 0):
        if text:
            line = text.count("\n", 0, pos) + 1
            col = pos - (text.rfind("\n", 0, pos) + 1) + 1
            snippet = text[max(0, pos - 30) : pos + 30].replace("\n", "\\n")
            message = f"{message} (line {line}, column {col}, near '...{snippet}...')"
        super().__init__(message)


_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_.$\-]*")
_VALUE_ID_RE = re.compile(r"[A-Za-z0-9_.$\-]+")
_NUMBER_RE = re.compile(
    r"-?(?:\d+\.\d*(?:[eE][+-]?\d+)?|\d+[eE][+-]?\d+|\d+|inf|nan)"
)
_INT_RE = re.compile(r"-?\d+")


class IRParser:
    """Parses generic-syntax IR into operation objects."""

    def __init__(self, text: str, context: Optional[Context] = None):
        self.text = text
        self.pos = 0
        if context is None:
            from .context import default_context

            context = default_context()
        self.context = context
        self.values: Dict[str, SSAValue] = {}

    # ------------------------------------------------------------------
    # Low-level cursor helpers
    # ------------------------------------------------------------------

    def _skip_ws(self) -> None:
        while self.pos < len(self.text):
            ch = self.text[self.pos]
            if ch in " \t\r\n":
                self.pos += 1
            elif self.text.startswith("//", self.pos):
                nl = self.text.find("\n", self.pos)
                self.pos = len(self.text) if nl == -1 else nl
            else:
                break

    def _error(self, message: str) -> ParseError:
        return ParseError(message, self.text, self.pos)

    def at_end(self) -> bool:
        self._skip_ws()
        return self.pos >= len(self.text)

    def peek(self, literal: str) -> bool:
        self._skip_ws()
        return self.text.startswith(literal, self.pos)

    def try_consume(self, literal: str) -> bool:
        if self.peek(literal):
            self.pos += len(literal)
            return True
        return False

    def expect(self, literal: str) -> None:
        if not self.try_consume(literal):
            raise self._error(f"expected '{literal}'")

    def _consume_regex(self, pattern: re.Pattern) -> Optional[str]:
        self._skip_ws()
        match = pattern.match(self.text, self.pos)
        if match is None:
            return None
        self.pos = match.end()
        return match.group(0)

    def parse_ident(self) -> str:
        ident = self._consume_regex(_IDENT_RE)
        if ident is None:
            raise self._error("expected identifier")
        return ident

    def parse_string_literal(self) -> str:
        self._skip_ws()
        if not self.try_consume('"'):
            raise self._error("expected string literal")
        out = []
        while True:
            if self.pos >= len(self.text):
                raise self._error("unterminated string literal")
            ch = self.text[self.pos]
            self.pos += 1
            if ch == "\\":
                nxt = self.text[self.pos]
                self.pos += 1
                out.append({"n": "\n", "t": "\t", '"': '"', "\\": "\\"}.get(nxt, nxt))
            elif ch == '"':
                break
            else:
                out.append(ch)
        return "".join(out)

    def parse_integer(self) -> int:
        token = self._consume_regex(_INT_RE)
        if token is None:
            raise self._error("expected integer")
        return int(token)

    # ------------------------------------------------------------------
    # Types
    # ------------------------------------------------------------------

    def parse_type(self) -> TypeAttribute:
        self._skip_ws()
        if self.try_consume("!"):
            return self._parse_dialect_type()
        if self.peek("("):
            return self._parse_function_type()
        ident = self._consume_regex(re.compile(r"[A-Za-z][A-Za-z0-9_]*"))
        if ident is None:
            raise self._error("expected a type")
        if ident == "index":
            return IndexType()
        if ident == "none":
            return NoneType()
        if re.fullmatch(r"i\d+", ident):
            return IntegerType(int(ident[1:]))
        if re.fullmatch(r"ui\d+", ident):
            return IntegerType(int(ident[2:]), signed=False)
        if re.fullmatch(r"f(16|32|64)", ident):
            return FloatType(int(ident[1:]))
        if ident == "memref":
            shape, elem = self._parse_shaped_body()
            return MemRefType(shape, elem)
        if ident == "tensor":
            shape, elem = self._parse_shaped_body()
            return TensorType(shape, elem)
        raise self._error(f"unknown type '{ident}'")

    def _parse_shaped_body(self) -> Tuple[List[int], TypeAttribute]:
        self.expect("<")
        shape: List[int] = []
        dim_re = re.compile(r"(\?|\d+)x")
        while True:
            self._skip_ws()
            match = dim_re.match(self.text, self.pos)
            if match is None:
                break
            self.pos = match.end()
            token = match.group(1)
            shape.append(DYNAMIC if token == "?" else int(token))
        elem = self.parse_type()
        self.expect(">")
        return shape, elem

    def _parse_function_type(self) -> FunctionType:
        self.expect("(")
        inputs: List[TypeAttribute] = []
        if not self.peek(")"):
            inputs.append(self.parse_type())
            while self.try_consume(","):
                inputs.append(self.parse_type())
        self.expect(")")
        self.expect("->")
        results: List[TypeAttribute] = []
        if self.try_consume("("):
            if not self.peek(")"):
                results.append(self.parse_type())
                while self.try_consume(","):
                    results.append(self.parse_type())
            self.expect(")")
        else:
            results.append(self.parse_type())
        return FunctionType(inputs, results)

    def _parse_dialect_type(self) -> TypeAttribute:
        dialect_name = self._consume_regex(re.compile(r"[A-Za-z_][A-Za-z0-9_]*"))
        if dialect_name is None:
            raise self._error("expected dialect name after '!'")
        self.expect(".")
        mnemonic = self._consume_regex(re.compile(r"[A-Za-z_][A-Za-z0-9_]*"))
        if mnemonic is None:
            raise self._error("expected dialect type mnemonic")
        parser_fn = self.context.get_type_parser(dialect_name, mnemonic)
        if parser_fn is None:
            raise self._error(f"unknown dialect type '!{dialect_name}.{mnemonic}'")
        return parser_fn(self)

    def parse_type_list(self) -> List[TypeAttribute]:
        self.expect("(")
        types: List[TypeAttribute] = []
        if not self.peek(")"):
            types.append(self.parse_type())
            while self.try_consume(","):
                types.append(self.parse_type())
        self.expect(")")
        return types

    # ------------------------------------------------------------------
    # Attributes
    # ------------------------------------------------------------------

    def parse_attribute(self) -> Attribute:
        self._skip_ws()
        if self.peek('"'):
            return StringAttr(self.parse_string_literal())
        if self.try_consume("unit"):
            return UnitAttr()
        if self.try_consume("true"):
            return BoolAttr(True)
        if self.try_consume("false"):
            return BoolAttr(False)
        if self.peek("@"):
            return self._parse_symbol_ref()
        if self.peek("array<"):
            return self._parse_dense_array()
        if self.peek("dense<"):
            return self._parse_dense_elements()
        if self.peek("["):
            return self._parse_array_attr()
        if self.peek("{"):
            return DictionaryAttr(self.parse_attr_dict_body())
        number = self._try_parse_number_attr()
        if number is not None:
            return number
        # Fall back to a type attribute.
        return TypeAttr(self.parse_type())

    def _parse_symbol_ref(self) -> SymbolRefAttr:
        self.expect("@")
        root = self._consume_regex(_VALUE_ID_RE)
        if root is None:
            raise self._error("expected symbol name after '@'")
        nested: List[str] = []
        while self.try_consume("::@"):
            part = self._consume_regex(_VALUE_ID_RE)
            if part is None:
                raise self._error("expected nested symbol name")
            nested.append(part)
        return SymbolRefAttr(root, nested)

    def _parse_dense_array(self) -> DenseArrayAttr:
        self.expect("array<")
        self.expect("i64")
        values: List[int] = []
        if self.try_consume(":"):
            values.append(self.parse_integer())
            while self.try_consume(","):
                values.append(self.parse_integer())
        self.expect(">")
        return DenseArrayAttr(values)

    def _parse_dense_elements(self) -> DenseElementsAttr:
        self.expect("dense<")
        self.expect("[")
        values: List[float] = []
        if not self.peek("]"):
            values.append(float(self._consume_regex(_NUMBER_RE)))
            while self.try_consume(","):
                values.append(float(self._consume_regex(_NUMBER_RE)))
        self.expect("]")
        self.expect(">")
        self.expect(":")
        elem_type = self.parse_type()
        return DenseElementsAttr(values, elem_type)

    def _parse_array_attr(self) -> ArrayAttr:
        self.expect("[")
        values: List[Attribute] = []
        if not self.peek("]"):
            values.append(self.parse_attribute())
            while self.try_consume(","):
                values.append(self.parse_attribute())
        self.expect("]")
        return ArrayAttr(values)

    def _try_parse_number_attr(self) -> Optional[Attribute]:
        self._skip_ws()
        match = _NUMBER_RE.match(self.text, self.pos)
        if match is None:
            return None
        token = match.group(0)
        self.pos = match.end()
        is_float = any(c in token for c in ".eE") or token.lstrip("-") in ("inf", "nan")
        if self.try_consume(":"):
            attr_type = self.parse_type()
            if isinstance(attr_type, FloatType):
                return FloatAttr(float(token), attr_type)
            return IntegerAttr(int(float(token)), attr_type)
        if is_float:
            return FloatAttr.from_float(float(token))
        return IntegerAttr.from_int(int(token))

    def parse_attr_dict_body(self) -> Dict[str, Attribute]:
        self.expect("{")
        attrs: Dict[str, Attribute] = {}
        if not self.peek("}"):
            while True:
                self._skip_ws()
                if self.peek('"'):
                    key = self.parse_string_literal()
                else:
                    key = self.parse_ident()
                self.expect("=")
                attrs[key] = self.parse_attribute()
                if not self.try_consume(","):
                    break
        self.expect("}")
        return attrs

    # ------------------------------------------------------------------
    # Operations, blocks, regions
    # ------------------------------------------------------------------

    def parse_module(self) -> Operation:
        op = self.parse_operation()
        self._skip_ws()
        if not self.at_end():
            raise self._error("unexpected trailing input after top-level operation")
        return op

    def parse_operation(self) -> Operation:
        result_names: List[str] = []
        self._skip_ws()
        if self.peek("%"):
            result_names.append(self._parse_value_id())
            while self.try_consume(","):
                result_names.append(self._parse_value_id())
            self.expect("=")
        op_name = self.parse_string_literal()

        # Operand list
        self.expect("(")
        operand_names: List[str] = []
        if not self.peek(")"):
            operand_names.append(self._parse_value_id())
            while self.try_consume(","):
                operand_names.append(self._parse_value_id())
        self.expect(")")

        # Optional regions
        regions: List[Region] = []
        if self.peek("({") or self.peek("( {"):
            self.expect("(")
            regions.append(self.parse_region())
            while self.try_consume(","):
                regions.append(self.parse_region())
            self.expect(")")

        # Optional attribute dictionary
        attributes: Dict[str, Attribute] = {}
        if self.peek("{"):
            attributes = self.parse_attr_dict_body()

        # Functional type
        self.expect(":")
        operand_types = self.parse_type_list()
        self.expect("->")
        if self.peek("("):
            result_types = self.parse_type_list()
        else:
            result_types = [self.parse_type()]

        if len(operand_types) != len(operand_names):
            raise self._error(
                f"operation '{op_name}' lists {len(operand_names)} operands but "
                f"{len(operand_types)} operand types"
            )
        if result_names and len(result_types) != len(result_names):
            raise self._error(
                f"operation '{op_name}' binds {len(result_names)} results but "
                f"{len(result_types)} result types"
            )

        operands: List[SSAValue] = []
        for name, expected_type in zip(operand_names, operand_types):
            value = self.values.get(name)
            if value is None:
                raise self._error(f"use of undefined value %{name}")
            if value.type != expected_type:
                raise self._error(
                    f"type mismatch for %{name}: defined as {value.type.print()}, "
                    f"used as {expected_type.print()}"
                )
            operands.append(value)

        op = self._build_operation(op_name, operands, result_types, attributes, regions)
        for name, res in zip(result_names, op.results):
            res.name_hint = name
            self.values[name] = res
        return op

    def _parse_value_id(self) -> str:
        self.expect("%")
        name = self._consume_regex(_VALUE_ID_RE)
        if name is None:
            raise self._error("expected value name after '%'")
        return name

    def _build_operation(
        self,
        op_name: str,
        operands: List[SSAValue],
        result_types: List[TypeAttribute],
        attributes: Dict[str, Attribute],
        regions: List[Region],
    ) -> Operation:
        op_class = self.context.get_op_class(op_name)
        if op_class is None:
            if not self.context.allow_unregistered:
                raise self._error(f"unregistered operation '{op_name}'")
            op = Operation(operands, result_types, attributes, regions)
            op.name = op_name
            return op
        op = object.__new__(op_class)
        Operation.__init__(op, operands, result_types, attributes, regions)
        return op

    def parse_region(self) -> Region:
        self.expect("{")
        region = Region()
        self._skip_ws()
        if self.peek("^"):
            while self.peek("^"):
                region.add_block(self.parse_block())
        elif not self.peek("}"):
            block = Block()
            region.add_block(block)
            while not self.peek("}"):
                block.add_op(self.parse_operation())
        self.expect("}")
        return region

    def parse_block(self) -> Block:
        self.expect("^")
        self._consume_regex(_VALUE_ID_RE)  # block label (names are not referenced)
        block = Block()
        if self.try_consume("("):
            if not self.peek(")"):
                while True:
                    name = self._parse_value_id()
                    self.expect(":")
                    arg_type = self.parse_type()
                    arg = block.add_arg(arg_type)
                    arg.name_hint = name
                    self.values[name] = arg
                    if not self.try_consume(","):
                        break
            self.expect(")")
        self.expect(":")
        while True:
            self._skip_ws()
            if self.peek("^") or self.peek("}") or self.at_end():
                break
            block.add_op(self.parse_operation())
        return block


def parse_module(text: str, context: Optional[Context] = None) -> Operation:
    """Parse a module (or any single top-level operation) from text."""
    return IRParser(text, context).parse_module()


__all__ = ["IRParser", "ParseError", "parse_module"]
