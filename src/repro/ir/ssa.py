"""SSA values and use-def chains.

Every value in the IR is either the result of an operation (:class:`OpResult`)
or a block argument (:class:`BlockArgument`).  Values track their uses so that
rewrites can replace values globally and the verifier can detect dangling uses.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from .attributes import TypeAttribute

if TYPE_CHECKING:  # pragma: no cover
    from .operation import Block, Operation


class Use:
    """A single use of an SSA value: operand ``index`` of ``operation``."""

    __slots__ = ("operation", "index")

    def __init__(self, operation: "Operation", index: int):
        self.operation = operation
        self.index = index

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Use)
            and self.operation is other.operation
            and self.index == other.index
        )

    def __hash__(self) -> int:
        return hash((id(self.operation), self.index))

    def __repr__(self) -> str:  # pragma: no cover
        return f"Use({self.operation.name}, operand {self.index})"


class SSAValue:
    """Base class for any value usable as an operand."""

    def __init__(self, type: TypeAttribute):
        if not isinstance(type, TypeAttribute):
            raise TypeError(
                f"SSA value type must be a TypeAttribute, got {type!r}"
            )
        self.type = type
        self.uses: List[Use] = []
        #: Optional human-readable name used by the printer (e.g. ``%result``).
        self.name_hint: Optional[str] = None

    # -- use management ------------------------------------------------

    def add_use(self, use: Use) -> None:
        self.uses.append(use)

    def remove_use(self, use: Use) -> None:
        for i, existing in enumerate(self.uses):
            if existing == use:
                del self.uses[i]
                return
        raise ValueError("attempting to remove a use that is not registered")

    def replace_all_uses_with(self, new_value: "SSAValue") -> None:
        """Rewrite every operand currently referencing ``self`` to ``new_value``."""
        if new_value is self:
            return
        for use in list(self.uses):
            use.operation.set_operand(use.index, new_value)

    @property
    def has_uses(self) -> bool:
        return bool(self.uses)

    def owner(self):
        """The operation or block that defines this value."""
        raise NotImplementedError

    # -- debugging -------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover
        hint = self.name_hint or "?"
        return f"<{type(self).__name__} %{hint} : {self.type.print()}>"


class OpResult(SSAValue):
    """An SSA value produced by an operation."""

    def __init__(self, type: TypeAttribute, op: "Operation", index: int):
        super().__init__(type)
        self.op = op
        self.index = index

    def owner(self) -> "Operation":
        return self.op


class BlockArgument(SSAValue):
    """An SSA value introduced as a block argument (e.g. a loop induction var)."""

    def __init__(self, type: TypeAttribute, block: "Block", index: int):
        super().__init__(type)
        self.block = block
        self.index = index

    def owner(self) -> "Block":
        return self.block


__all__ = ["Use", "SSAValue", "OpResult", "BlockArgument"]
