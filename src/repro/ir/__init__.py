"""Core SSA IR framework (the project's xDSL/MLIR equivalent).

Exports the structural classes (values, operations, blocks, regions), the
attribute/type system, the builder, the textual printer/parser, pattern
rewriting and the pass manager.
"""

from .attributes import (
    ArrayAttr,
    Attribute,
    BoolAttr,
    DenseArrayAttr,
    DenseElementsAttr,
    DictionaryAttr,
    FloatAttr,
    IntegerAttr,
    StringAttr,
    SymbolRefAttr,
    TypeAttr,
    TypeAttribute,
    UnitAttr,
)
from .builder import Builder, InsertPoint
from .context import Context, Dialect, default_context
from .operation import Block, IRError, Operation, Region, VerifyException
from .parser import IRParser, ParseError, parse_module
from .pass_manager import (
    GLOBAL_PASS_REGISTRY,
    ModulePass,
    PassManager,
    PassRegistry,
    parse_pipeline,
    register_pass,
)
from .printer import Printer, print_module, print_op
from .rewriting import (
    GreedyRewriteResult,
    PatternRewriter,
    RewritePattern,
    apply_patterns,
)
from .ssa import BlockArgument, OpResult, SSAValue, Use
from .types import (
    DYNAMIC,
    FloatType,
    FunctionType,
    IndexType,
    IntegerType,
    MemRefType,
    NoneType,
    TensorType,
    f32,
    f64,
    i1,
    i32,
    i64,
    index,
    is_float_type,
    is_integer_like,
    none,
)

__all__ = [
    # attributes
    "Attribute",
    "TypeAttribute",
    "UnitAttr",
    "StringAttr",
    "BoolAttr",
    "IntegerAttr",
    "FloatAttr",
    "ArrayAttr",
    "DenseArrayAttr",
    "DictionaryAttr",
    "SymbolRefAttr",
    "TypeAttr",
    "DenseElementsAttr",
    # types
    "DYNAMIC",
    "IntegerType",
    "IndexType",
    "FloatType",
    "NoneType",
    "FunctionType",
    "MemRefType",
    "TensorType",
    "i1",
    "i32",
    "i64",
    "f32",
    "f64",
    "index",
    "none",
    "is_float_type",
    "is_integer_like",
    # ssa & structure
    "SSAValue",
    "OpResult",
    "BlockArgument",
    "Use",
    "Operation",
    "Block",
    "Region",
    "IRError",
    "VerifyException",
    # tooling
    "Builder",
    "InsertPoint",
    "Context",
    "Dialect",
    "default_context",
    "Printer",
    "print_op",
    "print_module",
    "IRParser",
    "ParseError",
    "parse_module",
    "RewritePattern",
    "PatternRewriter",
    "GreedyRewriteResult",
    "apply_patterns",
    "ModulePass",
    "PassManager",
    "PassRegistry",
    "GLOBAL_PASS_REGISTRY",
    "register_pass",
    "parse_pipeline",
]
