"""High-level compiler driver reproducing the paper's end-to-end flow.

``compile_fortran`` is the single entry point: Fortran source goes in, a
:class:`CompilationResult` comes out holding the FIR module (what Flang alone
would compile) and, for the stencil targets, the extracted stencil module
after the requested lowering.  The result can build an
:class:`repro.runtime.Interpreter` that "links" the two modules and executes
them, exactly mirroring the paper's compile-separately / link-at-runtime
arrangement (§3, Figure 1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .dialects.builtin import ModuleOp
from .frontend import compile_to_fir
from .ir.context import Context, default_context
from .ir.pass_manager import PassManager
from .runtime.gpu_runtime import SimulatedGPU
from .runtime.interpreter import Interpreter
from .runtime.kernel_compiler import EXECUTION_MODES
from .runtime.mpi_runtime import CartesianDecomposition, SimulatedCommunicator
from .runtime.parallel_executor import SCHEDULE_KINDS
from .transforms import pipelines
from .transforms.distributed import ConvertDMPToMPIPass, ConvertStencilToDMPPass
from .transforms.gpu_data_management import GpuHostRegisterPass, GpuOptimisedDataPass
from .transforms.stencil_discovery import StencilDiscoveryPass
from .transforms.stencil_extraction import ExtractStencilsPass


class Target(enum.Enum):
    """Compilation targets evaluated in the paper."""

    FLANG_ONLY = "flang-only"          #: plain FIR, no stencil specialisation
    STENCIL_CPU = "stencil-cpu"        #: single-core CPU via the stencil flow
    STENCIL_OPENMP = "stencil-openmp"  #: multi-threaded CPU (OpenMP)
    STENCIL_GPU = "stencil-gpu"        #: Nvidia GPU
    STENCIL_DMP = "stencil-dmp"        #: distributed memory via DMP/MPI


@dataclass
class CompilerOptions:
    """Options controlling the stencil flow."""

    target: Target = Target.STENCIL_CPU
    #: Lower the extracted stencil module all the way to scf/omp/gpu loops.
    #: When False the module is kept at the stencil level (the interpreter
    #: executes ``stencil.apply`` vectorised — the fast execution path).
    lower_to_scf: bool = False
    #: GPU data strategy: "optimised" (bespoke pass) or "host_register" (initial).
    gpu_data_strategy: str = "optimised"
    #: OpenMP thread count recorded in the lowered module (cost model input).
    num_threads: Optional[int] = None
    #: Worker threads the interpreter's tiled parallel executor uses for
    #: vectorized sweeps (1 = single-tile execution).  Unlike ``num_threads``
    #: this changes *real* execution, not the analytic model.
    threads: int = 1
    #: OpenMP worksharing schedule clause recorded on each ``omp.wsloop`` by
    #: ``convert-scf-to-openmp`` and honoured by the tiled executor:
    #: "static", "dynamic" or "guided", with an optional chunk size.
    omp_schedule: str = "static"
    omp_chunk_size: Optional[int] = None
    #: Process grid for the DMP target, e.g. (4, 4).
    grid: Tuple[int, ...] = (1, 1)
    #: GPU tile sizes (paper Listing 4 uses 32,32,1).
    tile_sizes: Tuple[int, ...] = (32, 32, 1)
    #: Merge adjacent stencils (ablation E9 switches this off).
    fuse_stencils: bool = True
    #: How the interpreter executes stencil sweeps:
    #: * ``"interpret"`` — scalar op-by-op execution (the reference oracle);
    #: * ``"vectorize"`` — compile ``stencil.apply`` bodies and the scf/omp
    #:   loop nests produced by ``convert-stencil-to-scf`` into cached NumPy
    #:   whole-array kernels (see :mod:`repro.runtime.kernel_compiler`);
    #: * ``"crosscheck"`` — run both and raise if results diverge.
    execution_mode: str = "interpret"

    def __post_init__(self) -> None:
        if self.execution_mode not in EXECUTION_MODES:
            raise ValueError(
                f"execution_mode must be one of {EXECUTION_MODES}, "
                f"got {self.execution_mode!r}"
            )
        if self.omp_schedule not in SCHEDULE_KINDS:
            raise ValueError(
                f"omp_schedule must be one of {SCHEDULE_KINDS}, "
                f"got {self.omp_schedule!r}"
            )
        if self.threads < 1:
            raise ValueError(f"threads must be >= 1, got {self.threads}")
        if self.omp_chunk_size is not None and self.omp_chunk_size <= 0:
            raise ValueError(
                f"omp_chunk_size must be positive, got {self.omp_chunk_size}"
            )


@dataclass
class CompilationResult:
    """Everything the flow produced for one Fortran source."""

    source: str
    options: CompilerOptions
    fir_module: ModuleOp
    stencil_module: Optional[ModuleOp] = None
    discovered_stencils: Dict[str, int] = field(default_factory=dict)
    extracted_functions: List[str] = field(default_factory=list)
    pass_statistics: List = field(default_factory=list)

    @property
    def modules(self) -> List[ModuleOp]:
        mods = [self.fir_module]
        if self.stencil_module is not None:
            mods.append(self.stencil_module)
        return mods

    def interpreter(
        self,
        gpu: Optional[SimulatedGPU] = None,
        comm: Optional[SimulatedCommunicator] = None,
        rank: int = 0,
        decomposition: Optional[CartesianDecomposition] = None,
        execution_mode: Optional[str] = None,
        threads: Optional[int] = None,
    ) -> Interpreter:
        """Build an interpreter with the FIR and stencil modules linked.
        ``execution_mode`` and ``threads`` override the compile-time options
        when given."""
        if gpu is None and self.options.target is Target.STENCIL_GPU:
            gpu = SimulatedGPU()
        return Interpreter(
            self.modules, gpu=gpu, comm=comm, rank=rank, decomposition=decomposition,
            execution_mode=execution_mode or self.options.execution_mode,
            threads=threads if threads is not None else self.options.threads,
        )

    def run(self, entry: str, *args, **kwargs):
        """Convenience: build an interpreter and call ``entry`` with ``args``."""
        interp = self.interpreter(**kwargs)
        interp.call(entry, *args)
        return interp


class CompilerDriver:
    """Implements the pipeline of Figure 1 of the paper."""

    def __init__(self, options: Optional[CompilerOptions] = None,
                 ctx: Optional[Context] = None):
        self.options = options or CompilerOptions()
        self.ctx = ctx or default_context()

    # ------------------------------------------------------------------

    def compile(self, source: str) -> CompilationResult:
        options = self.options
        fir_module = compile_to_fir(source)
        result = CompilationResult(source=source, options=options, fir_module=fir_module)
        if options.target is Target.FLANG_ONLY:
            return result

        # 1. Discover stencils in the FIR produced by "Flang".
        discovery = StencilDiscoveryPass(merge=options.fuse_stencils)
        discovery.apply(self.ctx, fir_module)
        result.discovered_stencils = dict(discovery.discovered)
        fir_module.verify()

        # 2. Extract the stencil portions into their own module.
        extraction = ExtractStencilsPass()
        extraction.apply(self.ctx, fir_module)
        stencil_module = extraction.extracted_module
        result.stencil_module = stencil_module
        result.extracted_functions = list(extraction.extracted_functions)
        fir_module.verify()
        if stencil_module is not None:
            stencil_module.verify()

        if stencil_module is None or not result.extracted_functions:
            return result

        # 3. Target-specific transformation of the stencil module (and, for
        #    GPU data management / DMP, coordinated edits of the FIR module).
        if options.target is Target.STENCIL_GPU:
            strategy_cls = (
                GpuOptimisedDataPass
                if options.gpu_data_strategy == "optimised"
                else GpuHostRegisterPass
            )
            strategy = strategy_cls(stencil_module=stencil_module, tile=options.tile_sizes)
            strategy.apply(self.ctx, fir_module)
            fir_module.verify()
            stencil_module.verify()
            if options.lower_to_scf:
                self._run(stencil_module, pipelines.GPU_STENCIL_PIPELINE, result)
        elif options.target is Target.STENCIL_OPENMP:
            if options.lower_to_scf:
                self._run(
                    stencil_module,
                    pipelines.openmp_pipeline(options.omp_schedule,
                                              options.omp_chunk_size),
                    result,
                )
        elif options.target is Target.STENCIL_DMP:
            dmp_pass = ConvertStencilToDMPPass(grid=options.grid)
            dmp_pass.apply(self.ctx, stencil_module)
            mpi_pass = ConvertDMPToMPIPass()
            mpi_pass.apply(self.ctx, stencil_module)
            stencil_module.verify()
            if options.lower_to_scf:
                self._run(stencil_module, pipelines.CPU_PIPELINE, result)
        else:  # STENCIL_CPU
            if options.lower_to_scf:
                self._run(stencil_module, pipelines.CPU_PIPELINE, result)
        return result

    def _run(self, module: ModuleOp, pipeline: str, result: CompilationResult) -> None:
        pm = PassManager(self.ctx, verify_each=True)
        pm.add_pipeline(pipeline)
        result.pass_statistics.extend(pm.run(module))


def compile_fortran(source: str, target: Target = Target.STENCIL_CPU,
                    **option_overrides) -> CompilationResult:
    """One-call API: compile Fortran ``source`` for ``target``."""
    options = CompilerOptions(target=target, **option_overrides)
    return CompilerDriver(options).compile(source)


__all__ = [
    "Target",
    "CompilerOptions",
    "CompilationResult",
    "CompilerDriver",
    "compile_fortran",
]
