"""Legacy high-level compiler driver — a deprecation shim over :mod:`repro.api`.

The historical single entry point (``compile_fortran`` + the flat
:class:`CompilerOptions` dataclass) is kept working, but compilation now
dispatches through the backend registry: ``CompilerDriver.compile`` maps its
``Target`` to the registered :class:`repro.api.Backend`, converts the flat
options to that backend's schema, and wraps the resulting artifact back into a
:class:`CompilationResult`, so both APIs produce identical modules.

New code should use the fluent API instead::

    import repro

    program = repro.compile(source)                       # Program
    compiled = program.lower("openmp", lower_to_scf=True,
                             schedule="dynamic")          # CompiledProgram
    compiled.vectorize(threads=4).run("entry", *args)

See the README's migration table for the old→new mapping.
"""

from __future__ import annotations

import enum
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .api.backends import registry
from .api.options import (
    BackendOptions,
    CpuOptions,
    DmpOptions,
    FlangOnlyOptions,
    GPU_DATA_STRATEGIES,
    GpuOptions,
    OpenMPOptions,
)
from .api.program import build_interpreter
from .dialects.builtin import ModuleOp
from .ir.context import Context, default_context
from .runtime.gpu_runtime import SimulatedGPU
from .runtime.interpreter import Interpreter
from .runtime.kernel_compiler import EXECUTION_MODES
from .runtime.mpi_runtime import CartesianDecomposition, SimulatedCommunicator
from .runtime.parallel_executor import SCHEDULE_KINDS


class Target(enum.Enum):
    """Compilation targets evaluated in the paper (legacy spelling of the
    backend-registry names — ``repro.api.registry`` accepts both)."""

    FLANG_ONLY = "flang-only"          #: plain FIR, no stencil specialisation
    STENCIL_CPU = "stencil-cpu"        #: single-core CPU via the stencil flow
    STENCIL_OPENMP = "stencil-openmp"  #: multi-threaded CPU (OpenMP)
    STENCIL_GPU = "stencil-gpu"        #: Nvidia GPU
    STENCIL_DMP = "stencil-dmp"        #: distributed memory via DMP/MPI


@dataclass
class CompilerOptions:
    """Flat legacy options (deprecated — use the per-backend schemas in
    :mod:`repro.api.options`: ``OpenMPOptions``, ``GpuOptions``, ...)."""

    target: Target = Target.STENCIL_CPU
    #: Lower the extracted stencil module all the way to scf/omp/gpu loops.
    #: When False the module is kept at the stencil level (the interpreter
    #: executes ``stencil.apply`` vectorised — the fast execution path).
    lower_to_scf: bool = False
    #: GPU data strategy: "optimised" (bespoke pass) or "host_register" (initial).
    gpu_data_strategy: str = "optimised"
    #: OpenMP thread count recorded in the lowered module (cost model input).
    num_threads: Optional[int] = None
    #: Worker threads the interpreter's tiled parallel executor uses for
    #: vectorized sweeps (1 = single-tile execution).  Unlike ``num_threads``
    #: this changes *real* execution, not the analytic model.
    threads: int = 1
    #: OpenMP worksharing schedule clause recorded on each ``omp.wsloop`` by
    #: ``convert-scf-to-openmp`` and honoured by the tiled executor:
    #: "static", "dynamic" or "guided", with an optional chunk size.
    omp_schedule: str = "static"
    omp_chunk_size: Optional[int] = None
    #: Process grid for the DMP target, e.g. (4, 4).
    grid: Tuple[int, ...] = (1, 1)
    #: GPU tile sizes (paper Listing 4 uses 32,32,1).
    tile_sizes: Tuple[int, ...] = (32, 32, 1)
    #: Merge adjacent stencils (ablation E9 switches this off).
    fuse_stencils: bool = True
    #: How the interpreter executes stencil sweeps:
    #: * ``"interpret"`` — scalar op-by-op execution (the reference oracle);
    #: * ``"vectorize"`` — compile ``stencil.apply`` bodies and the scf/omp
    #:   loop nests produced by ``convert-stencil-to-scf`` into cached NumPy
    #:   whole-array kernels (see :mod:`repro.runtime.kernel_compiler`);
    #: * ``"crosscheck"`` — run both and raise if results diverge.
    execution_mode: str = "interpret"

    def __post_init__(self) -> None:
        if self.execution_mode not in EXECUTION_MODES:
            raise ValueError(
                f"execution_mode must be one of {EXECUTION_MODES}, "
                f"got {self.execution_mode!r}"
            )
        if self.omp_schedule not in SCHEDULE_KINDS:
            raise ValueError(
                f"omp_schedule must be one of {SCHEDULE_KINDS}, "
                f"got {self.omp_schedule!r}"
            )
        if self.threads < 1:
            raise ValueError(f"threads must be >= 1, got {self.threads}")
        if self.omp_chunk_size is not None and self.omp_chunk_size <= 0:
            raise ValueError(
                f"omp_chunk_size must be positive, got {self.omp_chunk_size}"
            )
        if self.gpu_data_strategy not in GPU_DATA_STRATEGIES:
            raise ValueError(
                f"gpu_data_strategy must be one of {GPU_DATA_STRATEGIES}, "
                f"got {self.gpu_data_strategy!r}"
            )

    def to_backend_options(self) -> BackendOptions:
        """Convert to the target backend's option schema, keeping only the
        fields that backend understands."""
        common = dict(
            lower_to_scf=self.lower_to_scf,
            fuse_stencils=self.fuse_stencils,
            execution_mode=self.execution_mode,
            threads=self.threads,
        )
        if self.target is Target.FLANG_ONLY:
            return FlangOnlyOptions(**common)
        if self.target is Target.STENCIL_OPENMP:
            return OpenMPOptions(
                schedule=self.omp_schedule, chunk_size=self.omp_chunk_size,
                num_threads=self.num_threads, **common,
            )
        if self.target is Target.STENCIL_GPU:
            return GpuOptions(
                data_strategy=self.gpu_data_strategy,
                tile_sizes=tuple(self.tile_sizes), **common,
            )
        if self.target is Target.STENCIL_DMP:
            return DmpOptions(grid=tuple(self.grid), **common)
        return CpuOptions(**common)


@dataclass
class CompilationResult:
    """Everything the flow produced for one Fortran source."""

    source: str
    options: CompilerOptions
    fir_module: ModuleOp
    stencil_module: Optional[ModuleOp] = None
    discovered_stencils: Dict[str, int] = field(default_factory=dict)
    extracted_functions: List[str] = field(default_factory=list)
    pass_statistics: List = field(default_factory=list)

    @property
    def modules(self) -> List[ModuleOp]:
        mods = [self.fir_module]
        if self.stencil_module is not None:
            mods.append(self.stencil_module)
        return mods

    def interpreter(
        self,
        gpu: Optional[SimulatedGPU] = None,
        comm: Optional[SimulatedCommunicator] = None,
        rank: int = 0,
        decomposition: Optional[CartesianDecomposition] = None,
        execution_mode: Optional[str] = None,
        threads: Optional[int] = None,
    ) -> Interpreter:
        """Build an interpreter with the FIR and stencil modules linked.

        ``execution_mode`` and ``threads`` override the compile-time options
        when given; ``None`` means "use the compiled default" and any other
        value — including falsy ones — is validated at override time.  Both
        this method and the fluent ``CompiledProgram.interpreter`` delegate
        to :func:`repro.api.program.build_interpreter`, so the legacy and
        fluent paths cannot diverge.
        """
        return build_interpreter(
            registry.get(self.options.target), self.options.to_backend_options(),
            self.modules, gpu=gpu, comm=comm, rank=rank,
            decomposition=decomposition, execution_mode=execution_mode,
            threads=threads,
        )

    def run(self, entry: str, *args, **kwargs):
        """Convenience: build an interpreter and call ``entry`` with ``args``."""
        interp = self.interpreter(**kwargs)
        interp.call(entry, *args)
        return interp


class CompilerDriver:
    """Legacy driver for the pipeline of Figure 1 of the paper.

    The five-way target dispatch now lives in the backend registry:
    ``compile`` is ``registry.get(target).lower(source, options)`` plus the
    wrapping of the artifact into a :class:`CompilationResult`.
    """

    def __init__(self, options: Optional[CompilerOptions] = None,
                 ctx: Optional[Context] = None):
        self.options = options or CompilerOptions()
        self.ctx = ctx or default_context()

    # ------------------------------------------------------------------

    def compile(self, source: str) -> CompilationResult:
        options = self.options
        backend = registry.get(options.target)
        artifact = backend.lower(source, options.to_backend_options(),
                                 ctx=self.ctx)
        return CompilationResult(
            source=source,
            options=options,
            fir_module=artifact.fir_module,
            stencil_module=artifact.stencil_module,
            discovered_stencils=dict(artifact.discovered_stencils),
            extracted_functions=list(artifact.extracted_functions),
            pass_statistics=list(artifact.pass_statistics),
        )


def compile_fortran(source: str, target: Target = Target.STENCIL_CPU,
                    **option_overrides) -> CompilationResult:
    """One-call legacy API: compile Fortran ``source`` for ``target``.

    .. deprecated::
        Use ``repro.compile(source).lower(<backend>, **options)`` — the
        fluent API with per-backend option schemas and session-level
        artifact caching (see the README migration table).
    """
    warnings.warn(
        "compile_fortran is deprecated; use "
        "repro.compile(source).lower(<backend>, **options) instead "
        "(see the README migration table)",
        DeprecationWarning,
        stacklevel=2,
    )
    options = CompilerOptions(target=target, **option_overrides)
    return CompilerDriver(options).compile(source)


__all__ = [
    "Target",
    "CompilerOptions",
    "CompilationResult",
    "CompilerDriver",
    "compile_fortran",
]
