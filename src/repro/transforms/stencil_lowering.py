"""Lower the stencil dialect to explicit scf loop nests over memrefs.

Mirrors the xDSL/Open Earth stencil lowering described in §3 of the paper:

* **CPU flavour** — the outermost dimension becomes an ``scf.parallel`` loop
  and inner dimensions become ``scf.for`` loops (amenable to OpenMP lowering
  and vectorisation of the innermost loop);
* **GPU flavour** — all dimensions are coalesced into a single
  ``scf.parallel`` nest, which ``convert-parallel-loops-to-gpu`` then maps to
  a kernel launch.

``stencil.load`` becomes an explicit snapshot copy (``memref.alloc`` +
``memref.copy``), preserving the dialect's value semantics, and every
``stencil.apply`` result is written straight into the memref backing the field
its ``stencil.store`` targets.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..dialects import arith, memref, scf, stencil
from ..dialects.builtin import UnrealizedConversionCastOp
from ..dialects.func import FuncOp
from ..ir.builder import Builder
from ..ir.context import Context
from ..ir.operation import Block, Operation
from ..ir.pass_manager import ModulePass, register_pass
from ..ir.ssa import SSAValue
from ..ir.types import MemRefType, index


class LoweringError(Exception):
    """Raised when stencil IR cannot be lowered (e.g. a store-less apply)."""


def _field_memref_type(field_type: stencil.FieldType) -> MemRefType:
    return MemRefType(field_type.shape, field_type.element_type)


@register_pass
class ConvertStencilToSCFPass(ModulePass):
    """``convert-stencil-to-scf{target=cpu|gpu}``."""

    name = "convert-stencil-to-scf"

    def __init__(self, target: str = "cpu"):
        if target not in ("cpu", "gpu"):
            raise ValueError("target must be 'cpu' or 'gpu'")
        self.target = target

    def apply(self, ctx: Context, module: Operation) -> None:
        for func_op in list(module.walk()):
            if isinstance(func_op, FuncOp) and not func_op.is_declaration:
                self._lower_function(func_op)

    # ------------------------------------------------------------------

    def _lower_function(self, func_op: FuncOp) -> None:
        memref_of: Dict[SSAValue, SSAValue] = {}
        origin_of: Dict[SSAValue, Tuple[int, ...]] = {}

        # First sweep: materialise memrefs for fields and temp snapshots, and
        # lower every apply/store pair into loop nests.
        for block in list(self._blocks(func_op)):
            for op in list(block.ops):
                if op.parent is None:
                    continue  # already erased
                if isinstance(op, stencil.ExternalLoadOp):
                    field_type: stencil.FieldType = op.results[0].type  # type: ignore[assignment]
                    cast = UnrealizedConversionCastOp(
                        [op.source], [_field_memref_type(field_type)]
                    )
                    block.insert_op_before(cast, op)
                    memref_of[op.results[0]] = cast.results[0]
                    origin_of[op.results[0]] = tuple(b[0] for b in field_type.bounds)
                elif isinstance(op, stencil.CastOp):
                    memref_of[op.results[0]] = memref_of[op.field]
                    origin_of[op.results[0]] = tuple(
                        b[0] for b in op.results[0].type.bounds  # type: ignore[union-attr]
                    )
                elif isinstance(op, stencil.LoadOp):
                    source = memref_of[op.field]
                    temp_type: stencil.TempType = op.results[0].type  # type: ignore[assignment]
                    alloc = memref.AllocOp(MemRefType(temp_type.shape, temp_type.element_type))
                    copy = memref.CopyOp(source, alloc.results[0])
                    block.insert_op_before(alloc, op)
                    block.insert_op_before(copy, op)
                    memref_of[op.results[0]] = alloc.results[0]
                    origin_of[op.results[0]] = tuple(b[0] for b in temp_type.bounds)
                elif isinstance(op, stencil.ApplyOp):
                    self._lower_apply(op, memref_of, origin_of)

        # Second sweep: the stencil ops themselves are now dead; erase them
        # bottom-up (stores/applies were erased during the first sweep).
        changed = True
        while changed:
            changed = False
            for op in list(func_op.walk()):
                if not op.name.startswith("stencil."):
                    continue
                if any(r.has_uses for r in op.results):
                    continue
                op.erase(safe=False)
                changed = True

    @staticmethod
    def _blocks(func_op: FuncOp) -> List[Block]:
        blocks: List[Block] = []
        for op in func_op.walk():
            for region in op.regions:
                blocks.extend(region.blocks)
        return blocks

    # ------------------------------------------------------------------

    def _lower_apply(self, op: stencil.ApplyOp, memref_of, origin_of) -> None:
        block = op.parent_block()
        if block is None:
            return
        lb, ub = op.lb, op.ub
        rank = len(lb)

        # Each apply result must feed exactly one stencil.store.
        stores: List[stencil.StoreOp] = []
        for result in op.results:
            store_op = None
            for use in result.uses:
                if isinstance(use.operation, stencil.StoreOp):
                    store_op = use.operation
                    break
            if store_op is None:
                raise LoweringError("stencil.apply result has no stencil.store consumer")
            stores.append(store_op)

        builder = Builder(None)
        builder.set_insertion_point_before(op)
        lb_values = [builder.insert(arith.ConstantOp.from_int(v, index)).results[0] for v in lb]
        ub_values = [builder.insert(arith.ConstantOp.from_int(v, index)).results[0] for v in ub]
        one = builder.insert(arith.ConstantOp.from_int(1, index)).results[0]

        bodies: List[Block] = []
        ivs: List[SSAValue] = []
        if self.target == "gpu" or rank == 1:
            parallel = scf.ParallelOp(lb_values, ub_values, [one] * rank)
            builder.insert(parallel)
            bodies.append(parallel.body.block)
            ivs.extend(parallel.body.block.args)
        else:
            parallel = scf.ParallelOp([lb_values[0]], [ub_values[0]], [one])
            builder.insert(parallel)
            bodies.append(parallel.body.block)
            ivs.append(parallel.body.block.args[0])
            inner = Builder.at_end(parallel.body.block)
            for d in range(1, rank):
                for_op = inner.insert(scf.ForOp(lb_values[d], ub_values[d], one))
                bodies.append(for_op.body.block)
                ivs.append(for_op.induction_variable)
                inner = Builder.at_end(for_op.body.block)

        inner_builder = Builder.at_end(bodies[-1])

        # Translate the apply body into the innermost loop body.
        value_map: Dict[SSAValue, SSAValue] = {}
        for arg, operand in zip(op.body.block.args, op.operands):
            value_map[arg] = operand

        returned: List[SSAValue] = []
        for body_op in op.body.block.ops:
            if isinstance(body_op, stencil.ReturnOp):
                returned = [value_map[o] for o in body_op.operands]
                continue
            if isinstance(body_op, stencil.AccessOp):
                key = value_map.get(body_op.temp, body_op.temp)
                source = memref_of[key]
                origin = origin_of[key]
                indices = [
                    self._shifted_index(inner_builder, ivs[d], offset - origin[d])
                    for d, offset in enumerate(body_op.offset)
                ]
                load = inner_builder.insert(memref.LoadOp(source, indices))
                value_map[body_op.results[0]] = load.results[0]
                continue
            if isinstance(body_op, stencil.IndexOp):
                value_map[body_op.results[0]] = ivs[body_op.dim]
                continue
            clone = body_op.clone(value_map)
            inner_builder.insert(clone)

        # Store each returned value to the memref backing its target field.
        for value, store_op in zip(returned, stores):
            target = memref_of[store_op.field]
            origin = origin_of[store_op.field]
            indices = [
                self._shifted_index(inner_builder, ivs[d], -origin[d]) for d in range(rank)
            ]
            inner_builder.insert(memref.StoreOp(value, target, indices))

        # Terminate every loop body, innermost first.
        for body in bodies:
            body.add_op(scf.YieldOp([]))

        for store_op in stores:
            store_op.erase(safe=False)
        op.erase(safe=False)

    @staticmethod
    def _shifted_index(builder: Builder, iv: SSAValue, shift: int) -> SSAValue:
        if shift == 0:
            return iv
        const = builder.insert(arith.ConstantOp.from_int(abs(shift), index)).results[0]
        if shift > 0:
            return builder.insert(arith.AddiOp(iv, const)).results[0]
        return builder.insert(arith.SubiOp(iv, const)).results[0]


__all__ = ["ConvertStencilToSCFPass", "LoweringError"]
