"""Generic cleanup passes: canonicalisation, CSE and dead code elimination.

These stand in for the standard MLIR passes the paper's pipelines invoke
between the structural lowerings (``canonicalize``, ``cse``,
``reconcile-unrealized-casts``, ...).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..dialects import arith
from ..dialects.builtin import UnrealizedConversionCastOp
from ..ir.context import Context
from ..ir.operation import Operation
from ..ir.pass_manager import ModulePass, register_pass
from ..ir.traits import HasMemoryEffect, IsTerminator, has_trait


def _is_pure(op: Operation) -> bool:
    if op.regions:
        return False
    if has_trait(op, HasMemoryEffect) or has_trait(op, IsTerminator):
        return False
    if not op.results:
        return False
    side_effect_free_prefixes = ("arith.", "math.", "builtin.unrealized", "stencil.index")
    pure_names = {
        "fir.convert", "fir.no_reassoc", "fir.declare", "fir.coordinate_of",
        "memref.cast", "memref.dim", "stencil.access",
    }
    return op.name.startswith(side_effect_free_prefixes) or op.name in pure_names


def eliminate_dead_code(root: Operation) -> int:
    """Remove pure operations whose results are unused; returns removal count."""
    removed = 0
    changed = True
    while changed:
        changed = False
        for op in list(root.walk(include_self=False)):
            if op.parent is None or not _is_pure(op):
                continue
            if any(r.has_uses for r in op.results):
                continue
            op.erase()
            removed += 1
            changed = True
    return removed


@register_pass
class DeadCodeEliminationPass(ModulePass):
    """``dce`` — drop unused pure operations."""

    name = "dce"

    def apply(self, ctx: Context, module: Operation) -> None:
        eliminate_dead_code(module)


@register_pass
class CanonicalizePass(ModulePass):
    """``canonicalize`` — constant folding of arith ops plus DCE."""

    name = "canonicalize"

    def apply(self, ctx: Context, module: Operation) -> None:
        self._fold_constants(module)
        eliminate_dead_code(module)

    _FOLDERS = {
        "arith.addi": lambda a, b: a + b,
        "arith.subi": lambda a, b: a - b,
        "arith.muli": lambda a, b: a * b,
        "arith.addf": lambda a, b: a + b,
        "arith.subf": lambda a, b: a - b,
        "arith.mulf": lambda a, b: a * b,
        "arith.divf": lambda a, b: a / b if b != 0 else None,
    }

    def _fold_constants(self, module: Operation) -> None:
        changed = True
        while changed:
            changed = False
            for op in list(module.walk(include_self=False)):
                if op.parent is None or op.name not in self._FOLDERS:
                    continue
                operands = []
                for operand in op.operands:
                    defining = getattr(operand, "op", None)
                    if isinstance(defining, arith.ConstantOp):
                        operands.append(defining.literal)
                    else:
                        operands.append(None)
                if any(v is None for v in operands):
                    continue
                folded = self._FOLDERS[op.name](*operands)
                if folded is None:
                    continue
                block = op.parent_block()
                constant = arith.ConstantOp(folded, op.results[0].type)
                block.insert_op_before(constant, op)
                op.results[0].replace_all_uses_with(constant.results[0])
                op.erase()
                changed = True


@register_pass
class CSEPass(ModulePass):
    """``cse`` — merge syntactically identical pure operations within a block."""

    name = "cse"

    def apply(self, ctx: Context, module: Operation) -> None:
        for op in list(module.walk()):
            for region in op.regions:
                for block in region.blocks:
                    self._run_on_block(block)
        eliminate_dead_code(module)

    def _run_on_block(self, block) -> None:
        seen: Dict[Tuple, Operation] = {}
        for op in list(block.ops):
            if not _is_pure(op):
                continue
            key = (
                op.name,
                tuple(id(o) for o in op.operands),
                tuple(sorted((k, v) for k, v in op.attributes.items())),
                tuple(r.type for r in op.results),
            )
            existing = seen.get(key)
            if existing is None:
                seen[key] = op
                continue
            for old, new in zip(op.results, existing.results):
                old.replace_all_uses_with(new)
            op.erase()


@register_pass
class ReconcileUnrealizedCastsPass(ModulePass):
    """``reconcile-unrealized-casts`` — erase cast pairs that cancel out."""

    name = "reconcile-unrealized-casts"

    def apply(self, ctx: Context, module: Operation) -> None:
        for op in list(module.walk()):
            if not isinstance(op, UnrealizedConversionCastOp) or op.parent is None:
                continue
            # A cast whose results all have the same types as its operands can
            # be folded away entirely.
            if len(op.results) == len(op.operands) and all(
                r.type == o.type for r, o in zip(op.results, op.operands)
            ):
                for result, operand in zip(op.results, op.operands):
                    result.replace_all_uses_with(operand)
                op.erase()
        eliminate_dead_code(module)


# Stand-ins for MLIR passes that appear in the paper's pipelines but whose
# effect is either irrelevant to the simulated execution or folded into other
# passes here.  Registering them keeps the textual pipelines of Listing 4 valid.
class _NoOpPass(ModulePass):
    def __init__(self, **_options):
        pass

    def apply(self, ctx: Context, module: Operation) -> None:
        return


def _register_noop(name: str) -> None:
    cls = type(f"_NoOp_{name.replace('-', '_')}", (_NoOpPass,), {"name": name})
    register_pass(cls)


for _name in (
    "test-math-algebraic-simplification",
    "test-expand-math",
    "fold-memref-alias-ops",
    "finalize-memref-to-llvm",
    "lower-affine",
    "gpu-kernel-outlining",
    "gpu-async-region",
    "convert-arith-to-llvm",
    "convert-scf-to-cf",
    "convert-cf-to-llvm",
    "convert-gpu-to-nvvm",
    "gpu-to-cubin",
    "gpu-to-llvm",
    "scf-for-loop-specialization",
    "scf-parallel-loop-specialization",
    "func.func",
    "gpu.module",
):
    _register_noop(_name)


__all__ = [
    "DeadCodeEliminationPass",
    "CanonicalizePass",
    "CSEPass",
    "ReconcileUnrealizedCastsPass",
    "eliminate_dead_code",
]
