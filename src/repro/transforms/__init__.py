"""Transformation passes: discovery, extraction, fusion, lowerings, pipelines."""

from .cleanup import (
    CanonicalizePass,
    CSEPass,
    DeadCodeEliminationPass,
    ReconcileUnrealizedCastsPass,
    eliminate_dead_code,
)
from .distributed import ConvertDMPToMPIPass, ConvertStencilToDMPPass, NeighbourRankOp
from .gpu_data_management import GpuHostRegisterPass, GpuOptimisedDataPass
from .parallel_lowering import (
    ConvertParallelLoopsToGpuPass,
    ConvertSCFToOpenMPPass,
    GpuMapParallelLoopsPass,
    ParallelLoopTilingPass,
)
from .pipelines import (
    CPU_PIPELINE,
    DMP_PIPELINE,
    FIR_STENCIL_PIPELINE,
    GPU_PIPELINE,
    GPU_STENCIL_PIPELINE,
    OPENMP_PIPELINE,
    PIPELINES,
    build_pass_manager,
    run_pipeline,
)
from .stencil_discovery import StencilDiscoveryPass
from .stencil_extraction import ExtractStencilsPass
from .stencil_fusion import StencilFusionPass, merge_adjacent_applies
from .stencil_lowering import ConvertStencilToSCFPass

__all__ = [
    "StencilDiscoveryPass",
    "ExtractStencilsPass",
    "StencilFusionPass",
    "merge_adjacent_applies",
    "ConvertStencilToSCFPass",
    "ConvertSCFToOpenMPPass",
    "ParallelLoopTilingPass",
    "GpuMapParallelLoopsPass",
    "ConvertParallelLoopsToGpuPass",
    "GpuHostRegisterPass",
    "GpuOptimisedDataPass",
    "ConvertStencilToDMPPass",
    "ConvertDMPToMPIPass",
    "NeighbourRankOp",
    "CanonicalizePass",
    "CSEPass",
    "DeadCodeEliminationPass",
    "ReconcileUnrealizedCastsPass",
    "eliminate_dead_code",
    "CPU_PIPELINE",
    "OPENMP_PIPELINE",
    "GPU_PIPELINE",
    "GPU_STENCIL_PIPELINE",
    "DMP_PIPELINE",
    "FIR_STENCIL_PIPELINE",
    "PIPELINES",
    "build_pass_manager",
    "run_pipeline",
]
