"""Named pass pipelines for each compilation target.

The paper drives ``mlir-opt`` with long textual pipelines (its Listing 4 shows
the GPU one).  The same style works here through
:class:`repro.ir.PassManager.add_pipeline`; nested pass scoping
(``func.func(...)``) is flattened because every pass in this project is a
module pass.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..ir.context import Context
from ..ir.pass_manager import PassManager

# Ensure every pass referenced by the pipelines below is registered.
from . import cleanup  # noqa: F401
from . import distributed  # noqa: F401
from . import gpu_data_management  # noqa: F401
from . import parallel_lowering  # noqa: F401
from . import stencil_discovery  # noqa: F401
from . import stencil_extraction  # noqa: F401
from . import stencil_fusion  # noqa: F401
from . import stencil_lowering  # noqa: F401


#: Discovery + extraction applied to the Flang-produced FIR (run in "xDSL").
FIR_STENCIL_PIPELINE = "discover-stencils,extract-stencils"

#: Stencil module lowering for single-core CPU execution.
CPU_PIPELINE = (
    "convert-stencil-to-scf{target=cpu},"
    "scf-parallel-loop-specialization,"
    "canonicalize,cse"
)

def openmp_pipeline(schedule: str = "static",
                    chunk_size: Optional[int] = None) -> str:
    """The OpenMP lowering pipeline with an explicit worksharing schedule
    clause, e.g. ``openmp_pipeline("dynamic", 4)`` →
    ``...,convert-scf-to-openmp{schedule=dynamic chunk-size=4},...``."""
    options = f"schedule={schedule}"
    if chunk_size is not None:
        options += f" chunk-size={int(chunk_size)}"
    return (
        "convert-stencil-to-scf{target=cpu},"
        f"convert-scf-to-openmp{{{options}}},"
        "canonicalize,cse"
    )


#: Stencil module lowering for multi-threaded CPU execution (OpenMP), with
#: the default (static) worksharing schedule.
OPENMP_PIPELINE = openmp_pipeline()

def gpu_pipeline(tile_sizes: Sequence[int] = (32, 32, 1)) -> str:
    """The paper's GPU pipeline (Listing 4) with explicit parallel-loop tile
    sizes, e.g. ``gpu_pipeline((16, 16))`` for a rank-2 kernel."""
    sizes = ",".join(str(int(t)) for t in tile_sizes)
    return (
        "test-math-algebraic-simplification,"
        f"scf-parallel-loop-tiling{{parallel-loop-tile-sizes={sizes}}},"
        "canonicalize,"
        "test-expand-math,"
        "gpu-map-parallel-loops,"
        "convert-parallel-loops-to-gpu,"
        "fold-memref-alias-ops,"
        "finalize-memref-to-llvm{index-bitwidth=64 use-opaque-pointers=false},"
        "lower-affine,"
        "gpu-kernel-outlining,"
        "gpu-async-region,"
        "canonicalize,"
        "convert-arith-to-llvm{index-bitwidth=64},"
        "convert-scf-to-cf,"
        "convert-cf-to-llvm{index-bitwidth=64},"
        "reconcile-unrealized-casts"
    )


def gpu_stencil_pipeline(tile_sizes: Sequence[int] = (32, 32, 1)) -> str:
    """:func:`gpu_pipeline` operating at the stencil level."""
    return "convert-stencil-to-scf{target=gpu}," + gpu_pipeline(tile_sizes)


#: The paper's GPU pipeline (Listing 4), flattened: tiling, GPU mapping,
#: kernel outlining, memref/arith/scf lowering stand-ins and cast reconciliation.
GPU_PIPELINE = gpu_pipeline()

#: GPU pipeline operating at the stencil level (coalesced parallel loops).
GPU_STENCIL_PIPELINE = gpu_stencil_pipeline()

#: Distributed-memory lowering via the DMP and MPI dialects.
DMP_PIPELINE = "convert-stencil-to-dmp,convert-dmp-to-mpi,canonicalize"


def build_pass_manager(pipeline: str, ctx: Optional[Context] = None,
                       verify_each: bool = True) -> PassManager:
    """Create a pass manager from an mlir-opt style pipeline string."""
    pm = PassManager(ctx, verify_each=verify_each)
    pm.add_pipeline(pipeline)
    return pm


def run_pipeline(module, pipeline: str, ctx: Optional[Context] = None) -> None:
    """Parse ``pipeline`` and run it on ``module`` in place."""
    build_pass_manager(pipeline, ctx).run(module)


PIPELINES = {
    "fir-stencil": FIR_STENCIL_PIPELINE,
    "cpu": CPU_PIPELINE,
    "openmp": OPENMP_PIPELINE,
    "gpu": GPU_STENCIL_PIPELINE,
    "dmp": DMP_PIPELINE,
}


def pipeline_for(backend, **options) -> Optional[str]:
    """The pipeline string a registered backend would run for ``options``.

    Asks the backend registry (:mod:`repro.api.backends`) — the authoritative
    owner of per-target pipeline selection — so schedule clauses and other
    option-dependent pipeline variations are reflected.  Returns ``None``
    when the backend keeps the module at the stencil level.
    """
    from ..api.backends import registry  # local import: api depends on us

    backend_obj = registry.get(backend)
    # lower_to_scf=True because callers asking for a pipeline want the
    # lowered form; pass explicitly to override.
    options.setdefault("lower_to_scf", True)
    return backend_obj.pipeline(backend_obj.make_options(**options))


__all__ = [
    "FIR_STENCIL_PIPELINE",
    "CPU_PIPELINE",
    "OPENMP_PIPELINE",
    "openmp_pipeline",
    "GPU_PIPELINE",
    "GPU_STENCIL_PIPELINE",
    "gpu_pipeline",
    "gpu_stencil_pipeline",
    "DMP_PIPELINE",
    "PIPELINES",
    "pipeline_for",
    "build_pass_manager",
    "run_pipeline",
]
