"""Distributed-memory lowerings: stencil → DMP → MPI (§2.1, §4.4).

``ConvertStencilToDMPPass`` decorates extracted stencil functions for execution
on a logical process grid: it derives each rank's local sub-domain from the
global apply bounds and inserts ``dmp.halo_swap`` operations before every
``stencil.apply`` so neighbouring ranks exchange boundary data.

``ConvertDMPToMPIPass`` then lowers each halo swap into explicit non-blocking
``mpi.isend``/``mpi.irecv`` pairs (one per face of each decomposed dimension)
followed by ``mpi.waitall``, using the same neighbour/tag conventions the
simulated communicator implements.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..dialects import arith, dmp, mpi, stencil
from ..dialects.builtin import ModuleOp
from ..dialects.func import FuncOp
from ..ir.attributes import DenseArrayAttr, IntegerAttr, UnitAttr
from ..ir.builder import Builder
from ..ir.context import Context
from ..ir.operation import Operation
from ..ir.pass_manager import ModulePass, register_pass
from ..ir.ssa import OpResult, SSAValue
from ..ir.types import i32, i64


@register_pass
class ConvertStencilToDMPPass(ModulePass):
    """``convert-stencil-to-dmp{grid=PxQ}`` — decompose stencils over a process grid."""

    name = "convert-stencil-to-dmp"

    def __init__(self, grid: Sequence[int] = (1, 1), decomposed_dims: Optional[Sequence[int]] = None):
        if isinstance(grid, str):
            grid = tuple(int(p) for p in grid.split("x"))
        self.grid = tuple(int(p) for p in grid)
        self.decomposed_dims = tuple(decomposed_dims) if decomposed_dims is not None else None

    def apply(self, ctx: Context, module: Operation) -> None:
        for func_op in list(module.walk()):
            if isinstance(func_op, FuncOp) and not func_op.is_declaration:
                self._transform_function(func_op)

    def _transform_function(self, func_op: FuncOp) -> None:
        applies = [op for op in func_op.walk() if isinstance(op, stencil.ApplyOp)]
        if not applies:
            return
        func_op.attributes["dmp.distributed"] = UnitAttr()
        func_op.attributes["dmp.grid"] = DenseArrayAttr(self.grid)

        builder = Builder(None)
        builder.set_insertion_point_to_start(func_op.entry_block)
        grid_op = builder.insert(dmp.GridOp(self.grid))

        for apply_op in applies:
            rank = apply_op.rank
            decomposed = (
                self.decomposed_dims
                if self.decomposed_dims is not None
                else tuple(range(min(len(self.grid), rank)))
            )
            # Halo width per dimension: the widest access offset used.
            halo = [0] * rank
            for op in apply_op.body.walk():
                if isinstance(op, stencil.AccessOp):
                    for d, offset in enumerate(op.offset):
                        halo[d] = max(halo[d], abs(int(offset)))
            apply_op.attributes["dmp.decomposed_dims"] = DenseArrayAttr(decomposed)
            apply_op.attributes["dmp.halo"] = DenseArrayAttr(halo)
            # Swap halos of every input field before its snapshot is taken
            # (stencil.load copies the field, so the exchange must precede it).
            swapped = set()
            for operand in apply_op.operands:
                field = self._field_of_temp(operand)
                if field is None or id(field) in swapped:
                    continue
                swapped.add(id(field))
                load_op = operand.op  # the stencil.load producing this temp
                builder.set_insertion_point_before(load_op)
                builder.insert(
                    dmp.HaloSwapOp(field, grid_op.results[0], halo, decomposed)
                )

    @staticmethod
    def _field_of_temp(value: SSAValue) -> Optional[SSAValue]:
        if isinstance(value, OpResult) and isinstance(value.op, stencil.LoadOp):
            return value.op.field
        return None


@register_pass
class ConvertDMPToMPIPass(ModulePass):
    """``convert-dmp-to-mpi`` — lower halo swaps to isend/irecv/waitall."""

    name = "convert-dmp-to-mpi"

    def apply(self, ctx: Context, module: Operation) -> None:
        for swap in [op for op in module.walk() if isinstance(op, dmp.HaloSwapOp)]:
            self._lower_swap(swap)
        # Grid ops may now be dead.
        for grid_op in [op for op in module.walk() if isinstance(op, dmp.GridOp)]:
            if not any(r.has_uses for r in grid_op.results):
                grid_op.erase(safe=False)

    def _lower_swap(self, swap: dmp.HaloSwapOp) -> None:
        block = swap.parent_block()
        if block is None:
            return
        builder = Builder(None)
        builder.set_insertion_point_before(swap)
        field = swap.field
        grid_value = swap.grid
        grid_shape = self._grid_shape(grid_value)
        halo = swap.halo
        decomposed = swap.decomposed_dims

        # The field's full (local, halo-included) extents come from its type.
        bounds = getattr(field.type, "bounds", None)
        extents = [ub - lb for lb, ub in bounds] if bounds is not None else []

        requests: List[SSAValue] = []
        for position, dim in enumerate(decomposed):
            width = halo[dim] if dim < len(halo) else 0
            if width == 0:
                continue
            my_coord = builder.insert(dmp.RankOp(grid_value, position))
            for direction in (-1, +1):
                tag = dim * 2 + (0 if direction < 0 else 1)
                recv_tag = dim * 2 + (1 if direction < 0 else 0)
                neighbour = builder.insert(
                    _NeighbourRankOp(grid_value, position, direction)
                )
                send_lb, send_ub, recv_lb, recv_ub = self._slabs(
                    extents, dim, width, direction
                )
                tag_value = builder.insert(arith.ConstantOp.from_int(tag, i32)).results[0]
                recv_tag_value = builder.insert(
                    arith.ConstantOp.from_int(recv_tag, i32)
                ).results[0]
                isend = mpi.ISendOp(field, neighbour.results[0], tag_value)
                isend.attributes["slice_lb"] = DenseArrayAttr(send_lb)
                isend.attributes["slice_ub"] = DenseArrayAttr(send_ub)
                isend.attributes["dmp.direction"] = IntegerAttr(direction, i64)
                builder.insert(isend)
                irecv = mpi.IRecvOp(field, neighbour.results[0], recv_tag_value)
                irecv.attributes["slice_lb"] = DenseArrayAttr(recv_lb)
                irecv.attributes["slice_ub"] = DenseArrayAttr(recv_ub)
                irecv.attributes["dmp.direction"] = IntegerAttr(direction, i64)
                builder.insert(irecv)
                requests.append(irecv.results[0])
        if requests:
            builder.insert(mpi.WaitAllOp(requests))
        swap.erase(safe=False)

    @staticmethod
    def _grid_shape(grid_value: SSAValue) -> Tuple[int, ...]:
        if isinstance(grid_value, OpResult) and isinstance(grid_value.op, dmp.GridOp):
            return grid_value.op.shape
        if isinstance(grid_value.type, dmp.GridType):
            return grid_value.type.shape
        return ()

    @staticmethod
    def _slabs(extents: Sequence[int], dim: int, width: int, direction: int):
        """Send/receive slab bounds (full extent in every other dimension)."""
        rank = len(extents)
        send_lb = [0] * rank
        send_ub = list(extents)
        recv_lb = [0] * rank
        recv_ub = list(extents)
        if direction < 0:
            send_lb[dim], send_ub[dim] = width, 2 * width
            recv_lb[dim], recv_ub[dim] = 0, width
        else:
            send_lb[dim], send_ub[dim] = extents[dim] - 2 * width, extents[dim] - width
            recv_lb[dim], recv_ub[dim] = extents[dim] - width, extents[dim]
        return send_lb, send_ub, recv_lb, recv_ub


class _NeighbourRankOp(Operation):
    """``dmp.neighbour_rank`` — rank of the neighbour in ``direction`` along
    grid dimension ``dim`` (−1 when there is no neighbour)."""

    name = "dmp.neighbour_rank"

    def __init__(self, grid: SSAValue, dim: int, direction: int):
        super().__init__(
            operands=[grid],
            result_types=[i32],
            attributes={
                "dim": IntegerAttr(dim, i64),
                "direction": IntegerAttr(direction, i64),
            },
        )

    @property
    def dim(self) -> int:
        return int(self.get_attr("dim").value)  # type: ignore[union-attr]

    @property
    def direction(self) -> int:
        return int(self.get_attr("direction").value)  # type: ignore[union-attr]


# Register the helper op with the DMP dialect so parsing / interpretation work.
dmp.DMP.register_operation(_NeighbourRankOp)
NeighbourRankOp = _NeighbourRankOp

__all__ = ["ConvertStencilToDMPPass", "ConvertDMPToMPIPass", "NeighbourRankOp"]
