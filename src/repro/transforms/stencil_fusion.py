"""Stencil fusion: merge adjacent ``stencil.apply`` operations.

The final step of the paper's discovery algorithm (Listing 3 line 29) merges
stencils that sit next to each other in the IR and share the same bounds; the
PW advection benchmark relies on this to fuse its three component stencils
into a single stencil region (§4.1).

The merge is safe when the later apply does not read any field written by the
earlier one (stencil semantics take a snapshot of their inputs, so a
read-after-write through memory would change meaning).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..dialects import stencil
from ..dialects.func import FuncOp
from ..ir.attributes import UnitAttr
from ..ir.context import Context
from ..ir.operation import Block, Operation, Region
from ..ir.pass_manager import ModulePass, register_pass
from ..ir.ssa import OpResult, SSAValue


def _source_root(value: SSAValue) -> Optional[SSAValue]:
    """For a temp produced by load(external_load(x)) return x, else None."""
    if isinstance(value, OpResult) and isinstance(value.op, stencil.LoadOp):
        field = value.op.field
        if isinstance(field, OpResult) and isinstance(field.op, stencil.ExternalLoadOp):
            return field.op.source
    return None


def _written_roots(apply_op: stencil.ApplyOp) -> List[SSAValue]:
    """External sources written by the stores consuming this apply's results."""
    roots: List[SSAValue] = []
    for result in apply_op.results:
        for use in result.uses:
            user = use.operation
            if isinstance(user, stencil.StoreOp):
                field = user.field
                if isinstance(field, OpResult) and isinstance(
                    field.op, stencil.ExternalLoadOp
                ):
                    roots.append(field.op.source)
    return roots


def _can_fuse(first: stencil.ApplyOp, second: stencil.ApplyOp) -> bool:
    if first.parent_block() is not second.parent_block():
        return False
    if first.lb != second.lb or first.ub != second.ub:
        return False
    written = {id(r) for r in _written_roots(first)}
    for operand in second.operands:
        root = _source_root(operand)
        if root is not None and id(root) in written:
            return False
    # Everything between the two applies must be free of unknown side effects.
    block = first.parent_block()
    ops = block.ops
    start = block.index_of(first)
    end = block.index_of(second)
    allowed = (
        stencil.ExternalLoadOp,
        stencil.LoadOp,
        stencil.StoreOp,
        stencil.CastOp,
    )
    for op in ops[start + 1 : end]:
        if not isinstance(op, allowed) and not op.name.startswith(("arith.", "fir.load")):
            return False
    return True


def _fuse_pair(first: stencil.ApplyOp, second: stencil.ApplyOp) -> stencil.ApplyOp:
    """Create one apply combining ``first`` and ``second`` (same bounds)."""
    block = first.parent_block()
    assert block is not None

    # Deduplicate operands that snapshot the same external array.
    new_operands: List[SSAValue] = []
    operand_keys: Dict[int, int] = {}  # id(root or operand) -> index in new_operands

    def operand_index(value: SSAValue) -> int:
        root = _source_root(value)
        key = id(root) if root is not None else id(value)
        if key in operand_keys:
            return operand_keys[key]
        operand_keys[key] = len(new_operands)
        new_operands.append(value)
        return operand_keys[key]

    mapping: Dict[SSAValue, int] = {}
    for apply_op in (first, second):
        for operand, arg in zip(apply_op.operands, apply_op.body.block.args):
            mapping[arg] = operand_index(operand)

    fused_block = Block(arg_types=[v.type for v in new_operands])
    value_map: Dict[SSAValue, SSAValue] = {}
    for arg, idx in mapping.items():
        value_map[arg] = fused_block.args[idx]

    returns: List[SSAValue] = []
    for apply_op in (first, second):
        for op in apply_op.body.block.ops:
            if isinstance(op, stencil.ReturnOp):
                returns.extend(value_map.get(o, o) for o in op.operands)
                continue
            fused_block.add_op(op.clone(value_map))
    fused_block.add_op(stencil.ReturnOp(returns))

    fused = stencil.ApplyOp(
        new_operands,
        first.lb,
        first.ub,
        [r.type for r in first.results] + [r.type for r in second.results],
        Region([fused_block]),
    )
    # Vectorizability metadata must survive fusion: a fused body built from
    # two whole-array-compilable bodies is itself compilable (it is the same
    # op set over the union of the operands), so carry the marker over — and
    # re-verify against the kernel compiler's static analysis to be safe.
    if "stencil.vectorizable" in first.attributes and \
            "stencil.vectorizable" in second.attributes:
        from ..runtime.kernel_compiler import apply_is_vectorizable

        if apply_is_vectorizable(fused):
            fused.attributes["stencil.vectorizable"] = UnitAttr()
    # Insert at the position of the *second* apply: every operand of both
    # applies is defined by then.
    block.insert_op_before(fused, second)

    # Stores consuming the first apply may sit before the fused op; move them after it.
    n_first = len(first.results)
    for i, old_result in enumerate(list(first.results) + list(second.results)):
        old_result.replace_all_uses_with(fused.results[i])
    for use_op in [u.operation for r in fused.results for u in r.uses]:
        if use_op.parent_block() is block and block.index_of(use_op) < block.index_of(fused):
            use_op.detach()
            block.insert_op_after(use_op, fused)

    first.erase()
    second.erase()
    return fused


def merge_adjacent_applies(func_op: FuncOp) -> int:
    """Fuse eligible applies within every block of ``func_op``; returns count."""
    fused_count = 0
    changed = True
    while changed:
        changed = False
        for block in _blocks_of(func_op):
            applies = [op for op in block.ops if isinstance(op, stencil.ApplyOp)]
            for first, second in zip(applies, applies[1:]):
                if _can_fuse(first, second):
                    _fuse_pair(first, second)
                    fused_count += 1
                    changed = True
                    break
            if changed:
                break
    return fused_count


def _blocks_of(func_op: FuncOp):
    blocks = []
    for op in func_op.walk():
        for region in op.regions:
            blocks.extend(region.blocks)
    return blocks


@register_pass
class StencilFusionPass(ModulePass):
    """Standalone pass exposing the adjacent-apply merge (ablation: E9)."""

    name = "stencil-fusion"

    def __init__(self):
        self.fused = 0

    def apply(self, ctx: Context, module: Operation) -> None:
        for op in list(module.walk()):
            if isinstance(op, FuncOp) and not op.is_declaration:
                self.fused += merge_adjacent_applies(op)


__all__ = ["StencilFusionPass", "merge_adjacent_applies"]
