"""Stencil extraction: lift stencil-dialect IR out of FIR into its own module.

Flang does not register the stencil (or most standard) dialects and
``mlir-opt`` does not know FIR, so the mixed IR produced by discovery cannot be
compiled by either tool alone.  The paper's solution (§3) is to extract the
stencil portions into functions in a *separate* MLIR module, compile the two
modules with different flows and link the objects; the FIR module calls the
extracted functions, passing its arrays as ``!fir.llvm_ptr`` values (which are
bit-identical to LLVM pointers).

This pass reproduces that split: it returns a new module containing one
function per extracted stencil region and rewrites the FIR module to call it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..dialects import fir, stencil
from ..dialects.builtin import ModuleOp
from ..dialects.func import CallOp, FuncOp, ReturnOp
from ..dialects.llvm import LLVMPointerType
from ..ir.attributes import UnitAttr
from ..ir.context import Context
from ..ir.operation import Block, Operation, Region
from ..ir.pass_manager import ModulePass, register_pass
from ..ir.ssa import SSAValue
from ..ir.types import FunctionType, TypeAttribute


def _is_stencil_related(op: Operation, block_ops: Sequence[Operation]) -> bool:
    """True for stencil ops and for FIR/arith ops that only feed stencil ops."""
    if op.name.startswith("stencil."):
        return True
    if op.name in ("fir.load", "arith.constant", "fir.convert"):
        if not op.results:
            return False
        uses = [u.operation for r in op.results for u in r.uses]
        return bool(uses) and all(u.name.startswith("stencil.") for u in uses)
    return False


def _stencil_segments(block: Block) -> List[List[Operation]]:
    """Maximal contiguous runs of stencil-related operations within a block."""
    segments: List[List[Operation]] = []
    current: List[Operation] = []
    ops = block.ops
    for op in ops:
        if _is_stencil_related(op, ops):
            current.append(op)
        else:
            if any(o.name.startswith("stencil.") for o in current):
                segments.append(current)
            current = []
    if any(o.name.startswith("stencil.") for o in current):
        segments.append(current)
    return segments


def _external_inputs(segment: Sequence[Operation]) -> List[SSAValue]:
    """Values used by the segment but defined outside of it (in program order)."""
    inside_ops = set(id(op) for op in segment)
    inside_values = set()
    for op in segment:
        for nested in op.walk():
            inside_values.update(id(r) for r in nested.results)
            for region in nested.regions:
                for blk in region.blocks:
                    inside_values.update(id(a) for a in blk.args)
    external: List[SSAValue] = []
    seen = set()
    for op in segment:
        for nested in op.walk():
            for operand in nested.operands:
                if id(operand) in inside_values or id(operand) in seen:
                    continue
                seen.add(id(operand))
                external.append(operand)
    return external


def _extracted_arg_type(value: SSAValue) -> TypeAttribute:
    """Reference-like values cross the module boundary as LLVM pointers."""
    if fir.is_reference_like(value.type):
        return LLVMPointerType(fir.element_type_of(value.type))
    return value.type


@register_pass
class ExtractStencilsPass(ModulePass):
    """Move stencil IR into a separate module, leaving calls behind in FIR."""

    name = "extract-stencils"

    def __init__(self, prefix: str = "_stencil"):
        self.prefix = prefix
        #: The module holding the extracted stencil functions (after apply()).
        self.extracted_module: Optional[ModuleOp] = None
        #: Names of the functions created, in extraction order.
        self.extracted_functions: List[str] = []

    def apply(self, ctx: Context, module: Operation) -> None:
        extracted_funcs: List[FuncOp] = []
        counter = 0
        for func_op in list(module.walk()):
            if not isinstance(func_op, FuncOp) or func_op.is_declaration:
                continue
            for block in self._all_blocks(func_op):
                for segment in _stencil_segments(block):
                    name = f"{self.prefix}_{func_op.sym_name}_{counter}"
                    counter += 1
                    new_func = self._extract_segment(
                        module, func_op, block, segment, name
                    )
                    extracted_funcs.append(new_func)
                    self.extracted_functions.append(name)
        self.extracted_module = ModuleOp(extracted_funcs, sym_name="stencil_module")

    # ------------------------------------------------------------------

    @staticmethod
    def _all_blocks(func_op: FuncOp) -> List[Block]:
        blocks: List[Block] = []
        for op in func_op.walk():
            for region in op.regions:
                blocks.extend(region.blocks)
        return blocks

    def _extract_segment(
        self,
        fir_module: Operation,
        func_op: FuncOp,
        block: Block,
        segment: Sequence[Operation],
        name: str,
    ) -> FuncOp:
        externals = _external_inputs(segment)
        arg_types = [_extracted_arg_type(v) for v in externals]

        # Build the stencil function: clone the segment with externals mapped
        # to the new block arguments.
        new_func = FuncOp.build(name, arg_types, [])
        new_func.attributes["stencil.extracted"] = UnitAttr()
        entry = new_func.entry_block
        value_map: Dict[SSAValue, SSAValue] = {}
        for external, arg in zip(externals, entry.args):
            arg.name_hint = external.name_hint
            value_map[external] = arg
        for op in segment:
            entry.add_op(op.clone(value_map))
        entry.add_op(ReturnOp([]))

        # Rewrite the FIR side: convert array references to !fir.llvm_ptr and
        # call the extracted function in place of the segment.
        first_op = segment[0]
        call_args: List[SSAValue] = []
        for external in externals:
            if fir.is_reference_like(external.type):
                convert = fir.ConvertOp(
                    external, fir.LLVMPointerType(fir.element_type_of(external.type))
                )
                block.insert_op_before(convert, first_op)
                call_args.append(convert.results[0])
            else:
                call_args.append(external)
        call = fir.CallOp(name, call_args)
        block.insert_op_before(call, first_op)

        # Remove the original segment (last-to-first so uses disappear first).
        for op in reversed(list(segment)):
            op.erase(safe=False)

        # Provide a declaration of the extracted function in the FIR module so
        # the call is resolvable when the two objects are "linked".
        if isinstance(fir_module, ModuleOp) and fir_module.get_symbol(name) is None:
            fir_module.add_op(FuncOp.declaration(name, arg_types, []))
        return new_func


__all__ = ["ExtractStencilsPass"]
