"""Stencil discovery: find loop nests in FIR and rewrite them to the stencil dialect.

This is the paper's primary contribution (§3, Listing 3).  The pass:

1. gathers every ``fir.do_loop`` in a function and identifies the memory slot
   of its loop variable (Flang stores the converted induction value into the
   variable's alloca at the top of the body);
2. iterates over every array store (``fir.store`` through a
   ``fir.coordinate_of``), walking the index expressions backwards to decide
   whether the store is *indexed by loops* — i.e. each dimension's index is a
   loop variable plus a constant offset;
3. collects every array read on the right-hand side along with its per-
   dimension constant offsets relative to the store;
4. generates ``stencil.external_load`` / ``stencil.load`` operations for every
   array involved, a ``stencil.apply`` whose body re-expresses the arithmetic
   using ``stencil.access`` (and ``stencil.index`` for direct loop-variable
   uses), and a ``stencil.store`` for the output;
5. inserts the generated operations directly before the outermost driving
   loop, removes the now-dead arithmetic, and erases loops left empty;
6. finally merges adjacent stencils with identical bounds
   (:mod:`repro.transforms.stencil_fusion` exposes the same merge as a
   standalone pass).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..dialects import arith, fir, math_dialect, stencil
from ..dialects.func import FuncOp
from ..ir.attributes import StringAttr, UnitAttr
from ..ir.builder import Builder
from ..ir.context import Context
from ..ir.operation import Block, Operation, Region
from ..ir.pass_manager import ModulePass, register_pass
from ..ir.ssa import BlockArgument, OpResult, SSAValue
from ..ir.types import FloatType, IndexType, IntegerType, f64, index
from .stencil_fusion import merge_adjacent_applies


class DiscoveryError(Exception):
    """Internal: a candidate store turned out not to be a stencil."""


# ---------------------------------------------------------------------------
# Analysis data structures
# ---------------------------------------------------------------------------


@dataclass
class LoopInfo:
    """One ``fir.do_loop`` plus the facts discovery needs about it."""

    op: fir.DoLoopOp
    var_ref: Optional[SSAValue]  # the declare/alloca the induction value is stored to
    lower: Optional[int]
    upper: Optional[int]
    step: Optional[int]

    @property
    def has_constant_bounds(self) -> bool:
        return self.lower is not None and self.upper is not None and self.step == 1


@dataclass
class ArrayAccess:
    """One array read or write: the array plus per-dimension (loop, offset)."""

    root: SSAValue  # the array's storage reference (fir.declare result)
    name: str
    dims: List[Tuple[Optional[LoopInfo], int]] = field(default_factory=list)
    load_op: Optional[Operation] = None  # the fir.load for reads


@dataclass
class StencilCandidate:
    """A store that has been proven to be a stencil computation."""

    store_op: fir.StoreOp
    output: ArrayAccess
    reads: List[ArrayAccess]
    loops: List[LoopInfo]  # per output dimension, the driving loop
    lb: Tuple[int, ...]
    ub: Tuple[int, ...]


@dataclass
class GeneratedStencil:
    """The operations generated for one (or a group of) candidate stores."""

    applicable_loops: List[LoopInfo]
    ops: List[Operation]


# ---------------------------------------------------------------------------
# Loop gathering
# ---------------------------------------------------------------------------


def gather_program_loops(func_op: FuncOp) -> List[LoopInfo]:
    """Collect every ``fir.do_loop`` with its loop-variable slot and bounds."""
    loops: List[LoopInfo] = []
    for op in func_op.walk():
        if not isinstance(op, fir.DoLoopOp):
            continue
        loops.append(
            LoopInfo(
                op=op,
                var_ref=_loop_variable_storage(op),
                lower=_trace_constant(op.lower_bound),
                upper=_trace_constant(op.upper_bound),
                step=_trace_constant(op.step),
            )
        )
    return loops


def _loop_variable_storage(loop: fir.DoLoopOp) -> Optional[SSAValue]:
    """The storage the loop's induction variable is written to each iteration."""
    induction = loop.induction_variable
    for op in loop.body.block.ops:
        if isinstance(op, fir.StoreOp):
            value = op.value
            if isinstance(value, OpResult) and isinstance(value.op, fir.ConvertOp):
                if value.op.value is induction:
                    return op.memref
            if value is induction:
                return op.memref
    return None


def _trace_constant(value: SSAValue) -> Optional[int]:
    """Trace a bound value back to an integer constant if possible."""
    seen = 0
    while isinstance(value, OpResult) and seen < 32:
        seen += 1
        op = value.op
        if isinstance(op, arith.ConstantOp):
            literal = op.literal
            return int(literal) if float(literal).is_integer() else None
        if isinstance(op, (fir.ConvertOp, fir.NoReassocOp)):
            value = op.operands[0]
            continue
        if isinstance(op, arith.AddiOp):
            lhs = _trace_constant(op.lhs)
            rhs = _trace_constant(op.rhs)
            return lhs + rhs if lhs is not None and rhs is not None else None
        if isinstance(op, arith.SubiOp):
            lhs = _trace_constant(op.lhs)
            rhs = _trace_constant(op.rhs)
            return lhs - rhs if lhs is not None and rhs is not None else None
        if isinstance(op, arith.MuliOp):
            lhs = _trace_constant(op.lhs)
            rhs = _trace_constant(op.rhs)
            return lhs * rhs if lhs is not None and rhs is not None else None
        return None
    return None


# ---------------------------------------------------------------------------
# Index expression analysis
# ---------------------------------------------------------------------------


def _trace_index_expression(value: SSAValue) -> Tuple[Optional[SSAValue], int]:
    """Decompose an index expression into (variable storage, constant offset).

    Returns ``(None, c)`` for pure constants and raises :class:`DiscoveryError`
    when the expression is not of the supported affine form var±const.
    """
    if isinstance(value, BlockArgument):
        # A do_loop induction variable used directly.
        owner = value.owner()
        parent = owner.parent_op() if isinstance(owner, Block) else None
        if isinstance(parent, fir.DoLoopOp):
            storage = _loop_variable_storage(parent)
            if storage is not None:
                return storage, 0
        raise DiscoveryError("index expression uses an unsupported block argument")
    if not isinstance(value, OpResult):
        raise DiscoveryError("index expression has no defining operation")
    op = value.op
    if isinstance(op, arith.ConstantOp):
        return None, int(op.literal)
    if isinstance(op, (fir.ConvertOp, fir.NoReassocOp)):
        return _trace_index_expression(op.operands[0])
    if isinstance(op, fir.LoadOp):
        ref = op.memref
        return ref, 0
    if isinstance(op, arith.AddiOp):
        lvar, loff = _trace_index_expression(op.lhs)
        rvar, roff = _trace_index_expression(op.rhs)
        if lvar is not None and rvar is not None:
            raise DiscoveryError("index expression adds two variables")
        return lvar or rvar, loff + roff
    if isinstance(op, arith.SubiOp):
        lvar, loff = _trace_index_expression(op.lhs)
        rvar, roff = _trace_index_expression(op.rhs)
        if rvar is not None:
            raise DiscoveryError("index expression subtracts a variable")
        return lvar, loff - roff
    raise DiscoveryError(f"unsupported operation '{op.name}' in index expression")


def _array_root_and_name(ref: SSAValue) -> Tuple[SSAValue, str]:
    """Resolve the storage root (declare result) and a printable name."""
    current = ref
    for _ in range(16):
        if isinstance(current, OpResult):
            op = current.op
            if isinstance(op, fir.DeclareOp):
                return current, op.uniq_name.split("E")[-1]
            if isinstance(op, (fir.ConvertOp, fir.NoReassocOp)):
                current = op.operands[0]
                continue
            if isinstance(op, (fir.AllocaOp, fir.AllocMemOp)):
                name = op.uniq_name or "array"
                return current, name.split("E")[-1]
        break
    name = current.name_hint or "array"
    return current, name


def _array_shape(root: SSAValue) -> Optional[Tuple[int, ...]]:
    shape = fir.array_shape_of(root.type)
    if shape is None:
        return None
    if any(s < 0 for s in shape):
        return None
    return tuple(shape)


# ---------------------------------------------------------------------------
# Store classification (is_indexed_by_loops + RHS analysis)
# ---------------------------------------------------------------------------


def _enclosing_loops(op: Operation) -> List[fir.DoLoopOp]:
    loops: List[fir.DoLoopOp] = []
    parent = op.parent_op()
    while parent is not None:
        if isinstance(parent, fir.DoLoopOp):
            loops.append(parent)
        parent = parent.parent_op()
    return loops


def _classify_access(
    coord: fir.CoordinateOfOp, loops_by_storage: Dict[int, LoopInfo]
) -> ArrayAccess:
    root, name = _array_root_and_name(coord.ref)
    access = ArrayAccess(root=root, name=name)
    for index_value in coord.indices:
        storage, offset = _trace_index_expression(index_value)
        if storage is None:
            access.dims.append((None, offset))
            continue
        loop = loops_by_storage.get(id(storage))
        if loop is None:
            raise DiscoveryError("array index is not driven by a known loop variable")
        access.dims.append((loop, offset))
    return access


def enclosing_loop_map(store_op: fir.StoreOp, loops: Sequence[LoopInfo]) -> Dict[int, LoopInfo]:
    """Map loop-variable storage id -> the *enclosing* loop driving it.

    The same loop variable (e.g. ``i``) may drive several sibling loop nests;
    each store must be related to the loops that actually enclose it.
    """
    enclosing = {id(op) for op in _enclosing_loops(store_op)}
    mapping: Dict[int, LoopInfo] = {}
    for info in loops:
        if info.var_ref is not None and id(info.op) in enclosing:
            mapping[id(info.var_ref)] = info
    return mapping


def is_indexed_by_loops(store_op: fir.StoreOp, loops: Sequence[LoopInfo]) -> bool:
    """Paper Listing 3's predicate: every store index is loop-variable driven."""
    ref = store_op.memref
    if not (isinstance(ref, OpResult) and isinstance(ref.op, fir.CoordinateOfOp)):
        return False
    loops_by_storage = enclosing_loop_map(store_op, loops)
    try:
        access = _classify_access(ref.op, loops_by_storage)
    except DiscoveryError:
        return False
    for loop, _offset in access.dims:
        if loop is None:
            return False
        if not loop.has_constant_bounds:
            return False
    return True


def get_array_read_data_ops(store_op: fir.StoreOp) -> List[fir.LoadOp]:
    """All array ``fir.load`` operations feeding the stored value."""
    reads: List[fir.LoadOp] = []
    visited = set()

    def visit(value: SSAValue) -> None:
        if id(value) in visited or not isinstance(value, OpResult):
            return
        visited.add(id(value))
        op = value.op
        if isinstance(op, fir.LoadOp):
            ref = op.memref
            if isinstance(ref, OpResult) and isinstance(ref.op, fir.CoordinateOfOp):
                reads.append(op)
                return
            return  # scalar load: handled separately as an external value
        for operand in op.operands:
            visit(operand)

    visit(store_op.value)
    return reads


# ---------------------------------------------------------------------------
# The pass
# ---------------------------------------------------------------------------


@register_pass
class StencilDiscoveryPass(ModulePass):
    """Rewrite loop-nest stencil computations in FIR into the stencil dialect."""

    name = "discover-stencils"

    def __init__(self, merge: bool = True):
        self.merge = merge
        #: Filled during apply(): number of stencils found per function.
        self.discovered: Dict[str, int] = {}

    def apply(self, ctx: Context, module: Operation) -> None:
        for op in list(module.walk()):
            if isinstance(op, FuncOp) and not op.is_declaration:
                count = self._apply_to_function(op)
                if count:
                    self.discovered[op.sym_name] = count

    # ------------------------------------------------------------------

    def _apply_to_function(self, func_op: FuncOp) -> int:
        loops = gather_program_loops(func_op)
        if not loops:
            return 0

        candidates: List[StencilCandidate] = []
        for op in list(func_op.walk()):
            if not isinstance(op, fir.StoreOp):
                continue
            if not is_indexed_by_loops(op, loops):
                continue
            candidate = self._analyse_store(op, enclosing_loop_map(op, loops))
            if candidate is not None:
                candidates.append(candidate)

        pairs: List[Tuple[StencilCandidate, GeneratedStencil]] = []
        for candidate in candidates:
            generated = self._generate_stencil_ops(candidate)
            if generated is not None:
                pairs.append((candidate, generated))

        # Insert the generated operations directly before the outermost loop
        # involved in each stencil, then drop the original store.
        inserted = 0
        for candidate, generated in pairs:
            top_loop = self._find_top_level_loop(generated.applicable_loops)
            block = top_loop.op.parent_block()
            if block is None:
                continue
            block.insert_ops_before(generated.ops, top_loop.op)
            candidate.store_op.erase()
            inserted += 1

        if inserted:
            _erase_dead_arithmetic(func_op)
            _remove_empty_loops(func_op)
            if self.merge:
                merge_adjacent_applies(func_op)
        return inserted

    # ------------------------------------------------------------------

    def _analyse_store(
        self, store_op: fir.StoreOp, loops_by_storage: Dict[int, LoopInfo]
    ) -> Optional[StencilCandidate]:
        coord = store_op.memref.op  # type: ignore[union-attr]
        try:
            output = _classify_access(coord, loops_by_storage)
            read_loads = get_array_read_data_ops(store_op)
            reads = []
            for load in read_loads:
                access = _classify_access(load.memref.op, loops_by_storage)  # type: ignore[union-attr]
                access.load_op = load
                reads.append(access)
        except DiscoveryError:
            return None

        if _array_shape(output.root) is None:
            return None
        for read in reads:
            if _array_shape(read.root) is None:
                return None
            if len(read.dims) != len(output.dims):
                return None
            for (read_loop, _), (out_loop, _) in zip(read.dims, output.dims):
                if read_loop is not None and out_loop is not None and read_loop is not out_loop:
                    return None  # transposed access patterns are not stencils here

        driving_loops: List[LoopInfo] = []
        lb: List[int] = []
        ub: List[int] = []
        for loop, offset in output.dims:
            if loop is None or not loop.has_constant_bounds:
                return None
            driving_loops.append(loop)
            # Stencil index space == zero-based array index space of the output:
            # Fortran loop bounds are inclusive, stencil bounds are half open.
            lb.append(loop.lower + offset)
            ub.append(loop.upper + offset + 1)
        if len(set(id(l.op) for l in driving_loops)) != len(driving_loops):
            return None  # one loop drives two dimensions: not a dense stencil

        return StencilCandidate(
            store_op=store_op,
            output=output,
            reads=reads,
            loops=driving_loops,
            lb=tuple(lb),
            ub=tuple(ub),
        )

    # ------------------------------------------------------------------
    # Stencil op generation
    # ------------------------------------------------------------------

    def _generate_stencil_ops(self, candidate: StencilCandidate) -> Optional[GeneratedStencil]:
        store_op = candidate.store_op
        elem_type = store_op.value.type
        generated: List[Operation] = []

        # generate_stencil_field_load for every unique array (reads first, then
        # the output, matching Listing 3's ordering).
        field_for_root: Dict[int, SSAValue] = {}
        temp_for_root: Dict[int, SSAValue] = {}
        temp_order: List[int] = []

        def ensure_field(root: SSAValue) -> SSAValue:
            if id(root) in field_for_root:
                return field_for_root[id(root)]
            shape = _array_shape(root)
            field_type = stencil.FieldType([[0, s] for s in shape],
                                           fir.element_type_of(root.type))
            load = stencil.ExternalLoadOp(root, field_type)
            generated.append(load)
            field_for_root[id(root)] = load.results[0]
            return load.results[0]

        for read in candidate.reads:
            if id(read.root) not in temp_for_root:
                field_value = ensure_field(read.root)
                temp_load = stencil.LoadOp(field_value)
                generated.append(temp_load)
                temp_for_root[id(read.root)] = temp_load.results[0]
                temp_order.append(id(read.root))
        output_field = ensure_field(candidate.output.root)

        # Scalar values read from memory outside the loops become extra apply
        # operands (loaded freshly just before the stencil ops).
        scalar_operands: Dict[int, SSAValue] = {}

        apply_inputs: List[SSAValue] = [temp_for_root[k] for k in temp_order]
        body_block = Block(arg_types=[v.type for v in apply_inputs])
        arg_for_root = {
            root_id: body_block.args[i] for i, root_id in enumerate(temp_order)
        }

        builder = Builder.at_end(body_block)
        value_map: Dict[int, SSAValue] = {}
        loop_dim = {id(loop.op): dim for dim, loop in enumerate(candidate.loops)}
        read_by_load = {id(r.load_op): r for r in candidate.reads if r.load_op is not None}

        def offsets_relative_to_store(read: ArrayAccess) -> List[int]:
            rel = []
            for (r_loop, r_off), (o_loop, o_off) in zip(read.dims, candidate.output.dims):
                rel.append(r_off - o_off)
            return rel

        def rebuild(value: SSAValue) -> SSAValue:
            """Recreate the value's expression inside the apply body."""
            if id(value) in value_map:
                return value_map[id(value)]
            if not isinstance(value, OpResult):
                raise DiscoveryError("cannot rebuild a block-argument value")
            op = value.op
            result: SSAValue
            if isinstance(op, fir.LoadOp) and id(op) in read_by_load:
                read = read_by_load[id(op)]
                access = stencil.AccessOp(
                    arg_for_root[id(read.root)], offsets_relative_to_store(read)
                )
                builder.insert(access)
                result = access.results[0]
            elif isinstance(op, fir.LoadOp):
                ref = op.memref
                # Loop variable used directly in the computation -> stencil.index
                matching_loop = None
                for loop in candidate.loops:
                    if loop.var_ref is ref:
                        matching_loop = loop
                        break
                if matching_loop is not None:
                    dim = loop_dim[id(matching_loop.op)]
                    index_op = builder.insert(stencil.IndexOp(dim))
                    result = index_op.results[0]
                    if isinstance(value.type, (IntegerType,)):
                        cast = builder.insert(arith.IndexCastOp(result, value.type))
                        result = cast.results[0]
                else:
                    # A loop-invariant scalar: load it outside and pass it in.
                    if id(ref) not in scalar_operands:
                        outer_load = fir.LoadOp(ref)
                        generated.append(outer_load)
                        scalar_operands[id(ref)] = outer_load.results[0]
                        apply_inputs.append(outer_load.results[0])
                        new_arg = body_block.add_arg(outer_load.results[0].type)
                        value_map[id(outer_load.results[0])] = new_arg
                    outer_value = scalar_operands[id(ref)]
                    result = value_map[id(outer_value)]
            elif isinstance(op, arith.ConstantOp):
                clone = builder.insert(arith.ConstantOp(op.get_attr("value")))
                result = clone.results[0]
            elif isinstance(op, fir.NoReassocOp):
                result = rebuild(op.operands[0])
            elif isinstance(op, fir.ConvertOp):
                result = self._rebuild_convert(builder, rebuild(op.operands[0]), value.type)
            elif op.name.startswith("arith.") or op.name.startswith("math."):
                new_operands = [rebuild(o) for o in op.operands]
                clone = op.clone({o: n for o, n in zip(op.operands, new_operands)})
                builder.insert(clone)
                result = clone.results[value.index]
            else:
                raise DiscoveryError(
                    f"operation '{op.name}' is not supported inside a stencil body"
                )
            value_map[id(value)] = result
            return result

        try:
            returned = rebuild(store_op.value)
        except DiscoveryError:
            return None
        builder.insert(stencil.ReturnOp([returned]))

        result_temp_type = stencil.TempType(
            [[l, u] for l, u in zip(candidate.lb, candidate.ub)], elem_type
        )
        apply_op = stencil.ApplyOp(
            apply_inputs,
            candidate.lb,
            candidate.ub,
            [result_temp_type],
            Region([body_block]),
        )
        # Record whether the body can be compiled to a whole-array kernel
        # (execution_mode="vectorize"); fusion keeps this metadata intact.
        # The analysis stores its kernel in the process-wide structural cache,
        # so this is pre-compilation, not throwaway work: a vectorize-mode
        # interpreter starts with a cache hit for every tagged stencil.
        from ..runtime.kernel_compiler import apply_is_vectorizable

        if apply_is_vectorizable(apply_op):
            apply_op.attributes["stencil.vectorizable"] = UnitAttr()
        generated.append(apply_op)
        generated.append(
            stencil.StoreOp(apply_op.results[0], output_field, candidate.lb, candidate.ub)
        )
        return GeneratedStencil(applicable_loops=candidate.loops, ops=generated)

    @staticmethod
    def _rebuild_convert(builder: Builder, value: SSAValue, target) -> SSAValue:
        """Convert FIR numeric conversions into standard arith casts."""
        if value.type == target:
            return value
        source = value.type
        if isinstance(source, (IntegerType, IndexType)) and isinstance(target, FloatType):
            if isinstance(source, IndexType):
                value = builder.insert(arith.IndexCastOp(value, IntegerType(64))).results[0]
            return builder.insert(arith.SIToFPOp(value, target)).results[0]
        if isinstance(source, FloatType) and isinstance(target, (IntegerType,)):
            return builder.insert(arith.FPToSIOp(value, target)).results[0]
        if isinstance(source, FloatType) and isinstance(target, FloatType):
            cls = arith.ExtFOp if target.width > source.width else arith.TruncFOp
            return builder.insert(cls(value, target)).results[0]
        if isinstance(source, (IntegerType, IndexType)) and isinstance(
            target, (IntegerType, IndexType)
        ):
            return builder.insert(arith.IndexCastOp(value, target)).results[0]
        raise DiscoveryError(
            f"unsupported conversion {source.print()} -> {target.print()}"
        )

    # ------------------------------------------------------------------

    @staticmethod
    def _find_top_level_loop(loops: Sequence[LoopInfo]) -> LoopInfo:
        """The outermost of the given loops (the one not nested in any other)."""
        ops = {id(l.op): l for l in loops}
        for info in loops:
            parent = info.op.parent_op()
            is_nested = False
            while parent is not None:
                if id(parent) in ops:
                    is_nested = True
                    break
                parent = parent.parent_op()
            if not is_nested:
                return info
        return loops[0]


# ---------------------------------------------------------------------------
# Cleanup helpers
# ---------------------------------------------------------------------------

_SIDE_EFFECT_FREE = (
    "arith.", "math.", "fir.convert", "fir.no_reassoc", "fir.coordinate_of",
    "fir.load", "fir.declare",
)


def _erase_dead_arithmetic(func_op: FuncOp) -> None:
    """Remove now-unused arithmetic / address / load operations (local DCE)."""
    changed = True
    while changed:
        changed = False
        for op in list(func_op.walk()):
            if op is func_op:
                continue
            if any(res.has_uses for res in op.results):
                continue
            if not op.results:
                continue
            if any(op.name.startswith(prefix) for prefix in _SIDE_EFFECT_FREE):
                op.erase()
                changed = True


def _remove_empty_loops(func_op: FuncOp) -> None:
    """Erase ``fir.do_loop`` nests whose bodies only maintain their loop variable."""
    changed = True
    while changed:
        changed = False
        for op in list(func_op.walk()):
            if not isinstance(op, fir.DoLoopOp):
                continue
            if _loop_is_empty(op):
                op.erase(safe=False)
                changed = True
                # The loop bounds may now be dead as well.
                _erase_dead_arithmetic(func_op)


def _loop_is_empty(loop: fir.DoLoopOp) -> bool:
    induction = loop.induction_variable
    for op in loop.body.block.ops:
        if isinstance(op, fir.ResultOp):
            continue
        if isinstance(op, fir.ConvertOp) and op.operands[0] is induction:
            # Only used by the loop-variable store?
            uses = op.results[0].uses
            if all(isinstance(u.operation, fir.StoreOp) for u in uses):
                continue
            return False
        if isinstance(op, fir.StoreOp):
            value = op.value
            if value is induction:
                continue
            if isinstance(value, OpResult) and isinstance(value.op, fir.ConvertOp) \
                    and value.op.operands[0] is induction:
                continue
            return False
        if isinstance(op, fir.DoLoopOp):
            if _loop_is_empty(op):
                continue
            return False
        return False
    return True


__all__ = [
    "StencilDiscoveryPass",
    "LoopInfo",
    "ArrayAccess",
    "StencilCandidate",
    "gather_program_loops",
    "is_indexed_by_loops",
    "get_array_read_data_ops",
    "DiscoveryError",
]
