"""GPU data management passes.

The paper evaluates two strategies for getting stencil data onto the GPU
(§4.3, Figure 5):

* the **initial** approach — ``gpu.host_register`` every stencil array, which
  leaves the data in host memory and pages it across PCI express on demand at
  every kernel invocation (very slow);
* the **optimised** approach — a bespoke transformation pass that walks the IR
  just after stencil extraction, identifies what data each extracted stencil
  function needs, and adds explicit allocation / copy / deallocation functions
  to the stencil module which the FIR module calls *outside* the iteration
  loop, so data stays resident on the device between kernel launches.

Both are implemented here.  The stencil execution functions are additionally
annotated with ``gpu.launch`` (plus grid/block shapes) so the simulated GPU
accounts one kernel launch per invocation and, for host-resident data, the
on-demand transfer traffic that made the initial strategy slow.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..dialects import fir, gpu, memref, stencil
from ..dialects.builtin import ModuleOp, UnrealizedConversionCastOp
from ..dialects.func import FuncOp, ReturnOp
from ..dialects.llvm import LLVMPointerType
from ..ir.attributes import DenseArrayAttr, IntegerAttr, UnitAttr
from ..ir.builder import Builder
from ..ir.context import Context
from ..ir.operation import Block, Operation, Region
from ..ir.pass_manager import ModulePass, register_pass
from ..ir.ssa import OpResult, SSAValue
from ..ir.types import MemRefType, i64


def _stencil_functions(stencil_module: ModuleOp) -> List[FuncOp]:
    return [
        op
        for op in stencil_module.walk()
        if isinstance(op, FuncOp) and op.get_attr_or_none("stencil.extracted") is not None
    ]


def _call_sites(fir_module: ModuleOp, callee: str) -> List[fir.CallOp]:
    return [
        op
        for op in fir_module.walk()
        if isinstance(op, fir.CallOp) and op.callee == callee
    ]


def _array_shape_of_argument(value: SSAValue) -> Optional[Tuple[int, ...]]:
    """Shape of the FIR array behind a (possibly converted) call argument."""
    current = value
    for _ in range(8):
        shape = fir.array_shape_of(current.type) if fir.is_reference_like(current.type) else None
        if shape is not None and all(s >= 0 for s in shape):
            return tuple(shape)
        if isinstance(current, OpResult) and isinstance(
            current.op, (fir.ConvertOp, fir.DeclareOp, fir.NoReassocOp)
        ):
            current = current.op.operands[0]
            continue
        break
    return None


def _annotate_kernel_launch(func_op: FuncOp, tile: Sequence[int] = (32, 32, 1),
                            stream: int = 0) -> None:
    """Tag an extracted stencil function as a GPU kernel launch wrapper.

    ``stream`` is the launch's *stream assignment*: independent stencil
    functions get distinct assignments so the runtime's stream model can
    overlap their launches (the device folds the assignment onto a physical
    stream modulo its configured stream count).  Later lowering
    (``convert-parallel-loops-to-gpu``) propagates the assignment onto the
    ``gpu.launch_func`` ops it outlines from this function.
    """
    domain: Optional[Tuple[int, ...]] = None
    for op in func_op.walk():
        if isinstance(op, stencil.ApplyOp):
            domain = op.domain_shape
            break
    func_op.attributes["gpu.launch"] = UnitAttr()
    func_op.attributes["gpu.stream"] = IntegerAttr(int(stream), i64)
    if domain is None:
        func_op.attributes["gpu.grid"] = DenseArrayAttr((1, 1, 1))
        func_op.attributes["gpu.block"] = DenseArrayAttr((1, 1, 1))
        return
    tile = list(tile) + [1, 1, 1]
    block = [max(1, min(tile[d], domain[d] if d < len(domain) else 1)) for d in range(3)]
    grid = [
        max(1, -(-domain[d] // block[d])) if d < len(domain) else 1 for d in range(3)
    ]
    func_op.attributes["gpu.grid"] = DenseArrayAttr(grid)
    func_op.attributes["gpu.block"] = DenseArrayAttr(block)


class GpuDataManagementBase(ModulePass):
    """Shared helpers for the two data strategies (operate on a module *pair*)."""

    def __init__(self, stencil_module: Optional[ModuleOp] = None,
                 tile: Sequence[int] = (32, 32, 1)):
        self.stencil_module = stencil_module
        self.tile = tuple(tile)

    def apply(self, ctx: Context, module: Operation) -> None:
        if self.stencil_module is None:
            raise ValueError(f"{self.name} requires the extracted stencil module")
        self.apply_pair(ctx, module, self.stencil_module)

    def apply_pair(self, ctx: Context, fir_module: ModuleOp, stencil_module: ModuleOp) -> None:
        raise NotImplementedError

    # -- shared helpers ------------------------------------------------------

    @staticmethod
    def _outermost_enclosing_loop(op: Operation) -> Optional[Operation]:
        outer = None
        parent = op.parent_op()
        while parent is not None:
            if isinstance(parent, fir.DoLoopOp):
                outer = parent
            parent = parent.parent_op()
        return outer

    @staticmethod
    def _add_declaration(fir_module: ModuleOp, name: str, arg_types, result_types=()) -> None:
        if fir_module.get_symbol(name) is None:
            fir_module.add_op(FuncOp.declaration(name, arg_types, result_types))

    @staticmethod
    def _hoisted_pointer(value: SSAValue, anchor: Operation) -> SSAValue:
        """A !fir.llvm_ptr for ``value`` that is available before ``anchor``.

        The extraction pass creates the ``fir.convert`` to ``llvm_ptr`` right
        next to the stencil call (inside the iteration loop); data-management
        calls hoisted outside that loop need their own conversion of the
        underlying array reference, which is defined at function entry.
        """
        source = value
        while isinstance(source, OpResult) and isinstance(source.op, fir.ConvertOp):
            source = source.op.operands[0]
        convert = fir.ConvertOp(
            source, fir.LLVMPointerType(fir.element_type_of(source.type))
        )
        anchor.parent_block().insert_op_before(convert, anchor)
        return convert.results[0]


@register_pass
class GpuHostRegisterPass(GpuDataManagementBase):
    """The paper's *initial* data strategy: register every array with the GPU."""

    name = "gpu-data-host-register"

    def apply_pair(self, ctx: Context, fir_module: ModuleOp, stencil_module: ModuleOp) -> None:
        for stream, func_op in enumerate(_stencil_functions(stencil_module)):
            _annotate_kernel_launch(func_op, self.tile, stream=stream)
            calls = _call_sites(fir_module, func_op.sym_name)
            if not calls:
                continue
            register_name = f"_gpu_register_{func_op.sym_name}"
            arg_types = list(func_op.function_type.inputs)
            ptr_args = [
                (i, t) for i, t in enumerate(arg_types) if isinstance(t, LLVMPointerType)
            ]
            register_func = FuncOp.build(register_name, [t for _, t in ptr_args], [])
            register_func.attributes["gpu.data_management"] = UnitAttr()
            builder = Builder.at_end(register_func.entry_block)
            for arg in register_func.entry_block.args:
                builder.insert(gpu.HostRegisterOp(arg))
            builder.insert(ReturnOp([]))
            stencil_module.add_op(register_func)
            self._add_declaration(fir_module, register_name, [t for _, t in ptr_args])

            # Call the registration function once, before the outermost loop
            # enclosing the first stencil invocation (or before the call).
            call = calls[0]
            anchor: Operation = self._outermost_enclosing_loop(call) or call
            block = anchor.parent_block()
            register_args = [
                self._hoisted_pointer(call.operands[i], anchor) for i, _ in ptr_args
            ]
            register_call = fir.CallOp(register_name, register_args)
            block.insert_op_before(register_call, anchor)


@register_pass
class GpuOptimisedDataPass(GpuDataManagementBase):
    """The paper's bespoke optimised data-management transformation.

    For every extracted stencil function the pass adds, to the stencil module,
    an allocation+copy-in function and a copy-back+deallocation function, and
    rewrites the FIR module to (a) call the allocation function once before the
    outermost iteration loop, (b) pass the returned device pointers to the
    stencil invocations inside the loop, and (c) copy results back and free
    device memory after the loop.
    """

    name = "gpu-data-optimised"

    def apply_pair(self, ctx: Context, fir_module: ModuleOp, stencil_module: ModuleOp) -> None:
        for stream, func_op in enumerate(_stencil_functions(stencil_module)):
            _annotate_kernel_launch(func_op, self.tile, stream=stream)
            calls = _call_sites(fir_module, func_op.sym_name)
            if not calls:
                continue
            self._transform_calls(fir_module, stencil_module, func_op, calls)

    def _transform_calls(self, fir_module: ModuleOp, stencil_module: ModuleOp,
                         func_op: FuncOp, calls: List[fir.CallOp]) -> None:
        arg_types = list(func_op.function_type.inputs)
        ptr_indices = [i for i, t in enumerate(arg_types) if isinstance(t, LLVMPointerType)]
        if not ptr_indices:
            return
        first_call = calls[0]
        shapes = []
        for i in ptr_indices:
            shape = _array_shape_of_argument(first_call.operands[i])
            if shape is None:
                return  # dynamic shapes: leave data management to the caller
            shapes.append(shape)
        elem_types = [arg_types[i].element_type for i in ptr_indices]
        ptr_types = [arg_types[i] for i in ptr_indices]

        # ---- allocation + copy-in function --------------------------------
        alloc_name = f"_gpu_alloc_{func_op.sym_name}"
        alloc_func = FuncOp.build(alloc_name, ptr_types, ptr_types)
        alloc_func.attributes["gpu.data_management"] = UnitAttr()
        # The copy-in is a *prefetch point*: its h2d transfers carry no
        # dependency on prior launches, so the runtime issues them on the
        # device's copy stream where the model can overlap them with compute.
        alloc_func.attributes["gpu.prefetch"] = UnitAttr()
        builder = Builder.at_end(alloc_func.entry_block)
        device_values: List[SSAValue] = []
        for arg, shape, elem, ptr_type in zip(
            alloc_func.entry_block.args, shapes, elem_types, ptr_types
        ):
            host_view = builder.insert(
                UnrealizedConversionCastOp([arg], [MemRefType(shape, elem)])
            )
            device = builder.insert(gpu.AllocOp(MemRefType(shape, elem)))
            builder.insert(gpu.MemcpyOp(device.results[0], host_view.results[0]))
            device_ptr = builder.insert(
                UnrealizedConversionCastOp([device.results[0]], [ptr_type])
            )
            device_values.append(device_ptr.results[0])
        builder.insert(ReturnOp(device_values))
        stencil_module.add_op(alloc_func)

        # ---- copy-back + deallocation function -----------------------------
        free_name = f"_gpu_free_{func_op.sym_name}"
        free_func = FuncOp.build(free_name, ptr_types + ptr_types, [])
        free_func.attributes["gpu.data_management"] = UnitAttr()
        builder = Builder.at_end(free_func.entry_block)
        n = len(ptr_indices)
        for i in range(n):
            device_arg = free_func.entry_block.args[i]
            host_arg = free_func.entry_block.args[n + i]
            host_view = builder.insert(
                UnrealizedConversionCastOp([host_arg], [MemRefType(shapes[i], elem_types[i])])
            )
            device_view = builder.insert(
                UnrealizedConversionCastOp([device_arg], [MemRefType(shapes[i], elem_types[i])])
            )
            builder.insert(gpu.MemcpyOp(host_view.results[0], device_view.results[0]))
            builder.insert(gpu.DeallocOp(device_view.results[0]))
        builder.insert(ReturnOp([]))
        stencil_module.add_op(free_func)

        self._add_declaration(fir_module, alloc_name, ptr_types, ptr_types)
        self._add_declaration(fir_module, free_name, ptr_types + ptr_types)

        # ---- rewrite the FIR call sites -------------------------------------
        anchor: Operation = self._outermost_enclosing_loop(first_call) or first_call
        block = anchor.parent_block()
        host_ptrs = [
            self._hoisted_pointer(first_call.operands[i], anchor) for i in ptr_indices
        ]
        alloc_call = fir.CallOp(alloc_name, host_ptrs, ptr_types)
        block.insert_op_before(alloc_call, anchor)
        device_ptrs = list(alloc_call.results)

        for call in calls:
            for slot, arg_index in enumerate(ptr_indices):
                call.set_operand(arg_index, device_ptrs[slot])

        free_call = fir.CallOp(free_name, device_ptrs + host_ptrs)
        block.insert_op_after(free_call, anchor)


__all__ = [
    "GpuHostRegisterPass",
    "GpuOptimisedDataPass",
    "GpuDataManagementBase",
]
