"""Schedule transforms: rewrite loop IR according to a schedule chain.

The fluent :class:`repro.schedule.Schedule` layer records directives on
``BackendOptions.schedule_chain`` (compile-time cache-key material); this
module is where those directives actually touch the IR during
``Backend.lower``, in two phases:

* **pre** — directives that operate at the stencil level *before* the
  backend pipeline runs: ``fuse`` calls the adjacent-apply merge on every
  extracted function (a no-op when nothing is adjacent, exactly like the
  default ``fuse_stencils`` discovery merge).
* **post** — loop-level directives applied *after* the backend pipeline:

  - ``tile`` records a ``schedule.tile`` attribute on each loop-nest root
    (``scf.parallel`` / ``omp.wsloop``, or the ``stencil.apply`` itself when
    the module stays at the stencil level).  The attribute is execution
    placement, not semantics — the kernel compiler excludes it from the
    structural hash and the interpreter consumes it by running the compiled
    kernel over cache-sized sub-boxes of the domain.
  - ``reorder`` structurally permutes the innermost serial loops: the
    ``scf.for`` chain under a parallel nest root, or the perfectly nested
    ``fir.do_loop`` band of a ``flang-only`` artifact (where swapping the
    loops of an order-dependent sweep like in-place Gauss–Seidel genuinely
    changes results — which is precisely what ``Schedule.verify()`` exists
    to catch).
  - ``unroll`` widens a serial loop's step and replicates its body; the
    non-unit step sends the interpreter to the scalar path, so unrolling is
    bitwise-exact by construction.

Every structural impossibility — wrong tile rank, permutation deeper than
the serial nest, dynamic bounds, a backend with no loops to schedule —
raises :class:`repro.schedule.directives.ScheduleError` naming the kernel,
never a silent no-op.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..dialects import arith, fir, omp, scf, stencil
from ..dialects.func import FuncOp
from ..ir.attributes import DenseArrayAttr
from ..ir.operation import Block, Operation
from ..ir.ssa import BlockArgument, OpResult, SSAValue
from ..ir.types import index
from ..schedule.directives import ScheduleError, describe_chain
from .stencil_fusion import merge_adjacent_applies

#: Attribute carrying tile sizes on a loop-nest root / stencil.apply.  It is
#: runtime placement policy: the kernel compiler's structural hash skips it
#: (see ``_METADATA_ATTRS``) so tiled and untiled sweeps share one kernel.
TILE_ATTR = "schedule.tile"

#: Operation names that may be cloned when hoisting a loop bound out of a
#: ``fir.do_loop`` band (pure value computations only — a bound that needs
#: memory or control flow is "dynamic" and cannot be reordered across).
_PURE_BOUND_OPS = ("fir.convert", "fir.no_reassoc")


def apply_schedule_chain(artifact, ctx, phase: str) -> None:
    """Apply ``artifact.options.schedule_chain`` directives for ``phase``."""
    chain = getattr(artifact.options, "schedule_chain", ())
    if not chain:
        return
    if phase == "pre":
        _apply_pre(artifact, chain)
    elif phase == "post":
        _apply_post(artifact, chain)
    else:  # pragma: no cover - internal contract
        raise ValueError(f"unknown schedule phase {phase!r}")


# ---------------------------------------------------------------------------
# pre phase: stencil-level directives
# ---------------------------------------------------------------------------


def _apply_pre(artifact, chain) -> None:
    fuses = sum(1 for directive in chain if directive[0] == "fuse")
    if not fuses:
        return
    if artifact.stencil_module is None or not artifact.extracted_functions:
        raise ScheduleError(
            f"fuse: backend '{artifact.backend}' produced no extracted "
            f"stencil functions to fuse (chain: {describe_chain(chain)})"
        )
    for name in artifact.extracted_functions:
        func_op = artifact.stencil_module.get_symbol(name)
        for _ in range(fuses):
            merge_adjacent_applies(func_op)
    artifact.stencil_module.verify()


# ---------------------------------------------------------------------------
# post phase: loop-level directives
# ---------------------------------------------------------------------------


def _apply_post(artifact, chain) -> None:
    directives = [d for d in chain if d[0] != "fuse"]
    if not directives:
        return
    backend = artifact.backend
    if backend in ("gpu", "dmp"):
        knob = "tile_sizes" if backend == "gpu" else "grid"
        raise ScheduleError(
            f"backend '{backend}' does not support loop schedule directives "
            f"({describe_chain(directives)}); use the '{knob}' option "
            f"(Schedule.{'blocks' if backend == 'gpu' else 'grid'}) instead"
        )
    if artifact.stencil_module is not None and artifact.extracted_functions:
        if getattr(artifact.options, "lower_to_scf", False):
            _apply_scf_directives(artifact, directives)
        else:
            _apply_stencil_directives(artifact, directives)
        artifact.stencil_module.verify()
    elif backend == "flang-only":
        _apply_fir_directives(artifact, directives)
        artifact.fir_module.verify()
    else:
        raise ScheduleError(
            f"backend '{backend}' discovered no stencil loops to schedule "
            f"(chain: {describe_chain(directives)})"
        )


# -- stencil level (lower_to_scf=False): tile only --------------------------


def _apply_stencil_directives(artifact, directives) -> None:
    for directive in directives:
        kind = directive[0]
        if kind != "tile":
            raise ScheduleError(
                f"{kind}: requires lower_to_scf=True on backend "
                f"'{artifact.backend}' — at the stencil level there are no "
                f"explicit loops to {kind}"
            )
        sizes = directive[1]
        for name in artifact.extracted_functions:
            func_op = artifact.stencil_module.get_symbol(name)
            applies = list(func_op.walk_type(stencil.ApplyOp))
            if not applies:
                raise ScheduleError(f"tile: kernel '{name}' has no stencil.apply")
            for apply_op in applies:
                rank = len(apply_op.lb)
                if len(sizes) != rank:
                    raise ScheduleError(
                        f"tile: kernel '{name}' has rank {rank} but got "
                        f"{len(sizes)} tile sizes {tuple(sizes)}"
                    )
                if apply_op.get_attr_or_none(TILE_ATTR) is not None:
                    raise ScheduleError(
                        f"tile: kernel '{name}' is already tiled "
                        f"(one tile directive per chain)"
                    )
                apply_op.attributes[TILE_ATTR] = DenseArrayAttr(sizes)


# -- scf/omp level (lower_to_scf=True) ---------------------------------------


class _ScfNest:
    """A lowered loop nest: its root (scf.parallel / omp.wsloop) plus the
    perfectly nested serial scf.for chain hanging under it."""

    def __init__(self, root: Operation):
        self.root = root
        self.parallel_rank = int(root.get_attr("rank").value)  # type: ignore[union-attr]
        self.serial_fors: List[scf.ForOp] = []
        block = root.regions[0].block
        while True:
            inner = [op for op in block.ops
                     if not isinstance(op, (scf.YieldOp, omp.YieldOp))]
            if len(inner) == 1 and isinstance(inner[0], scf.ForOp):
                self.serial_fors.append(inner[0])
                block = inner[0].body.block
            else:
                break

    @property
    def rank(self) -> int:
        return self.parallel_rank + len(self.serial_fors)


def _scf_nest_roots(func_op: FuncOp) -> List[Operation]:
    roots = []
    for op in func_op.walk():
        if isinstance(op, (scf.ParallelOp, omp.WsLoopOp)):
            parent = op.parent_op()
            enclosed = False
            while parent is not None:
                if isinstance(parent, (scf.ParallelOp, omp.WsLoopOp)):
                    enclosed = True
                    break
                parent = parent.parent_op()
            if not enclosed:
                roots.append(op)
    return roots


def _apply_scf_directives(artifact, directives) -> None:
    for name in artifact.extracted_functions:
        func_op = artifact.stencil_module.get_symbol(name)
        nests = [_ScfNest(root) for root in _scf_nest_roots(func_op)]
        if not nests:
            raise ScheduleError(
                f"kernel '{name}' contains no lowered loop nests to schedule"
            )
        for directive in directives:
            kind = directive[0]
            for nest in nests:
                if kind == "tile":
                    _tile_scf(nest, directive[1], name)
                elif kind == "reorder":
                    _reorder_scf(nest, directive[1], name)
                elif kind == "unroll":
                    _unroll_scf(nest, directive[1], name)


def _tile_scf(nest: _ScfNest, sizes: Tuple[int, ...], name: str) -> None:
    if len(sizes) != nest.rank:
        raise ScheduleError(
            f"tile: kernel '{name}' lowers to a rank-{nest.rank} loop nest "
            f"but got {len(sizes)} tile sizes {tuple(sizes)}"
        )
    if nest.root.get_attr_or_none(TILE_ATTR) is not None:
        raise ScheduleError(
            f"tile: kernel '{name}' is already tiled (one tile directive "
            f"per chain)"
        )
    nest.root.attributes[TILE_ATTR] = DenseArrayAttr(sizes)


def _defined_inside(value: SSAValue, root: Operation) -> bool:
    if isinstance(value, BlockArgument):
        owner = value.block.parent_op()
    elif isinstance(value, OpResult):
        owner = value.op
    else:  # pragma: no cover - SSAValue is one of the two
        return False
    return owner is not None and root.is_ancestor_of(owner)


def _reorder_scf(nest: _ScfNest, perm: Tuple[int, ...], name: str) -> None:
    m = len(perm)
    depth = len(nest.serial_fors)
    if m > depth:
        raise ScheduleError(
            f"reorder: kernel '{name}' has only {depth} serial loop(s) under "
            f"its parallel nest, cannot apply a length-{m} permutation "
            f"{tuple(perm)} (parallel dimensions cannot be reordered)"
        )
    affected = nest.serial_fors[-m:]
    for for_op in affected:
        for bound in for_op.operands[:3]:
            if _defined_inside(bound, nest.root):
                raise ScheduleError(
                    f"reorder: kernel '{name}' has loop bounds defined inside "
                    f"the nest (triangular loops cannot be reordered)"
                )
    triples = [tuple(f.operands[:3]) for f in affected]
    for i, for_op in enumerate(affected):
        for_op.set_operands(list(triples[perm[i]]) + list(for_op.operands[3:]))
    # Position i now walks the iteration space formerly at position perm[i];
    # body uses of dimension j's induction variable must move to the loop now
    # carrying it, i.e. position inverse-perm[j].
    ivs = [f.induction_variable for f in affected]
    inverse = [0] * m
    for q, j in enumerate(perm):
        inverse[j] = q
    replacement: Dict[int, SSAValue] = {
        id(ivs[j]): ivs[inverse[j]] for j in range(m) if inverse[j] != j
    }
    if replacement:
        for op in list(nest.root.walk(include_self=False)):
            for idx, operand in enumerate(op.operands):
                new = replacement.get(id(operand))
                if new is not None:
                    op.set_operand(idx, new)
    # Tile sizes attach to iteration-space dimensions, so they travel with
    # the loops: permute the serial tail of an existing tile attribute.
    tile_attr = nest.root.get_attr_or_none(TILE_ATTR)
    if tile_attr is not None:
        sizes = list(tile_attr.as_tuple())
        tail = sizes[-m:]
        sizes[-m:] = [tail[perm[i]] for i in range(m)]
        nest.root.attributes[TILE_ATTR] = DenseArrayAttr(sizes)


def _constant_value(value: SSAValue) -> Optional[int]:
    if isinstance(value, OpResult) and isinstance(value.op, arith.ConstantOp):
        return int(value.op.literal)
    return None


def _unroll_scf(nest: _ScfNest, spec: Tuple[int, int], name: str) -> None:
    loop_index, factor = spec
    if loop_index >= len(nest.serial_fors):
        raise ScheduleError(
            f"unroll: kernel '{name}' has {len(nest.serial_fors)} serial "
            f"loop(s); loop index {loop_index} is out of range"
        )
    for_op = nest.serial_fors[loop_index]
    lower = _constant_value(for_op.lower_bound)
    upper = _constant_value(for_op.upper_bound)
    step = _constant_value(for_op.step)
    if lower is None or upper is None or step is None:
        raise ScheduleError(
            f"unroll: kernel '{name}' loop {loop_index} has non-constant "
            f"bounds; only statically counted loops can be unrolled"
        )
    trip = len(range(lower, upper, step))
    if trip % factor != 0:
        raise ScheduleError(
            f"unroll: factor {factor} does not divide the trip count {trip} "
            f"of loop {loop_index} in kernel '{name}'"
        )
    block = for_op.body.block
    original_ops = [op for op in block.ops if not isinstance(op, scf.YieldOp)]
    terminator = block.last_op
    iv = for_op.induction_variable
    for r in range(1, factor):
        offset = arith.ConstantOp.from_int(r * step, index)
        shifted = arith.AddiOp(iv, offset.results[0])
        block.insert_op_before(offset, terminator)
        block.insert_op_before(shifted, terminator)
        value_map: Dict[SSAValue, SSAValue] = {iv: shifted.results[0]}
        for op in original_ops:
            block.insert_op_before(op.clone(value_map), terminator)
    new_step = arith.ConstantOp.from_int(step * factor, index)
    for_op.parent_block().insert_op_before(new_step, for_op)
    for_op.set_operand(2, new_step.results[0])


# -- flang-only: fir.do_loop bands -------------------------------------------


class _FirBand:
    """A perfectly nested ``fir.do_loop`` chain in plain FIR.

    Each level's body starts with the Flang induction-variable prologue
    (``fir.convert`` of the block argument + ``fir.store`` into the loop
    variable's storage slot); the body indexes arrays by *loading the loop
    variable back from storage*, so reordering levels only needs the bounds
    and the storage targets permuted — never the loads in the body.
    """

    def __init__(self, loops: List[fir.DoLoopOp],
                 prologues: List[Tuple[fir.ConvertOp, fir.StoreOp]]):
        self.loops = loops
        self.prologues = prologues


def _iv_prologue(loop: fir.DoLoopOp) -> Optional[Tuple[fir.ConvertOp, fir.StoreOp]]:
    iv = loop.induction_variable
    convert = None
    for use in iv.uses:
        if isinstance(use.operation, fir.ConvertOp):
            if convert is not None:
                return None
            convert = use.operation
        else:
            return None  # iv escapes beyond the prologue: not a Flang band
    if convert is None or len(convert.results[0].uses) != 1:
        return None
    store = next(iter(convert.results[0].uses)).operation
    if not isinstance(store, fir.StoreOp):
        return None
    return convert, store


def _fir_bands(func_op: FuncOp) -> List[_FirBand]:
    bands: List[_FirBand] = []
    top_loops = []
    for op in func_op.walk():
        if isinstance(op, fir.DoLoopOp):
            parent = op.parent_op()
            enclosed = False
            while parent is not None:
                if isinstance(parent, fir.DoLoopOp):
                    enclosed = True
                    break
                parent = parent.parent_op()
            if not enclosed:
                top_loops.append(op)

    def collect(start: fir.DoLoopOp) -> None:
        loops: List[fir.DoLoopOp] = []
        prologues: List[Tuple[fir.ConvertOp, fir.StoreOp]] = []
        current: Optional[fir.DoLoopOp] = start
        while current is not None:
            prologue = _iv_prologue(current)
            body_ops = current.body.block.ops
            children = [op for op in body_ops if isinstance(op, fir.DoLoopOp)]
            if prologue is None:
                # This loop is no Flang band level; its children may still
                # head bands of their own.
                for child in children:
                    collect(child)
                break
            loops.append(current)
            prologues.append(prologue)
            # Only descend through *perfect* levels: anything side-effectful
            # between two loops (another store, a call, control flow) would
            # run a different number of times after a permutation, so such a
            # level ends the reorderable band — and each child loop (e.g. the
            # sibling sweeps under an outer time loop) heads a fresh band.
            perfect = len(children) == 1 and all(
                op is children[0] or op is prologue[0] or op is prologue[1]
                or isinstance(op, fir.ResultOp)
                or op.name.startswith("arith.") or op.name in _PURE_BOUND_OPS
                for op in body_ops
            )
            if perfect:
                current = children[0]
            else:
                for child in children:
                    collect(child)
                current = None
        if loops:
            bands.append(_FirBand(loops, prologues))

    for top in top_loops:
        collect(top)
    return bands


def _hoist_bound(value: SSAValue, band_root: fir.DoLoopOp,
                 insert_block: Block, insert_before: Operation,
                 memo: Dict[int, SSAValue], name: str) -> SSAValue:
    """Clone ``value``'s pure defining chain to before the outermost affected
    loop so permuted bounds still dominate their loops."""
    if not _defined_inside(value, band_root):
        return value
    cached = memo.get(id(value))
    if cached is not None:
        return cached
    if isinstance(value, BlockArgument) or not isinstance(value, OpResult):
        raise ScheduleError(
            f"reorder: kernel '{name}' has loop bounds depending on an "
            f"enclosing induction variable (triangular loops cannot be "
            f"reordered)"
        )
    op = value.op
    if not (op.name.startswith("arith.") or op.name in _PURE_BOUND_OPS):
        raise ScheduleError(
            f"reorder: kernel '{name}' has a dynamic loop bound "
            f"(defined by '{op.name}') that cannot be hoisted out of the nest"
        )
    clone = op.clone({
        operand: _hoist_bound(operand, band_root, insert_block,
                              insert_before, memo, name)
        for operand in op.operands
    })
    insert_block.insert_op_before(clone, insert_before)
    for old_res, new_res in zip(op.results, clone.results):
        memo[id(old_res)] = new_res
    return memo[id(value)]


def _apply_fir_directives(artifact, directives) -> None:
    for directive in directives:
        kind = directive[0]
        if kind != "reorder":
            raise ScheduleError(
                f"{kind}: backend 'flang-only' executes plain FIR loops "
                f"point-by-point; only 'reorder' applies (tile/unroll need "
                f"the stencil flow)"
            )
        perm = directive[1]
        m = len(perm)
        applied = 0
        for func_op in list(artifact.fir_module.walk()):
            if not isinstance(func_op, FuncOp) or func_op.is_declaration:
                continue
            for band in _fir_bands(func_op):
                if len(band.loops) < m:
                    continue
                _reorder_fir_band(band, perm, func_op.sym_name)
                applied += 1
        if not applied:
            raise ScheduleError(
                f"reorder: no fir.do_loop band of depth >= {m} found to "
                f"apply permutation {tuple(perm)} to"
            )


def _reorder_fir_band(band: _FirBand, perm: Tuple[int, ...], name: str) -> None:
    m = len(perm)
    loops = band.loops[-m:]
    prologues = band.prologues[-m:]
    outer = loops[0]
    insert_block = outer.parent_block()
    memo: Dict[int, SSAValue] = {}
    hoisted: List[Tuple[SSAValue, SSAValue, SSAValue]] = []
    for loop in loops:
        hoisted.append(tuple(
            _hoist_bound(bound, outer, insert_block, outer, memo, name)
            for bound in loop.operands[:3]
        ))
    conv_types = [prologue[0].results[0].type for prologue in prologues]
    if any(t != conv_types[0] for t in conv_types):
        raise ScheduleError(
            f"reorder: kernel '{name}' mixes loop-variable types across the "
            f"band; cannot permute"
        )
    storages = [prologue[1].memref for prologue in prologues]
    for storage in storages:
        if _defined_inside(storage, outer):
            raise ScheduleError(
                f"reorder: kernel '{name}' allocates loop-variable storage "
                f"inside the nest; cannot permute"
            )
    hints = [prologue[0].results[0].name_hint for prologue in prologues]
    for i, loop in enumerate(loops):
        loop.set_operands(list(hoisted[perm[i]]))
        # Retarget level i's prologue store at the permuted loop variable's
        # storage slot; body loads of that variable then see level i's index.
        prologues[i][1].set_operand(1, storages[perm[i]])
        prologues[i][0].results[0].name_hint = hints[perm[i]]


__all__ = ["TILE_ATTR", "apply_schedule_chain"]
