"""Lowerings of ``scf.parallel`` to OpenMP and GPU targets.

These reproduce the existing MLIR passes the paper leans on in §3:

* ``convert-scf-to-openmp`` — wraps each top-level ``scf.parallel`` in an
  ``omp.parallel`` region containing an ``omp.wsloop`` with the same bounds;
* ``scf-parallel-loop-tiling{parallel-loop-tile-sizes=...}`` — records the
  tile sizes on the loop (used by the GPU mapping to choose thread-block
  shapes; the paper notes these had to be found empirically);
* ``gpu-map-parallel-loops`` + ``convert-parallel-loops-to-gpu`` +
  ``gpu-kernel-outlining`` — outline each ``scf.parallel`` into a ``gpu.func``
  kernel launched over a grid/block decomposition of the iteration space.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..dialects import arith, gpu, omp, scf
from ..dialects.builtin import ModuleOp
from ..dialects.func import FuncOp
from ..ir.attributes import DenseArrayAttr, StringAttr
from ..ir.builder import Builder
from ..ir.context import Context
from ..ir.operation import Block, Operation, Region
from ..ir.pass_manager import ModulePass, register_pass
from ..ir.ssa import SSAValue
from ..ir.types import index


# ---------------------------------------------------------------------------
# scf.parallel -> OpenMP
# ---------------------------------------------------------------------------


@register_pass
class ConvertSCFToOpenMPPass(ModulePass):
    """``convert-scf-to-openmp`` — multithreaded CPU execution (Figures 3/4).

    ``schedule`` / ``chunk_size`` mirror the OpenMP worksharing schedule
    clause (``schedule(static|dynamic|guided[, chunk])``); they are recorded
    on each ``omp.wsloop`` and consumed by the runtime's tiled parallel
    executor when it partitions the outermost loop dimension across threads.
    Pipeline syntax: ``convert-scf-to-openmp{schedule=dynamic chunk-size=4}``.
    """

    name = "convert-scf-to-openmp"

    def __init__(self, num_threads: Optional[int] = None,
                 schedule: str = "static", chunk_size: Optional[int] = None):
        if schedule not in omp.WsLoopOp.SCHEDULE_KINDS:
            raise ValueError(
                f"schedule must be one of {omp.WsLoopOp.SCHEDULE_KINDS}, "
                f"got {schedule!r}"
            )
        self.num_threads = num_threads
        self.schedule = schedule
        self.chunk_size = chunk_size

    def apply(self, ctx: Context, module: Operation) -> None:
        for parallel in [op for op in module.walk() if isinstance(op, scf.ParallelOp)]:
            if self._enclosing_parallel(parallel) is not None:
                continue  # only map the outermost parallel loop to threads
            self._convert(parallel)

    @staticmethod
    def _enclosing_parallel(op: Operation) -> Optional[Operation]:
        parent = op.parent_op()
        while parent is not None:
            if isinstance(parent, (scf.ParallelOp, omp.WsLoopOp)):
                return parent
            parent = parent.parent_op()
        return None

    def _convert(self, parallel: scf.ParallelOp) -> None:
        block = parallel.parent_block()
        if block is None:
            return
        wsloop = omp.WsLoopOp(
            list(parallel.lower_bounds),
            list(parallel.upper_bounds),
            list(parallel.steps),
            body=parallel.regions[0].clone(),
            schedule=self.schedule,
            chunk_size=self.chunk_size,
        )
        # Replace the scf.yield terminator with omp.yield in the moved body.
        ws_body = wsloop.body.block
        if ws_body.last_op is not None and ws_body.last_op.name == "scf.yield":
            ws_body.last_op.erase(safe=False)
        ws_body.add_op(omp.YieldOp([]))

        region = Region([Block(ops=[wsloop, omp.TerminatorOp()])])
        parallel_region = omp.ParallelOp(region, num_threads=self.num_threads)
        block.insert_op_before(parallel_region, parallel)
        parallel.erase(safe=False)


# ---------------------------------------------------------------------------
# scf-parallel-loop-tiling
# ---------------------------------------------------------------------------


@register_pass
class ParallelLoopTilingPass(ModulePass):
    """``scf-parallel-loop-tiling{parallel-loop-tile-sizes=32,32,1}``.

    The tile sizes are recorded on each ``scf.parallel`` and consumed by the
    GPU mapping below to size thread blocks; the paper reports both
    performance sensitivity and runtime failures for badly chosen values,
    which the GPU cost model reproduces.
    """

    name = "scf-parallel-loop-tiling"

    def __init__(self, parallel_loop_tile_sizes: Sequence[int] = (32, 32, 1)):
        if isinstance(parallel_loop_tile_sizes, int):
            parallel_loop_tile_sizes = (parallel_loop_tile_sizes,)
        self.tile_sizes = tuple(int(t) for t in parallel_loop_tile_sizes)

    def apply(self, ctx: Context, module: Operation) -> None:
        for op in module.walk():
            if isinstance(op, scf.ParallelOp):
                sizes = list(self.tile_sizes)[: op.rank]
                while len(sizes) < op.rank:
                    sizes.append(1)
                op.attributes["tile_sizes"] = DenseArrayAttr(sizes)


@register_pass
class GpuMapParallelLoopsPass(ModulePass):
    """``gpu-map-parallel-loops`` — annotate loops with a GPU mapping policy."""

    name = "gpu-map-parallel-loops"

    def apply(self, ctx: Context, module: Operation) -> None:
        for op in module.walk():
            if isinstance(op, scf.ParallelOp):
                op.attributes["mapping"] = StringAttr("gpu-thread-block")


# ---------------------------------------------------------------------------
# scf.parallel -> gpu.launch_func (+ kernel outlining)
# ---------------------------------------------------------------------------


@register_pass
class ConvertParallelLoopsToGpuPass(ModulePass):
    """``convert-parallel-loops-to-gpu`` combined with ``gpu-kernel-outlining``.

    Each outermost ``scf.parallel`` becomes a ``gpu.func`` kernel inside a
    ``gpu.module``; the launch site computes per-thread indices from block and
    thread ids, guards against the domain bounds and executes the loop body.
    """

    name = "convert-parallel-loops-to-gpu"

    def __init__(self, default_tile: Sequence[int] = (32, 32, 1)):
        self.default_tile = tuple(default_tile)
        self.outlined: List[str] = []

    def apply(self, ctx: Context, module: Operation) -> None:
        if not isinstance(module, ModuleOp):
            return
        gpu_module = None
        counter = 0
        for func_op in [op for op in module.walk() if isinstance(op, FuncOp)]:
            if func_op.is_declaration:
                continue
            loops = [
                op for op in func_op.walk()
                if isinstance(op, scf.ParallelOp)
                and ConvertSCFToOpenMPPass._enclosing_parallel(op) is None
            ]
            for parallel in loops:
                if gpu_module is None:
                    gpu_module = gpu.GPUModuleOp("stencil_kernels")
                    module.add_op(gpu_module)
                kernel_name = f"{func_op.sym_name}_kernel_{counter}"
                counter += 1
                self._outline(parallel, gpu_module, kernel_name)
                self.outlined.append(kernel_name)

    # ------------------------------------------------------------------

    def _outline(self, parallel: scf.ParallelOp, gpu_module: gpu.GPUModuleOp,
                 kernel_name: str) -> None:
        block = parallel.parent_block()
        if block is None:
            return
        rank = parallel.rank
        lowers = [self._constant_of(v) for v in parallel.lower_bounds]
        uppers = [self._constant_of(v) for v in parallel.upper_bounds]
        if any(v is None for v in lowers + uppers):
            return  # dynamic bounds: keep the loop on the host
        extents = [u - l for l, u in zip(lowers, uppers)]
        tile_attr = parallel.get_attr_or_none("tile_sizes")
        tiles = list(tile_attr.as_tuple()) if tile_attr is not None else list(self.default_tile)
        while len(tiles) < 3:
            tiles.append(1)
        block_size = [max(1, min(tiles[d], extents[d] if d < rank else 1)) for d in range(3)]
        grid_size = [
            max(1, -(-extents[d] // block_size[d])) if d < rank else 1 for d in range(3)
        ]

        # External values used by the loop body become kernel arguments.
        externals = self._external_values(parallel)
        kernel = gpu.GPUFuncOp(kernel_name, [v.type for v in externals])
        gpu_module.body.block.add_op(kernel)
        kbody = kernel.entry_block
        value_map: Dict[SSAValue, SSAValue] = {
            ext: arg for ext, arg in zip(externals, kbody.args)
        }

        builder = Builder.at_end(kbody)
        dims = ("x", "y", "z")
        ivs: List[SSAValue] = []
        guards: List[SSAValue] = []
        for d in range(rank):
            bid = builder.insert(gpu.BlockIdOp(dims[d])).results[0]
            bdim = builder.insert(gpu.BlockDimOp(dims[d])).results[0]
            tid = builder.insert(gpu.ThreadIdOp(dims[d])).results[0]
            base = builder.insert(arith.MuliOp(bid, bdim)).results[0]
            linear = builder.insert(arith.AddiOp(base, tid)).results[0]
            lower = builder.insert(arith.ConstantOp.from_int(lowers[d], index)).results[0]
            iv = builder.insert(arith.AddiOp(linear, lower)).results[0]
            upper = builder.insert(arith.ConstantOp.from_int(uppers[d], index)).results[0]
            in_range = builder.insert(arith.CmpiOp("slt", iv, upper)).results[0]
            ivs.append(iv)
            guards.append(in_range)
        guard = guards[0]
        for extra in guards[1:]:
            guard = builder.insert(arith.AndIOp(guard, extra)).results[0]

        guarded = builder.insert(scf.IfOp(guard))
        then_block = guarded.then_block
        for arg, iv in zip(parallel.body.block.args, ivs):
            value_map[arg] = iv
        for op in parallel.body.block.ops:
            if op.name == "scf.yield":
                continue
            then_block.add_op(op.clone(value_map))
        then_block.add_op(scf.YieldOp([]))
        builder.insert(gpu.ReturnOp())

        launch = gpu.LaunchFuncOp(kernel_name, grid_size, block_size, externals)
        # Propagate the enclosing function's stream assignment (set by the
        # GPU data-management pass) onto the launch site, so the runtime's
        # stream model places this kernel where the transform decided.
        func_op = parallel.parent_op()
        while func_op is not None and not isinstance(func_op, FuncOp):
            func_op = func_op.parent_op()
        if func_op is not None:
            stream_attr = func_op.get_attr_or_none("gpu.stream")
            if stream_attr is not None:
                launch.attributes["gpu.stream"] = stream_attr
        block.insert_op_before(launch, parallel)
        parallel.erase(safe=False)

    @staticmethod
    def _constant_of(value: SSAValue) -> Optional[int]:
        from ..ir.ssa import OpResult

        if isinstance(value, OpResult) and isinstance(value.op, arith.ConstantOp):
            return int(value.op.literal)
        return None

    @staticmethod
    def _external_values(parallel: scf.ParallelOp) -> List[SSAValue]:
        inside = set()
        for op in parallel.walk():
            inside.update(id(r) for r in op.results)
            for region in op.regions:
                for blk in region.blocks:
                    inside.update(id(a) for a in blk.args)
        externals: List[SSAValue] = []
        seen = set()
        for op in parallel.body.walk():
            for operand in op.operands:
                if id(operand) in inside or id(operand) in seen:
                    continue
                seen.add(id(operand))
                externals.append(operand)
        return externals


__all__ = [
    "ConvertSCFToOpenMPPass",
    "ParallelLoopTilingPass",
    "GpuMapParallelLoopsPass",
    "ConvertParallelLoopsToGpuPass",
]
