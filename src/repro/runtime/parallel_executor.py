"""Multi-core tiled execution of compiled kernels.

The PR 1 kernel compiler turns a lowered ``scf.parallel`` / ``omp.wsloop``
nest (or a ``stencil.apply`` body) into one NumPy whole-array sweep.  This
module makes such sweeps use more than one core: the sweep's domain is
partitioned along its **outermost parallel dimension** into tiles and the
tiles run concurrently on a persistent :class:`ThreadPoolExecutor`.  NumPy
releases the GIL for large slice operations, so real in-process speedup is
achievable without multiprocessing.

Three pieces, each independently testable:

* :func:`plan_tiles` — turns ``[lower, upper)`` plus an OpenMP schedule
  (kind + chunk size, as carried on ``omp.wsloop`` by
  ``convert-scf-to-openmp``) into a list of contiguous, disjoint
  ``(lb, ub)`` tiles that exactly cover the extent;
* :class:`ParallelExecutor` — a persistent worker pool executing tile
  closures and combining per-tile partial results;
* :func:`tree_combine` — deterministic pairwise (binary-tree) combination
  of per-tile partials in **tile order**, so floating-point reductions give
  the same bits on every run regardless of which tile finishes first.
  (Nests carrying reduction values are currently refused by the kernel
  compiler and run scalar; this is the designated combiner for when they
  become vectorizable.)

Safety is the caller's job and the caller can afford it: a nest kernel that
passed :meth:`CompiledKernel.guards_pass` has unit steps, in-bounds windows,
no load/store aliasing and only same-array/same-index-map store pairs — so
tiles that partition dimension 0 write provably disjoint slabs (exactly the
guarantee ``scf.parallel`` iteration independence gives).  Anything weaker
must stay on the single-tile path; :class:`repro.runtime.Interpreter` counts
those refusals in ``stats["parallel_fallbacks"]``.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence, Tuple

#: Schedule kinds understood by :func:`plan_tiles` (OpenMP worksharing-loop
#: schedule clause subset; "auto"/"runtime" map to "static" upstream).
SCHEDULE_KINDS = ("static", "dynamic", "guided")


def plan_tiles(
    lower: int,
    upper: int,
    threads: int,
    schedule: str = "static",
    chunk: Optional[int] = None,
) -> List[Tuple[int, int]]:
    """Partition ``[lower, upper)`` into contiguous ``(lb, ub)`` tiles.

    The tiles are returned in domain order, are mutually disjoint, and their
    union is exactly ``[lower, upper)``.  ``schedule`` follows the OpenMP
    clause semantics as far as a shared task queue needs them:

    * ``static`` without a chunk: one near-equal contiguous block per
      thread (OpenMP's default static partition);
    * ``static`` with a chunk / ``dynamic``: fixed ``chunk``-sized tiles —
      on a work-queue pool the static round-robin assignment and the
      dynamic first-come assignment execute the same tile set, the pool
      supplying the load balancing;
    * ``guided``: exponentially decreasing tile sizes
      ``max(chunk, remaining / threads)``, front-loading large tiles.

    ``dynamic`` without an explicit chunk uses ``extent // (8 * threads)``
    (clamped to 1) rather than OpenMP's default of 1, which on a NumPy
    backend would shred the sweep into per-row tasks whose dispatch overhead
    swamps the kernel.
    """
    extent = upper - lower
    if extent <= 0:
        return []
    threads = max(1, threads)
    if schedule not in SCHEDULE_KINDS:
        raise ValueError(
            f"unknown schedule kind '{schedule}'; expected one of {SCHEDULE_KINDS}"
        )
    if chunk is not None and chunk <= 0:
        raise ValueError(f"chunk size must be positive, got {chunk}")

    if schedule == "static" and chunk is None:
        tiles_wanted = min(threads, extent)
        base, remainder = divmod(extent, tiles_wanted)
        tiles: List[Tuple[int, int]] = []
        position = lower
        for i in range(tiles_wanted):
            size = base + (1 if i < remainder else 0)
            tiles.append((position, position + size))
            position += size
        return tiles

    if schedule == "guided":
        minimum = chunk if chunk is not None else 1
        tiles = []
        position = lower
        while position < upper:
            remaining = upper - position
            size = max(minimum, -(-remaining // threads))
            size = min(size, remaining)
            tiles.append((position, position + size))
            position += size
        return tiles

    # static-with-chunk and dynamic: fixed-size chunks.
    if chunk is None:
        chunk = max(1, extent // (8 * threads))
    return [(p, min(p + chunk, upper)) for p in range(lower, upper, chunk)]


def plan_boxes(
    lowers: Sequence[int],
    uppers: Sequence[int],
    sizes: Sequence[int],
) -> List[Tuple[Tuple[int, ...], Tuple[int, ...]]]:
    """Partition the box ``[lowers, uppers)`` into ``sizes``-shaped sub-boxes.

    The multi-dimensional counterpart of :func:`plan_tiles`, backing the
    ``schedule.tile`` directive: boxes are returned in lexicographic domain
    order, are mutually disjoint, and their union is exactly the input box
    (edge boxes are clipped).  Returns an empty list for an empty domain.
    """
    if len(lowers) != len(uppers) or len(lowers) != len(sizes):
        raise ValueError("plan_boxes: lowers/uppers/sizes rank mismatch")
    if any(s < 1 for s in sizes):
        raise ValueError(f"plan_boxes: tile sizes must be positive, got {sizes}")
    if any(u <= l for l, u in zip(lowers, uppers)):
        return []
    per_dim = [
        [(p, min(p + size, upper)) for p in range(lower, upper, size)]
        for lower, upper, size in zip(lowers, uppers, sizes)
    ]
    boxes: List[Tuple[Tuple[int, ...], Tuple[int, ...]]] = [((), ())]
    for spans in per_dim:
        boxes = [
            (lb + (span_lb,), ub + (span_ub,))
            for lb, ub in boxes
            for span_lb, span_ub in spans
        ]
    return boxes


def tree_combine(partials: Sequence[object], combine: Callable) -> object:
    """Combine per-tile partials pairwise in tile order.

    The combination tree depends only on ``len(partials)`` — never on
    completion order — so non-associative combiners (floating-point sums)
    are bit-reproducible across runs and thread counts with the same tile
    plan.  ``combine(left, right)`` must accept two partials with ``left``
    from earlier tiles than ``right``.
    """
    if not partials:
        raise ValueError("tree_combine needs at least one partial")
    level = list(partials)
    while len(level) > 1:
        level = [
            combine(level[i], level[i + 1]) if i + 1 < len(level) else level[i]
            for i in range(0, len(level), 2)
        ]
    return level[0]


class ParallelExecutor:
    """A persistent thread pool executing tile closures.

    One instance serves any number of sweeps (and interpreters): worker
    threads are created lazily by the underlying pool and reused, so the
    per-sweep cost is task dispatch only, not thread creation.  Exceptions
    raised inside a tile propagate to the caller of :meth:`map_tiles`.
    """

    def __init__(self, threads: int):
        if threads < 1:
            raise ValueError(f"thread count must be >= 1, got {threads}")
        self.threads = threads
        self._pool = ThreadPoolExecutor(
            max_workers=threads, thread_name_prefix="repro-tile"
        )

    def map_tiles(self, fn: Callable, tiles: Sequence) -> List[object]:
        """Run ``fn(tile)`` for every tile concurrently; return the results
        **in tile order** (not completion order)."""
        if len(tiles) == 1:  # no dispatch overhead for degenerate plans
            return [fn(tiles[0])]
        futures = [self._pool.submit(fn, tile) for tile in tiles]
        return [future.result() for future in futures]

    def run_tiles(self, fn: Callable, tiles: Sequence) -> None:
        """:meth:`map_tiles` for side-effecting tile closures."""
        self.map_tiles(fn, tiles)

    def map_reduce(self, fn: Callable, tiles: Sequence, combine: Callable) -> object:
        """Run ``fn`` over every tile and :func:`tree_combine` the partials."""
        return tree_combine(self.map_tiles(fn, tiles), combine)

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<ParallelExecutor threads={self.threads}>"


#: Process-wide executor cache: interpreters asking for the same thread count
#: share one pool, keeping the total thread population bounded.
_EXECUTORS: Dict[int, ParallelExecutor] = {}
_EXECUTORS_LOCK = threading.Lock()


def get_executor(threads: int) -> ParallelExecutor:
    """The shared persistent executor for ``threads`` workers."""
    with _EXECUTORS_LOCK:
        executor = _EXECUTORS.get(threads)
        if executor is None:
            executor = ParallelExecutor(threads)
            _EXECUTORS[threads] = executor
        return executor


__all__ = [
    "SCHEDULE_KINDS",
    "plan_tiles",
    "plan_boxes",
    "tree_combine",
    "ParallelExecutor",
    "get_executor",
]
