"""IR interpreter.

Executes modules produced by the frontend and by every stage of the lowering
pipeline against numpy-backed memory:

* FIR (loops, loads/stores, coordinate_of) — the "Flang only" execution path,
* the stencil dialect — ``stencil.apply`` is executed *vectorised* over the
  whole output domain using numpy slicing, which is this reproduction's
  analogue of the optimised code the stencil compilation flow generates,
* scf / OpenMP / GPU / MPI dialects — functional execution plus event
  accounting (kernel launches, PCIe transfers, messages) that feeds the
  performance models.

The interpreter has three execution modes (see
:mod:`repro.runtime.kernel_compiler`): ``"interpret"`` — the scalar op-by-op
reference semantics; ``"vectorize"`` — ``stencil.apply`` bodies and
scf/omp loop nests are dispatched to compiled, cached NumPy whole-array
kernels, falling back to scalar execution whenever a kernel cannot be built
or a runtime alias/bounds guard fails; ``"crosscheck"`` — every vectorized
sweep is replayed through the scalar oracle and compared.

Numerical results of every path are compared against numpy references in the
integration tests.
"""

from __future__ import annotations

import math as _pymath
import time as _time
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..dialects import fir as fir_dialect
from ..dialects import omp as omp_dialect
from ..dialects import stencil as stencil_dialect
from ..dialects.builtin import ModuleOp
from ..dialects.func import FuncOp
from ..ir.attributes import DenseArrayAttr, FloatAttr, IntegerAttr, StringAttr
from ..ir.operation import Block, Operation
from ..ir.ssa import SSAValue
from ..ir.types import (
    FloatType,
    IndexType,
    IntegerType,
    MemRefType,
    TypeAttribute,
)
from .gpu_kernel_engine import GpuKernelEngine
from .gpu_runtime import SimulatedGPU
from .kernel_compiler import EXECUTION_MODES, KernelCompiler
from .memory import ElementRef, MemoryBuffer, numpy_dtype_for
from .mpi_runtime import CartesianDecomposition, SimulatedCommunicator
from .parallel_executor import (ParallelExecutor, get_executor, plan_boxes,
                                plan_tiles)


class InterpreterError(Exception):
    """Raised when the interpreter meets IR it cannot execute."""


class FieldValue:
    """Runtime value of a ``!stencil.field``: external storage plus its lower bound."""

    __slots__ = ("buffer", "lb")

    def __init__(self, buffer: MemoryBuffer, lb: Tuple[int, ...]):
        self.buffer = buffer
        self.lb = tuple(lb)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<FieldValue {self.buffer.label} lb={self.lb}>"


class TempValue:
    """Runtime value of a ``!stencil.temp``: a dense snapshot with an origin."""

    __slots__ = ("data", "origin")

    def __init__(self, data: np.ndarray, origin: Tuple[int, ...]):
        self.data = data
        self.origin = tuple(origin)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<TempValue shape={self.data.shape} origin={self.origin}>"


class Frame:
    """SSA value environment for one function invocation (shared across regions)."""

    def __init__(self):
        self.values: Dict[SSAValue, object] = {}

    def set(self, ssa_value: SSAValue, value: object) -> None:
        self.values[ssa_value] = value

    def get(self, ssa_value: SSAValue) -> object:
        try:
            return self.values[ssa_value]
        except KeyError:
            raise InterpreterError(
                f"use of a value that has not been computed: {ssa_value!r}"
            ) from None


class _ReturnSignal(Exception):
    """Internal control-flow signal carrying func.return operands."""

    def __init__(self, values: List[object]):
        self.values = values


def _as_python(value):
    """Collapse 0-d numpy values to python scalars (for indices/bounds)."""
    if isinstance(value, np.ndarray) and value.ndim == 0:
        return value[()]
    return value


class Interpreter:
    """Executes functions from one or more linked modules."""

    def __init__(
        self,
        modules: Union[ModuleOp, Sequence[ModuleOp]],
        gpu: Optional[SimulatedGPU] = None,
        comm: Optional[SimulatedCommunicator] = None,
        rank: int = 0,
        decomposition: Optional[CartesianDecomposition] = None,
        execution_mode: str = "interpret",
        kernel_compiler: Optional[KernelCompiler] = None,
        threads: int = 1,
        parallel_executor: Optional[ParallelExecutor] = None,
    ):
        if isinstance(modules, ModuleOp):
            modules = [modules]
        if execution_mode not in EXECUTION_MODES:
            raise InterpreterError(
                f"unknown execution mode '{execution_mode}'; "
                f"expected one of {EXECUTION_MODES}"
            )
        self.modules: List[ModuleOp] = list(modules)
        self.gpu = gpu
        self.comm = comm
        self.rank = rank
        self.decomposition = decomposition
        #: "interpret" executes everything op by op (the reference oracle);
        #: "vectorize" dispatches stencil.apply / scf.parallel / omp.wsloop
        #: sweeps to compiled whole-array kernels; "crosscheck" runs both and
        #: raises if they diverge.
        self.execution_mode = execution_mode
        self.kernels = kernel_compiler if kernel_compiler is not None else (
            KernelCompiler() if execution_mode != "interpret" else None
        )
        #: Worker threads for tiled sweep execution (1 = single-tile).  The
        #: executor is the persistent process-wide pool for that count unless
        #: an explicit one is injected; pure "interpret" mode never tiles, so
        #: it never touches (or creates) a pool.
        self.threads = max(1, int(threads))
        if parallel_executor is not None:
            self._executor: Optional[ParallelExecutor] = parallel_executor
            self.threads = max(self.threads, parallel_executor.threads)
        elif self.threads > 1 and execution_mode != "interpret":
            self._executor = get_executor(self.threads)
        else:
            self._executor = None
        self.stats: Dict[str, float] = {
            "stencil_apply_executions": 0,
            "stencil_points_computed": 0,
            "parallel_regions": 0,
            "omp_regions": 0,
            "fir_loop_iterations": 0,
            "kernel_launches": 0,
            "mpi_messages": 0,
            "mpi_bytes": 0,
            "halo_seconds": 0.0,
            "vectorized_sweeps": 0,
            "vectorize_fallbacks": 0,
            "parallel_sweeps": 0,
            "parallel_tiles": 0,
            "parallel_fallbacks": 0,
            "schedule_tiles": 0,
            "schedule_fallbacks": 0,
            "gpu_seconds": 0.0,
            "transfer_seconds": 0.0,
            "gpu_launches_vectorized": 0,
            "gpu_launch_fallbacks": 0,
        }
        #: Lazily built whole-lattice compiler for gpu.launch_func (shares the
        #: kernel compiler's structural cache and counters).
        self._gpu_engine: Optional[GpuKernelEngine] = None
        self._functions: Dict[str, FuncOp] = {}
        self._gpu_kernels: Dict[str, Operation] = {}
        #: Functions whose bodies contain gpu.launch_func ops: the launch is
        #: accounted at the launch site, so the function-level gpu.launch
        #: annotation must not record a second one.
        self._funcs_with_launch_ops: set = set()
        #: Per-invocation device scratch (memref.alloc inside gpu.launch
        #: functions): allocated from the device pool, released when the
        #: function returns.
        self._device_scratch_stack: List[List[MemoryBuffer]] = []
        self._apply_stack: List[Tuple[Tuple[int, ...], Tuple[int, ...]]] = []
        self._gpu_thread_ctx: List[Dict[str, Tuple[int, int, int]]] = []
        self._pending_requests: List[dict] = []
        self._index_functions()
        self._handlers = self._build_handlers()

    # ------------------------------------------------------------------
    # Linking / entry points
    # ------------------------------------------------------------------

    def _index_functions(self) -> None:
        for module in self.modules:
            for op in module.walk():
                if isinstance(op, FuncOp) and not op.is_declaration:
                    self._functions[op.sym_name] = op
                    if any(inner.name == "gpu.launch_func" for inner in op.walk()):
                        self._funcs_with_launch_ops.add(op.sym_name)
                elif op.name == "gpu.func":
                    name_attr = op.get_attr_or_none("sym_name")
                    if isinstance(name_attr, StringAttr):
                        self._gpu_kernels[name_attr.data] = op

    def lookup(self, name: str) -> FuncOp:
        if name not in self._functions:
            raise InterpreterError(
                f"undefined function '{name}'; available: {sorted(self._functions)}"
            )
        return self._functions[name]

    def call(self, name: str, *args) -> List[object]:
        """Call a function by name with numpy arrays / python scalars.

        Arrays are passed by reference (mutations are visible to the caller);
        scalars are wrapped in scalar cells, matching Fortran's by-reference
        argument convention.
        """
        func_op = self.lookup(name)
        arg_values: List[object] = []
        for i, (arg, arg_type) in enumerate(zip(args, func_op.function_type.inputs)):
            arg_values.append(self._wrap_argument(arg, arg_type, f"arg{i}"))
        return self.call_function(func_op, arg_values)

    def _wrap_argument(self, arg, arg_type: TypeAttribute, label: str):
        if isinstance(arg, (MemoryBuffer, ElementRef, FieldValue, TempValue)):
            return arg
        if isinstance(arg, np.ndarray):
            if not arg.flags["F_CONTIGUOUS"]:
                arg = np.asfortranarray(arg)
            return MemoryBuffer.wrap(arg, label=label)
        if isinstance(arg, (int, float, np.integer, np.floating)):
            element = arg_type
            if fir_dialect.is_reference_like(arg_type):
                element = arg_type.element_type  # type: ignore[union-attr]
            return MemoryBuffer.for_scalar(element, arg, label=label)
        raise InterpreterError(f"cannot pass argument of type {type(arg).__name__}")

    def call_function(self, func_op: FuncOp, args: Sequence[object]) -> List[object]:
        entry = func_op.entry_block
        if len(args) != len(entry.args):
            raise InterpreterError(
                f"function '{func_op.sym_name}' expects {len(entry.args)} arguments, "
                f"got {len(args)}"
            )
        frame = Frame()
        for block_arg, value in zip(entry.args, args):
            frame.set(block_arg, value)
        # GPU-launch-tagged functions account a kernel launch per invocation —
        # unless the lowered body carries its own gpu.launch_func sites, which
        # do the accounting themselves.
        launch = None
        is_gpu_func = func_op.get_attr_or_none("gpu.launch") is not None
        if is_gpu_func and self.gpu is not None \
                and func_op.sym_name not in self._funcs_with_launch_ops:
            grid = self._dense_attr_or(func_op, "gpu.grid", (1, 1, 1))
            block = self._dense_attr_or(func_op, "gpu.block", (1, 1, 1))
            buffers = [a.buffer if isinstance(a, FieldValue) else a for a in args]
            buffers = [b for b in buffers if isinstance(b, MemoryBuffer) and not b.is_scalar]
            stream_attr = func_op.get_attr_or_none("gpu.stream")
            stream = int(stream_attr.value) if stream_attr is not None else 0
            launch = self.gpu.record_launch(func_op.sym_name, grid, block,
                                            buffers, stream=stream)
            self.stats["kernel_launches"] += 1
        if is_gpu_func:
            self._device_scratch_stack.append([])
        start = _time.perf_counter()
        try:
            self.run_block(entry, frame)
        except _ReturnSignal as signal:
            return signal.values
        finally:
            if is_gpu_func:
                for scratch in self._device_scratch_stack.pop():
                    self._require_gpu().dealloc(scratch)
            if launch is not None:
                seconds = _time.perf_counter() - start
                self.gpu.finish_launch(launch, seconds)
                self.stats["gpu_seconds"] += seconds
        return []

    @staticmethod
    def _dense_attr_or(op: Operation, name: str, default):
        attr = op.get_attr_or_none(name)
        if isinstance(attr, DenseArrayAttr):
            return attr.as_tuple()
        return default

    # ------------------------------------------------------------------
    # Execution core
    # ------------------------------------------------------------------

    def run_block(self, block: Block, frame: Frame) -> List[object]:
        """Execute a block; returns the operand values of its terminator (if the
        terminator is a yield-like operation)."""
        result: List[object] = []
        for op in block.ops:
            result = self.exec_op(op, frame)
        return result

    def exec_op(self, op: Operation, frame: Frame) -> List[object]:
        handler = self._handlers.get(op.name)
        if handler is None:
            raise InterpreterError(f"no interpreter handler for operation '{op.name}'")
        values = handler(op, frame)
        if values is None:
            values = []
        for res, value in zip(op.results, values):
            frame.set(res, value)
        return values

    # ------------------------------------------------------------------
    # Handler table
    # ------------------------------------------------------------------

    def _build_handlers(self) -> Dict[str, Callable]:
        h: Dict[str, Callable] = {}

        # builtin / func -----------------------------------------------------
        h["builtin.module"] = lambda op, f: []
        h["builtin.unrealized_conversion_cast"] = lambda op, f: [
            f.get(o) for o in op.operands
        ]
        h["func.return"] = self._exec_func_return
        h["func.call"] = self._exec_call
        h["fir.call"] = self._exec_call
        h["llvm.call"] = self._exec_call

        # arith ---------------------------------------------------------------
        h["arith.constant"] = self._exec_constant
        binary = {
            "arith.addf": np.add,
            "arith.subf": np.subtract,
            "arith.mulf": np.multiply,
            "arith.divf": np.divide,
            "arith.maximumf": np.maximum,
            "arith.minimumf": np.minimum,
            "arith.addi": np.add,
            "arith.subi": np.subtract,
            "arith.muli": np.multiply,
            "arith.maxsi": np.maximum,
            "arith.minsi": np.minimum,
            "arith.andi": np.logical_and,
            "arith.ori": np.logical_or,
            "arith.xori": np.not_equal,
        }
        for name, ufunc in binary.items():
            h[name] = self._make_binary(ufunc)
        h["arith.divsi"] = self._exec_divsi
        h["arith.remsi"] = self._exec_remsi
        h["arith.negf"] = lambda op, f: [np.negative(f.get(op.operands[0]))]
        h["arith.cmpf"] = self._exec_cmpf
        h["arith.cmpi"] = self._exec_cmpi
        h["arith.select"] = lambda op, f: [
            np.where(f.get(op.operands[0]), f.get(op.operands[1]), f.get(op.operands[2]))
        ]
        for cast in ("arith.index_cast", "arith.sitofp", "arith.fptosi",
                     "arith.extf", "arith.truncf"):
            h[cast] = self._exec_numeric_convert

        # math -----------------------------------------------------------------
        unary_math = {
            "math.sqrt": np.sqrt,
            "math.absf": np.abs,
            "math.sin": np.sin,
            "math.cos": np.cos,
            "math.tan": np.tan,
            "math.tanh": np.tanh,
            "math.exp": np.exp,
            "math.log": np.log,
            "math.log10": np.log10,
        }
        for name, ufunc in unary_math.items():
            h[name] = self._make_unary(ufunc)
        h["math.powf"] = self._make_binary(np.power)
        h["math.fma"] = lambda op, f: [
            f.get(op.operands[0]) * f.get(op.operands[1]) + f.get(op.operands[2])
        ]

        # fir --------------------------------------------------------------------
        h["fir.alloca"] = self._exec_fir_alloca
        h["fir.allocmem"] = self._exec_fir_alloca
        h["fir.freemem"] = lambda op, f: []
        h["fir.declare"] = lambda op, f: [f.get(op.operands[0])]
        h["fir.load"] = self._exec_fir_load
        h["fir.store"] = self._exec_fir_store
        h["fir.coordinate_of"] = self._exec_coordinate_of
        h["fir.do_loop"] = self._exec_fir_do_loop
        h["fir.if"] = self._exec_fir_if
        h["fir.result"] = lambda op, f: [f.get(o) for o in op.operands]
        h["fir.convert"] = self._exec_fir_convert
        h["fir.no_reassoc"] = lambda op, f: [f.get(op.operands[0])]
        h["fir.unreachable"] = lambda op, f: []

        # memref ---------------------------------------------------------------------
        h["memref.alloc"] = self._exec_memref_alloc
        h["memref.alloca"] = self._exec_memref_alloc
        h["memref.dealloc"] = lambda op, f: []
        h["memref.load"] = self._exec_memref_load
        h["memref.store"] = self._exec_memref_store
        h["memref.dim"] = self._exec_memref_dim
        h["memref.copy"] = self._exec_memref_copy
        h["memref.cast"] = lambda op, f: [f.get(op.operands[0])]

        # scf ---------------------------------------------------------------------------
        h["scf.for"] = self._exec_scf_for
        h["scf.parallel"] = self._exec_scf_parallel
        h["scf.if"] = self._exec_scf_if
        h["scf.yield"] = lambda op, f: [f.get(o) for o in op.operands]

        # omp ------------------------------------------------------------------------------
        h["omp.parallel"] = self._exec_omp_parallel
        h["omp.wsloop"] = self._exec_omp_wsloop
        h["omp.yield"] = lambda op, f: [f.get(o) for o in op.operands]
        h["omp.terminator"] = lambda op, f: []
        h["omp.barrier"] = lambda op, f: []

        # stencil -----------------------------------------------------------------------------
        h["stencil.external_load"] = self._exec_stencil_external_load
        h["stencil.external_store"] = lambda op, f: []
        h["stencil.cast"] = self._exec_stencil_cast
        h["stencil.load"] = self._exec_stencil_load
        h["stencil.apply"] = self._exec_stencil_apply
        h["stencil.access"] = self._exec_stencil_access
        h["stencil.index"] = self._exec_stencil_index
        h["stencil.store"] = self._exec_stencil_store
        h["stencil.return"] = lambda op, f: [f.get(o) for o in op.operands]
        h["stencil.buffer"] = lambda op, f: [f.get(op.operands[0])]

        # gpu ----------------------------------------------------------------------------------
        h["gpu.module"] = lambda op, f: []
        h["gpu.alloc"] = self._exec_gpu_alloc
        h["gpu.dealloc"] = self._exec_gpu_dealloc
        h["gpu.memcpy"] = self._exec_gpu_memcpy
        h["gpu.host_register"] = self._exec_gpu_host_register
        h["gpu.host_unregister"] = self._exec_gpu_host_unregister
        h["gpu.launch_func"] = self._exec_gpu_launch_func
        h["gpu.thread_id"] = self._exec_gpu_id("thread_id")
        h["gpu.block_id"] = self._exec_gpu_id("block_id")
        h["gpu.block_dim"] = self._exec_gpu_id("block_dim")
        h["gpu.grid_dim"] = self._exec_gpu_id("grid_dim")
        h["gpu.barrier"] = lambda op, f: []
        h["gpu.return"] = lambda op, f: []

        # dmp / mpi -------------------------------------------------------------------------------
        h["dmp.grid"] = self._exec_dmp_grid
        h["dmp.rank"] = self._exec_dmp_rank
        h["dmp.local_domain"] = self._exec_dmp_local_domain
        h["dmp.halo_swap"] = self._exec_dmp_halo_swap
        h["dmp.neighbour_rank"] = self._exec_dmp_neighbour_rank
        h["dmp.gather"] = lambda op, f: []
        h["mpi.init"] = lambda op, f: []
        h["mpi.finalize"] = lambda op, f: []
        h["mpi.comm.rank"] = lambda op, f: [np.int32(self.rank)]
        h["mpi.comm.size"] = lambda op, f: [
            np.int32(self.comm.size if self.comm else 1)
        ]
        h["mpi.isend"] = self._exec_mpi_isend
        h["mpi.irecv"] = self._exec_mpi_irecv
        h["mpi.send"] = self._exec_mpi_send
        h["mpi.recv"] = self._exec_mpi_recv
        h["mpi.wait"] = self._exec_mpi_wait
        h["mpi.waitall"] = self._exec_mpi_waitall
        h["mpi.barrier"] = lambda op, f: (self.comm.barrier(self.rank) if self.comm else None) or []
        h["mpi.allreduce"] = lambda op, f: [f.get(op.operands[0])]

        return h

    # ------------------------------------------------------------------
    # func / call handlers
    # ------------------------------------------------------------------

    def _exec_func_return(self, op: Operation, frame: Frame):
        raise _ReturnSignal([frame.get(o) for o in op.operands])

    def _exec_call(self, op: Operation, frame: Frame):
        callee_attr = op.get_attr("callee")
        callee = callee_attr.root  # type: ignore[union-attr]
        args = [frame.get(o) for o in op.operands]
        func_op = self.lookup(callee)
        return self.call_function(func_op, args)

    # ------------------------------------------------------------------
    # arith handlers
    # ------------------------------------------------------------------

    def _exec_constant(self, op: Operation, frame: Frame):
        attr = op.get_attr("value")
        if isinstance(attr, FloatAttr):
            dtype = numpy_dtype_for(attr.type)
            return [dtype.type(attr.value)]
        if isinstance(attr, IntegerAttr):
            dtype = numpy_dtype_for(attr.type)
            return [dtype.type(attr.value)]
        raise InterpreterError("arith.constant with unsupported attribute")

    @staticmethod
    def _make_binary(ufunc):
        def handler(op: Operation, frame: Frame):
            return [ufunc(frame.get(op.operands[0]), frame.get(op.operands[1]))]

        return handler

    @staticmethod
    def _make_unary(ufunc):
        def handler(op: Operation, frame: Frame):
            return [ufunc(frame.get(op.operands[0]))]

        return handler

    def _exec_divsi(self, op: Operation, frame: Frame):
        lhs = frame.get(op.operands[0])
        rhs = frame.get(op.operands[1])
        # Fortran/C semantics: integer division truncates toward zero.
        return [np.asarray(np.trunc(np.divide(lhs, rhs))).astype(np.int64)[()]
                if np.ndim(lhs) == 0 and np.ndim(rhs) == 0
                else np.trunc(np.divide(lhs, rhs)).astype(np.int64)]

    def _exec_remsi(self, op: Operation, frame: Frame):
        lhs = frame.get(op.operands[0])
        rhs = frame.get(op.operands[1])
        quotient = np.trunc(np.divide(lhs, rhs)).astype(np.int64)
        return [np.asarray(lhs) - quotient * np.asarray(rhs)]

    _FLOAT_CMP = {
        "oeq": np.equal, "one": np.not_equal, "olt": np.less,
        "ole": np.less_equal, "ogt": np.greater, "oge": np.greater_equal,
    }
    _INT_CMP = {
        "eq": np.equal, "ne": np.not_equal, "slt": np.less,
        "sle": np.less_equal, "sgt": np.greater, "sge": np.greater_equal,
    }

    def _exec_cmpf(self, op: Operation, frame: Frame):
        pred = op.get_attr("predicate").data  # type: ignore[union-attr]
        return [self._FLOAT_CMP[pred](frame.get(op.operands[0]), frame.get(op.operands[1]))]

    def _exec_cmpi(self, op: Operation, frame: Frame):
        pred = op.get_attr("predicate").data  # type: ignore[union-attr]
        return [self._INT_CMP[pred](frame.get(op.operands[0]), frame.get(op.operands[1]))]

    def _exec_numeric_convert(self, op: Operation, frame: Frame):
        value = frame.get(op.operands[0])
        return [self._convert_value(value, op.results[0].type)]

    @staticmethod
    def _convert_value(value, target_type: TypeAttribute):
        if isinstance(value, (MemoryBuffer, ElementRef, FieldValue, TempValue)):
            return value  # reference conversions are no-ops at runtime
        dtype = numpy_dtype_for(target_type)
        if isinstance(value, np.ndarray) and value.ndim > 0:
            return value.astype(dtype)
        return dtype.type(value)

    # ------------------------------------------------------------------
    # FIR handlers
    # ------------------------------------------------------------------

    def _exec_fir_alloca(self, op: Operation, frame: Frame):
        in_type = op.get_attr("in_type").type  # type: ignore[union-attr]
        label_attr = op.get_attr_or_none("uniq_name")
        label = label_attr.data if isinstance(label_attr, StringAttr) else ""
        if isinstance(in_type, fir_dialect.SequenceType):
            shape = list(in_type.shape)
            dynamic = [frame.get(o) for o in op.operands]
            it = iter(dynamic)
            shape = [int(_as_python(next(it))) if s < 0 else s for s in shape]
            return [MemoryBuffer.for_array(shape, in_type.element_type, label=label)]
        return [MemoryBuffer.for_scalar(in_type, 0, label=label)]

    def _exec_fir_load(self, op: Operation, frame: Frame):
        ref = frame.get(op.operands[0])
        if isinstance(ref, (MemoryBuffer, ElementRef)):
            return [ref.load()]
        raise InterpreterError("fir.load applied to a non-reference value")

    def _exec_fir_store(self, op: Operation, frame: Frame):
        value = frame.get(op.operands[0])
        ref = frame.get(op.operands[1])
        if isinstance(ref, (MemoryBuffer, ElementRef)):
            ref.store(_as_python(value))
            return []
        raise InterpreterError("fir.store applied to a non-reference value")

    def _exec_coordinate_of(self, op: Operation, frame: Frame):
        buffer = frame.get(op.operands[0])
        if not isinstance(buffer, MemoryBuffer):
            raise InterpreterError("fir.coordinate_of requires an array buffer")
        indices = tuple(int(_as_python(frame.get(o))) for o in op.operands[1:])
        return [ElementRef(buffer, indices)]

    def _exec_fir_do_loop(self, op: Operation, frame: Frame):
        lower = int(_as_python(frame.get(op.operands[0])))
        upper = int(_as_python(frame.get(op.operands[1])))
        step = int(_as_python(frame.get(op.operands[2])))
        block = op.regions[0].block
        induction = block.args[0]
        # Fortran DO semantics: upper bound inclusive.
        for value in range(lower, upper + 1, step):
            self.stats["fir_loop_iterations"] += 1
            frame.set(induction, np.int64(value))
            self.run_block(block, frame)
        return []

    def _exec_fir_if(self, op: Operation, frame: Frame):
        condition = bool(_as_python(frame.get(op.operands[0])))
        region = op.regions[0] if condition else op.regions[1]
        if region.blocks:
            self.run_block(region.block, frame)
        return []

    def _exec_fir_convert(self, op: Operation, frame: Frame):
        value = frame.get(op.operands[0])
        result_type = op.results[0].type
        if isinstance(result_type, (FloatType, IntegerType, IndexType)):
            return [self._convert_value(value, result_type)]
        return [value]

    # ------------------------------------------------------------------
    # memref handlers
    # ------------------------------------------------------------------

    def _exec_memref_alloc(self, op: Operation, frame: Frame):
        mtype: MemRefType = op.results[0].type  # type: ignore[assignment]
        shape = list(mtype.shape)
        dynamic = [int(_as_python(frame.get(o))) for o in op.operands]
        it = iter(dynamic)
        shape = [next(it) if s < 0 else s for s in shape]
        # Scratch allocated inside a GPU-launch-tagged function lives on the
        # device (it is kernel-local staging, e.g. the stencil snapshot of a
        # lowered sweep) — tagging it host would fabricate on-demand PCIe
        # traffic when it is passed to a gpu.launch_func.  It comes out of
        # the accounted device pool and is released when the function
        # returns (the lowering emits no dealloc for it).
        if self._enclosing_func_attr(op, "gpu.launch") is not None:
            # Degraded allocation: a device OOM walks the recovery ladder
            # (evict idle → host staging) instead of killing the launch.
            buffer = self._require_gpu().alloc_degraded(
                shape, mtype.element_type, label="gpu_scratch")
            if self._device_scratch_stack:
                self._device_scratch_stack[-1].append(buffer)
            return [buffer]
        return [MemoryBuffer.for_array(shape, mtype.element_type)]

    def _exec_memref_load(self, op: Operation, frame: Frame):
        buffer = frame.get(op.operands[0])
        indices = tuple(int(_as_python(frame.get(o))) for o in op.operands[1:])
        return [buffer.data[indices]]

    def _exec_memref_store(self, op: Operation, frame: Frame):
        value = frame.get(op.operands[0])
        buffer = frame.get(op.operands[1])
        indices = tuple(int(_as_python(frame.get(o))) for o in op.operands[2:])
        buffer.data[indices] = _as_python(value)
        return []

    def _exec_memref_dim(self, op: Operation, frame: Frame):
        buffer = frame.get(op.operands[0])
        dim = int(_as_python(frame.get(op.operands[1])))
        return [np.int64(buffer.data.shape[dim])]

    def _exec_memref_copy(self, op: Operation, frame: Frame):
        source = frame.get(op.operands[0])
        target = frame.get(op.operands[1])
        target.copy_from(source)
        return []

    # ------------------------------------------------------------------
    # scf handlers
    # ------------------------------------------------------------------

    def _exec_scf_for(self, op: Operation, frame: Frame):
        lower = int(_as_python(frame.get(op.operands[0])))
        upper = int(_as_python(frame.get(op.operands[1])))
        step = int(_as_python(frame.get(op.operands[2])))
        iter_values = [frame.get(o) for o in op.operands[3:]]
        block = op.regions[0].block
        for value in range(lower, upper, step):
            frame.set(block.args[0], np.int64(value))
            for arg, iter_value in zip(block.args[1:], iter_values):
                frame.set(arg, iter_value)
            iter_values = self.run_block(block, frame)
        return iter_values

    def _exec_scf_parallel(self, op: Operation, frame: Frame):
        rank = int(op.get_attr("rank").value)  # type: ignore[union-attr]
        lowers = [int(_as_python(frame.get(o))) for o in op.operands[:rank]]
        uppers = [int(_as_python(frame.get(o))) for o in op.operands[rank:2 * rank]]
        steps = [int(_as_python(frame.get(o))) for o in op.operands[2 * rank:3 * rank]]
        self.stats["parallel_regions"] += 1
        self._run_nest(op, frame, lowers, uppers, steps)
        return []

    def _iterate_nest(self, block: Block, frame: Frame, lowers, uppers, steps,
                      dim: int, current: List[int]) -> None:
        if dim == len(lowers):
            for arg, value in zip(block.args, current):
                frame.set(arg, np.int64(value))
            self.run_block(block, frame)
            return
        for value in range(lowers[dim], uppers[dim], steps[dim]):
            current[dim] = value
            self._iterate_nest(block, frame, lowers, uppers, steps, dim + 1, current)

    def _exec_scf_if(self, op: Operation, frame: Frame):
        condition = bool(_as_python(frame.get(op.operands[0])))
        region = op.regions[0] if condition else op.regions[1]
        if not region.blocks:
            return [None] * len(op.results)
        return self.run_block(region.block, frame)

    # ------------------------------------------------------------------
    # omp handlers (functionally serial; parallelism feeds the cost model)
    # ------------------------------------------------------------------

    def _exec_omp_parallel(self, op: Operation, frame: Frame):
        self.stats["omp_regions"] += 1
        self.run_block(op.regions[0].block, frame)
        return []

    def _exec_omp_wsloop(self, op: Operation, frame: Frame):
        rank = int(op.get_attr("rank").value)  # type: ignore[union-attr]
        lowers = [int(_as_python(frame.get(o))) for o in op.operands[:rank]]
        uppers = [int(_as_python(frame.get(o))) for o in op.operands[rank:2 * rank]]
        steps = [int(_as_python(frame.get(o))) for o in op.operands[2 * rank:3 * rank]]
        self._run_nest(op, frame, lowers, uppers, steps)
        return []

    # ------------------------------------------------------------------
    # vectorized kernel dispatch (see runtime/kernel_compiler.py)
    # ------------------------------------------------------------------

    def _run_nest(self, op: Operation, frame: Frame,
                  lowers: List[int], uppers: List[int], steps: List[int]) -> None:
        """Execute a loop-nest op: compiled kernel when enabled and safe,
        scalar iteration otherwise — both paths share one runner so the
        crosscheck oracle and the fallback can never diverge."""
        block = op.regions[0].block

        def scalar_runner() -> None:
            self._iterate_nest(block, frame, lowers, uppers, steps, 0,
                               [0] * len(lowers))

        if self.execution_mode != "interpret" and \
                self._vectorize_nest(op, frame, scalar_runner):
            return
        scalar_runner()

    def _vectorize_nest(self, op: Operation, frame: Frame,
                        scalar_runner: Callable[[], None]) -> bool:
        """Run a loop-nest sweep through its compiled kernel.  Returns False
        (caller interprets point by point) when the op cannot be compiled or
        a runtime guard fails."""
        bound = self.kernels.kernel_for(op)
        if bound is None:
            self.stats["vectorize_fallbacks"] += 1
            return False
        kernel = bound.kernel
        externals = [frame.get(v) for v in bound.external_values]
        lowers, uppers, steps = [], [], []
        for lower_slot, upper_slot, step_slot in kernel.bound_slots:
            lowers.append(int(_as_python(externals[lower_slot])))
            uppers.append(int(_as_python(externals[upper_slot])))
            steps.append(int(_as_python(externals[step_slot])))
        if not kernel.guards_pass(externals, lowers, uppers, steps):
            self.stats["vectorize_fallbacks"] += 1
            return False
        if any(u <= l for l, u in zip(lowers, uppers)):
            return True  # empty iteration space: nothing to execute
        schedule, chunk = self._nest_schedule(op)
        tile_sizes = self._schedule_tile(op, len(lowers))

        def vector_runner() -> None:
            self._run_nest_kernel(kernel, externals, lowers, uppers,
                                  schedule, chunk, tile_sizes)

        if self.execution_mode == "crosscheck":
            self._crosscheck_nest(kernel, externals, vector_runner, scalar_runner)
        else:
            vector_runner()
        self.stats["vectorized_sweeps"] += 1
        return True

    @staticmethod
    def _nest_schedule(op: Operation) -> Tuple[str, Optional[int]]:
        """The worksharing schedule clause recorded on the nest (static for
        plain scf.parallel, which carries no clause)."""
        if isinstance(op, omp_dialect.WsLoopOp):
            return op.schedule, op.chunk_size
        return "static", None

    @staticmethod
    def _schedule_tile(op: Operation,
                       rank: int) -> Optional[Tuple[int, ...]]:
        """Tile sizes recorded by a ``.tile(...)`` schedule directive.
        The attribute is placement policy (excluded from the kernel cache
        key); a rank mismatch simply disables it — the schedule layer
        validates ranks loudly at lower time."""
        attr = op.get_attr_or_none("schedule.tile")
        if attr is None:
            return None
        sizes = attr.as_tuple()
        return sizes if len(sizes) == rank else None

    def _run_nest_kernel(self, kernel, externals, lowers, uppers,
                         schedule: str = "static",
                         chunk: Optional[int] = None,
                         tile_sizes: Optional[Tuple[int, ...]] = None) -> None:
        """One sweep of a compiled nest kernel: tiled across the persistent
        thread pool when a multi-thread executor is configured and the kernel
        is provably tile-safe, single whole-domain invocation otherwise.

        Tiling partitions dimension 0 — the outermost parallel dimension of
        the source ``scf.parallel`` / ``omp.wsloop``.  A kernel whose runtime
        guards passed writes each tile's stores into disjoint slabs (no
        load/store aliasing, store-store aliasing only through identical
        index maps), so tiles may run concurrently; any kernel that cannot
        show a store on every tile falls back to the single-tile path and is
        counted in ``stats["parallel_fallbacks"]``.
        """
        start = _time.perf_counter()
        if tile_sizes is not None:
            boxes = plan_boxes(lowers, uppers, tile_sizes)
            if len(boxes) > 1:
                # A nest kernel whose guards passed has no load/store
                # aliasing and stores that cover every dimension, so the
                # boxes write disjoint regions and read unwritten ones: any
                # execution order (including concurrent) is bitwise equal to
                # the single whole-domain call.
                def run_box(box) -> None:
                    kernel.fn(externals, list(box[0]), list(box[1]))

                if (self._executor is not None and self.threads > 1
                        and kernel.stores and all(
                            any(dim == 0 for dim, _ in axes)
                            for _, axes in kernel.stores)):
                    self._executor.run_tiles(run_box, boxes)
                else:
                    for box in boxes:
                        run_box(box)
                self.stats["schedule_tiles"] += len(boxes)
                if self.kernels is not None and kernel.label:
                    self.kernels.record_invocation(
                        kernel.label, _time.perf_counter() - start)
                return
        tiles = None
        if self._executor is not None and self.threads > 1:
            if kernel.stores and all(
                any(dim == 0 for dim, _ in axes) for _, axes in kernel.stores
            ):
                tiles = plan_tiles(lowers[0], uppers[0], self.threads,
                                   schedule, chunk)
        if tiles is not None and len(tiles) > 1:
            def run_tile(tile: Tuple[int, int]) -> None:
                kernel.fn(externals, [tile[0]] + list(lowers[1:]),
                          [tile[1]] + list(uppers[1:]))

            self._executor.run_tiles(run_tile, tiles)
            self.stats["parallel_sweeps"] += 1
            self.stats["parallel_tiles"] += len(tiles)
        else:
            if self.threads > 1:
                self.stats["parallel_fallbacks"] += 1
            kernel.fn(externals, lowers, uppers)
        if self.kernels is not None and kernel.label:
            self.kernels.record_invocation(kernel.label,
                                           _time.perf_counter() - start)

    def _crosscheck_nest(self, kernel, externals,
                         vector_runner: Callable[[], None],
                         scalar_runner: Callable[[], None]) -> None:
        """Run the compiled kernel (tiled when threads > 1) AND the scalar
        oracle; raise on divergence.  Leaves the oracle's results in memory."""
        targets = kernel.store_targets(externals)
        before = [t.copy() for t in targets]
        vector_runner()
        vectorized = [t.copy() for t in targets]
        for target, saved in zip(targets, before):
            np.copyto(target, saved)
        scalar_runner()
        for target, vec in zip(targets, vectorized):
            if not np.allclose(target, vec, equal_nan=True):
                worst = float(np.max(np.abs(np.asarray(target) - vec)))
                raise InterpreterError(
                    "vectorized kernel diverged from the scalar oracle "
                    f"(max |diff| = {worst:g});\n--- kernel source ---\n"
                    f"{kernel.source}"
                )

    def _run_apply_scalar(self, op: Operation, frame: Frame,
                          lb: Tuple[int, ...], ub: Tuple[int, ...]) -> List[object]:
        """The scalar apply-body protocol, shared between the interpret/
        fallback path and the crosscheck oracle so they cannot diverge."""
        block = op.regions[0].block
        for arg, operand in zip(block.args, op.operands):
            frame.set(arg, frame.get(operand))
        self._apply_stack.append((lb, ub))
        try:
            return self.run_block(block, frame)
        finally:
            self._apply_stack.pop()

    def _vectorize_apply(self, op: Operation, frame: Frame,
                         lb: Tuple[int, ...], ub: Tuple[int, ...]):
        """Execute a stencil.apply through its compiled kernel; returns the
        list of result arrays, or None to fall back to the scalar path."""
        bound = self.kernels.kernel_for(op)
        if bound is None:
            self.stats["vectorize_fallbacks"] += 1
            return None
        kernel = bound.kernel
        externals = [frame.get(v) for v in bound.external_values]
        if not kernel.apply_guards_pass(externals, lb, ub):
            self.stats["vectorize_fallbacks"] += 1
            return None
        tile_sizes = self._schedule_tile(op, len(lb))
        results = self._run_apply_kernel(kernel, externals, lb, ub, tile_sizes)
        if self.execution_mode == "crosscheck":
            reference = self._run_apply_scalar(op, frame, lb, ub)
            for vec, ref in zip(results, reference):
                if not np.allclose(np.asarray(vec, dtype=np.float64),
                                   np.asarray(ref, dtype=np.float64),
                                   equal_nan=True):
                    raise InterpreterError(
                        "vectorized stencil.apply diverged from the scalar "
                        f"oracle;\n--- kernel source ---\n{kernel.source}"
                    )
        self.stats["vectorized_sweeps"] += 1
        return results

    def _run_apply_kernel(self, kernel, externals, lb: Tuple[int, ...],
                          ub: Tuple[int, ...],
                          tile_sizes: Optional[Tuple[int, ...]] = None
                          ) -> List[object]:
        """One sweep of a compiled apply kernel, tiled along dimension 0
        across the thread pool when possible.

        Apply kernels are pure (no stores), so tiles need no disjointness
        argument: each computes its slab of every result and the slabs are
        assembled by one concatenation per result in tile order (exact and
        deterministic; the pairwise :func:`tree_combine` exists for genuinely
        non-associative reduction partials, where concatenating once would
        not apply).  Tiling requires every returned value to be a
        whole-domain array (known statically) whose leading axis actually
        spans the tile — a result
        that broadcasts along dimension 0 (e.g. built purely from
        ``stencil.index`` of another dimension) would assemble wrongly, so
        such sweeps recompute on the single-tile path instead, counted in
        ``stats["parallel_fallbacks"]``.  Generated arrays either span dim 0
        fully or have size 1 there, so the per-tile shape check below
        separates the two — provided every tile spans at least 2 rows (at
        tile extent 1 the sizes coincide), which the plan must satisfy.

        A ``.tile(...)`` schedule directive takes precedence over the
        thread plan: the sweep runs over user-shaped cache boxes (see
        :meth:`_run_apply_boxes`) and falls through to the paths below only
        when a result's shape refuses box assembly.
        """
        start = _time.perf_counter()
        try:
            if (
                tile_sizes is not None
                and kernel.box_tileable
                and kernel.result_is_array
                and all(kernel.result_is_array)
            ):
                boxed = self._run_apply_boxes(kernel, externals, lb, ub,
                                              tile_sizes)
                if boxed is not None:
                    return boxed
            tiles = None
            if (
                self._executor is not None
                and self.threads > 1
                and kernel.tileable
                and kernel.result_is_array
                and all(kernel.result_is_array)
            ):
                tiles = plan_tiles(lb[0], ub[0], self.threads)
                if any(tile_ub - tile_lb < 2 for tile_lb, tile_ub in tiles):
                    tiles = None
            if tiles is None or len(tiles) <= 1:
                if self.threads > 1:
                    self.stats["parallel_fallbacks"] += 1
                return kernel.fn(externals, lb, ub)

            def run_tile(tile: Tuple[int, int]) -> List[object]:
                return kernel.fn(externals, (tile[0],) + tuple(lb[1:]),
                                 (tile[1],) + tuple(ub[1:]))

            partials = self._executor.map_tiles(run_tile, tiles)
            for tile, partial in zip(tiles, partials):
                if any(np.ndim(value) == 0 or np.shape(value)[0] != tile[1] - tile[0]
                       for value in partial):
                    # A result broadcasts along dim 0: slabs cannot be
                    # stacked.  Recompute whole-domain (kernels are pure)
                    # and remember the refusal — the shape defect is
                    # structural, so later sweeps skip straight here.
                    kernel.tileable = False
                    self.stats["parallel_fallbacks"] += 1
                    return kernel.fn(externals, lb, ub)
            self.stats["parallel_sweeps"] += 1
            self.stats["parallel_tiles"] += len(tiles)
            return [
                np.concatenate([partial[i] for partial in partials], axis=0)
                for i in range(len(partials[0]))
            ]
        finally:
            if self.kernels is not None and kernel.label:
                self.kernels.record_invocation(kernel.label,
                                               _time.perf_counter() - start)

    def _run_apply_boxes(self, kernel, externals, lb: Tuple[int, ...],
                         ub: Tuple[int, ...],
                         tile_sizes: Tuple[int, ...]) -> Optional[List[object]]:
        """Run an apply kernel over ``schedule.tile``-shaped sub-boxes and
        assemble whole-domain results by slab assignment.

        Pure elementwise kernels compute bit-identical values on any
        sub-box, so assembly is exact.  Every per-box result must match the
        box shape exactly; a result that broadcasts along a tiled dimension
        (e.g. built purely from ``stencil.index`` of another dimension)
        returns ``None`` — the caller recomputes whole-domain — and the
        refusal is memoised on the kernel (``box_tileable``), mirroring the
        dim-0 ``tileable`` flag.
        """
        boxes = plan_boxes(lb, ub, tile_sizes)
        if len(boxes) <= 1:
            return None

        def run_box(box) -> List[object]:
            return kernel.fn(externals, box[0], box[1])

        if self._executor is not None and self.threads > 1:
            partials = self._executor.map_tiles(run_box, boxes)
        else:
            partials = [run_box(box) for box in boxes]
        for box, partial in zip(boxes, partials):
            shape = tuple(u - l for l, u in zip(box[0], box[1]))
            if any(np.shape(value) != shape for value in partial):
                kernel.box_tileable = False
                self.stats["schedule_fallbacks"] += 1
                return None
        domain = tuple(u - l for l, u in zip(lb, ub))
        results: List[object] = []
        for i in range(len(partials[0])):
            out = np.empty(domain, dtype=np.asarray(partials[0][i]).dtype)
            for box, partial in zip(boxes, partials):
                slices = tuple(
                    slice(box_l - l, box_u - l)
                    for l, box_l, box_u in zip(lb, box[0], box[1])
                )
                out[slices] = partial[i]
            results.append(out)
        self.stats["schedule_tiles"] += len(boxes)
        return results

    # ------------------------------------------------------------------
    # stencil handlers (vectorised execution)
    # ------------------------------------------------------------------

    def _exec_stencil_external_load(self, op: Operation, frame: Frame):
        buffer = frame.get(op.operands[0])
        if isinstance(buffer, ElementRef):
            buffer = buffer.buffer
        if not isinstance(buffer, MemoryBuffer):
            raise InterpreterError("stencil.external_load requires a memory buffer")
        ftype: stencil_dialect.FieldType = op.results[0].type  # type: ignore[assignment]
        lb = tuple(b[0] for b in ftype.bounds)
        return [FieldValue(buffer, lb)]

    def _exec_stencil_cast(self, op: Operation, frame: Frame):
        field = frame.get(op.operands[0])
        ftype: stencil_dialect.FieldType = op.results[0].type  # type: ignore[assignment]
        return [FieldValue(field.buffer, tuple(b[0] for b in ftype.bounds))]

    def _exec_stencil_load(self, op: Operation, frame: Frame):
        field = frame.get(op.operands[0])
        if not isinstance(field, FieldValue):
            raise InterpreterError("stencil.load requires a field value")
        return [TempValue(np.array(field.buffer.data, copy=True), field.lb)]

    def _exec_stencil_apply(self, op: Operation, frame: Frame):
        lb = op.get_attr("lb").as_tuple()  # type: ignore[union-attr]
        ub = op.get_attr("ub").as_tuple()  # type: ignore[union-attr]
        domain = tuple(u - l for l, u in zip(lb, ub))
        returned = None
        if self.execution_mode != "interpret":
            returned = self._vectorize_apply(op, frame, lb, ub)
        if returned is None:
            returned = self._run_apply_scalar(op, frame, lb, ub)
        self.stats["stencil_apply_executions"] += 1
        points = 1
        for extent in domain:
            points *= extent
        self.stats["stencil_points_computed"] += points
        results = []
        for value in returned:
            array = np.broadcast_to(np.asarray(value, dtype=np.float64), domain).copy() \
                if np.ndim(value) == 0 else np.asarray(value)
            results.append(TempValue(array, lb))
        return results

    def _exec_stencil_access(self, op: Operation, frame: Frame):
        temp = frame.get(op.operands[0])
        if not isinstance(temp, TempValue):
            raise InterpreterError("stencil.access requires a temp value")
        if not self._apply_stack:
            raise InterpreterError("stencil.access outside of a stencil.apply body")
        lb, ub = self._apply_stack[-1]
        offset = op.get_attr("offset").as_tuple()  # type: ignore[union-attr]
        slices = tuple(
            slice(l + o - org, u + o - org)
            for l, u, o, org in zip(lb, ub, offset, temp.origin)
        )
        return [temp.data[slices]]

    def _exec_stencil_index(self, op: Operation, frame: Frame):
        if not self._apply_stack:
            raise InterpreterError("stencil.index outside of a stencil.apply body")
        lb, ub = self._apply_stack[-1]
        dim = int(op.get_attr("dim").value)  # type: ignore[union-attr]
        domain = tuple(u - l for l, u in zip(lb, ub))
        axis_values = np.arange(lb[dim], ub[dim], dtype=np.int64)
        shape = [1] * len(domain)
        shape[dim] = domain[dim]
        return [np.broadcast_to(axis_values.reshape(shape), domain)]

    def _exec_stencil_store(self, op: Operation, frame: Frame):
        temp = frame.get(op.operands[0])
        field = frame.get(op.operands[1])
        lb = op.get_attr("lb").as_tuple()  # type: ignore[union-attr]
        ub = op.get_attr("ub").as_tuple()  # type: ignore[union-attr]
        field_slices = tuple(
            slice(l - fl, u - fl) for l, u, fl in zip(lb, ub, field.lb)
        )
        temp_slices = tuple(
            slice(l - to, u - to) for l, u, to in zip(lb, ub, temp.origin)
        )
        field.buffer.data[field_slices] = temp.data[temp_slices]
        return []

    # ------------------------------------------------------------------
    # gpu handlers
    # ------------------------------------------------------------------

    def _require_gpu(self) -> SimulatedGPU:
        if self.gpu is None:
            self.gpu = SimulatedGPU()
        return self.gpu

    def _exec_gpu_alloc(self, op: Operation, frame: Frame):
        gpu = self._require_gpu()
        mtype: MemRefType = op.results[0].type  # type: ignore[assignment]
        shape = list(mtype.shape)
        dynamic = [int(_as_python(frame.get(o))) for o in op.operands]
        it = iter(dynamic)
        shape = [next(it) if s < 0 else s for s in shape]
        return [gpu.alloc_degraded(shape, mtype.element_type)]

    def _exec_gpu_dealloc(self, op: Operation, frame: Frame):
        buffer = frame.get(op.operands[0])
        if isinstance(buffer, FieldValue):
            buffer = buffer.buffer
        self._require_gpu().dealloc(buffer)
        return []

    @staticmethod
    def _enclosing_func_attr(op: Operation, attr_name: str):
        """The named attribute on the op's enclosing function, if any."""
        parent = op.parent_op()
        while parent is not None:
            if isinstance(parent, FuncOp):
                return parent.get_attr_or_none(attr_name)
            parent = parent.parent_op()
        return None

    def _exec_gpu_memcpy(self, op: Operation, frame: Frame):
        dst = frame.get(op.operands[0])
        src = frame.get(op.operands[1])
        if isinstance(dst, FieldValue):
            dst = dst.buffer
        if isinstance(src, FieldValue):
            src = src.buffer
        gpu = self._require_gpu()
        # Copies inside a prefetch-tagged data-management function go to the
        # device's copy stream so the model can overlap them with compute.
        stream = SimulatedGPU.COPY_STREAM \
            if self._enclosing_func_attr(op, "gpu.prefetch") is not None else 0
        start = _time.perf_counter()
        gpu.memcpy(dst, src, stream=stream)
        self.stats["transfer_seconds"] += _time.perf_counter() - start
        return []

    def _exec_gpu_host_register(self, op: Operation, frame: Frame):
        self._require_gpu().host_register(frame.get(op.operands[0]))
        return []

    def _exec_gpu_host_unregister(self, op: Operation, frame: Frame):
        self._require_gpu().host_unregister(frame.get(op.operands[0]))
        return []

    def _exec_gpu_launch_func(self, op: Operation, frame: Frame):
        gpu = self._require_gpu()
        kernel_name = op.get_attr("kernel").root  # type: ignore[union-attr]
        grid = op.get_attr("grid_size").as_tuple()  # type: ignore[union-attr]
        block = op.get_attr("block_size").as_tuple()  # type: ignore[union-attr]
        args = [frame.get(o) for o in op.operands]
        buffers = [a for a in args if isinstance(a, MemoryBuffer) and not a.is_scalar]
        stream_attr = op.get_attr_or_none("gpu.stream") or \
            self._enclosing_func_attr(op, "gpu.stream")
        stream = int(stream_attr.value) if stream_attr is not None else 0
        launch = gpu.record_launch(kernel_name, grid, block, buffers,
                                   stream=stream)
        self.stats["kernel_launches"] += 1
        kernel_op = self._gpu_kernels.get(kernel_name)
        if kernel_op is None:
            raise InterpreterError(f"gpu.launch_func: unknown kernel '{kernel_name}'")
        start = _time.perf_counter()
        try:
            if self.execution_mode != "interpret" and \
                    self._vectorize_launch(op, kernel_op, args, grid, block):
                return []
            self._run_launch_scalar(kernel_op, args, grid, block)
            return []
        finally:
            seconds = _time.perf_counter() - start
            gpu.finish_launch(launch, seconds)
            self.stats["gpu_seconds"] += seconds

    def _run_launch_scalar(self, kernel_op: Operation, args: List[object],
                           grid: Sequence[int], block: Sequence[int]) -> None:
        """The per-thread scalar oracle: run the gpu.func body once for every
        thread of the (grid × block) lattice."""
        body = kernel_op.regions[0].block
        for bz in range(grid[2]):
            for by in range(grid[1]):
                for bx in range(grid[0]):
                    for tz in range(block[2]):
                        for ty in range(block[1]):
                            for tx in range(block[0]):
                                ctx = {
                                    "thread_id": (tx, ty, tz),
                                    "block_id": (bx, by, bz),
                                    "block_dim": tuple(block),
                                    "grid_dim": tuple(grid),
                                }
                                self._gpu_thread_ctx.append(ctx)
                                kernel_frame = Frame()
                                for barg, value in zip(body.args, args):
                                    kernel_frame.set(barg, value)
                                try:
                                    self.run_block(body, kernel_frame)
                                finally:
                                    self._gpu_thread_ctx.pop()

    def _vectorize_launch(self, op: Operation, kernel_op: Operation,
                          args: List[object], grid: Sequence[int],
                          block: Sequence[int]) -> bool:
        """Run a gpu.launch_func through its compiled whole-lattice kernel.
        Returns False (caller runs the per-thread oracle) when the gpu.func
        cannot be compiled or a runtime bounds/alias guard fails."""
        if self._gpu_engine is None:
            self._gpu_engine = GpuKernelEngine(self.kernels)
        bound = self._gpu_engine.kernel_for(op, kernel_op)
        if bound is None:
            self.stats["gpu_launch_fallbacks"] += 1
            return False
        kernel = bound.kernel
        externals = args
        lowers, uppers = kernel.launch_domain(grid, block)
        if not kernel.guards_pass(externals, lowers, uppers, [1] * kernel.rank):
            self.stats["gpu_launch_fallbacks"] += 1
            return False
        if any(u <= l for l, u in zip(lowers, uppers)):
            self.stats["gpu_launches_vectorized"] += 1
            return True  # the guard rejects every thread: nothing to execute
        start = _time.perf_counter()
        try:
            if self.execution_mode == "crosscheck":
                self._crosscheck_launch(kernel, externals, lowers, uppers,
                                        kernel_op, args, grid, block)
            else:
                kernel.fn(externals, lowers, uppers)
        finally:
            if self.kernels is not None and kernel.label:
                self.kernels.record_invocation(kernel.label,
                                               _time.perf_counter() - start)
        self.stats["gpu_launches_vectorized"] += 1
        return True

    def _crosscheck_launch(self, kernel, externals, lowers, uppers,
                           kernel_op: Operation, args: List[object],
                           grid: Sequence[int], block: Sequence[int]) -> None:
        """Run the compiled lattice kernel AND the per-thread scalar oracle;
        require bitwise agreement.  Leaves the oracle's results in memory."""
        targets = kernel.store_targets(externals)
        before = [t.copy() for t in targets]
        kernel.fn(externals, lowers, uppers)
        vectorized = [t.copy() for t in targets]
        for target, saved in zip(targets, before):
            np.copyto(target, saved)
        self._run_launch_scalar(kernel_op, args, grid, block)
        for target, vec in zip(targets, vectorized):
            if not np.array_equal(np.asarray(target), vec, equal_nan=True):
                worst = float(np.max(np.abs(np.asarray(target, dtype=np.float64)
                                            - np.asarray(vec, dtype=np.float64))))
                raise InterpreterError(
                    "vectorized GPU launch diverged from the per-thread "
                    f"scalar oracle (max |diff| = {worst:g});\n"
                    f"--- kernel source ---\n{kernel.source}"
                )

    def _exec_gpu_id(self, what: str):
        dims = {"x": 0, "y": 1, "z": 2}

        def handler(op: Operation, frame: Frame):
            if not self._gpu_thread_ctx:
                raise InterpreterError(f"gpu.{what} used outside of a kernel launch")
            ctx = self._gpu_thread_ctx[-1]
            dim = op.get_attr("dimension").data  # type: ignore[union-attr]
            return [np.int64(ctx[what][dims[dim]])]

        return handler

    # ------------------------------------------------------------------
    # dmp / mpi handlers
    # ------------------------------------------------------------------

    def _require_decomposition(self) -> CartesianDecomposition:
        if self.decomposition is None:
            raise InterpreterError(
                "distributed execution requires a CartesianDecomposition"
            )
        return self.decomposition

    def _exec_dmp_grid(self, op: Operation, frame: Frame):
        return [self._require_decomposition()]

    def _exec_dmp_rank(self, op: Operation, frame: Frame):
        decomposition = self._require_decomposition()
        dim = int(op.get_attr("dim").value)  # type: ignore[union-attr]
        coords = decomposition.coords_of(self.rank)
        return [np.int64(coords[dim])]

    def _exec_dmp_local_domain(self, op: Operation, frame: Frame):
        decomposition = self._require_decomposition()
        bounds = decomposition.local_bounds(self.rank)
        flat: List[object] = []
        for lb, ub in bounds:
            flat.append(np.int64(lb))
            flat.append(np.int64(ub))
        return flat

    def _exec_dmp_neighbour_rank(self, op: Operation, frame: Frame):
        decomposition = self._require_decomposition()
        dim = int(op.get_attr("dim").value)  # grid dimension (position)
        direction = int(op.get_attr("direction").value)
        coords = list(decomposition.coords_of(self.rank))
        coords[dim] += direction
        return [np.int32(decomposition.rank_of(coords))]

    def _exec_dmp_halo_swap(self, op: Operation, frame: Frame):
        """Exchange halo slabs of the field with grid neighbours."""
        if self.comm is None:
            return []
        decomposition = self._require_decomposition()
        field = frame.get(op.operands[0])
        buffer = field.buffer if isinstance(field, FieldValue) else field
        halo = op.get_attr("halo").as_tuple()  # type: ignore[union-attr]
        neighbours = decomposition.neighbours(self.rank)
        ndim = buffer.data.ndim

        def slab(dim: int, where: str) -> Tuple[slice, ...]:
            slices = [slice(None)] * ndim
            width = halo[dim]
            if where == "low_interior":
                slices[dim] = slice(width, 2 * width)
            elif where == "high_interior":
                slices[dim] = slice(-2 * width, -width)
            elif where == "low_ghost":
                slices[dim] = slice(0, width)
            elif where == "high_ghost":
                slices[dim] = slice(-width, None)
            return tuple(slices)

        # Post all sends first, then receive (buffered sends cannot deadlock).
        start = _time.perf_counter()
        for (dim, direction), neighbour in neighbours.items():
            if neighbour < 0 or halo[dim] == 0:
                continue
            where = "low_interior" if direction < 0 else "high_interior"
            payload = buffer.data[slab(dim, where)]
            tag = dim * 2 + (0 if direction < 0 else 1)
            self.comm.send(self.rank, neighbour, tag, payload)
            self.stats["mpi_messages"] += 1
            self.stats["mpi_bytes"] += payload.nbytes
        for (dim, direction), neighbour in neighbours.items():
            if neighbour < 0 or halo[dim] == 0:
                continue
            # A message sent from the neighbour's opposite face.
            tag = dim * 2 + (1 if direction < 0 else 0)
            data = self.comm.receive(neighbour, self.rank, tag)
            where = "low_ghost" if direction < 0 else "high_ghost"
            buffer.data[slab(dim, where)] = data
        self.stats["halo_seconds"] += _time.perf_counter() - start
        return []

    def _buffer_slices(self, op: Operation, buffer: MemoryBuffer):
        lb_attr = op.get_attr_or_none("slice_lb")
        ub_attr = op.get_attr_or_none("slice_ub")
        if lb_attr is None or ub_attr is None:
            return tuple(slice(None) for _ in buffer.data.shape)
        return tuple(
            slice(l, u) for l, u in zip(lb_attr.as_tuple(), ub_attr.as_tuple())
        )

    def _exec_mpi_isend(self, op: Operation, frame: Frame):
        buffer = frame.get(op.operands[0])
        if isinstance(buffer, FieldValue):
            buffer = buffer.buffer
        peer = int(_as_python(frame.get(op.operands[1])))
        tag = int(_as_python(frame.get(op.operands[2])))
        if peer < 0:
            return [{"type": "send"}]
        payload = buffer.data[self._buffer_slices(op, buffer)]
        if self.comm is not None:
            start = _time.perf_counter()
            self.comm.send(self.rank, peer, tag, payload)
            self.stats["halo_seconds"] += _time.perf_counter() - start
        self.stats["mpi_messages"] += 1
        self.stats["mpi_bytes"] += payload.nbytes
        return [{"type": "send"}]

    def _exec_mpi_send(self, op: Operation, frame: Frame):
        self._exec_mpi_isend(op, frame)
        return []

    def _exec_mpi_irecv(self, op: Operation, frame: Frame):
        buffer = frame.get(op.operands[0])
        if isinstance(buffer, FieldValue):
            buffer = buffer.buffer
        peer = int(_as_python(frame.get(op.operands[1])))
        tag = int(_as_python(frame.get(op.operands[2])))
        if peer < 0:
            return [{"type": "noop"}]
        request = {
            "type": "recv",
            "buffer": buffer,
            "slices": self._buffer_slices(op, buffer),
            "source": peer,
            "tag": tag,
        }
        return [request]

    def _exec_mpi_recv(self, op: Operation, frame: Frame):
        request = self._exec_mpi_irecv(op, frame)[0]
        self._complete_request(request)
        return []

    def _complete_request(self, request) -> None:
        if not isinstance(request, dict) or request.get("type") != "recv":
            return
        if self.comm is None:
            return
        start = _time.perf_counter()
        data = self.comm.receive(request["source"], self.rank, request["tag"])
        self.stats["halo_seconds"] += _time.perf_counter() - start
        request["buffer"].data[request["slices"]] = data

    def _exec_mpi_wait(self, op: Operation, frame: Frame):
        self._complete_request(frame.get(op.operands[0]))
        return []

    def _exec_mpi_waitall(self, op: Operation, frame: Frame):
        for operand in op.operands:
            self._complete_request(frame.get(operand))
        return []


__all__ = [
    "Interpreter",
    "InterpreterError",
    "Frame",
    "FieldValue",
    "TempValue",
]
