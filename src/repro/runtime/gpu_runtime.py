"""Simulated GPU device.

There is no physical GPU (nor CUDA toolchain) available, so the ``gpu``
dialect is executed against an in-process device model: device allocations are
ordinary numpy buffers tagged ``space="device"``, and every transfer between
host and device is accounted so the paper's data-management comparison
(Figure 5: ``gpu.host_register`` vs the bespoke optimised data pass) can be
reproduced in terms of transfer volume and modelled time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..ir.types import TypeAttribute
from .memory import MemoryBuffer


@dataclass
class GPUTransfer:
    """One host<->device transfer event."""

    direction: str  # 'h2d' or 'd2h'
    nbytes: int
    reason: str = "memcpy"  # 'memcpy' | 'on_demand' | 'register'


@dataclass
class KernelLaunch:
    """One kernel launch event."""

    kernel: str
    grid: Tuple[int, int, int]
    block: Tuple[int, int, int]
    args_nbytes: int = 0

    @property
    def total_threads(self) -> int:
        g = self.grid
        b = self.block
        return g[0] * g[1] * g[2] * b[0] * b[1] * b[2]


class SimulatedGPU:
    """A single simulated device (defaults follow an Nvidia V100-SXM2-16GB)."""

    def __init__(
        self,
        name: str = "V100",
        memory_bytes: int = 16 * 1024**3,
        pcie_bandwidth: float = 12e9,      # effective host<->device B/s
        memory_bandwidth: float = 830e9,   # effective HBM2 B/s (STREAM-like)
        peak_flops: float = 7.0e12,        # FP64
        kernel_launch_latency: float = 8e-6,
    ):
        self.name = name
        self.memory_bytes = memory_bytes
        self.pcie_bandwidth = pcie_bandwidth
        self.memory_bandwidth = memory_bandwidth
        self.peak_flops = peak_flops
        self.kernel_launch_latency = kernel_launch_latency

        self.allocated_bytes = 0
        self.allocations: List[MemoryBuffer] = []
        self.registered_buffers: List[MemoryBuffer] = []
        self.transfers: List[GPUTransfer] = []
        self.launches: List[KernelLaunch] = []

    # ------------------------------------------------------------------
    # Memory management
    # ------------------------------------------------------------------

    def alloc(self, shape: Sequence[int], element_type: TypeAttribute,
              label: str = "") -> MemoryBuffer:
        buffer = MemoryBuffer.for_array(shape, element_type, space="device", label=label)
        if self.allocated_bytes + buffer.nbytes > self.memory_bytes:
            raise MemoryError(
                f"simulated GPU out of memory: {self.allocated_bytes + buffer.nbytes} "
                f"> {self.memory_bytes} bytes"
            )
        self.allocated_bytes += buffer.nbytes
        self.allocations.append(buffer)
        return buffer

    def dealloc(self, buffer: MemoryBuffer) -> None:
        if buffer in self.allocations:
            self.allocations.remove(buffer)
            self.allocated_bytes -= buffer.nbytes

    def memcpy(self, dst: MemoryBuffer, src: MemoryBuffer) -> None:
        np.copyto(dst.data, src.data)
        if dst.space == "device" and src.space == "host":
            self.transfers.append(GPUTransfer("h2d", src.nbytes))
        elif dst.space == "host" and src.space == "device":
            self.transfers.append(GPUTransfer("d2h", src.nbytes))
        # device-to-device copies are free of PCIe traffic

    def host_register(self, buffer: MemoryBuffer) -> None:
        buffer.registered = True
        if buffer not in self.registered_buffers:
            self.registered_buffers.append(buffer)
        self.transfers.append(GPUTransfer("h2d", 0, reason="register"))

    def host_unregister(self, buffer: MemoryBuffer) -> None:
        buffer.registered = False
        if buffer in self.registered_buffers:
            self.registered_buffers.remove(buffer)

    # ------------------------------------------------------------------
    # Kernel execution accounting
    # ------------------------------------------------------------------

    def record_launch(self, kernel: str, grid: Sequence[int], block: Sequence[int],
                      arg_buffers: Sequence[MemoryBuffer] = ()) -> KernelLaunch:
        launch = KernelLaunch(kernel, tuple(grid), tuple(block))
        for buffer in arg_buffers:
            launch.args_nbytes += buffer.nbytes
            if buffer.space == "host":
                # A kernel touching registered / paged host memory drags the
                # data across PCIe on demand — both directions, every launch,
                # which is exactly why the paper's initial strategy was slow.
                self.transfers.append(
                    GPUTransfer("h2d", buffer.nbytes, reason="on_demand")
                )
                self.transfers.append(
                    GPUTransfer("d2h", buffer.nbytes, reason="on_demand")
                )
        self.launches.append(launch)
        return launch

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def transferred_bytes(self, direction: Optional[str] = None,
                          reason: Optional[str] = None) -> int:
        total = 0
        for t in self.transfers:
            if direction is not None and t.direction != direction:
                continue
            if reason is not None and t.reason != reason:
                continue
            total += t.nbytes
        return total

    def transfer_time(self) -> float:
        """Modelled PCIe time for every recorded transfer."""
        return sum(t.nbytes for t in self.transfers) / self.pcie_bandwidth

    def reset_statistics(self) -> None:
        self.transfers.clear()
        self.launches.clear()

    def summary(self) -> Dict[str, float]:
        return {
            "launches": len(self.launches),
            "h2d_bytes": self.transferred_bytes("h2d"),
            "d2h_bytes": self.transferred_bytes("d2h"),
            "on_demand_bytes": self.transferred_bytes(reason="on_demand"),
            "allocated_bytes": self.allocated_bytes,
        }


__all__ = ["SimulatedGPU", "GPUTransfer", "KernelLaunch"]
