"""Simulated GPU device with streams, events and a device memory pool.

There is no physical GPU (nor CUDA toolchain) available, so the ``gpu``
dialect is executed against an in-process device model: device allocations are
ordinary numpy buffers tagged ``space="device"`` drawn from an accounted
:class:`DeviceMemoryPool`, and every transfer between host and device is
recorded so the paper's data-management comparison (Figure 5:
``gpu.host_register`` vs the bespoke optimised data pass) can be reproduced in
terms of transfer volume and modelled time.

On top of the flat event lists (kept for byte accounting), the device keeps a
**stream timeline**: transfers and launches are enqueued onto ordered
:class:`GpuStream` objects, each event carrying a modelled start time and
duration.  Work on different streams may overlap — subject to two dependency
rules that mirror real asynchronous execution: a launch never starts before
the last ``h2d`` transfer has landed, and a ``d2h`` transfer never starts
before the last launch has finished.  ``synchronize()`` returns the modelled
makespan and ``modelled_overlap_seconds()`` how much PCIe time the streams hid
behind compute.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..ir.types import TypeAttribute
from .memory import MemoryBuffer


@dataclass
class GPUTransfer:
    """One host<->device transfer event."""

    direction: str  # 'h2d' or 'd2h'
    nbytes: int
    reason: str = "memcpy"  # 'memcpy' | 'on_demand' | 'register'


@dataclass
class KernelLaunch:
    """One kernel launch event."""

    kernel: str
    grid: Tuple[int, int, int]
    block: Tuple[int, int, int]
    args_nbytes: int = 0
    stream: int = 0
    #: Measured wall time of the launch's execution (set by the interpreter
    #: once the kernel body — vectorized or scalar — has run).
    seconds: float = 0.0

    @property
    def total_threads(self) -> int:
        g = self.grid
        b = self.block
        return g[0] * g[1] * g[2] * b[0] * b[1] * b[2]


@dataclass
class StreamEvent:
    """One modelled event on a stream's timeline."""

    kind: str  # 'h2d' | 'd2h' | 'd2d' | 'launch'
    label: str
    start: float
    duration: float

    @property
    def end(self) -> float:
        return self.start + self.duration


class GpuStream:
    """An ordered stream: events on one stream execute back to back."""

    def __init__(self, stream_id: int):
        self.stream_id = stream_id
        self.events: List[StreamEvent] = []
        self.ready_at = 0.0

    def enqueue(self, kind: str, label: str, duration: float,
                not_before: float = 0.0) -> StreamEvent:
        start = max(self.ready_at, not_before)
        event = StreamEvent(kind, label, start, duration)
        self.events.append(event)
        self.ready_at = event.end
        return event

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<GpuStream {self.stream_id} events={len(self.events)} "
                f"ready_at={self.ready_at:.3g}>")


class DeviceMemoryPool:
    """Accounted device memory: every allocation is tracked until it is
    released, and an over-capacity request raises a :class:`MemoryError`
    naming the requested buffer and the live allocations holding the memory.
    """

    def __init__(self, capacity_bytes: int):
        self.capacity_bytes = int(capacity_bytes)
        self.in_use_bytes = 0
        self.peak_bytes = 0
        #: id(buffer) -> (label, nbytes) for every live allocation.
        self._live: Dict[int, Tuple[str, int]] = {}
        self.alloc_count = 0
        self.dealloc_count = 0

    def allocate(self, buffer: MemoryBuffer) -> None:
        if self.in_use_bytes + buffer.nbytes > self.capacity_bytes:
            raise MemoryError(
                f"simulated GPU out of memory allocating "
                f"'{buffer.label or '<unnamed>'}' ({buffer.nbytes} bytes): "
                f"{self.in_use_bytes} bytes already in use of "
                f"{self.capacity_bytes} capacity; live allocations: "
                f"{self.breakdown() or 'none'}"
            )
        self._live[id(buffer)] = (buffer.label or "<unnamed>", buffer.nbytes)
        self.in_use_bytes += buffer.nbytes
        self.peak_bytes = max(self.peak_bytes, self.in_use_bytes)
        self.alloc_count += 1

    def release(self, buffer: MemoryBuffer) -> int:
        """Return the buffer's bytes to the pool; returns how many bytes were
        reclaimed (0 for a buffer the pool does not own)."""
        entry = self._live.pop(id(buffer), None)
        if entry is None:
            return 0
        self.in_use_bytes -= entry[1]
        self.dealloc_count += 1
        return entry[1]

    def breakdown(self) -> str:
        """The live allocations as a ``label=bytes`` comma list."""
        return ", ".join(f"{label}={nbytes}" for label, nbytes in
                         self._live.values())


class SimulatedGPU:
    """A single simulated device (defaults follow an Nvidia V100-SXM2-16GB).

    ``num_streams`` caps how many concurrent streams the device exposes:
    callers enqueue against a *stream assignment* (any non-negative integer,
    e.g. the compile-time assignment the GPU data-management pass annotated
    on a launch) and the device folds it onto a physical stream modulo this
    count, so the same compiled module runs on any stream configuration.
    """

    #: Stream assignment conventionally used for prefetch/copy traffic; folds
    #: onto stream 0 when the device exposes a single stream.
    COPY_STREAM = 1

    def __init__(
        self,
        name: str = "V100",
        memory_bytes: int = 16 * 1024**3,
        pcie_bandwidth: float = 12e9,      # effective host<->device B/s
        memory_bandwidth: float = 830e9,   # effective HBM2 B/s (STREAM-like)
        peak_flops: float = 7.0e12,        # FP64
        kernel_launch_latency: float = 8e-6,
        num_streams: int = 1,
        alloc_hook: Optional[Callable[[str], bool]] = None,
    ):
        self.name = name
        self.memory_bytes = memory_bytes
        self.pcie_bandwidth = pcie_bandwidth
        self.memory_bandwidth = memory_bandwidth
        self.peak_flops = peak_flops
        self.kernel_launch_latency = kernel_launch_latency
        self.num_streams = max(1, int(num_streams))
        #: Deterministic fault injection: called with the allocation label
        #: before every device allocation; returning True simulates an OOM
        #: (see :class:`repro.resilience.FaultInjector.on_device_alloc`).
        self.alloc_hook = alloc_hook
        #: Live device buffers flagged reusable: the first eviction rung of
        #: :meth:`alloc_degraded` reclaims them under memory pressure.
        self._idle: List[MemoryBuffer] = []
        #: Graceful-degradation ladder counters (each rung of
        #: :meth:`alloc_degraded`), folded into a RecoveryReport by chaos
        #: runs.
        self.degradation: Dict[str, int] = {
            "oom_detected": 0,
            "oom_evictions": 0,
            "oom_host_staged": 0,
        }

        self.pool = DeviceMemoryPool(memory_bytes)
        self.allocations: List[MemoryBuffer] = []
        self.registered_buffers: List[MemoryBuffer] = []
        self.transfers: List[GPUTransfer] = []
        self.launches: List[KernelLaunch] = []
        self.streams: Dict[int, GpuStream] = {}
        #: Per-kernel invocation counts and cumulative measured wall time, in
        #: the same shape as ``KernelCompiler.stats`` so
        #: :func:`repro.harness.kernel_stats_table` renders either.
        self.stats: Dict[str, object] = {"per_kernel": {}}
        # Cross-stream dependency horizons (see module docstring).
        self._last_h2d_done = 0.0
        self._last_launch_done = 0.0

    @property
    def allocated_bytes(self) -> int:
        return self.pool.in_use_bytes

    # ------------------------------------------------------------------
    # Streams
    # ------------------------------------------------------------------

    def stream(self, assignment: int = 0) -> GpuStream:
        """The physical stream for a stream assignment (modulo the device's
        stream count)."""
        index = int(assignment) % self.num_streams
        existing = self.streams.get(index)
        if existing is None:
            existing = self.streams[index] = GpuStream(index)
        return existing

    def _enqueue(self, assignment: int, kind: str, label: str,
                 duration: float, not_before: float = 0.0) -> StreamEvent:
        return self.stream(assignment).enqueue(kind, label, duration, not_before)

    def synchronize(self) -> float:
        """The modelled makespan: when the last stream drains."""
        return max((s.ready_at for s in self.streams.values()), default=0.0)

    def modelled_serial_seconds(self) -> float:
        """Total modelled event time if nothing overlapped."""
        return sum(e.duration for s in self.streams.values() for e in s.events)

    def modelled_overlap_seconds(self) -> float:
        """How much modelled time the streams hid by running concurrently."""
        return self.modelled_serial_seconds() - self.synchronize()

    # ------------------------------------------------------------------
    # Memory management
    # ------------------------------------------------------------------

    def alloc(self, shape: Sequence[int], element_type: TypeAttribute,
              label: str = "") -> MemoryBuffer:
        """Strict device allocation: a capacity miss (or an injected
        allocation failure) raises :class:`MemoryError` — the fail-fast
        baseline.  Callers wanting the recovery ladder use
        :meth:`alloc_degraded`."""
        if self.alloc_hook is not None and self.alloc_hook(label):
            raise MemoryError(
                f"injected device allocation failure for "
                f"'{label or '<unnamed>'}' on {self.name}"
            )
        buffer = MemoryBuffer.for_array(shape, element_type, space="device", label=label)
        self.pool.allocate(buffer)
        self.allocations.append(buffer)
        return buffer

    def alloc_degraded(self, shape: Sequence[int], element_type: TypeAttribute,
                       label: str = "") -> MemoryBuffer:
        """Device allocation with the graceful-degradation ladder.

        Rung 0 is a plain :meth:`alloc`.  On OOM (real or injected): rung 1
        evicts idle pool buffers and retries on device; rung 2 stages the
        buffer in registered host memory instead — the kernel still runs
        (host-space arguments drag their data across PCIe on demand at every
        launch, visible in the transfer stats), and because host staging
        zero-fills exactly like a device allocation the computed results
        stay bitwise identical.  Every rung taken is counted in
        ``self.degradation``.
        """
        try:
            return self.alloc(shape, element_type, label=label)
        except MemoryError:
            self.degradation["oom_detected"] += 1
        if self.evict_idle() > 0:
            try:
                return self.alloc(shape, element_type, label=label)
            except MemoryError:
                self.degradation["oom_detected"] += 1
        staged = MemoryBuffer.for_array(shape, element_type, space="host",
                                        label=label or "oom_staged")
        self.host_register(staged)
        self.degradation["oom_host_staged"] += 1
        return staged

    def mark_idle(self, buffer: MemoryBuffer) -> None:
        """Flag a live device buffer as reusable: it stays allocated (and
        keeps its contents) but may be evicted by :meth:`alloc_degraded`
        under memory pressure."""
        if buffer not in self._idle:
            self._idle.append(buffer)

    def mark_busy(self, buffer: MemoryBuffer) -> None:
        """Withdraw a buffer from the eviction candidates."""
        if buffer in self._idle:
            self._idle.remove(buffer)

    def evict_idle(self) -> int:
        """Free every idle device buffer; returns the bytes reclaimed."""
        reclaimed = 0
        evicted, self._idle = self._idle, []
        for buffer in evicted:
            freed = self.dealloc(buffer)
            reclaimed += freed
            if freed:
                self.degradation["oom_evictions"] += 1
        return reclaimed

    def dealloc(self, buffer: MemoryBuffer) -> int:
        """Free a device buffer, returning its bytes to the accounting pool;
        returns the number of bytes reclaimed.  Host-staged buffers from the
        degradation ladder are unregistered instead (they never held pool
        bytes)."""
        if buffer.registered and buffer.space == "host":
            self.host_unregister(buffer)
        if buffer in self._idle:
            self._idle.remove(buffer)
        reclaimed = self.pool.release(buffer)
        if buffer in self.allocations:
            self.allocations.remove(buffer)
        return reclaimed

    def memcpy(self, dst: MemoryBuffer, src: MemoryBuffer,
               stream: int = 0) -> None:
        np.copyto(dst.data, src.data)
        if dst.space == "device" and src.space == "host":
            self.transfers.append(GPUTransfer("h2d", src.nbytes))
            event = self._enqueue(stream, "h2d", dst.label or src.label,
                                  src.nbytes / self.pcie_bandwidth)
            self._last_h2d_done = max(self._last_h2d_done, event.end)
        elif dst.space == "host" and src.space == "device":
            self.transfers.append(GPUTransfer("d2h", src.nbytes))
            # Results cannot leave the device before the compute producing
            # them has finished.
            self._enqueue(stream, "d2h", dst.label or src.label,
                          src.nbytes / self.pcie_bandwidth,
                          not_before=self._last_launch_done)
        else:
            # device-to-device copies are free of PCIe traffic but still
            # occupy HBM bandwidth on their stream.
            self._enqueue(stream, "d2d", dst.label or src.label,
                          src.nbytes / self.memory_bandwidth)

    def host_register(self, buffer: MemoryBuffer) -> None:
        buffer.registered = True
        if buffer not in self.registered_buffers:
            self.registered_buffers.append(buffer)
        self.transfers.append(GPUTransfer("h2d", 0, reason="register"))

    def host_unregister(self, buffer: MemoryBuffer) -> None:
        buffer.registered = False
        if buffer in self.registered_buffers:
            self.registered_buffers.remove(buffer)

    # ------------------------------------------------------------------
    # Kernel execution accounting
    # ------------------------------------------------------------------

    def record_launch(self, kernel: str, grid: Sequence[int], block: Sequence[int],
                      arg_buffers: Sequence[MemoryBuffer] = (),
                      stream: int = 0) -> KernelLaunch:
        launch = KernelLaunch(kernel, tuple(grid), tuple(block),
                              stream=int(stream) % self.num_streams)
        on_demand_bytes = 0
        for buffer in arg_buffers:
            launch.args_nbytes += buffer.nbytes
            if buffer.space == "host":
                # A kernel touching registered / paged host memory drags the
                # data across PCIe on demand — both directions, every launch,
                # which is exactly why the paper's initial strategy was slow.
                self.transfers.append(
                    GPUTransfer("h2d", buffer.nbytes, reason="on_demand")
                )
                self.transfers.append(
                    GPUTransfer("d2h", buffer.nbytes, reason="on_demand")
                )
                on_demand_bytes += 2 * buffer.nbytes
        self.launches.append(launch)
        per_kernel: Dict[str, Dict[str, float]] = self.stats["per_kernel"]  # type: ignore[assignment]
        entry = per_kernel.setdefault(kernel, {"invocations": 0, "seconds": 0.0})
        entry["invocations"] += 1
        # Timeline: on-demand paging serialises with the launch on its own
        # stream (it is synchronous paging, not an async prefetch), and the
        # launch cannot start before explicitly staged data has landed.
        if on_demand_bytes:
            self._enqueue(stream, "h2d", f"{kernel}:on_demand",
                          on_demand_bytes / self.pcie_bandwidth)
        modelled = self.kernel_launch_latency + \
            launch.args_nbytes / self.memory_bandwidth
        event = self._enqueue(stream, "launch", kernel, modelled,
                              not_before=self._last_h2d_done)
        self._last_launch_done = max(self._last_launch_done, event.end)
        return launch

    def finish_launch(self, launch: KernelLaunch, seconds: float) -> None:
        """Attach the measured wall time of a launch's execution."""
        launch.seconds += seconds
        per_kernel: Dict[str, Dict[str, float]] = self.stats["per_kernel"]  # type: ignore[assignment]
        entry = per_kernel.setdefault(launch.kernel,
                                      {"invocations": 0, "seconds": 0.0})
        entry["seconds"] += seconds

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def transferred_bytes(self, direction: Optional[str] = None,
                          reason: Optional[str] = None) -> int:
        total = 0
        for t in self.transfers:
            if direction is not None and t.direction != direction:
                continue
            if reason is not None and t.reason != reason:
                continue
            total += t.nbytes
        return total

    def transfer_time(self) -> float:
        """Modelled PCIe time for every recorded transfer."""
        return sum(t.nbytes for t in self.transfers) / self.pcie_bandwidth

    def reset_statistics(self) -> None:
        self.transfers.clear()
        self.launches.clear()
        self.streams.clear()
        self.stats["per_kernel"] = {}
        self._last_h2d_done = 0.0
        self._last_launch_done = 0.0

    def summary(self) -> Dict[str, object]:
        per_kernel: Dict[str, Dict[str, float]] = self.stats["per_kernel"]  # type: ignore[assignment]
        return {
            "launches": len(self.launches),
            "h2d_bytes": self.transferred_bytes("h2d"),
            "d2h_bytes": self.transferred_bytes("d2h"),
            "on_demand_bytes": self.transferred_bytes(reason="on_demand"),
            "allocated_bytes": self.allocated_bytes,
            "peak_allocated_bytes": self.pool.peak_bytes,
            "launch_seconds": sum(l.seconds for l in self.launches),
            "kernel_invocations": {
                name: int(entry["invocations"]) for name, entry in per_kernel.items()
            },
            "streams": len(self.streams),
            "modelled_span_seconds": self.synchronize(),
            "modelled_overlap_seconds": self.modelled_overlap_seconds(),
            "degradation": dict(self.degradation),
        }


__all__ = [
    "SimulatedGPU",
    "GPUTransfer",
    "KernelLaunch",
    "GpuStream",
    "StreamEvent",
    "DeviceMemoryPool",
]
