"""Runtime memory model used by the interpreter.

SSA values of reference-like types (``!fir.ref``, ``!fir.heap``,
``!fir.llvm_ptr``, ``memref``) evaluate to :class:`MemoryBuffer` objects
wrapping numpy storage; ``fir.coordinate_of`` produces :class:`ElementRef`
views of a single element.  Device-resident buffers used by the simulated GPU
carry a ``space`` tag so transfers can be accounted.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from ..ir.types import FloatType, IndexType, IntegerType, MemRefType, TypeAttribute
from ..dialects import fir


def numpy_dtype_for(type: TypeAttribute) -> np.dtype:
    """Map an IR element type to the numpy dtype used for storage."""
    if isinstance(type, FloatType):
        return np.dtype(f"float{type.width}") if type.width >= 32 else np.dtype("float16")
    if isinstance(type, IntegerType):
        if type.width == 1:
            return np.dtype(bool)
        return np.dtype(f"int{max(type.width, 8)}")
    if isinstance(type, IndexType):
        return np.dtype("int64")
    raise TypeError(f"no numpy dtype for IR type {type.print()}")


class MemoryBuffer:
    """A block of storage: a scalar cell or an n-dimensional array.

    ``space`` is ``"host"`` or ``"device"``; the simulated GPU runtime uses it
    to track where data lives and account transfers.
    """

    __slots__ = ("data", "space", "label", "registered")

    def __init__(self, data: np.ndarray, space: str = "host", label: str = ""):
        self.data = data
        self.space = space
        self.label = label
        #: Set when ``gpu.host_register`` has been applied to this buffer.
        self.registered = False

    # -- construction -----------------------------------------------------

    @staticmethod
    def for_scalar(type: TypeAttribute, value: Union[int, float] = 0,
                   label: str = "") -> "MemoryBuffer":
        return MemoryBuffer(np.full((), value, dtype=numpy_dtype_for(type)), label=label)

    @staticmethod
    def for_array(shape: Sequence[int], element_type: TypeAttribute,
                  space: str = "host", label: str = "") -> "MemoryBuffer":
        data = np.zeros(tuple(int(s) for s in shape), dtype=numpy_dtype_for(element_type),
                        order="F")
        return MemoryBuffer(data, space=space, label=label)

    @staticmethod
    def wrap(array: np.ndarray, space: str = "host", label: str = "") -> "MemoryBuffer":
        return MemoryBuffer(np.asarray(array), space=space, label=label)

    # -- scalar access ------------------------------------------------------

    @property
    def is_scalar(self) -> bool:
        return self.data.ndim == 0

    def load(self):
        if not self.is_scalar:
            raise TypeError("load on an array buffer requires an ElementRef")
        return self.data[()]

    def store(self, value) -> None:
        if not self.is_scalar:
            raise TypeError("store on an array buffer requires an ElementRef")
        self.data[()] = value

    # -- misc -----------------------------------------------------------------

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)

    def copy_from(self, other: "MemoryBuffer") -> None:
        np.copyto(self.data, other.data)

    def __repr__(self) -> str:  # pragma: no cover
        kind = "scalar" if self.is_scalar else f"array{self.data.shape}"
        return f"<MemoryBuffer {self.label or '?'} {kind} on {self.space}>"


class ElementRef:
    """The address of one element of an array buffer."""

    __slots__ = ("buffer", "indices")

    def __init__(self, buffer: MemoryBuffer, indices: Tuple[int, ...]):
        self.buffer = buffer
        self.indices = tuple(int(i) for i in indices)

    def load(self):
        return self.buffer.data[self.indices]

    def store(self, value) -> None:
        self.buffer.data[self.indices] = value

    def __repr__(self) -> str:  # pragma: no cover
        return f"<ElementRef {self.buffer.label or '?'}{list(self.indices)}>"


Reference = Union[MemoryBuffer, ElementRef]


def load_reference(ref: Reference):
    """Load through either a scalar buffer or an element reference."""
    return ref.load()


def store_reference(ref: Reference, value) -> None:
    ref.store(value)


__all__ = [
    "MemoryBuffer",
    "ElementRef",
    "Reference",
    "numpy_dtype_for",
    "load_reference",
    "store_reference",
]
