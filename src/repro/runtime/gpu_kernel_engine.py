"""Vectorized execution engine for outlined GPU kernels.

``convert-parallel-loops-to-gpu`` outlines each ``scf.parallel`` sweep into a
``gpu.func`` whose body recomputes, per thread, the same few lines: a lattice
coordinate ``block_id*block_dim + thread_id`` per dimension, the loop's lower
bound added as an offset, a bounds guard ``iv < upper`` and-ed across
dimensions, and the element-wise loop body under one ``scf.if``.  The scalar
interpreter executes that body once per thread of the ``grid × block``
lattice — millions of Python-level op dispatches per launch.

This module compiles the *whole launch* instead: the prologue is evaluated
symbolically (each induction value becomes a unit-coefficient affine
``lattice[d] + offset``, each guard an upper bound on a lattice dimension),
and the guarded body is translated by the same
:class:`repro.runtime.kernel_compiler._BodyTranslator` that powers the
loop-nest and apply kernels, producing one NumPy whole-array function per
kernel.  At launch time the iteration domain is the lattice clipped by the
guards — exactly the region the per-thread guard admits — so one call of the
compiled function computes what ``grid × block`` scalar threads would.

Caching, guards and the oracle follow the kernel-compiler contract:

* kernels are cached by the **structural hash of the gpu.func** (not the
  launch site — two launches of structurally identical kernels, even across
  modules, share one compiled function), stored through
  :meth:`KernelCompiler.compile_cached` in the same structural cache and
  stats counters as every other kernel kind;
* every launch re-validates the runtime **bounds/alias guards**
  (:meth:`CompiledKernel.guards_pass`) against the actual argument buffers —
  aliased store/load arguments or out-of-window accesses fall back to the
  per-thread scalar path, counted in
  ``Interpreter.stats["gpu_launch_fallbacks"]``;
* the per-thread scalar interpreter remains the **oracle**: execution mode
  ``"crosscheck"`` replays every vectorized launch through it and requires
  bitwise agreement.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..ir.operation import Operation
from .kernel_compiler import (
    BoundKernel,
    CompiledKernel,
    KernelCompiler,
    KernelUnsupported,
    _Affine,
    _BodyTranslator,
    _Const,
    _assemble,
    structural_hash,
)

_DIM_INDEX = {"x": 0, "y": 1, "z": 2}


class _IdSym:
    """A raw gpu id/dim query (thread_id, block_id, block_dim, grid_dim)."""

    __slots__ = ("kind", "dim")

    def __init__(self, kind: str, dim: int):
        self.kind = kind
        self.dim = dim


class _BaseSym:
    """``block_id[d] * block_dim[d]`` — the per-block lattice base."""

    __slots__ = ("dim",)

    def __init__(self, dim: int):
        self.dim = dim


class _GuardSym:
    """A boolean guard: conjunction of ``lattice[d] + offset < upper``
    constraints, held as the tightest upper bound per dimension (in lattice
    coordinates)."""

    __slots__ = ("uppers",)

    def __init__(self, uppers: Dict[int, int]):
        self.uppers = uppers

    def merged(self, other: "_GuardSym") -> "_GuardSym":
        uppers = dict(self.uppers)
        for dim, bound in other.uppers.items():
            uppers[dim] = min(uppers.get(dim, bound), bound)
        return _GuardSym(uppers)


class GpuLaunchKernel(CompiledKernel):
    """A compiled gpu.func: a whole-lattice NumPy sweep plus the per-dimension
    guard bounds needed to clip the ``grid × block`` lattice at launch time."""

    def __init__(self, *args, upper_limits: Tuple[Optional[int], ...] = (),
                 **kwargs):
        super().__init__(*args, **kwargs)
        #: Tightest ``iv < upper`` guard per lattice dimension (lattice
        #: coordinates; None when a dimension carries no guard).
        self.upper_limits = tuple(upper_limits)

    def launch_domain(self, grid, block) -> Tuple[List[int], List[int]]:
        """The effective iteration domain of one launch: the thread lattice
        ``[0, grid*block)`` clipped by the compiled guards."""
        lowers = [0] * self.rank
        uppers = []
        for dim in range(self.rank):
            extent = int(grid[dim]) * int(block[dim])
            limit = self.upper_limits[dim] if dim < len(self.upper_limits) else None
            uppers.append(extent if limit is None else min(extent, limit))
        return lowers, uppers


def compile_gpu_func(func_op: Operation) -> GpuLaunchKernel:
    """Compile a ``gpu.func`` produced by kernel outlining into one
    whole-lattice NumPy sweep.

    Raises :class:`KernelUnsupported` for anything outside the outlined shape
    (barriers, unguarded bodies, non-affine indexing, …); the caller falls
    back to the per-thread scalar interpreter.
    """
    if func_op.name != "gpu.func":
        raise KernelUnsupported(f"'{func_op.name}' is not a gpu.func")
    body = func_op.regions[0].block

    # -- pass 1: symbolic prologue ------------------------------------------
    symbols: Dict[int, object] = {}
    guarded: Optional[Operation] = None
    guard: Optional[_GuardSym] = None
    dims_seen = -1

    def sym(value) -> object:
        return symbols.get(id(value))

    for op in body.ops:
        name = op.name
        if name in ("gpu.thread_id", "gpu.block_id", "gpu.block_dim",
                    "gpu.grid_dim"):
            dim = _DIM_INDEX[op.get_attr("dimension").data]  # type: ignore[union-attr]
            dims_seen = max(dims_seen, dim)
            symbols[id(op.results[0])] = _IdSym(name.split(".")[1], dim)
            continue
        if name == "arith.constant":
            attr = op.get_attr("value")
            symbols[id(op.results[0])] = _Const(int(attr.value))  # type: ignore[union-attr]
            continue
        if name == "arith.muli":
            a, b = sym(op.operands[0]), sym(op.operands[1])
            if isinstance(a, _IdSym) and isinstance(b, _IdSym) and \
                    a.dim == b.dim and {a.kind, b.kind} == {"block_id", "block_dim"}:
                symbols[id(op.results[0])] = _BaseSym(a.dim)
                continue
            if isinstance(a, _Const) and isinstance(b, _Const):
                symbols[id(op.results[0])] = _Const(a.value * b.value)
                continue
            raise KernelUnsupported("unrecognised index product in gpu.func")
        if name in ("arith.addi", "arith.subi"):
            a, b = sym(op.operands[0]), sym(op.operands[1])
            sign = 1 if name == "arith.addi" else -1
            if name == "arith.addi" and isinstance(a, _BaseSym) and \
                    isinstance(b, _IdSym) and b.kind == "thread_id" and b.dim == a.dim:
                symbols[id(op.results[0])] = _Affine(a.dim, 0)
                continue
            if isinstance(a, _Affine) and isinstance(b, _Const):
                symbols[id(op.results[0])] = _Affine(a.dim, a.offset + sign * b.value)
                continue
            if name == "arith.addi" and isinstance(a, _Const) and isinstance(b, _Affine):
                symbols[id(op.results[0])] = _Affine(b.dim, b.offset + a.value)
                continue
            if isinstance(a, _Const) and isinstance(b, _Const):
                symbols[id(op.results[0])] = _Const(a.value + sign * b.value)
                continue
            raise KernelUnsupported("unrecognised index sum in gpu.func")
        if name == "arith.cmpi":
            pred = op.get_attr("predicate").data  # type: ignore[union-attr]
            a, b = sym(op.operands[0]), sym(op.operands[1])
            if pred == "slt" and isinstance(a, _Affine) and isinstance(b, _Const):
                symbols[id(op.results[0])] = _GuardSym({a.dim: b.value - a.offset})
                continue
            raise KernelUnsupported("unrecognised bounds guard in gpu.func")
        if name == "arith.andi":
            a, b = sym(op.operands[0]), sym(op.operands[1])
            if isinstance(a, _GuardSym) and isinstance(b, _GuardSym):
                symbols[id(op.results[0])] = a.merged(b)
                continue
            raise KernelUnsupported("unrecognised guard conjunction in gpu.func")
        if name == "scf.if":
            if guarded is not None:
                raise KernelUnsupported("gpu.func with multiple guarded regions")
            condition = sym(op.operands[0])
            if not isinstance(condition, _GuardSym):
                raise KernelUnsupported("gpu.func guard is not a bounds check")
            if op.results:
                raise KernelUnsupported("guarded region yields values")
            if len(op.regions) > 1 and op.regions[1].blocks and \
                    op.regions[1].block.ops:
                raise KernelUnsupported("guarded region has an else branch")
            guarded = op
            guard = condition
            continue
        if name == "gpu.return":
            continue
        raise KernelUnsupported(f"operation '{name}' in a gpu.func prologue")

    if guarded is None or guard is None:
        raise KernelUnsupported("gpu.func has no guarded body")
    rank = dims_seen + 1
    if rank < 1:
        raise KernelUnsupported("gpu.func uses no lattice dimensions")

    # -- pass 2: translate the guarded body ---------------------------------
    translator = _BodyTranslator(rank)
    translator.values.update(
        (key, value) for key, value in symbols.items()
        if isinstance(value, (_Affine, _Const))
    )
    # Kernel block args are the externals, in operand order of the launch.
    for i, arg in enumerate(body.args):
        translator.external_slots[id(arg)] = i
        translator.external_paths.append(("root", i))

    then_block = guarded.regions[0].block
    for op_index, body_op in enumerate(then_block.ops):
        translator.current_body_op = (body_op, op_index)
        name = body_op.name
        if name == "scf.yield":
            if body_op.operands:
                raise KernelUnsupported("guarded body yields values")
            continue
        if name == "memref.load":
            axes = translator.affine_indices(body_op.operands[1:])
            slot = translator.external_slots.get(id(body_op.operands[0]))
            if slot is None:
                raise KernelUnsupported("load from a non-argument memref")
            translator.emit_load(body_op.results[0], slot, axes)
            continue
        if name == "memref.store":
            axes = translator.affine_indices(body_op.operands[2:])
            if len(axes) != rank:
                raise KernelUnsupported("store does not cover every lattice dimension")
            slot = translator.external_slots.get(id(body_op.operands[1]))
            if slot is None:
                raise KernelUnsupported("store to a non-argument memref")
            translator.emit_store(body_op.operands[0], slot, axes)
            continue
        translator.translate_op(body_op)

    if not translator.stores:
        raise KernelUnsupported("gpu.func body performs no stores")

    fn, source = _assemble("_gpu_kernel", translator.lines)
    upper_limits = tuple(guard.uppers.get(d) for d in range(rank))
    return GpuLaunchKernel(
        fn, source, rank, translator.loads, translator.stores,
        translator.external_paths, upper_limits=upper_limits,
    )


class GpuKernelEngine:
    """Per-interpreter facade over gpu.func compilation.

    Mirrors :class:`KernelCompiler`'s two cache levels: an identity memo on
    the launch op (one dict probe per sweep) and the compiler's structural
    cache keyed on the **gpu.func body** hash — the launch site's grid/block
    attributes are runtime geometry, not kernel identity, so reshaped
    launches of one kernel share a compiled function.
    """

    def __init__(self, kernels: KernelCompiler):
        self.kernels = kernels
        self._memo: Dict[int, Tuple[Operation, Optional[BoundKernel]]] = {}

    def kernel_for(self, launch_op: Operation,
                   func_op: Operation) -> Optional[BoundKernel]:
        """The compiled whole-lattice kernel bound to one launch site, or
        None when the gpu.func cannot be vectorized."""
        entry = self._memo.get(id(launch_op))
        if entry is not None:
            self.kernels.stats["cache_hits"] += 1
            return entry[1]
        key = structural_hash(func_op)
        kernel = self.kernels.compile_cached(key,
                                             lambda: compile_gpu_func(func_op))
        bound = None
        if isinstance(kernel, GpuLaunchKernel):
            if not kernel.label:
                name_attr = func_op.get_attr_or_none("sym_name")
                name = getattr(name_attr, "data", "gpu.func")
                kernel.label = f"gpu.func:{name}@{key[:10]}"
            if len(launch_op.operands) >= len(kernel.external_paths):
                bound = BoundKernel(kernel, list(launch_op.operands))
        self._memo[id(launch_op)] = (launch_op, bound)
        return bound


__all__ = [
    "GpuKernelEngine",
    "GpuLaunchKernel",
    "compile_gpu_func",
]
