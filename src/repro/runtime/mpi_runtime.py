"""Simulated MPI: in-process ranks exchanging numpy data.

The real system runs one MPI process per core on ARCHER2.  Offline we simulate
a communicator whose ranks live in the same Python process (optionally on
separate threads): sends copy data into a mailbox, receives block until a
matching message is available, and every message is accounted (count + bytes)
so the distributed-memory cost model can be driven by observed communication.

The communicator can also run *resiliently*: every message carries a
per-channel sequence number and a crc32 checksum, the sender keeps a pristine
copy of in-flight messages in an outbox, and a receive that times out a
backoff slice NACKs the channel — releasing artificially delayed messages and
retransmitting the missing sequence number from the outbox.  Duplicates are
deduplicated by sequence number and corrupted payloads are detected by
checksum and retransmitted.  Faults are injected deterministically through a
``fault_hook`` (see :class:`repro.resilience.FaultInjector`); with no hook
and ``resilient=False`` the legacy fail-fast behaviour is bit-for-bit
unchanged.
"""

from __future__ import annotations

import threading
import time
import zlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np


class MPIError(Exception):
    """Raised on invalid communicator usage (bad rank, missing message, ...)."""


class MPIAbort(MPIError):
    """The communicator was aborted (a peer rank crashed); receivers blocked
    on the dead rank raise this immediately instead of waiting out their
    timeout."""


@dataclass
class Message:
    source: int
    dest: int
    tag: int
    payload: np.ndarray


@dataclass
class _Envelope:
    """A message in flight: payload plus the metadata recovery needs."""

    seq: int
    payload: np.ndarray
    checksum: int


@dataclass
class PendingReceive:
    """An irecv that has been posted but not yet completed."""

    source: int
    tag: int
    completion: Callable[[np.ndarray], None]
    done: bool = False


def _checksum(data: np.ndarray) -> int:
    return zlib.crc32(data.tobytes())


def _corrupted_copy(data: np.ndarray) -> np.ndarray:
    """A copy with one byte flipped (crc32 always catches a single-byte
    error, so the receiver is guaranteed to detect it)."""
    raw = bytearray(data.tobytes())
    if not raw:
        return np.array(data, copy=True)
    raw[0] ^= 0xFF
    return np.frombuffer(bytes(raw), dtype=data.dtype).reshape(data.shape)


class SimulatedCommunicator:
    """An MPI_COMM_WORLD equivalent for in-process ranks."""

    def __init__(self, size: int, timeout: float = 30.0, *,
                 fault_hook: Optional[Callable[[int, int, int],
                                               Optional[str]]] = None,
                 resilient: bool = False,
                 max_receive_retries: int = 8,
                 backoff_initial: float = 0.005,
                 backoff_cap: float = 0.05):
        if size < 1:
            raise MPIError("communicator size must be >= 1")
        if timeout <= 0:
            raise MPIError(f"timeout must be positive, got {timeout!r}")
        self.size = size
        #: Default blocking-receive / barrier timeout in seconds.  Tests that
        #: provoke deadlocks shrink this so a missing send surfaces its
        #: diagnostic in milliseconds instead of stalling CI for 30 s.
        self.timeout = timeout
        self._fault_hook = fault_hook
        self._resilient = resilient or fault_hook is not None
        self._max_receive_retries = max_receive_retries
        self._backoff_initial = backoff_initial
        self._backoff_cap = backoff_cap
        self._mailboxes: Dict[Tuple[int, int, int], List[_Envelope]] = {}
        #: Messages a "delay" fault is holding back, released on NACK.
        self._delayed: Dict[Tuple[int, int, int], List[_Envelope]] = {}
        #: Pristine copies of in-flight sends, keyed by (channel, seq), kept
        #: until the receiver acknowledges the sequence number by consuming
        #: it — the source for NACK-driven retransmission.
        self._outbox: Dict[Tuple[Tuple[int, int, int], int], np.ndarray] = {}
        self._next_send_seq: Dict[Tuple[int, int, int], int] = {}
        self._next_recv_seq: Dict[Tuple[int, int, int], int] = {}
        self._lock = threading.Condition()
        self.message_count = 0
        self.bytes_sent = 0
        self._barrier_count = 0
        self._barrier_generation = 0
        self._barrier_ranks: List[int] = []
        self._aborted: Optional[str] = None
        #: Recovery-mechanism counters, folded into a RecoveryReport by the
        #: resilient executor / chaos runner.
        self.stats: Dict[str, int] = {
            "receive_retries": 0,
            "retransmissions": 0,
            "duplicates_dropped": 0,
            "corruptions_detected": 0,
            "delays_released": 0,
        }

    # ------------------------------------------------------------------
    # Abort signalling
    # ------------------------------------------------------------------

    @property
    def aborted(self) -> Optional[str]:
        return self._aborted

    def abort(self, reason: str) -> None:
        """Fail-fast broadcast: wake every blocked receive/barrier so the
        whole fleet unwinds immediately instead of timing out one rank at a
        time (the executor then rolls back to the last checkpoint)."""
        with self._lock:
            if self._aborted is None:
                self._aborted = reason
            self._lock.notify_all()

    def _raise_if_aborted_locked(self) -> None:
        if self._aborted is not None:
            raise MPIAbort(f"communicator aborted: {self._aborted}")

    # ------------------------------------------------------------------
    # Point to point
    # ------------------------------------------------------------------

    def send(self, source: int, dest: int, tag: int, payload: np.ndarray) -> None:
        self._check_rank(source)
        self._check_rank(dest)
        data = np.array(payload, copy=True)
        fault = self._fault_hook(source, dest, tag) if self._fault_hook else None
        with self._lock:
            self._raise_if_aborted_locked()
            key = (source, dest, tag)
            seq = self._next_send_seq.get(key, 0)
            self._next_send_seq[key] = seq + 1
            checksum = _checksum(data)
            if self._resilient:
                self._outbox[(key, seq)] = data
            # Logical sends are accounted once; retransmissions and
            # duplicates are recovery traffic tracked in self.stats so the
            # observed communication volume matches the fault-free run.
            self.message_count += 1
            self.bytes_sent += int(data.nbytes)
            envelope = _Envelope(seq, data, checksum)
            queue = self._mailboxes.setdefault(key, [])
            if fault == "drop":
                pass  # the outbox copy survives for NACK retransmission
            elif fault == "delay":
                self._delayed.setdefault(key, []).append(envelope)
            elif fault == "duplicate":
                queue.append(envelope)
                queue.append(_Envelope(seq, np.array(data, copy=True),
                                       checksum))
            elif fault == "corrupt":
                queue.append(_Envelope(seq, _corrupted_copy(data), checksum))
            else:
                queue.append(envelope)
            self._lock.notify_all()

    def receive(self, source: int, dest: int, tag: int,
                timeout: Optional[float] = None) -> np.ndarray:
        self._check_rank(source)
        self._check_rank(dest)
        if timeout is None:
            timeout = self.timeout
        key = (source, dest, tag)
        if self._resilient:
            return self._receive_resilient(key, timeout)
        with self._lock:
            deadline_ok = self._lock.wait_for(
                lambda: self._mailboxes.get(key) or self._aborted is not None,
                timeout=timeout,
            )
            self._raise_if_aborted_locked()
            if not deadline_ok:
                raise MPIError(self._receive_timeout_message_locked(
                    key, timeout))
            return self._mailboxes[key].pop(0).payload

    def _receive_resilient(self, key: Tuple[int, int, int],
                           timeout: float) -> np.ndarray:
        """Receive with dedup, checksum verification, and NACK recovery.

        The loop scans the mailbox for the expected sequence number: stale
        duplicates are dropped, a checksum mismatch discards the payload and
        retransmits from the outbox, and a missing message waits one backoff
        slice before NACKing the channel (release delayed + retransmit).
        Backoff doubles up to a cap; the overall ``timeout`` still bounds the
        whole receive.
        """
        deadline = time.monotonic() + timeout
        backoff = self._backoff_initial
        retries = 0
        with self._lock:
            expected = self._next_recv_seq.get(key, 0)
            while True:
                self._raise_if_aborted_locked()
                queue = self._mailboxes.get(key, [])
                kept: List[_Envelope] = []
                found: Optional[_Envelope] = None
                for env in queue:
                    if env.seq < expected:
                        self.stats["duplicates_dropped"] += 1
                    elif env.seq == expected and found is None:
                        found = env
                    else:
                        kept.append(env)
                queue[:] = kept
                if found is not None:
                    if _checksum(found.payload) != found.checksum:
                        self.stats["corruptions_detected"] += 1
                        self._retransmit_locked(key, expected)
                        continue  # rescan: the pristine copy is queued now
                    self._next_recv_seq[key] = expected + 1
                    self._ack_locked(key, expected)
                    return found.payload
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise MPIError(self._receive_timeout_message_locked(
                        key, timeout))
                # Wake only on the *expected* seq: a later-seq arrival (its
                # predecessor dropped or delayed) must not satisfy the wait,
                # or the NACK that recovers the gap would never fire.
                got = self._lock.wait_for(
                    lambda: self._aborted is not None
                    or any(e.seq == expected
                           for e in self._mailboxes.get(key, ())),
                    timeout=min(backoff, remaining),
                )
                if not got and retries < self._max_receive_retries:
                    # The cap bounds *recovery* rounds, not honest waiting:
                    # once NACKs are exhausted we keep waiting quietly until
                    # the overall timeout, so a slow-but-healthy sender is
                    # never declared dead by the backoff schedule alone.
                    retries += 1
                    self.stats["receive_retries"] += 1
                    self._nack_locked(key, expected)
                    backoff = min(backoff * 2, self._backoff_cap)

    def _ack_locked(self, key: Tuple[int, int, int], seq: int) -> None:
        """Consuming ``seq`` acknowledges it: drop outbox copies up to it."""
        for outbox_key in [k for k in self._outbox
                           if k[0] == key and k[1] <= seq]:
            del self._outbox[outbox_key]

    def _nack_locked(self, key: Tuple[int, int, int], seq: int) -> None:
        """The receiver gave up a backoff slice waiting for ``seq``: release
        any artificially delayed messages and, if the expected message is
        still absent, retransmit it from the sender's outbox."""
        held = self._delayed.pop(key, None)
        if held:
            self._mailboxes.setdefault(key, []).extend(held)
            self.stats["delays_released"] += len(held)
        if not any(e.seq == seq for e in self._mailboxes.get(key, ())):
            self._retransmit_locked(key, seq)

    def _retransmit_locked(self, key: Tuple[int, int, int], seq: int) -> None:
        pristine = self._outbox.get((key, seq))
        if pristine is not None:
            self._mailboxes.setdefault(key, []).append(
                _Envelope(seq, np.array(pristine, copy=True),
                          _checksum(pristine)))
            self.stats["retransmissions"] += 1

    def _receive_timeout_message_locked(self, key: Tuple[int, int, int],
                                        timeout: float) -> str:
        # A deadlocked multi-rank run is diagnosable only if the error says
        # what *was* in flight: snapshot every non-empty mailbox so the
        # missing/mis-tagged send stands out.
        source, dest, tag = key
        pending = self._pending_snapshot_locked()
        return (
            f"receive timed out after {timeout:g}s: rank {dest} "
            f"waiting for message from rank {source} with tag {tag}; "
            f"pending messages: {pending if pending else 'none'}"
        )

    def _pending_snapshot_locked(self) -> Dict[str, int]:
        return {
            f"src={s} dest={d} tag={t}": len(queue)
            for (s, d, t), queue in sorted(self._mailboxes.items())
            if queue
        }

    def try_receive(self, source: int, dest: int, tag: int) -> Optional[np.ndarray]:
        key = (source, dest, tag)
        with self._lock:
            queue = self._mailboxes.get(key)
            if not self._resilient:
                if queue:
                    return queue.pop(0).payload
                return None
            expected = self._next_recv_seq.get(key, 0)
            while queue and queue[0].seq < expected:
                queue.pop(0)
                self.stats["duplicates_dropped"] += 1
            if queue and queue[0].seq == expected:
                env = queue.pop(0)
                if _checksum(env.payload) == env.checksum:
                    self._next_recv_seq[key] = expected + 1
                    self._ack_locked(key, expected)
                    return env.payload
                self.stats["corruptions_detected"] += 1
                self._retransmit_locked(key, expected)
        return None

    # ------------------------------------------------------------------
    # Collectives
    # ------------------------------------------------------------------

    def barrier(self, rank: int) -> None:
        with self._lock:
            self._raise_if_aborted_locked()
            generation = self._barrier_generation
            self._barrier_count += 1
            self._barrier_ranks.append(rank)
            if self._barrier_count == self.size:
                self._barrier_count = 0
                self._barrier_generation += 1
                self._barrier_ranks = []
                self._lock.notify_all()
            else:
                arrived = self._lock.wait_for(
                    lambda: self._barrier_generation != generation
                    or self._aborted is not None,
                    timeout=self.timeout,
                )
                self._raise_if_aborted_locked()
                if not arrived:
                    waiting = self._barrier_count
                    arrived_ranks = sorted(self._barrier_ranks)
                    missing = sorted(set(range(self.size))
                                     - set(arrived_ranks))
                    pending = self._pending_snapshot_locked()
                    raise MPIError(
                        f"barrier timed out after {self.timeout:g}s: rank "
                        f"{rank} waiting with {waiting} of {self.size} ranks "
                        f"arrived (arrived: {arrived_ranks}; missing: "
                        f"{missing}); pending messages: "
                        f"{pending if pending else 'none'} — a rank "
                        "deadlocked or never reached the barrier"
                    )

    def allreduce(self, rank: int, value: float, op: str = "sum",
                  contributions: Optional[Dict[int, float]] = None) -> float:
        # A simplified allreduce used by sequential rank execution: the caller
        # provides all contributions (the lockstep executor gathers them).
        if contributions is None:
            return value
        values = list(contributions.values())
        if op == "sum":
            return float(np.sum(values))
        if op == "min":
            return float(np.min(values))
        if op == "max":
            return float(np.max(values))
        raise MPIError(f"unsupported allreduce op '{op}'")

    # ------------------------------------------------------------------

    def _check_rank(self, rank: int) -> None:
        if not (0 <= rank < self.size):
            raise MPIError(f"rank {rank} out of range for communicator of size {self.size}")


@dataclass
class CartesianDecomposition:
    """A block decomposition of an N-d global domain over a process grid.

    The paper decomposes the 3-D Gauss-Seidel domain over a 2-D process grid
    (§4.4); this helper supports any subset of decomposed dimensions.
    """

    global_shape: Tuple[int, ...]
    grid_shape: Tuple[int, ...]
    decomposed_dims: Tuple[int, ...]

    def __post_init__(self):
        if len(self.grid_shape) != len(self.decomposed_dims):
            raise MPIError("grid_shape and decomposed_dims must have equal length")

    @property
    def num_ranks(self) -> int:
        n = 1
        for p in self.grid_shape:
            n *= p
        return n

    def coords_of(self, rank: int) -> Tuple[int, ...]:
        coords = []
        remaining = rank
        for extent in reversed(self.grid_shape):
            coords.append(remaining % extent)
            remaining //= extent
        return tuple(reversed(coords))

    def rank_of(self, coords: Sequence[int]) -> int:
        rank = 0
        for coord, extent in zip(coords, self.grid_shape):
            if not (0 <= coord < extent):
                return -1
            rank = rank * extent + coord
        return rank

    def local_bounds(self, rank: int) -> List[Tuple[int, int]]:
        """Half-open [lb, ub) bounds of the sub-domain owned by ``rank``."""
        coords = self.coords_of(rank)
        bounds: List[Tuple[int, int]] = []
        for dim, extent in enumerate(self.global_shape):
            if dim in self.decomposed_dims:
                position = self.decomposed_dims.index(dim)
                parts = self.grid_shape[position]
                coord = coords[position]
                base = extent // parts
                remainder = extent % parts
                lb = coord * base + min(coord, remainder)
                size = base + (1 if coord < remainder else 0)
                bounds.append((lb, lb + size))
            else:
                bounds.append((0, extent))
        return bounds

    def neighbours(self, rank: int) -> Dict[Tuple[int, int], int]:
        """Map (decomposed dim, direction ±1) -> neighbour rank (or -1)."""
        coords = list(self.coords_of(rank))
        result: Dict[Tuple[int, int], int] = {}
        for position, dim in enumerate(self.decomposed_dims):
            for direction in (-1, +1):
                shifted = list(coords)
                shifted[position] += direction
                result[(dim, direction)] = self.rank_of(shifted)
        return result


__all__ = [
    "SimulatedCommunicator",
    "CartesianDecomposition",
    "Message",
    "MPIError",
    "MPIAbort",
]
