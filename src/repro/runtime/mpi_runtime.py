"""Simulated MPI: in-process ranks exchanging numpy data.

The real system runs one MPI process per core on ARCHER2.  Offline we simulate
a communicator whose ranks live in the same Python process (optionally on
separate threads): sends copy data into a mailbox, receives block until a
matching message is available, and every message is accounted (count + bytes)
so the distributed-memory cost model can be driven by observed communication.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np


class MPIError(Exception):
    """Raised on invalid communicator usage (bad rank, missing message, ...)."""


@dataclass
class Message:
    source: int
    dest: int
    tag: int
    payload: np.ndarray


@dataclass
class PendingReceive:
    """An irecv that has been posted but not yet completed."""

    source: int
    tag: int
    completion: Callable[[np.ndarray], None]
    done: bool = False


class SimulatedCommunicator:
    """An MPI_COMM_WORLD equivalent for in-process ranks."""

    def __init__(self, size: int, timeout: float = 30.0):
        if size < 1:
            raise MPIError("communicator size must be >= 1")
        if timeout <= 0:
            raise MPIError(f"timeout must be positive, got {timeout!r}")
        self.size = size
        #: Default blocking-receive / barrier timeout in seconds.  Tests that
        #: provoke deadlocks shrink this so a missing send surfaces its
        #: diagnostic in milliseconds instead of stalling CI for 30 s.
        self.timeout = timeout
        self._mailboxes: Dict[Tuple[int, int, int], List[np.ndarray]] = {}
        self._lock = threading.Condition()
        self.message_count = 0
        self.bytes_sent = 0
        self._barrier_count = 0
        self._barrier_generation = 0

    # ------------------------------------------------------------------
    # Point to point
    # ------------------------------------------------------------------

    def send(self, source: int, dest: int, tag: int, payload: np.ndarray) -> None:
        self._check_rank(source)
        self._check_rank(dest)
        data = np.array(payload, copy=True)
        with self._lock:
            key = (source, dest, tag)
            self._mailboxes.setdefault(key, []).append(data)
            self.message_count += 1
            self.bytes_sent += int(data.nbytes)
            self._lock.notify_all()

    def receive(self, source: int, dest: int, tag: int,
                timeout: Optional[float] = None) -> np.ndarray:
        self._check_rank(source)
        self._check_rank(dest)
        if timeout is None:
            timeout = self.timeout
        key = (source, dest, tag)
        with self._lock:
            deadline_ok = self._lock.wait_for(
                lambda: self._mailboxes.get(key), timeout=timeout
            )
            if not deadline_ok:
                # A deadlocked multi-rank run is diagnosable only if the
                # error says what *was* in flight: snapshot every non-empty
                # mailbox so the missing/mis-tagged send stands out.
                pending = {
                    f"src={s} dest={d} tag={t}": len(queue)
                    for (s, d, t), queue in sorted(self._mailboxes.items())
                    if queue
                }
                raise MPIError(
                    f"receive timed out after {timeout:g}s: rank {dest} "
                    f"waiting for message from rank {source} with tag {tag}; "
                    f"pending messages: {pending if pending else 'none'}"
                )
            return self._mailboxes[key].pop(0)

    def try_receive(self, source: int, dest: int, tag: int) -> Optional[np.ndarray]:
        key = (source, dest, tag)
        with self._lock:
            queue = self._mailboxes.get(key)
            if queue:
                return queue.pop(0)
        return None

    # ------------------------------------------------------------------
    # Collectives
    # ------------------------------------------------------------------

    def barrier(self, rank: int) -> None:
        with self._lock:
            generation = self._barrier_generation
            self._barrier_count += 1
            if self._barrier_count == self.size:
                self._barrier_count = 0
                self._barrier_generation += 1
                self._lock.notify_all()
            else:
                arrived = self._lock.wait_for(
                    lambda: self._barrier_generation != generation,
                    timeout=self.timeout,
                )
                if not arrived:
                    waiting = self._barrier_count
                    raise MPIError(
                        f"barrier timed out after {self.timeout:g}s: rank "
                        f"{rank} waiting with {waiting} of {self.size} ranks "
                        "arrived — a rank deadlocked or never reached the "
                        "barrier"
                    )

    def allreduce(self, rank: int, value: float, op: str = "sum",
                  contributions: Optional[Dict[int, float]] = None) -> float:
        # A simplified allreduce used by sequential rank execution: the caller
        # provides all contributions (the lockstep executor gathers them).
        if contributions is None:
            return value
        values = list(contributions.values())
        if op == "sum":
            return float(np.sum(values))
        if op == "min":
            return float(np.min(values))
        if op == "max":
            return float(np.max(values))
        raise MPIError(f"unsupported allreduce op '{op}'")

    # ------------------------------------------------------------------

    def _check_rank(self, rank: int) -> None:
        if not (0 <= rank < self.size):
            raise MPIError(f"rank {rank} out of range for communicator of size {self.size}")


@dataclass
class CartesianDecomposition:
    """A block decomposition of an N-d global domain over a process grid.

    The paper decomposes the 3-D Gauss-Seidel domain over a 2-D process grid
    (§4.4); this helper supports any subset of decomposed dimensions.
    """

    global_shape: Tuple[int, ...]
    grid_shape: Tuple[int, ...]
    decomposed_dims: Tuple[int, ...]

    def __post_init__(self):
        if len(self.grid_shape) != len(self.decomposed_dims):
            raise MPIError("grid_shape and decomposed_dims must have equal length")

    @property
    def num_ranks(self) -> int:
        n = 1
        for p in self.grid_shape:
            n *= p
        return n

    def coords_of(self, rank: int) -> Tuple[int, ...]:
        coords = []
        remaining = rank
        for extent in reversed(self.grid_shape):
            coords.append(remaining % extent)
            remaining //= extent
        return tuple(reversed(coords))

    def rank_of(self, coords: Sequence[int]) -> int:
        rank = 0
        for coord, extent in zip(coords, self.grid_shape):
            if not (0 <= coord < extent):
                return -1
            rank = rank * extent + coord
        return rank

    def local_bounds(self, rank: int) -> List[Tuple[int, int]]:
        """Half-open [lb, ub) bounds of the sub-domain owned by ``rank``."""
        coords = self.coords_of(rank)
        bounds: List[Tuple[int, int]] = []
        for dim, extent in enumerate(self.global_shape):
            if dim in self.decomposed_dims:
                position = self.decomposed_dims.index(dim)
                parts = self.grid_shape[position]
                coord = coords[position]
                base = extent // parts
                remainder = extent % parts
                lb = coord * base + min(coord, remainder)
                size = base + (1 if coord < remainder else 0)
                bounds.append((lb, lb + size))
            else:
                bounds.append((0, extent))
        return bounds

    def neighbours(self, rank: int) -> Dict[Tuple[int, int], int]:
        """Map (decomposed dim, direction ±1) -> neighbour rank (or -1)."""
        coords = list(self.coords_of(rank))
        result: Dict[Tuple[int, int], int] = {}
        for position, dim in enumerate(self.decomposed_dims):
            for direction in (-1, +1):
                shifted = list(coords)
                shifted[position] += direction
                result[(dim, direction)] = self.rank_of(shifted)
        return result


__all__ = [
    "SimulatedCommunicator",
    "CartesianDecomposition",
    "Message",
    "MPIError",
]
