"""Machine descriptions used by the performance model.

The paper's experiments ran on ARCHER2 (HPE Cray EX, 2x 64-core AMD EPYC 7742
"Rome" per node, 8 NUMA regions, Slingshot interconnect) and on Cirrus V100
GPU nodes.  Neither machine is available offline, so the throughput figures
are regenerated from analytic machine models; every parameter is documented
here and EXPERIMENTS.md records where values were calibrated against the
paper's reported speedups rather than measured.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CPUNodeModel:
    """One dual-socket ARCHER2 compute node."""

    name: str = "ARCHER2 node (2x AMD EPYC 7742)"
    cores: int = 128
    numa_regions: int = 8
    clock_hz: float = 2.25e9
    #: peak double-precision flops per core per cycle (AVX2, 2 FMA pipes).
    flops_per_cycle: float = 16.0
    #: sustainable memory bandwidth of the whole node (STREAM-like).
    node_bandwidth: float = 190e9
    #: sustainable memory bandwidth a single core can draw.
    core_bandwidth: float = 14e9
    #: cost of an OpenMP fork/join + barrier, per parallel region.
    omp_overhead_base: float = 4e-6
    #: additional per-thread component of the OpenMP overhead.
    omp_overhead_per_thread: float = 0.15e-6

    @property
    def core_peak_flops(self) -> float:
        return self.clock_hz * self.flops_per_cycle

    def bandwidth(self, threads: int) -> float:
        """Aggregate bandwidth available to ``threads`` cores (NUMA-aware ramp)."""
        threads = max(1, min(threads, self.cores))
        return min(threads * self.core_bandwidth, self.node_bandwidth)

    def omp_overhead(self, threads: int) -> float:
        if threads <= 1:
            return 0.0
        return self.omp_overhead_base + self.omp_overhead_per_thread * threads


@dataclass(frozen=True)
class GPUModel:
    """An Nvidia V100-SXM2-16GB as found in Cirrus GPU nodes."""

    name: str = "Nvidia V100-SXM2-16GB"
    peak_flops: float = 7.0e12          # FP64
    memory_bandwidth: float = 830e9     # effective HBM2
    pcie_bandwidth: float = 12e9        # effective host<->device
    kernel_launch_latency: float = 8e-6
    memory_bytes: int = 16 * 1024**3


@dataclass(frozen=True)
class InterconnectModel:
    """HPE Cray Slingshot as configured on ARCHER2."""

    name: str = "Slingshot"
    latency: float = 1.8e-6                 # per message
    bandwidth_per_node: float = 2 * 12.5e9  # two 100 Gbps bidirectional links
    per_rank_message_overhead: float = 0.4e-6


#: Default instances used throughout the harness.
ARCHER2_NODE = CPUNodeModel()
CIRRUS_V100 = GPUModel()
SLINGSHOT = InterconnectModel()


__all__ = [
    "CPUNodeModel",
    "GPUModel",
    "InterconnectModel",
    "ARCHER2_NODE",
    "CIRRUS_V100",
    "SLINGSHOT",
]
