"""Analytic performance model regenerating the paper's throughput figures.

The paper reports throughput (millions of grid cells per second, MCells/s) on
hardware that is not available offline.  This module predicts the same series
from a roofline-style model: per-cell time is the larger of the compute time
and the memory-traffic time, adjusted by a per-compiler efficiency profile,
plus target-specific overheads (OpenMP fork/join, GPU kernel launches and PCIe
traffic, MPI halo exchange).

Compiler profiles encode the qualitative behaviour reported in the paper
(§4.2–4.4): the Cray compiler vectorises aggressively and is the fastest
serial baseline, Flang's scalar code is markedly slower (especially on the
flop-heavy PW advection kernel), and the stencil flow sits in between on a
single core while gaining fusion (fewer memory passes), automatic OpenMP
parallelism, resident GPU data and automatic distribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from .machine import ARCHER2_NODE, CIRRUS_V100, SLINGSHOT, CPUNodeModel, GPUModel, InterconnectModel


@dataclass(frozen=True)
class KernelCharacteristics:
    """Static properties of one benchmark kernel (per grid cell, per sweep)."""

    name: str
    flops_per_cell: float
    #: Textual array references per cell (Flang recomputes addressing for each).
    array_refs_per_cell: float
    #: Unique array accesses per cell after CSE (Cray / stencil flow).
    unique_accesses_per_cell: float
    #: Memory traffic per cell (bytes) for each compilation flow.  These differ
    #: because the Cray compiler streams stores, Flang compiles each component
    #: loop separately and the stencil flow fuses components but snapshots its
    #: inputs (see EXPERIMENTS.md, calibration notes).
    bytes_per_cell: Dict[str, float] = field(default_factory=dict)
    #: Number of fields taking part (for GPU data-transfer volumes).
    fields: int = 1
    #: Halo width needed by distributed runs.
    halo_width: int = 1

    def bytes_for(self, profile_name: str) -> float:
        return self.bytes_per_cell.get(profile_name, 3 * 8.0)


#: The two benchmarks of §4.1.
GAUSS_SEIDEL_KERNEL = KernelCharacteristics(
    name="gauss_seidel",
    flops_per_cell=6.0,
    array_refs_per_cell=8.0,
    unique_accesses_per_cell=8.0,
    bytes_per_cell={"flang": 24.0, "cray": 24.0, "stencil": 40.0},
    fields=1,
)

PW_ADVECTION_KERNEL = KernelCharacteristics(
    name="pw_advection",
    flops_per_cell=63.0,
    array_refs_per_cell=60.0,
    unique_accesses_per_cell=36.0,
    bytes_per_cell={"flang": 144.0, "cray": 96.0, "stencil": 80.0},
    fields=6,
)


@dataclass(frozen=True)
class CompilerProfile:
    """Efficiency parameters of one compilation flow on the CPU.

    ``flop_efficiency`` scales the core's peak flop rate (vectorisation and
    instruction scheduling quality); ``bandwidth_efficiency`` scales attainable
    memory bandwidth (prefetching, streaming stores); ``ops_per_access`` adds
    address-computation/bookkeeping work per array access, expressed in
    equivalent flops (Flang re-materialises the full ``fir.coordinate_of``
    arithmetic for every textual reference, which is the main reason it trails
    the other flows); ``uses_textual_refs`` selects whether that overhead is
    paid per textual reference or per CSE-unique access.
    """

    name: str
    flop_efficiency: float
    bandwidth_efficiency: float
    ops_per_access: float = 0.5
    uses_textual_refs: bool = False
    supports_openmp: bool = True

    def overhead_ops(self, kernel: KernelCharacteristics) -> float:
        accesses = (
            kernel.array_refs_per_cell
            if self.uses_textual_refs
            else kernel.unique_accesses_per_cell
        )
        return self.ops_per_access * accesses

    def bytes_per_cell(self, kernel: KernelCharacteristics) -> float:
        return kernel.bytes_for(self.name)


#: Calibrated against the relative results of §4.2 (see EXPERIMENTS.md):
#: the Cray compiler is the fastest serial baseline, Flang the slowest (about
#: 2-3x behind the stencil flow on Gauss-Seidel and roughly an order of
#: magnitude behind on PW advection), and the stencil flow sits between the
#: two on a single core while its fusion pays off at high thread counts.
CRAY_PROFILE = CompilerProfile(
    name="cray", flop_efficiency=0.55, bandwidth_efficiency=0.85,
    ops_per_access=0.5, uses_textual_refs=False,
)
FLANG_PROFILE = CompilerProfile(
    name="flang", flop_efficiency=0.10, bandwidth_efficiency=0.35,
    ops_per_access=4.0, uses_textual_refs=True,
)
STENCIL_PROFILE = CompilerProfile(
    name="stencil", flop_efficiency=0.25, bandwidth_efficiency=0.75,
    ops_per_access=0.5, uses_textual_refs=False,
)

PROFILES: Dict[str, CompilerProfile] = {
    "cray": CRAY_PROFILE,
    "flang": FLANG_PROFILE,
    "stencil": STENCIL_PROFILE,
}


# ---------------------------------------------------------------------------
# CPU predictions
# ---------------------------------------------------------------------------


class CPUCostModel:
    """Single-core and multi-threaded (OpenMP) throughput predictions."""

    def __init__(self, node: CPUNodeModel = ARCHER2_NODE):
        self.node = node

    def time_per_cell(self, kernel: KernelCharacteristics, profile: CompilerProfile,
                      threads: int = 1) -> float:
        """Seconds per grid cell per sweep using ``threads`` cores."""
        threads = max(1, threads)
        flops = kernel.flops_per_cell + profile.overhead_ops(kernel)
        flop_rate = self.node.core_peak_flops * profile.flop_efficiency * threads
        bandwidth = self.node.bandwidth(threads) * profile.bandwidth_efficiency
        compute_time = flops / flop_rate
        memory_time = profile.bytes_per_cell(kernel) / bandwidth
        return max(compute_time, memory_time)

    def throughput_mcells(self, kernel: KernelCharacteristics, profile: CompilerProfile,
                          cells: float, threads: int = 1) -> float:
        """Throughput in millions of cells per second for one sweep."""
        per_cell = self.time_per_cell(kernel, profile, threads)
        sweep_time = cells * per_cell + self.node.omp_overhead(threads)
        return cells / sweep_time / 1e6


# ---------------------------------------------------------------------------
# GPU predictions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GPUStrategy:
    """One GPU data-management strategy (Figure 5 compares three)."""

    name: str
    #: Fraction of the benchmark's total field data crossing PCIe per sweep.
    pcie_fraction_per_sweep: float
    #: Extra per-sweep latency (driver overheads, page-fault servicing, ...).
    per_sweep_overhead: float
    #: Efficiency applied to the GPU roofline (kernel quality).
    kernel_efficiency: float
    #: Unified-memory style demand paging: the paged fraction grows with the
    #: number of fields the kernel touches (they compete for residency).
    pcie_fraction_scales_with_fields: bool = False


#: The paper's initial approach: gpu.host_register pages everything across
#: PCIe on demand at every kernel invocation.
STRATEGY_HOST_REGISTER = GPUStrategy(
    name="stencil_host_register", pcie_fraction_per_sweep=2.0,
    per_sweep_overhead=120e-6, kernel_efficiency=0.85,
)
#: The paper's bespoke optimised data-management pass: data stays resident.
STRATEGY_OPTIMISED = GPUStrategy(
    name="stencil_optimised", pcie_fraction_per_sweep=0.0,
    per_sweep_overhead=18e-6, kernel_efficiency=0.85,
)
#: Hand-written OpenACC with unified memory (the Nvidia-compiler baseline):
#: no explicit copies, but demand paging stalls part of the data every sweep.
STRATEGY_OPENACC_UNIFIED = GPUStrategy(
    name="openacc_nvidia", pcie_fraction_per_sweep=0.03,
    per_sweep_overhead=45e-6, kernel_efficiency=0.9,
    pcie_fraction_scales_with_fields=True,
)

GPU_STRATEGIES = {
    s.name: s
    for s in (STRATEGY_HOST_REGISTER, STRATEGY_OPTIMISED, STRATEGY_OPENACC_UNIFIED)
}


class GPUCostModel:
    """Per-sweep throughput of one benchmark on the V100 (Figure 5)."""

    def __init__(self, gpu: GPUModel = CIRRUS_V100):
        self.gpu = gpu

    def sweep_time(self, kernel: KernelCharacteristics, strategy: GPUStrategy,
                   cells: float) -> float:
        compute = cells * kernel.flops_per_cell / (
            self.gpu.peak_flops * strategy.kernel_efficiency
        )
        memory = cells * kernel.bytes_for("stencil") / self.gpu.memory_bandwidth
        kernel_time = max(compute, memory) + self.gpu.kernel_launch_latency
        field_bytes = cells * 8.0 * kernel.fields
        fraction = strategy.pcie_fraction_per_sweep
        if strategy.pcie_fraction_scales_with_fields:
            fraction *= kernel.fields
        pcie_time = field_bytes * fraction / self.gpu.pcie_bandwidth
        return kernel_time + pcie_time + strategy.per_sweep_overhead

    def throughput_mcells(self, kernel: KernelCharacteristics, strategy: GPUStrategy,
                          cells: float) -> float:
        return cells / self.sweep_time(kernel, strategy, cells) / 1e6


# ---------------------------------------------------------------------------
# Distributed-memory predictions
# ---------------------------------------------------------------------------


class DistributedCostModel:
    """Throughput of the MPI-decomposed Gauss-Seidel solver (Figure 6)."""

    def __init__(self, node: CPUNodeModel = ARCHER2_NODE,
                 network: InterconnectModel = SLINGSHOT):
        self.node = node
        self.network = network
        self.cpu = CPUCostModel(node)

    def iteration_time(
        self,
        kernel: KernelCharacteristics,
        profile: CompilerProfile,
        global_cells: float,
        ranks: int,
        decomposition_dims: int = 2,
        comm_efficiency: float = 1.0,
    ) -> float:
        """One sweep plus halo exchange, one MPI rank per core."""
        ranks = max(1, ranks)
        local_cells = global_cells / ranks
        ranks_per_node = min(ranks, self.node.cores)
        # All ranks on a node share its memory bandwidth.
        per_rank_bandwidth = (
            self.node.bandwidth(ranks_per_node) * profile.bandwidth_efficiency / ranks_per_node
        )
        flops = kernel.flops_per_cell + profile.overhead_ops(kernel)
        flop_rate = self.node.core_peak_flops * profile.flop_efficiency
        compute_time = local_cells * max(
            flops / flop_rate, profile.bytes_per_cell(kernel) / per_rank_bandwidth
        )

        # Halo exchange: a 2-D decomposition of the 3-D domain exchanges four
        # faces of size (local side)^2 per rank per iteration.
        side = local_cells ** (1.0 / 3.0)
        face_cells = side * side * kernel.halo_width
        messages = 2 * decomposition_dims
        bytes_per_message = face_cells * 8.0 * kernel.fields
        node_share = min(ranks_per_node, self.node.cores)
        network_bw_per_rank = self.network.bandwidth_per_node / node_share
        comm_time = messages * (
            self.network.latency
            + self.network.per_rank_message_overhead
            + bytes_per_message / network_bw_per_rank
        )
        return compute_time + comm_time / comm_efficiency

    def throughput_mcells(self, kernel: KernelCharacteristics, profile: CompilerProfile,
                          global_cells: float, ranks: int,
                          comm_efficiency: float = 1.0) -> float:
        t = self.iteration_time(kernel, profile, global_cells, ranks,
                                comm_efficiency=comm_efficiency)
        return global_cells / t / 1e6


KERNELS = {
    "gauss_seidel": GAUSS_SEIDEL_KERNEL,
    "pw_advection": PW_ADVECTION_KERNEL,
}


__all__ = [
    "KernelCharacteristics",
    "GAUSS_SEIDEL_KERNEL",
    "PW_ADVECTION_KERNEL",
    "KERNELS",
    "CompilerProfile",
    "CRAY_PROFILE",
    "FLANG_PROFILE",
    "STENCIL_PROFILE",
    "PROFILES",
    "CPUCostModel",
    "GPUStrategy",
    "GPU_STRATEGIES",
    "STRATEGY_HOST_REGISTER",
    "STRATEGY_OPTIMISED",
    "STRATEGY_OPENACC_UNIFIED",
    "GPUCostModel",
    "DistributedCostModel",
]
