"""Vectorized kernel compilation backend for stencil execution.

The scalar interpreter executes the scf/omp loop nests produced by
``convert-stencil-to-scf`` one grid point at a time, dispatching every
``memref.load`` / ``arith.*`` / ``memref.store`` through a Python handler
table.  That is the dominant cost of every lowered benchmark.  This module
instead *compiles* the body of such a loop nest — and the body region of a
``stencil.apply`` — into a single Python function built out of NumPy
whole-array slice expressions, so one sweep of the stencil executes as a
handful of vectorised array operations.

Architecture
============

:class:`KernelCompiler` is the entry point.  It keeps a **kernel cache**
keyed on the *structural hash* of the source operation (op names, attributes,
types and internal dataflow, with external SSA values numbered in first-use
order), so two structurally identical sweeps — the same ``scf.parallel``
executed once per time step, or the same stencil compiled into a second
module — share one compiled kernel.  A per-op identity memo makes the
per-sweep lookup a single dict probe.

Compilation translates IR to Python source:

* loop induction variables become *affine index descriptors* ``iv[d] + c``;
* ``memref.load`` / ``stencil.access`` with affine indices become NumPy basic
  slices of the underlying array, e.g. ``a[lb0-1:ub0-1, lb1:ub1]``;
* element-wise ``arith`` / ``math`` ops become the corresponding NumPy
  expressions over those slices;
* ``memref.store`` becomes one sliced assignment per sweep.

The generated source is compiled with :func:`compile`/``exec`` and wrapped in
a :class:`CompiledKernel`; ``kernel.source`` keeps the generated text for
inspection.  Because a cached kernel may be reused for a *different* op
instance with the same structure, the kernel references its inputs through
**external paths** (operand positions within the op) which
:meth:`KernelCompiler.kernel_for` resolves against the concrete op, rather
than through SSA values captured at compile time.

Correctness guards and the interpreter oracle
=============================================

Vectorising a sequential loop nest is only sound when no iteration observes a
write performed by another iteration.  Compilation *statically* rejects
unsupported ops (``scf.if``, ``stencil.dyn_access``, calls, nested regions)
and non-affine indexing; in addition every invocation *dynamically* verifies,
against the actual runtime values, that

* all loop steps are 1 and all accesses stay in bounds (NumPy's negative
  index wrap-around would silently diverge from the scalar semantics), and
* no stored-to buffer shares memory with any loaded-from buffer
  (``np.may_share_memory``) — e.g. a true in-place Gauss–Seidel nest refuses
  to vectorise and falls back.

When a kernel cannot be built or a guard fails, the caller falls back to the
scalar interpreter, which therefore remains the semantic *oracle*: execution
mode ``"crosscheck"`` (see :mod:`repro.compiler`) runs both paths on every
sweep and raises if their results diverge beyond ``np.allclose``.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..dialects import fir, scf, stencil
from ..ir.operation import Operation
from ..ir.ssa import SSAValue
from ..ir.types import FloatType, IndexType, IntegerType, MemRefType
from .memory import MemoryBuffer, numpy_dtype_for

#: Execution modes accepted by CompilerOptions / Interpreter.
EXECUTION_MODES = ("interpret", "vectorize", "crosscheck")


class KernelUnsupported(Exception):
    """Raised during compilation when an op/indexing pattern cannot be
    expressed as whole-array NumPy slices; the caller falls back to the
    scalar interpreter."""


# ---------------------------------------------------------------------------
# Structural hashing
# ---------------------------------------------------------------------------


#: Attributes that carry metadata about an op rather than defining its
#: semantics; excluded from the structural hash so tagging an op (e.g. with
#: stencil.vectorizable after analysis) does not invalidate its cache entry.
#: The omp schedule clause is an execution *policy* — two wsloops differing
#: only in schedule compute the same function and share one kernel; the
#: interpreter reads the policy off the op at dispatch time.  The gpu stream
#: assignment and prefetch tags are likewise runtime placement policy.
_METADATA_ATTRS = frozenset({"stencil.vectorizable", "omp.schedule",
                             "omp.chunk_size", "gpu.stream", "gpu.prefetch",
                             "schedule.tile"})


def structural_hash(op: Operation) -> str:
    """A hash of the operation's *structure*: names, semantic attributes,
    types and internal dataflow.  External SSA values are numbered in
    first-use order, so two structurally identical ops — even from different
    modules — map to the same digest."""
    parts: List[str] = []
    tokens: Dict[int, str] = {}

    def token(value: SSAValue) -> str:
        tok = tokens.get(id(value))
        if tok is None:
            tok = f"x{len(tokens)}"
            tokens[id(value)] = tok
        return tok

    def visit(current: Operation) -> None:
        parts.append(current.name)
        for attr_name in sorted(current.attributes):
            if attr_name in _METADATA_ATTRS:
                continue
            parts.append(f"{attr_name}={current.attributes[attr_name].print()}")
        parts.append("(" + ",".join(token(o) for o in current.operands) + ")")
        for result in current.results:
            parts.append("->" + result.type.print())
            token(result)
        for region in current.regions:
            for block in region.blocks:
                parts.append("^(" + ",".join(a.type.print() for a in block.args) + ")")
                for arg in block.args:
                    token(arg)
                for inner in block.ops:
                    visit(inner)
                parts.append("$")

    visit(op)
    return hashlib.sha256("\x1f".join(parts).encode()).hexdigest()


# ---------------------------------------------------------------------------
# External paths: how a kernel finds its inputs on any structurally
# identical op instance
# ---------------------------------------------------------------------------

#: ("root", operand_index)           — operand of the compiled op itself
#: ("for", dim, which)               — (lower|upper|step)[which] of the inner
#:                                     scf.for at nest depth ``dim``
#: ("body", op_index, operand_index) — operand of the innermost body's op
ExternalPath = Tuple


# ---------------------------------------------------------------------------
# Codegen symbols
# ---------------------------------------------------------------------------


class _Affine:
    """A value of the form ``iv[dim] + offset`` (unit-coefficient affine)."""

    __slots__ = ("dim", "offset")

    def __init__(self, dim: int, offset: int):
        self.dim = dim
        self.offset = offset


class _Const:
    """A compile-time constant (from ``arith.constant`` inside the body)."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value


class _Expr:
    """A generated expression bound to a local variable of the kernel.

    ``is_array`` distinguishes whole-domain arrays (slices and element-wise
    combinations of them) from runtime scalars; scalars broadcast under
    NumPy's rules.
    """

    __slots__ = ("var", "is_array")

    def __init__(self, var: str, is_array: bool):
        self.var = var
        self.is_array = is_array


#: Element-wise binary ops -> Python/NumPy expression templates.
_BINARY_TEMPLATES = {
    "arith.addf": "({0} + {1})",
    "arith.subf": "({0} - {1})",
    "arith.mulf": "({0} * {1})",
    "arith.divf": "({0} / {1})",
    "arith.addi": "({0} + {1})",
    "arith.subi": "({0} - {1})",
    "arith.muli": "({0} * {1})",
    "arith.maximumf": "np.maximum({0}, {1})",
    "arith.minimumf": "np.minimum({0}, {1})",
    "arith.maxsi": "np.maximum({0}, {1})",
    "arith.minsi": "np.minimum({0}, {1})",
    "arith.andi": "np.logical_and({0}, {1})",
    "arith.ori": "np.logical_or({0}, {1})",
    "arith.xori": "np.not_equal({0}, {1})",
    "math.powf": "np.power({0}, {1})",
    "arith.divsi": "_divsi({0}, {1})",
    "arith.remsi": "_remsi({0}, {1})",
}

_UNARY_TEMPLATES = {
    "arith.negf": "(-{0})",
    "math.sqrt": "np.sqrt({0})",
    "math.absf": "np.abs({0})",
    "math.sin": "np.sin({0})",
    "math.cos": "np.cos({0})",
    "math.tan": "np.tan({0})",
    "math.tanh": "np.tanh({0})",
    "math.exp": "np.exp({0})",
    "math.log": "np.log({0})",
    "math.log10": "np.log10({0})",
}

_CMP_TEMPLATES = {
    "oeq": "np.equal", "one": "np.not_equal", "olt": "np.less",
    "ole": "np.less_equal", "ogt": "np.greater", "oge": "np.greater_equal",
    "eq": "np.equal", "ne": "np.not_equal", "slt": "np.less",
    "sle": "np.less_equal", "sgt": "np.greater", "sge": "np.greater_equal",
}

_CAST_OPS = ("arith.index_cast", "arith.sitofp", "arith.fptosi",
             "arith.extf", "arith.truncf")


def _divsi(lhs, rhs):
    """Fortran/C integer division: truncate toward zero (matches the
    interpreter's ``arith.divsi`` handler)."""
    return np.trunc(np.divide(lhs, rhs)).astype(np.int64)


def _remsi(lhs, rhs):
    quotient = np.trunc(np.divide(lhs, rhs)).astype(np.int64)
    return np.asarray(lhs) - quotient * np.asarray(rhs)


def _scalar(value):
    """Collapse runtime external values to something NumPy can broadcast."""
    if isinstance(value, MemoryBuffer):
        return value.data[()] if value.is_scalar else value.data
    if isinstance(value, np.ndarray) and value.ndim == 0:
        return value[()]
    return value


_NAMESPACE = {"np": np, "_divsi": _divsi, "_remsi": _remsi, "_scalar": _scalar}


# ---------------------------------------------------------------------------
# Compiled kernel objects
# ---------------------------------------------------------------------------


class CompiledKernel:
    """A compiled sweep: a Python function over NumPy arrays plus the access
    metadata needed for the runtime bounds/alias guards.

    ``loads`` and ``stores`` list ``(external_slot, ((dim, offset), ...))``
    pairs: slot indexes the external vector, and each ``(dim, offset)``
    describes the affine index ``iv[dim] + offset`` used for the
    corresponding array axis.  ``external_paths`` locate the externals on any
    structurally identical op (see module docstring); ``bound_slots`` names,
    for loop-nest kernels, the (lower, upper, step) slot triple of each
    dimension.
    """

    def __init__(
        self,
        fn: Callable,
        source: str,
        rank: int,
        loads: Sequence[Tuple[int, Tuple[Tuple[int, int], ...]]],
        stores: Sequence[Tuple[int, Tuple[Tuple[int, int], ...]]],
        external_paths: Sequence[ExternalPath],
        bound_slots: Sequence[Tuple[int, int, int]] = (),
        result_is_array: Sequence[bool] = (),
    ):
        self.fn = fn
        self.source = source
        self.rank = rank
        self.loads = tuple(loads)
        self.stores = tuple(stores)
        self.external_paths = tuple(external_paths)
        self.bound_slots = tuple(bound_slots)
        #: For apply kernels: which returned values are whole-domain arrays
        #: (only those can be slab-assembled by the tiled executor).
        self.result_is_array = tuple(result_is_array)
        #: Stable display name (op name + structural-hash prefix), set by
        #: KernelCompiler.kernel_for; keys the per-kernel runtime statistics.
        self.label = ""
        #: Cleared by the tiled executor when a sweep shows a result that
        #: broadcasts along dim 0 (a structural property, so the refusal
        #: holds for every later sweep of this — possibly shared — kernel).
        self.tileable = True
        #: Same memo for the multi-dimensional ``schedule.tile`` box path:
        #: cleared when a per-box result shape refuses slab assembly.
        self.box_tileable = True

    # -- runtime guards ----------------------------------------------------

    def guards_pass(self, externals: Sequence[object], lowers: Sequence[int],
                    uppers: Sequence[int], steps: Sequence[int]) -> bool:
        """Check unit steps, in-bounds slices, and load/store aliasing against
        the actual runtime values.  Returning False sends the caller to the
        scalar interpreter."""
        if any(s != 1 for s in steps):
            return False
        for slot, axes in self.loads + self.stores:
            array = self._array_of(externals[slot])
            if array is None or array.ndim != len(axes):
                return False
            for axis, (dim, offset) in enumerate(axes):
                if lowers[dim] + offset < 0 or uppers[dim] + offset > array.shape[axis]:
                    return False
        store_arrays = [self._array_of(externals[slot]) for slot, _ in self.stores]
        load_arrays = [self._array_of(externals[slot]) for slot, _ in self.loads]
        for stored in store_arrays:
            for loaded in load_arrays:
                if stored is not None and loaded is not None and \
                        np.may_share_memory(stored, loaded):
                    return False
        # Two stores into overlapping storage interleave per point under
        # scalar semantics but sweep-at-a-time here (`a[i]=x; a[i+1]=y` ends
        # [x,y,y,…] scalar vs [x,x,…,y] vectorized).  The only safe aliasing
        # pair is the *same* array written through the *same* index map —
        # there the last store wins at every point in both orders.
        for i, (_, axes_i) in enumerate(self.stores):
            for j in range(i + 1, len(self.stores)):
                first, second = store_arrays[i], store_arrays[j]
                if first is None or second is None:
                    return False
                if first is second and axes_i == self.stores[j][1]:
                    continue
                if np.may_share_memory(first, second):
                    return False
        return True

    def apply_guards_pass(self, externals: Sequence[object], lb: Sequence[int],
                          ub: Sequence[int]) -> bool:
        """Bounds guard for ``stencil.apply`` kernels: every access window
        ``[lb+off-origin, ub+off-origin)`` must fall inside its temp's data."""
        for slot, axes in self.loads:
            temp = externals[slot]
            array = getattr(temp, "data", None)
            origin = getattr(temp, "origin", None)
            if not isinstance(array, np.ndarray) or origin is None or \
                    array.ndim != len(axes):
                return False
            for axis, (dim, offset) in enumerate(axes):
                low = lb[dim] + offset - origin[dim]
                high = ub[dim] + offset - origin[dim]
                if low < 0 or high > array.shape[axis]:
                    return False
        return True

    @staticmethod
    def _array_of(value) -> Optional[np.ndarray]:
        if isinstance(value, MemoryBuffer):
            return value.data
        if isinstance(value, np.ndarray):
            return value
        data = getattr(value, "data", None)  # FieldValue / TempValue
        return data if isinstance(data, np.ndarray) else None

    def store_targets(self, externals: Sequence[object]) -> List[np.ndarray]:
        """The distinct arrays this kernel writes (for crosscheck snapshots)."""
        targets: List[np.ndarray] = []
        for slot, _ in self.stores:
            array = self._array_of(externals[slot])
            if array is not None and not any(array is t for t in targets):
                targets.append(array)
        return targets

    def __call__(self, externals, lowers, uppers):
        return self.fn(externals, lowers, uppers)


class BoundKernel:
    """A compiled kernel bound to one op instance: the kernel plus the SSA
    values (resolved from the kernel's external paths) to read per sweep."""

    __slots__ = ("kernel", "external_values")

    def __init__(self, kernel: CompiledKernel, external_values: List[SSAValue]):
        self.kernel = kernel
        self.external_values = external_values


# ---------------------------------------------------------------------------
# Codegen core shared by the nest and apply translators
# ---------------------------------------------------------------------------


def _is_reference_type(value: SSAValue) -> bool:
    t = value.type
    return (
        isinstance(t, (MemRefType, stencil.FieldType, stencil.TempType))
        or fir.is_reference_like(t)
    )


class _BodyTranslator:
    """Translates one straight-line block of element-wise ops into Python
    source lines over whole-array slices."""

    def __init__(self, rank: int):
        self.rank = rank
        self.lines: List[str] = []
        self.values: Dict[int, object] = {}  # id(SSAValue) -> _Expr/_Affine/_Const
        self.external_paths: List[ExternalPath] = []
        self.external_slots: Dict[int, int] = {}
        self.loads: List[Tuple[int, Tuple[Tuple[int, int], ...]]] = []
        self.stores: List[Tuple[int, Tuple[Tuple[int, int], ...]]] = []
        self._counter = 0
        #: set by the driver before translating each body op, so scalar
        #: externals discovered mid-expression can be given a path
        self.current_body_op: Optional[Tuple[Operation, int]] = None

    # -- helpers -----------------------------------------------------------

    def fresh(self) -> str:
        self._counter += 1
        return f"t{self._counter}"

    def external_slot(self, value: SSAValue, path: ExternalPath) -> int:
        slot = self.external_slots.get(id(value))
        if slot is None:
            slot = len(self.external_paths)
            self.external_slots[id(value)] = slot
            self.external_paths.append(path)
        return slot

    def _path_of_operand(self, value: SSAValue) -> ExternalPath:
        if self.current_body_op is None:
            raise KernelUnsupported("external value outside of a body op")
        body_op, op_index = self.current_body_op
        for j, operand in enumerate(body_op.operands):
            if operand is value:
                return ("body", op_index, j)
        raise KernelUnsupported("cannot locate external value on its use")

    def bind_external_scalar(self, value: SSAValue) -> _Expr:
        """Materialise an external scalar into a local variable."""
        if _is_reference_type(value):
            raise KernelUnsupported("reference-typed value used as a scalar")
        slot = self.external_slot(value, self._path_of_operand(value))
        var = f"e{slot}"
        expr = _Expr(var, is_array=False)
        self.values[id(value)] = expr
        self.lines.append(f"{var} = _scalar(ext[{slot}])")
        return expr

    def as_code(self, value: SSAValue) -> Tuple[str, bool]:
        """Render an SSA value as (expression, is_array)."""
        sym = self.values.get(id(value))
        if sym is None:
            sym = self.bind_external_scalar(value)
        if isinstance(sym, _Expr):
            return sym.var, sym.is_array
        if isinstance(sym, _Const):
            return repr(sym.value), False
        if isinstance(sym, _Affine):
            return self.materialise_affine(sym), True
        raise KernelUnsupported(f"cannot render value {value!r}")

    def materialise_affine(self, sym: _Affine) -> str:
        """An induction variable used as a *number* (not an index): broadcast
        ``arange(lb+c, ub+c)`` along its dimension over the sweep domain."""
        var = self.fresh()
        shape = ", ".join("-1" if d == sym.dim else "1" for d in range(self.rank))
        self.lines.append(
            f"{var} = np.arange(lb[{sym.dim}] + {sym.offset}, "
            f"ub[{sym.dim}] + {sym.offset}).reshape(({shape}))"
        )
        return var

    def affine_indices(self, index_values: Sequence[SSAValue]) -> Tuple[Tuple[int, int], ...]:
        """Resolve load/store indices to per-axis (dim, offset) descriptors.
        Each axis must use a distinct induction variable."""
        axes: List[Tuple[int, int]] = []
        for value in index_values:
            sym = self.values.get(id(value))
            if isinstance(sym, _Affine):
                axes.append((sym.dim, sym.offset))
            else:
                raise KernelUnsupported("non-affine memory index")
        used_dims = [d for d, _ in axes]
        if len(set(used_dims)) != len(used_dims):
            raise KernelUnsupported("induction variable reused across axes")
        return tuple(axes)

    def emit_load(self, result: SSAValue, slot: int,
                  axes: Sequence[Tuple[int, int]]) -> None:
        """Record an affine load and bind its whole-sweep slice expression."""
        self.loads.append((slot, tuple(axes)))
        var = self.fresh()
        self.lines.append(f"{var} = " + self.slice_code(f"ext[{slot}].data", axes))
        self.values[id(result)] = _Expr(var, is_array=True)

    def emit_store(self, value: SSAValue, slot: int,
                   axes: Sequence[Tuple[int, int]]) -> None:
        """Record an affine store and emit its sliced assignment.

        The assignment target must stay a plain slice (a transposed view is
        not assignable syntax); when the store permutes the induction
        variables, transpose the *value* from iv-order into the target's
        axis order instead.
        """
        self.stores.append((slot, tuple(axes)))
        value_code, value_is_array = self.as_code(value)
        slices = ", ".join(
            f"lb[{dim}] + {offset}:ub[{dim}] + {offset}" if offset else
            f"lb[{dim}]:ub[{dim}]"
            for dim, offset in axes
        )
        order = [dim for dim, _ in axes]
        if order != sorted(order) and value_is_array:
            value_code = f"np.transpose({value_code}, {tuple(order)})"
        self.lines.append(f"ext[{slot}].data[{slices}] = {value_code}")

    def slice_code(self, base: str, axes: Sequence[Tuple[int, int]]) -> str:
        """A whole-sweep slice of ``base``, transposed/expanded so its axes
        line up with induction-variable order for broadcasting."""
        slices = ", ".join(
            f"lb[{dim}] + {offset}:ub[{dim}] + {offset}" if offset else
            f"lb[{dim}]:ub[{dim}]"
            for dim, offset in axes
        )
        code = f"{base}[{slices}]"
        order = [dim for dim, _ in axes]
        if order != sorted(order):
            perm = tuple(int(i) for i in np.argsort(order))
            code = f"np.transpose({code}, {perm})"
        missing = [d for d in range(self.rank) if d not in order]
        for dim in missing:
            code = f"np.expand_dims({code}, {dim})"
        return code

    # -- op translation ----------------------------------------------------

    def translate_op(self, op: Operation) -> None:
        name = op.name
        if name == "arith.constant":
            attr = op.get_attr("value")
            if isinstance(getattr(attr, "type", None), (IntegerType, IndexType)):
                self.values[id(op.results[0])] = _Const(int(attr.value))
            elif isinstance(getattr(attr, "type", None), FloatType):
                self.values[id(op.results[0])] = _Const(float(attr.value))
            else:
                raise KernelUnsupported("constant of unsupported type")
            return

        if name in ("arith.addi", "arith.subi"):
            # Index arithmetic on induction variables stays symbolic so it
            # folds into slice bounds; everything else drops to the
            # element-wise path below.
            lhs = self.values.get(id(op.operands[0]))
            rhs = self.values.get(id(op.operands[1]))
            sign = 1 if name == "arith.addi" else -1
            if isinstance(lhs, _Affine) and isinstance(rhs, _Const):
                self.values[id(op.results[0])] = _Affine(lhs.dim, lhs.offset + sign * rhs.value)
                return
            if name == "arith.addi" and isinstance(lhs, _Const) and isinstance(rhs, _Affine):
                self.values[id(op.results[0])] = _Affine(rhs.dim, rhs.offset + lhs.value)
                return
            if isinstance(lhs, _Const) and isinstance(rhs, _Const):
                self.values[id(op.results[0])] = _Const(lhs.value + sign * rhs.value)
                return

        if name in _BINARY_TEMPLATES:
            a, a_arr = self.as_code(op.operands[0])
            b, b_arr = self.as_code(op.operands[1])
            var = self.fresh()
            self.lines.append(f"{var} = " + _BINARY_TEMPLATES[name].format(a, b))
            self.values[id(op.results[0])] = _Expr(var, a_arr or b_arr)
            return

        if name in _UNARY_TEMPLATES:
            a, a_arr = self.as_code(op.operands[0])
            var = self.fresh()
            self.lines.append(f"{var} = " + _UNARY_TEMPLATES[name].format(a))
            self.values[id(op.results[0])] = _Expr(var, a_arr)
            return

        if name == "math.fma":
            a, a_arr = self.as_code(op.operands[0])
            b, b_arr = self.as_code(op.operands[1])
            c, c_arr = self.as_code(op.operands[2])
            var = self.fresh()
            self.lines.append(f"{var} = ({a} * {b} + {c})")
            self.values[id(op.results[0])] = _Expr(var, a_arr or b_arr or c_arr)
            return

        if name in ("arith.cmpf", "arith.cmpi"):
            pred = op.get_attr("predicate").data  # type: ignore[union-attr]
            if pred not in _CMP_TEMPLATES:
                raise KernelUnsupported(f"comparison predicate '{pred}'")
            a, a_arr = self.as_code(op.operands[0])
            b, b_arr = self.as_code(op.operands[1])
            var = self.fresh()
            self.lines.append(f"{var} = {_CMP_TEMPLATES[pred]}({a}, {b})")
            self.values[id(op.results[0])] = _Expr(var, a_arr or b_arr)
            return

        if name == "arith.select":
            c, c_arr = self.as_code(op.operands[0])
            a, a_arr = self.as_code(op.operands[1])
            b, b_arr = self.as_code(op.operands[2])
            var = self.fresh()
            self.lines.append(f"{var} = np.where({c}, {a}, {b})")
            self.values[id(op.results[0])] = _Expr(var, c_arr or a_arr or b_arr)
            return

        if name in _CAST_OPS:
            source = self.values.get(id(op.operands[0]))
            if isinstance(source, _Affine) and name == "arith.index_cast":
                self.values[id(op.results[0])] = source
                return
            a, a_arr = self.as_code(op.operands[0])
            dtype = numpy_dtype_for(op.results[0].type)
            var = self.fresh()
            if a_arr:
                self.lines.append(f"{var} = {a}.astype('{dtype.name}')")
            else:
                self.lines.append(f"{var} = np.dtype('{dtype.name}').type({a})")
            self.values[id(op.results[0])] = _Expr(var, a_arr)
            return

        raise KernelUnsupported(f"operation '{name}' is not vectorizable")


def _assemble(name: str, lines: List[str]) -> Tuple[Callable, str]:
    body = "\n".join("    " + line for line in lines) or "    pass"
    source = f"def {name}(ext, lb, ub):\n{body}\n"
    namespace = dict(_NAMESPACE)
    exec(compile(source, f"<{name}>", "exec"), namespace)
    return namespace[name], source


# ---------------------------------------------------------------------------
# Loop-nest compilation (scf.parallel / omp.wsloop with nested scf.for)
# ---------------------------------------------------------------------------


def _nest_structure(op: Operation):
    """Peel a perfect loop nest: returns (bounds, ivs, body) where ``bounds``
    holds per-dimension (lower, upper, step) SSA values, ``ivs`` the
    induction variables, and ``body`` the innermost element-wise block."""
    if op.name not in ("scf.parallel", "omp.wsloop"):
        raise KernelUnsupported(f"'{op.name}' is not a vectorizable loop nest")
    rank = int(op.get_attr("rank").value)  # type: ignore[union-attr]
    bounds = [
        (op.operands[d], op.operands[rank + d], op.operands[2 * rank + d])
        for d in range(rank)
    ]
    block = op.regions[0].block
    ivs = list(block.args)

    while True:
        ops = block.ops
        if not ops:
            raise KernelUnsupported("empty loop body")
        terminator = ops[-1]
        if terminator.name not in ("scf.yield", "omp.yield") or terminator.operands:
            raise KernelUnsupported("loop nest carries values")
        inner = ops[:-1]
        if len(inner) == 1 and isinstance(inner[0], scf.ForOp) and not inner[0].results:
            for_op = inner[0]
            bounds.append((for_op.operands[0], for_op.operands[1], for_op.operands[2]))
            block = for_op.regions[0].block
            ivs.append(block.args[0])
            continue
        return bounds, ivs, block


def compile_loop_nest(op: Operation) -> CompiledKernel:
    """Compile an ``scf.parallel`` / ``omp.wsloop`` (with perfectly nested
    inner ``scf.for`` loops) into a whole-array sweep."""
    bounds, ivs, body = _nest_structure(op)
    rank = len(bounds)
    translator = _BodyTranslator(rank)
    for dim, iv in enumerate(ivs):
        translator.values[id(iv)] = _Affine(dim, 0)

    # Loop bounds must be defined outside the nest; registering them first
    # keeps the external vector layout deterministic.  Outer-loop bounds are
    # root operands; inner scf.for bounds are located through the nest walk,
    # which _resolve_path replays on cache hits.
    bound_slots: List[Tuple[int, int, int]] = []
    for dim, dim_bounds in enumerate(bounds):
        slots = []
        for which, value in enumerate(dim_bounds):
            if translator.values.get(id(value)) is not None:
                raise KernelUnsupported("loop bound defined inside the nest")
            if dim < int(op.get_attr("rank").value):  # type: ignore[union-attr]
                base_rank = int(op.get_attr("rank").value)  # type: ignore[union-attr]
                path: ExternalPath = ("root", which * base_rank + dim)
            else:
                # Bounds of an inner scf.for: find them at runtime by
                # re-peeling the nest (path kind "for").
                path = ("for", dim, which)
            slots.append(translator.external_slot(value, path))
        bound_slots.append(tuple(slots))

    for op_index, body_op in enumerate(body.ops):
        translator.current_body_op = (body_op, op_index)
        name = body_op.name
        if name in ("scf.yield", "omp.yield"):
            continue
        if name == "memref.load":
            axes = translator.affine_indices(body_op.operands[1:])
            slot = translator.external_slot(body_op.operands[0], ("body", op_index, 0))
            translator.emit_load(body_op.results[0], slot, axes)
            continue
        if name == "memref.store":
            axes = translator.affine_indices(body_op.operands[2:])
            if len(axes) != rank:
                raise KernelUnsupported("store does not cover every loop dimension")
            slot = translator.external_slot(body_op.operands[1], ("body", op_index, 1))
            translator.emit_store(body_op.operands[0], slot, axes)
            continue
        translator.translate_op(body_op)

    if not translator.stores:
        raise KernelUnsupported("loop nest performs no stores")

    fn, source = _assemble("_nest_kernel", translator.lines)
    return CompiledKernel(
        fn, source, rank, translator.loads, translator.stores,
        translator.external_paths, bound_slots,
    )


# ---------------------------------------------------------------------------
# stencil.apply compilation
# ---------------------------------------------------------------------------


def compile_apply(op: Operation) -> CompiledKernel:
    """Compile the body region of a ``stencil.apply`` into one function that
    computes every result over the whole ``[lb, ub)`` domain per sweep.

    Externals are exactly the apply operands (``!stencil.temp`` values arrive
    as ``TempValue`` objects; scalars as NumPy scalars).  The kernel returns
    the list of result arrays, which the interpreter wraps into
    ``TempValue``s just as the scalar path does.
    """
    if op.name != "stencil.apply":
        raise KernelUnsupported(f"'{op.name}' is not a stencil.apply")
    block = op.regions[0].block
    rank = len(op.get_attr("lb").as_tuple())  # type: ignore[union-attr]
    translator = _BodyTranslator(rank)
    # Operand order fixes the external layout: slot i <-> operand i, and the
    # body block args are aliases of those slots.
    for i, arg in enumerate(block.args):
        translator.external_slots[id(arg)] = i
        translator.external_paths.append(("root", i))

    returned: List[SSAValue] = []
    accessed_slots: List[int] = []
    for op_index, body_op in enumerate(block.ops):
        translator.current_body_op = (body_op, op_index)
        name = body_op.name
        if name == "stencil.return":
            returned = list(body_op.operands)
            continue
        if name == "stencil.access":
            temp = body_op.operands[0]
            slot = translator.external_slots.get(id(temp))
            if slot is None or slot >= len(block.args):
                raise KernelUnsupported("stencil.access of a non-operand temp")
            offset = body_op.get_attr("offset").as_tuple()  # type: ignore[union-attr]
            if len(offset) != rank:
                raise KernelUnsupported("stencil.access offset rank mismatch")
            if slot not in accessed_slots:
                accessed_slots.append(slot)
            var = translator.fresh()
            slices = ", ".join(
                f"lb[{d}] + {off} - org{slot}[{d}]:ub[{d}] + {off} - org{slot}[{d}]"
                for d, off in enumerate(offset)
            )
            translator.lines.append(f"{var} = arr{slot}[{slices}]")
            translator.values[id(body_op.results[0])] = _Expr(var, is_array=True)
            translator.loads.append((slot, tuple(enumerate(offset))))
            continue
        if name == "stencil.index":
            dim = int(body_op.get_attr("dim").value)  # type: ignore[union-attr]
            translator.values[id(body_op.results[0])] = _Affine(dim, 0)
            continue
        translator.translate_op(body_op)

    if not returned:
        raise KernelUnsupported("stencil.apply body has no stencil.return")

    # Prologue: unpack each accessed temp's array and origin once per sweep.
    prologue = []
    for slot in sorted(accessed_slots):
        prologue.append(f"arr{slot} = ext[{slot}].data")
        prologue.append(f"org{slot} = ext[{slot}].origin")
    rendered = [translator.as_code(v) for v in returned]
    result_code = ", ".join(code for code, _ in rendered)
    translator.lines.append(f"return [{result_code}]")

    fn, source = _assemble("_apply_kernel", prologue + translator.lines)
    return CompiledKernel(
        fn, source, rank, translator.loads, stores=(),
        external_paths=translator.external_paths,
        result_is_array=[is_array for _, is_array in rendered],
    )


def apply_is_vectorizable(op: Operation) -> bool:
    """Static analysis used by the transforms layer: can this apply's body be
    compiled to a whole-array kernel?  (Pure IR check — no runtime values.)

    The result — kernel or failure — is recorded in the process-wide
    structural cache, so the analysis doubles as *pre-compilation*: a later
    ``execution_mode="vectorize"`` run of the same stencil starts with a
    cache hit instead of compiling at first sweep.
    """
    key = structural_hash(op)
    if key not in _SHARED_CACHE:
        try:
            _SHARED_CACHE[key] = compile_apply(op)
        except Exception:
            _SHARED_CACHE[key] = None
    return _SHARED_CACHE[key] is not None


# ---------------------------------------------------------------------------
# The compiler facade with its structural-hash kernel cache
# ---------------------------------------------------------------------------


#: Process-wide cache shared across interpreter instances: structural hash ->
#: CompiledKernel (or None for ops that failed to compile).  Compilation is
#: deterministic and kernels are bound per-op through external paths, so
#: sharing across modules is safe.
_SHARED_CACHE: Dict[str, Optional[CompiledKernel]] = {}


class KernelCompiler:
    """Per-interpreter facade over kernel compilation.

    Two cache levels: an identity memo (``id(op)`` -> :class:`BoundKernel`)
    that makes the per-sweep lookup a single dict probe, and the structural
    cache (process-wide by default) so identical stencils compiled into
    different modules share one kernel.
    """

    def __init__(self, use_shared_cache: bool = True):
        # The memo holds a reference to each op so its id() stays valid.
        self._memo: Dict[int, Tuple[Operation, Optional[BoundKernel]]] = {}
        self._structural: Dict[str, Optional[CompiledKernel]] = (
            _SHARED_CACHE if use_shared_cache else {}
        )
        #: Counters plus a per-kernel breakdown: ``stats["per_kernel"]`` maps
        #: each kernel label to its invocation count and cumulative wall time
        #: (seconds) as recorded by the interpreter around every sweep.
        self.stats: Dict[str, object] = {
            "compiled": 0, "cache_hits": 0, "unsupported": 0, "per_kernel": {},
        }

    def record_invocation(self, label: str, seconds: float) -> None:
        """Accumulate one sweep's wall time against the kernel's label."""
        per_kernel: Dict[str, Dict[str, float]] = self.stats["per_kernel"]  # type: ignore[assignment]
        entry = per_kernel.setdefault(label, {"invocations": 0, "seconds": 0.0})
        entry["invocations"] += 1
        entry["seconds"] += seconds

    def compile_cached(self, key: str,
                       builder: Callable[[], CompiledKernel]) -> Optional[CompiledKernel]:
        """Structural-cache lookup with counted compile-on-miss.

        Shared by :meth:`kernel_for` and the GPU launch engine
        (:mod:`repro.runtime.gpu_kernel_engine`), so gpu.func kernels live in
        the same structural cache — and the same stats counters — as loop-nest
        and apply kernels.  Any compile failure — including codegen bugs
        surfacing as SyntaxError from exec — must degrade to scalar
        interpretation, never crash the run.
        """
        if key in self._structural:
            self.stats["cache_hits"] += 1
            return self._structural[key]
        try:
            kernel: Optional[CompiledKernel] = builder()
            self.stats["compiled"] += 1
        except Exception:
            kernel = None
            self.stats["unsupported"] += 1
        self._structural[key] = kernel
        return kernel

    def kernel_for(self, op: Operation) -> Optional[BoundKernel]:
        """The compiled kernel bound to ``op``, or None when the op is not
        vectorizable."""
        entry = self._memo.get(id(op))
        if entry is not None:
            self.stats["cache_hits"] += 1
            return entry[1]
        key = structural_hash(op)
        kernel = self.compile_cached(
            key,
            lambda: compile_apply(op) if op.name == "stencil.apply"
            else compile_loop_nest(op),
        )
        if kernel is not None and not kernel.label:
            kernel.label = f"{op.name}@{key[:10]}"
        bound = None
        if kernel is not None:
            try:
                bound = self._bind(op, kernel)
            except Exception:
                self.stats["unsupported"] += 1
        self._memo[id(op)] = (op, bound)
        return bound

    @staticmethod
    def _bind(op: Operation, kernel: CompiledKernel) -> BoundKernel:
        """Resolve the kernel's external paths against this op instance."""
        values: List[SSAValue] = []
        nest = None
        for path in kernel.external_paths:
            if path[0] == "root":
                values.append(op.operands[path[1]])
            elif path[0] == "for":
                if nest is None:
                    nest = _nest_structure(op)
                _, dim, which = path
                values.append(nest[0][dim][which])
            elif op.name == "stencil.apply":
                # An apply body referencing a value from the enclosing
                # function: locate it on the body op that uses it.
                _, op_index, operand_index = path
                values.append(op.regions[0].block.ops[op_index].operands[operand_index])
            else:
                if nest is None:
                    nest = _nest_structure(op)
                _, op_index, operand_index = path
                values.append(nest[2].ops[op_index].operands[operand_index])
        return BoundKernel(kernel, values)


__all__ = [
    "EXECUTION_MODES",
    "KernelUnsupported",
    "CompiledKernel",
    "BoundKernel",
    "KernelCompiler",
    "compile_loop_nest",
    "compile_apply",
    "apply_is_vectorizable",
    "structural_hash",
]
