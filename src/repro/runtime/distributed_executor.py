"""Distributed multi-rank execution engine.

The paper's headline result (Figure 6) is distributed-memory Gauss-Seidel
lowered through the DMP dialect to MPI.  This module owns that execution
path end to end: a :class:`DistributedExecutor` scatters a global
Fortran-ordered field over a :class:`repro.runtime.CartesianDecomposition`
(filling the *physical* ghost planes with the global data that borders each
sub-domain), runs one interpreter per rank concurrently on a persistent
:class:`repro.runtime.ParallelExecutor` pool, drives every halo exchange
through one :class:`repro.runtime.SimulatedCommunicator`, and gathers the
owned interiors back into a global array — returning per-rank statistics
(messages, bytes, halo wall-time, kernel wall-time) alongside the result.

The executor is deliberately compiler-agnostic: it never imports the fluent
API.  Callers hand it a ``make_interpreter(rank, local_shape, comm,
decomposition)`` factory; :class:`repro.api.DistributedProgram` supplies one
that compiles through a session (one artifact per distinct rank-local
shape, memoized) and builds vectorized interpreters.

Rank tasks block inside ``comm.receive`` while they wait for neighbours, so
they must **all** be runnable concurrently: the executor sizes its pool to
at least the rank count, and keeps those pools separate from the count-keyed
tile pools of :func:`repro.runtime.parallel_executor.get_executor` — a rank
blocked in a receive must never occupy a worker that one of its own tiled
sweeps needs (the same layering rule :meth:`repro.api.Session.run_batch`
follows for batch dispatch).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..resilience import (
    FaultInjector,
    InjectedFault,
    RecoveryReport,
    ReportSink,
    ResilienceOptions,
)
from .interpreter import Interpreter
from .mpi_runtime import (
    CartesianDecomposition,
    MPIAbort,
    MPIError,
    SimulatedCommunicator,
)
from .parallel_executor import ParallelExecutor

#: Interpreter factory signature: (rank, padded local shape, communicator,
#: decomposition) -> configured Interpreter for that rank.
InterpreterFactory = Callable[
    [int, Tuple[int, ...], SimulatedCommunicator, CartesianDecomposition],
    Interpreter,
]


@dataclass
class RankStats:
    """Measured execution statistics of one simulated rank."""

    rank: int
    #: Owned global ``[lb, ub)`` bounds per dimension (no ghost planes).
    bounds: Tuple[Tuple[int, int], ...]
    #: Full local array shape including ghost planes.
    local_shape: Tuple[int, ...]
    messages: int = 0
    bytes: int = 0
    halo_seconds: float = 0.0
    kernel_seconds: float = 0.0
    total_seconds: float = 0.0


@dataclass
class DistributedRunResult:
    """The gathered global field plus communication/compute accounting."""

    field: np.ndarray
    grid: Tuple[int, ...]
    ranks: int
    iterations: int
    rank_stats: List[RankStats] = field(default_factory=list)
    #: Communicator-wide totals (every halo message of every rank).
    messages: int = 0
    bytes: int = 0
    #: Wall-clock of the whole scatter→ranks→gather run.
    seconds: float = 0.0
    #: Checkpoint rollbacks performed (resilient runs only).
    restarts: int = 0
    #: Recovery accounting when the run executed resiliently.
    recovery: Optional[RecoveryReport] = None

    def max_interior_error(self, reference: np.ndarray, margin: int = 1) -> float:
        """Max |field − reference| at least ``margin`` cells from the global
        boundary — the region where boundary-treatment differences between
        the rank-local kernels and a fixed-boundary reference cannot reach
        (the difference propagates inwards one cell per sweep)."""
        reference = np.asarray(reference)
        if reference.shape != self.field.shape:
            raise ValueError(
                f"reference shape {reference.shape} does not match gathered "
                f"field shape {self.field.shape}"
            )
        interior = tuple(slice(margin, s - margin) for s in self.field.shape)
        if any(s.start >= s.stop for s in interior):
            raise ValueError(
                f"margin {margin} leaves no interior in shape {self.field.shape}"
            )
        return float(np.abs(self.field[interior] - reference[interior]).max())


#: Rank-orchestration pools, one per worker count.  Deliberately NOT the
#: process-wide tile pools of ``get_executor``: rank tasks block in
#: ``comm.receive`` waiting on other ranks, so sharing a pool with the tiled
#: sweeps those ranks dispatch would deadlock the moment every worker holds
#: a blocked rank.
_RANK_POOLS: Dict[int, ParallelExecutor] = {}
#: One gate per pool: a distributed run needs *every* one of its rank tasks
#: runnable at once, so two concurrent runs must not interleave their rank
#: tasks on one pool (the first run's blocked receives would starve the
#: second run's queued ranks — and, transitively, their own neighbours).
#: Runs sharing a worker count therefore execute one at a time.
_RANK_POOL_GATES: Dict[int, threading.Lock] = {}
_RANK_POOLS_LOCK = threading.Lock()


def get_rank_pool(workers: int) -> ParallelExecutor:
    """The shared persistent rank-orchestration pool for ``workers`` slots."""
    with _RANK_POOLS_LOCK:
        pool = _RANK_POOLS.get(workers)
        if pool is None:
            pool = ParallelExecutor(workers)
            _RANK_POOLS[workers] = pool
            _RANK_POOL_GATES[workers] = threading.Lock()
        return pool


def _rank_pool_gate(workers: int) -> threading.Lock:
    with _RANK_POOLS_LOCK:
        return _RANK_POOL_GATES.setdefault(workers, threading.Lock())


class DistributedExecutor:
    """Orchestrates scatter → per-rank execution → halo exchange → gather.

    ``grid`` is the Cartesian process grid the leading dimensions of the
    global field are decomposed over (``(2, 2)`` → four ranks, dimensions 0
    and 1 split in two).  ``halo`` is the ghost-plane width every local
    array is padded with on *every* dimension (the stencil's widest access
    offset).  ``pool_size`` requests extra pool workers beyond the rank
    count — the effective worker total is ``max(num_ranks, pool_size)``,
    never below the rank count, because a rank blocked in a halo receive
    must not starve the neighbour whose send it waits for.
    ``timeout`` bounds every blocking receive/barrier so a genuinely
    deadlocked configuration fails with the communicator's pending-message
    diagnostic instead of hanging.
    """

    def __init__(self, grid: Sequence[int], *, halo: int = 1,
                 decomposed_dims: Optional[Sequence[int]] = None,
                 pool_size: Optional[int] = None,
                 timeout: float = 30.0):
        self.grid = tuple(int(g) for g in grid)
        if not self.grid or any(g < 1 for g in self.grid):
            raise MPIError(f"process grid must be positive, got {self.grid}")
        if halo < 0:
            raise MPIError(f"halo width must be >= 0, got {halo}")
        self.halo = int(halo)
        self.decomposed_dims = (
            tuple(decomposed_dims) if decomposed_dims is not None
            else tuple(range(len(self.grid)))
        )
        if len(self.decomposed_dims) != len(self.grid):
            raise MPIError(
                "decomposed_dims and grid must have equal length, got "
                f"{self.decomposed_dims} vs {self.grid}"
            )
        self.num_ranks = 1
        for extent in self.grid:
            self.num_ranks *= extent
        if pool_size is not None and pool_size < 1:
            raise MPIError(f"pool_size must be >= 1, got {pool_size}")
        self.pool_workers = max(self.num_ranks,
                                pool_size if pool_size is not None else 1)
        self.timeout = float(timeout)

    # ------------------------------------------------------------------
    # Decomposition / scatter / gather
    # ------------------------------------------------------------------

    def decomposition_for(self, global_shape: Sequence[int]) -> CartesianDecomposition:
        """The block decomposition of ``global_shape`` over this grid."""
        global_shape = tuple(int(s) for s in global_shape)
        for position, dim in enumerate(self.decomposed_dims):
            if dim >= len(global_shape):
                raise MPIError(
                    f"decomposed dimension {dim} out of range for a "
                    f"{len(global_shape)}-d field"
                )
            if global_shape[dim] < self.grid[position]:
                raise MPIError(
                    f"cannot split extent {global_shape[dim]} of dimension "
                    f"{dim} over {self.grid[position]} ranks"
                )
        return CartesianDecomposition(global_shape, self.grid,
                                      self.decomposed_dims)

    def scatter(self, global_field: np.ndarray,
                decomposition: CartesianDecomposition) -> Dict[int, np.ndarray]:
        """Per-rank padded local arrays with physical ghost planes filled.

        Each local array is the rank's owned box padded by ``halo`` ghost
        planes on every side.  Ghost *faces* that overlap the global domain
        (rank-rank interfaces, before the first halo exchange replaces them)
        are filled with the bordering global data; faces beyond the global
        boundary stay zero, matching the fixed zero-flux treatment of the
        reference kernels.  Corner/edge ghosts stay zero — an orthogonal
        stencil never reads them.
        """
        h = self.halo
        global_shape = decomposition.global_shape
        locals_by_rank: Dict[int, np.ndarray] = {}
        for rank in range(self.num_ranks):
            bounds = decomposition.local_bounds(rank)
            interior_shape = tuple(ub - lb for lb, ub in bounds)
            padded = tuple(extent + 2 * h for extent in interior_shape)
            local = np.zeros(padded, dtype=global_field.dtype, order="F")
            interior = tuple(slice(h, h + extent) for extent in interior_shape)
            owned = tuple(slice(lb, ub) for lb, ub in bounds)
            local[interior] = global_field[owned]
            if h:
                for dim, (lb, ub) in enumerate(bounds):
                    face = list(interior)
                    source = list(owned)
                    if lb >= h:
                        face[dim] = slice(0, h)
                        source[dim] = slice(lb - h, lb)
                        local[tuple(face)] = global_field[tuple(source)]
                    if ub + h <= global_shape[dim]:
                        face[dim] = slice(h + interior_shape[dim], None)
                        source[dim] = slice(ub, ub + h)
                        local[tuple(face)] = global_field[tuple(source)]
            locals_by_rank[rank] = local
        return locals_by_rank

    def gather(self, locals_by_rank: Dict[int, np.ndarray],
               decomposition: CartesianDecomposition,
               out: Optional[np.ndarray] = None) -> np.ndarray:
        """Assemble the owned interiors back into one global array."""
        h = self.halo
        if out is None:
            sample = locals_by_rank[0]
            out = np.zeros(decomposition.global_shape, dtype=sample.dtype,
                           order="F")
        for rank in range(self.num_ranks):
            bounds = decomposition.local_bounds(rank)
            interior = tuple(slice(h, h + (ub - lb)) for lb, ub in bounds)
            owned = tuple(slice(lb, ub) for lb, ub in bounds)
            out[owned] = locals_by_rank[rank][interior]
        return out

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self, global_field: np.ndarray,
            make_interpreter: InterpreterFactory, entry: str,
            iterations: int = 1,
            resilience: Optional[ResilienceOptions] = None,
            report_sink: Optional[ReportSink] = None) -> DistributedRunResult:
        """One distributed run: scatter, execute, exchange halos, gather.

        ``entry`` is called ``iterations`` times per rank on that rank's
        local array; the compiled module performs its own halo exchanges
        (the DMP lowering inserts them before every stencil snapshot).  The
        input field is never mutated; the gathered result comes back on the
        :class:`DistributedRunResult`.

        Passing ``resilience`` switches to the self-healing path: ranks run
        in lockstep one iteration at a time, locals are checkpointed at
        iteration boundaries, a crashed rank aborts the communicator and the
        whole fleet rolls back to the last checkpoint with a fresh
        communicator and fresh interpreters (bounded by ``max_restarts``).
        The fault-free resilient result is bitwise identical to the default
        path because halo messages never cross iteration boundaries.
        """
        if iterations < 1:
            raise MPIError(f"iterations must be >= 1, got {iterations}")
        if resilience is not None:
            return self._run_resilient(global_field, make_interpreter, entry,
                                       iterations, resilience, report_sink)
        started = time.perf_counter()
        global_field = np.asfortranarray(global_field)
        decomposition = self.decomposition_for(global_field.shape)
        comm = SimulatedCommunicator(self.num_ranks, timeout=self.timeout)
        locals_by_rank = self.scatter(global_field, decomposition)
        stats_by_rank: Dict[int, RankStats] = {}

        def run_rank(rank: int) -> None:
            local = locals_by_rank[rank]
            rank_started = time.perf_counter()
            interp = make_interpreter(rank, local.shape, comm, decomposition)
            for _ in range(iterations):
                interp.call(entry, local)
            total = time.perf_counter() - rank_started
            kernel_seconds = 0.0
            if interp.kernels is not None:
                per_kernel = interp.kernels.stats.get("per_kernel", {})
                kernel_seconds = sum(
                    entry_stats["seconds"] for entry_stats in per_kernel.values()
                )
            stats_by_rank[rank] = RankStats(
                rank=rank,
                bounds=tuple(decomposition.local_bounds(rank)),
                local_shape=tuple(local.shape),
                messages=int(interp.stats["mpi_messages"]),
                bytes=int(interp.stats["mpi_bytes"]),
                halo_seconds=float(interp.stats["halo_seconds"]),
                kernel_seconds=kernel_seconds,
                total_seconds=total,
            )

        pool = get_rank_pool(self.pool_workers)
        # One distributed run at a time per pool: every rank task of a run
        # must be runnable at once, so runs may not interleave.
        with _rank_pool_gate(self.pool_workers):
            pool.run_tiles(run_rank, list(range(self.num_ranks)))
        gathered = self.gather(locals_by_rank, decomposition)
        seconds = time.perf_counter() - started
        return DistributedRunResult(
            field=gathered,
            grid=self.grid,
            ranks=self.num_ranks,
            iterations=iterations,
            rank_stats=[stats_by_rank[r] for r in range(self.num_ranks)],
            messages=comm.message_count,
            bytes=comm.bytes_sent,
            seconds=seconds,
        )

    def _run_resilient(self, global_field: np.ndarray,
                       make_interpreter: InterpreterFactory, entry: str,
                       iterations: int,
                       resilience: ResilienceOptions,
                       report_sink: Optional[ReportSink] = None,
                       ) -> DistributedRunResult:
        """Lockstep execution with iteration-boundary checkpoint/restart.

        Ranks are dispatched one iteration at a time (the executor is the
        barrier), so a crash can only lose work since the last checkpoint.
        Rank tasks catch their own outcome instead of raising — tasks mutate
        ``locals_by_rank`` in place, so every task of the wave must finish
        before a rollback may restore those arrays.  A crashed rank aborts
        the communicator (waking every peer blocked in a receive), the dead
        generation's communicator and interpreters are retired with their
        statistics carried over, and a fresh generation restarts from the
        checkpoint.  This is consistent because each iteration's halo
        receives consume that same iteration's sends: nothing in flight ever
        belongs to a future iteration, so discarding the communicator at a
        boundary loses no live message.
        """
        started = time.perf_counter()
        sink = report_sink if report_sink is not None else ReportSink()
        injector = (FaultInjector(resilience.plan, sink)
                    if resilience.plan is not None
                    and not resilience.plan.empty else None)
        global_field = np.asfortranarray(global_field)
        decomposition = self.decomposition_for(global_field.shape)
        locals_by_rank = self.scatter(global_field, decomposition)
        ranks = list(range(self.num_ranks))

        carried = {r: {"messages": 0, "bytes": 0, "halo_seconds": 0.0,
                       "kernel_seconds": 0.0, "total_seconds": 0.0}
                   for r in ranks}
        total_messages = 0
        total_bytes = 0
        restarts = 0

        def kernel_seconds_of(interp: Interpreter) -> float:
            if interp.kernels is None:
                return 0.0
            per_kernel = interp.kernels.stats.get("per_kernel", {})
            return sum(s["seconds"] for s in per_kernel.values())

        def new_generation():
            comm = SimulatedCommunicator(
                self.num_ranks, timeout=self.timeout,
                fault_hook=injector.on_send if injector is not None else None,
                resilient=True,
                max_receive_retries=resilience.max_receive_retries,
                backoff_initial=resilience.backoff_initial,
                backoff_cap=resilience.backoff_cap,
            )
            interps = {
                r: make_interpreter(r, locals_by_rank[r].shape, comm,
                                    decomposition)
                for r in ranks
            }
            return comm, interps

        def retire_generation(comm, interps):
            # Fold the generation's communication accounting into the run
            # totals so respawns never lose measured traffic.
            nonlocal total_messages, total_bytes
            total_messages += comm.message_count
            total_bytes += int(comm.bytes_sent)
            sink.add_counters(comm.stats)
            for r in ranks:
                interp = interps[r]
                carried[r]["messages"] += int(interp.stats["mpi_messages"])
                carried[r]["bytes"] += int(interp.stats["mpi_bytes"])
                carried[r]["halo_seconds"] += float(
                    interp.stats["halo_seconds"])
                carried[r]["kernel_seconds"] += kernel_seconds_of(interp)

        comm, interps = new_generation()
        checkpoint_iteration = 0
        checkpoint = {r: locals_by_rank[r].copy(order="F") for r in ranks}
        sink.bump("checkpoint_saves")

        iteration = 0
        pool = get_rank_pool(self.pool_workers)
        with _rank_pool_gate(self.pool_workers):
            while iteration < iterations:
                if (iteration != checkpoint_iteration
                        and iteration % resilience.checkpoint_interval == 0):
                    checkpoint_iteration = iteration
                    checkpoint = {r: locals_by_rank[r].copy(order="F")
                                  for r in ranks}
                    sink.bump("checkpoint_saves")
                outcomes: Dict[int, Optional[BaseException]] = {}

                def run_iteration_rank(rank, _iteration=iteration,
                                       _comm=comm, _interps=interps,
                                       _outcomes=outcomes):
                    rank_started = time.perf_counter()
                    try:
                        if (injector is not None
                                and injector.should_crash(rank, _iteration)):
                            _comm.abort(f"rank {rank} crashed at iteration "
                                        f"{_iteration}")
                            raise InjectedFault(
                                f"rank {rank} crashed at iteration "
                                f"{_iteration}")
                        _interps[rank].call(entry, locals_by_rank[rank])
                        _outcomes[rank] = None
                    except BaseException as exc:  # noqa: BLE001 — triaged by the dispatcher
                        _outcomes[rank] = exc
                    finally:
                        carried[rank]["total_seconds"] += (
                            time.perf_counter() - rank_started)

                pool.run_tiles(run_iteration_rank, ranks)
                failures = {r: e for r, e in outcomes.items()
                            if e is not None}
                if not failures:
                    iteration += 1
                    continue
                hard = [e for e in failures.values()
                        if not isinstance(e, (MPIAbort, InjectedFault))]
                if hard:
                    sink.bump("unrecovered")
                    retire_generation(comm, interps)
                    raise hard[0]
                sink.bump("crashes_detected",
                          sum(1 for e in failures.values()
                              if isinstance(e, InjectedFault)))
                if restarts >= resilience.max_restarts:
                    sink.bump("unrecovered")
                    retire_generation(comm, interps)
                    raise MPIError(
                        f"distributed run gave up after {restarts} restarts "
                        f"(max_restarts={resilience.max_restarts}); last "
                        f"crash: {next(iter(failures.values()))}")
                restarts += 1
                retire_generation(comm, interps)
                for r in ranks:
                    np.copyto(locals_by_rank[r], checkpoint[r])
                iteration = checkpoint_iteration
                comm, interps = new_generation()
                sink.bump("checkpoint_restores")
                sink.bump("rank_respawns", self.num_ranks)
                sink.record_event(
                    f"rolled back to iteration {checkpoint_iteration} "
                    f"(restart {restarts})")
        retire_generation(comm, interps)
        gathered = self.gather(locals_by_rank, decomposition)
        seconds = time.perf_counter() - started
        rank_stats = [
            RankStats(
                rank=r,
                bounds=tuple(decomposition.local_bounds(r)),
                local_shape=tuple(locals_by_rank[r].shape),
                messages=carried[r]["messages"],
                bytes=carried[r]["bytes"],
                halo_seconds=carried[r]["halo_seconds"],
                kernel_seconds=carried[r]["kernel_seconds"],
                total_seconds=carried[r]["total_seconds"],
            )
            for r in ranks
        ]
        return DistributedRunResult(
            field=gathered,
            grid=self.grid,
            ranks=self.num_ranks,
            iterations=iterations,
            rank_stats=rank_stats,
            messages=total_messages,
            bytes=total_bytes,
            seconds=seconds,
            restarts=restarts,
            recovery=sink.report,
        )

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<DistributedExecutor grid={self.grid} ranks={self.num_ranks} "
            f"pool={self.pool_workers}>"
        )


__all__ = [
    "DistributedExecutor",
    "DistributedRunResult",
    "RankStats",
    "InterpreterFactory",
    "get_rank_pool",
]
