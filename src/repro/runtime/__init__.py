"""Execution substrates: IR interpreter, simulated GPU/MPI and machine models."""

from .distributed_executor import (
    DistributedExecutor,
    DistributedRunResult,
    RankStats,
    get_rank_pool,
)
from .gpu_kernel_engine import GpuKernelEngine, GpuLaunchKernel, compile_gpu_func
from .gpu_runtime import (
    DeviceMemoryPool,
    GpuStream,
    GPUTransfer,
    KernelLaunch,
    SimulatedGPU,
    StreamEvent,
)
from .interpreter import FieldValue, Frame, Interpreter, InterpreterError, TempValue
from .kernel_compiler import (
    EXECUTION_MODES,
    CompiledKernel,
    KernelCompiler,
    KernelUnsupported,
    apply_is_vectorizable,
    structural_hash,
)
from .memory import ElementRef, MemoryBuffer, numpy_dtype_for
from .mpi_runtime import (
    CartesianDecomposition,
    MPIAbort,
    MPIError,
    SimulatedCommunicator,
)
from .parallel_executor import (
    SCHEDULE_KINDS,
    ParallelExecutor,
    get_executor,
    plan_tiles,
    tree_combine,
)

__all__ = [
    "Interpreter",
    "InterpreterError",
    "EXECUTION_MODES",
    "CompiledKernel",
    "KernelCompiler",
    "KernelUnsupported",
    "apply_is_vectorizable",
    "structural_hash",
    "Frame",
    "FieldValue",
    "TempValue",
    "MemoryBuffer",
    "ElementRef",
    "numpy_dtype_for",
    "SimulatedGPU",
    "GPUTransfer",
    "KernelLaunch",
    "GpuStream",
    "StreamEvent",
    "DeviceMemoryPool",
    "GpuKernelEngine",
    "GpuLaunchKernel",
    "compile_gpu_func",
    "SimulatedCommunicator",
    "CartesianDecomposition",
    "MPIError",
    "MPIAbort",
    "DistributedExecutor",
    "DistributedRunResult",
    "RankStats",
    "get_rank_pool",
    "ParallelExecutor",
    "SCHEDULE_KINDS",
    "plan_tiles",
    "tree_combine",
    "get_executor",
]
