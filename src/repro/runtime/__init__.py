"""Execution substrates: IR interpreter, simulated GPU/MPI and machine models."""

from .gpu_runtime import GPUTransfer, KernelLaunch, SimulatedGPU
from .interpreter import FieldValue, Frame, Interpreter, InterpreterError, TempValue
from .kernel_compiler import (
    EXECUTION_MODES,
    CompiledKernel,
    KernelCompiler,
    KernelUnsupported,
    apply_is_vectorizable,
    structural_hash,
)
from .memory import ElementRef, MemoryBuffer, numpy_dtype_for
from .mpi_runtime import CartesianDecomposition, MPIError, SimulatedCommunicator

__all__ = [
    "Interpreter",
    "InterpreterError",
    "EXECUTION_MODES",
    "CompiledKernel",
    "KernelCompiler",
    "KernelUnsupported",
    "apply_is_vectorizable",
    "structural_hash",
    "Frame",
    "FieldValue",
    "TempValue",
    "MemoryBuffer",
    "ElementRef",
    "numpy_dtype_for",
    "SimulatedGPU",
    "GPUTransfer",
    "KernelLaunch",
    "SimulatedCommunicator",
    "CartesianDecomposition",
    "MPIError",
]
