"""User-schedulable kernels: composable schedule transforms on compiled
handles, with oracle-proven equivalence (``Schedule.verify()``).

The light pieces (directive grammar, errors) import eagerly;
:class:`Schedule` itself is lazy because it pulls in the runtime stack.
"""

from .directives import (
    DIRECTIVES,
    ScheduleError,
    describe_chain,
    normalize_schedule_chain,
)

__all__ = [
    "DIRECTIVES",
    "ScheduleError",
    "ScheduleVerificationError",
    "Schedule",
    "describe_chain",
    "normalize_schedule_chain",
    "synthesize_args",
]


def __getattr__(name):
    if name in ("Schedule", "ScheduleVerificationError", "synthesize_args"):
        from . import schedule

        return getattr(schedule, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
