"""Schedule-chain directives: the pure data layer of the scheduling API.

A schedule chain is a tuple of directives, each a tuple whose first element
names the transform:

* ``("fuse",)`` — merge adjacent stencil applies (stencil level);
* ``("tile", (t0, ..., tr))`` — tile the loop nest, one size per dimension;
* ``("reorder", (p0, ..., pm))`` — permute the innermost ``m`` serial loops;
* ``("unroll", (dim, factor))`` — unroll loop ``dim`` by ``factor``.

The chain lives on :class:`repro.api.BackendOptions` as compile-time
cache-key material, so this module must stay import-light (options cannot
depend on the dialects or the transform machinery).  Structural validation
against the actual loop nest happens at lower time in
:mod:`repro.transforms.schedule_transforms`.
"""

from __future__ import annotations

from typing import Sequence, Tuple

#: The transform names a schedule chain may contain.
DIRECTIVES = ("fuse", "tile", "reorder", "unroll")


class ScheduleError(ValueError):
    """An illegal schedule: malformed chain, or a transform that does not
    apply to the compiled loop structure.  Always loud, never a silent
    miscompile — :meth:`repro.schedule.Schedule.verify` backs this up with
    the crosscheck oracle."""


def _int_tuple(values, directive: str) -> Tuple[int, ...]:
    try:
        result = tuple(int(v) for v in values)
    except (TypeError, ValueError):
        raise ScheduleError(
            f"{directive}: expected a sequence of integers, got {values!r}"
        ) from None
    if any(not isinstance(v, int) or isinstance(v, bool) for v in values):
        raise ScheduleError(
            f"{directive}: expected a sequence of integers, got {values!r}"
        )
    return result


def normalize_schedule_chain(chain) -> Tuple[Tuple, ...]:
    """Validate and canonicalise a schedule chain to nested tuples.

    Accepts lists (e.g. from JSON-carried options) and returns hashable
    tuples; raises :class:`ScheduleError` on malformed directives.  One
    ordering rule is enforced here because it is phase-structural, not
    nest-structural: ``fuse`` rewrites the stencil level before lowering,
    so it must precede every loop transform in the chain.
    """
    if chain is None:
        return ()
    normalized = []
    seen_loop_directive = False
    for entry in chain:
        if isinstance(entry, str):
            entry = (entry,)
        try:
            parts = tuple(entry)
        except TypeError:
            raise ScheduleError(
                f"schedule directive must be a tuple, got {entry!r}"
            ) from None
        if not parts:
            raise ScheduleError("empty schedule directive")
        name = parts[0]
        if name not in DIRECTIVES:
            raise ScheduleError(
                f"unknown schedule directive {name!r}; expected one of "
                f"{DIRECTIVES}"
            )
        if name == "fuse":
            if len(parts) != 1:
                raise ScheduleError("fuse takes no arguments")
            if seen_loop_directive:
                raise ScheduleError(
                    "fuse must precede loop transforms (tile/reorder/unroll) "
                    "in a schedule chain: it rewrites the stencil level "
                    "before the loops exist"
                )
            normalized.append(("fuse",))
            continue
        seen_loop_directive = True
        if name == "tile":
            if len(parts) != 2:
                raise ScheduleError("tile takes exactly one argument: sizes")
            sizes = _int_tuple(parts[1], "tile")
            if not sizes or any(s < 1 for s in sizes):
                raise ScheduleError(
                    f"tile sizes must be positive, got {parts[1]!r}"
                )
            normalized.append(("tile", sizes))
        elif name == "reorder":
            if len(parts) != 2:
                raise ScheduleError(
                    "reorder takes exactly one argument: the permutation"
                )
            perm = _int_tuple(parts[1], "reorder")
            if len(perm) < 2 or sorted(perm) != list(range(len(perm))):
                raise ScheduleError(
                    f"reorder argument must be a permutation of "
                    f"0..{max(len(perm) - 1, 1)}, got {parts[1]!r}"
                )
            normalized.append(("reorder", perm))
        elif name == "unroll":
            if len(parts) != 2:
                raise ScheduleError(
                    "unroll takes exactly one argument: (loop, factor)"
                )
            pair = _int_tuple(parts[1], "unroll")
            if len(pair) != 2:
                raise ScheduleError(
                    f"unroll argument must be (loop, factor), got {parts[1]!r}"
                )
            loop, factor = pair
            if loop < 0:
                raise ScheduleError(f"unroll loop index must be >= 0, got {loop}")
            if factor < 2:
                raise ScheduleError(f"unroll factor must be >= 2, got {factor}")
            normalized.append(("unroll", (loop, factor)))
    return tuple(normalized)


def describe_chain(chain: Sequence[Tuple]) -> str:
    """A compact human-readable rendering, e.g.
    ``tile(4,8).reorder(1,0).unroll(2,2)`` — used in error messages."""
    parts = []
    for directive in chain:
        name = directive[0]
        if len(directive) == 1:
            parts.append(f"{name}()")
        else:
            args = directive[1]
            if isinstance(args, tuple):
                parts.append(f"{name}({','.join(str(a) for a in args)})")
            else:  # pragma: no cover - normalized chains are tuples
                parts.append(f"{name}({args})")
    return ".".join(parts) if parts else "<empty>"


__all__ = [
    "DIRECTIVES",
    "ScheduleError",
    "normalize_schedule_chain",
    "describe_chain",
]
