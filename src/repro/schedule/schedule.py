"""The fluent :class:`Schedule` layer: user-schedulable compiled kernels.

In the spirit of Halide/TVM/Exo, a *schedule* is a chain of composable
transforms applied to an already-compiled program without touching its
source.  ``CompiledProgram.schedule()`` returns a :class:`Schedule` wrapping
the handle; every directive derives a **new immutable handle** through the
session, with the directive chain recorded on
``BackendOptions.schedule_chain`` — compile-time cache-key material, so two
handles with different schedules are distinct artifacts while runtime knobs
(``streams``) stay runtime-only:

.. code-block:: python

    fast = (program.lower("openmp", lower_to_scf=True)
                   .schedule()
                   .fuse()
                   .tile(1, 32, 16)
                   .reorder(1, 0)
                   .verify()          # bitwise-proven against the oracle
                   .compiled)

Directives that are *structurally* impossible (wrong tile rank, permutation
deeper than the serial nest, unroll of a dynamic loop) raise
:class:`ScheduleError` at derivation time, from inside ``Backend.lower``.
Directives that are structurally fine but *semantically* illegal — e.g.
reordering an in-place Gauss–Seidel sweep whose iterations carry a
dependence — compile silently; :meth:`Schedule.verify` exists to catch
exactly those: it runs the scheduled handle (in crosscheck mode where the
backend supports it) and the unscheduled parent on the scalar oracle over
identical inputs and demands **bitwise** equality, raising
:class:`ScheduleVerificationError` on any difference.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..dialects import fir
from ..dialects.func import FuncOp
from ..runtime.memory import numpy_dtype_for
from .directives import ScheduleError, describe_chain

#: Seed material for deterministic verification inputs (one stream per arg).
_VERIFY_SEED = 0x5EED


class ScheduleVerificationError(ScheduleError):
    """A scheduled program's outputs differ bitwise from its unscheduled
    parent — the schedule changed the program's meaning."""


def synthesize_args(func_op: FuncOp) -> List[object]:
    """Deterministic arguments matching ``func_op``'s FIR signature.

    Arrays become positive Fortran-ordered random fields (one rng stream per
    argument position, so the values are stable across runs and processes);
    scalars become fixed constants.  Only statically shaped signatures can be
    synthesized — anything else needs caller-provided arguments.
    """
    args: List[object] = []
    for position, arg_type in enumerate(func_op.function_type.inputs):
        element = arg_type
        if fir.is_reference_like(arg_type):
            element = arg_type.element_type  # type: ignore[union-attr]
        if isinstance(element, fir.SequenceType):
            if not element.has_static_shape():
                raise ScheduleError(
                    f"verify: argument {position} of '{func_op.sym_name}' has "
                    f"a dynamic shape {element.print()}; pass args=... "
                    f"explicitly"
                )
            rng = np.random.default_rng([_VERIFY_SEED, position])
            values = rng.uniform(0.5, 2.0, size=element.shape)
            dtype = numpy_dtype_for(element.element_type)
            args.append(np.asfortranarray(values.astype(dtype)))
        else:
            dtype = numpy_dtype_for(element)
            scalar = 1.5 if np.issubdtype(dtype, np.floating) else 2
            args.append(dtype.type(scalar))
    return args


class Schedule:
    """A compiled program plus its (possibly empty) schedule chain.

    Immutable and cheap: the real state lives in the wrapped
    :class:`repro.api.CompiledProgram`, and each directive method returns a
    new :class:`Schedule` over a newly derived handle.
    """

    __slots__ = ("_compiled",)

    def __init__(self, compiled):
        self._compiled = compiled

    # -- introspection -------------------------------------------------------

    @property
    def compiled(self):
        """The scheduled :class:`repro.api.CompiledProgram` handle."""
        return self._compiled

    @property
    def chain(self) -> Tuple[Tuple, ...]:
        return self._compiled.options.schedule_chain

    def describe(self) -> str:
        return describe_chain(self.chain) or "<unscheduled>"

    # -- loop directives (compile-time, IR-rewriting) ------------------------

    def _derive(self, directive: Tuple) -> "Schedule":
        chain = self.chain + (directive,)
        return Schedule(self._compiled.with_options(schedule_chain=chain))

    @staticmethod
    def _flatten(values) -> Tuple[int, ...]:
        if len(values) == 1 and isinstance(values[0], (tuple, list)):
            values = tuple(values[0])
        return tuple(values)

    def fuse(self) -> "Schedule":
        """Merge adjacent compatible stencils into one sweep (stencil level;
        must precede loop-level directives)."""
        return self._derive(("fuse",))

    def tile(self, *sizes) -> "Schedule":
        """Execute the sweep in ``sizes``-shaped sub-boxes of the domain
        (cache blocking).  One size per iteration-space dimension — a rank
        mismatch is a loud error at derivation time."""
        return self._derive(("tile", self._flatten(sizes)))

    def reorder(self, *perm) -> "Schedule":
        """Permute the innermost serial loops of each nest: ``reorder(1, 0)``
        swaps the two innermost.  Parallel dimensions cannot be reordered."""
        return self._derive(("reorder", self._flatten(perm)))

    def unroll(self, loop: int, factor: int) -> "Schedule":
        """Unroll serial loop ``loop`` (0 = outermost serial) by ``factor``;
        the trip count must be a static multiple of ``factor``."""
        return self._derive(("unroll", (loop, factor)))

    # -- backend knobs (options, not IR rewrites) ----------------------------

    def _require_backend(self, knob: str, *names: str) -> None:
        if self._compiled.backend_name not in names:
            raise ScheduleError(
                f"{knob}: only the {' / '.join(map(repr, names))} backend"
                f"{'s' if len(names) > 1 else ''} accept"
                f"{'' if len(names) > 1 else 's'} this directive "
                f"(compiled for '{self._compiled.backend_name}')"
            )

    def omp(self, schedule: Optional[str] = None,
            chunk: Optional[int] = None) -> "Schedule":
        """Set the OpenMP worksharing schedule clause (openmp backend)."""
        self._require_backend("omp", "openmp")
        changes = {}
        if schedule is not None:
            changes["schedule"] = schedule
        if chunk is not None:
            changes["chunk_size"] = chunk
        if not changes:
            return self
        return Schedule(self._compiled.with_options(**changes))

    def blocks(self, *shape) -> "Schedule":
        """Set the GPU parallel-loop tile ("thread block") sizes; validated
        against every kernel's rank at lower time (gpu backend)."""
        self._require_backend("blocks", "gpu")
        return Schedule(
            self._compiled.with_options(tile_sizes=self._flatten(shape)))

    def streams(self, n: int) -> "Schedule":
        """Set the simulated GPU's stream count — runtime-only: the derived
        handle shares the parent's compiled artifact (gpu backend)."""
        self._require_backend("streams", "gpu")
        return Schedule(self._compiled.with_options(streams=n))

    def grid(self, *shape) -> "Schedule":
        """Set the distributed process grid (dmp backend)."""
        self._require_backend("grid", "dmp")
        return Schedule(self._compiled.with_options(grid=self._flatten(shape)))

    # -- execution & verification --------------------------------------------

    def run(self, entry: str, *args, **kwargs):
        """Run the scheduled handle (see :meth:`CompiledProgram.run`)."""
        return self._compiled.run(entry, *args, **kwargs)

    def _entry_candidates(self) -> List[str]:
        names = []
        for op in self._compiled.artifact.fir_module.walk():
            if isinstance(op, FuncOp) and not op.is_declaration:
                names.append(op.sym_name)
        return names

    def _resolve_entry(self, entry: Optional[str]) -> FuncOp:
        module = self._compiled.artifact.fir_module
        if entry is None:
            candidates = self._entry_candidates()
            if len(candidates) != 1:
                raise ScheduleError(
                    f"verify: cannot infer the entry point from "
                    f"{candidates or 'an empty module'}; pass entry=..."
                )
            entry = candidates[0]
        func_op = module.get_symbol(entry)
        if not isinstance(func_op, FuncOp) or func_op.is_declaration:
            raise ScheduleError(f"verify: no function '{entry}' to call")
        return func_op

    def verify(self, entry: Optional[str] = None,
               args: Optional[Sequence[object]] = None) -> "Schedule":
        """Prove this schedule semantics-preserving, bitwise.

        Runs the **unscheduled parent** on the scalar reference oracle
        (``interpret`` mode) and this scheduled handle in ``crosscheck`` mode
        (every vectorized sweep replayed through the scalar oracle; plain
        ``interpret`` for flang-only) over identical deterministic inputs,
        then compares every array argument with ``ndarray.tobytes()``.  Any
        difference — a reordered loop-carried dependence, a tile crossing a
        sweep's in-place update — raises :class:`ScheduleVerificationError`
        naming the arrays and the offending chain.  Returns ``self`` so a
        verified schedule chains straight into ``.run(...)``.
        """
        compiled = self._compiled
        if compiled.backend_name == "dmp":
            raise ScheduleError(
                "verify: the dmp backend runs through a distributed plan; "
                "verify the schedule on 'cpu'/'openmp' and retarget, or "
                "compare plans via the fuzz farm's dmp oracle"
            )
        func_op = self._resolve_entry(entry)
        if args is None:
            args = synthesize_args(func_op)
        if not self.chain:
            return self  # nothing to prove: this *is* the parent

        def clone(values):
            return [np.copy(v, order="F") if isinstance(v, np.ndarray) else v
                    for v in values]

        parent = compiled.with_options(schedule_chain=())
        oracle_args = clone(args)
        parent.interpreter(execution_mode="interpret").call(
            func_op.sym_name, *oracle_args)

        mode = ("interpret" if compiled.backend_name == "flang-only"
                else "crosscheck")
        scheduled_args = clone(args)
        from ..runtime.interpreter import InterpreterError
        try:
            compiled.interpreter(execution_mode=mode).call(
                func_op.sym_name, *scheduled_args)
        except InterpreterError as err:
            raise ScheduleVerificationError(
                f"schedule {self.describe()} failed the crosscheck oracle on "
                f"'{func_op.sym_name}': {str(err).splitlines()[0]}"
            ) from err

        differing = []
        max_diff = 0.0
        for position, (expected, actual) in enumerate(
                zip(oracle_args, scheduled_args)):
            if not isinstance(expected, np.ndarray):
                continue
            if expected.tobytes() != actual.tobytes():
                differing.append(f"arg{position}")
                with np.errstate(invalid="ignore"):
                    delta = np.abs(expected - actual)
                finite = delta[np.isfinite(delta)]
                diff = float(finite.max()) if finite.size else float("inf")
                max_diff = max(max_diff, diff)
        if differing:
            raise ScheduleVerificationError(
                f"schedule {self.describe()} changes '{func_op.sym_name}' on "
                f"backend '{compiled.backend_name}': arrays "
                f"{differing} differ from the unscheduled program "
                f"(max|diff|={max_diff:.3e}) — the schedule is illegal for "
                f"this kernel"
            )
        return self

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<Schedule {self.describe()} over "
                f"backend={self._compiled.backend_name!r}>")


__all__ = ["Schedule", "ScheduleVerificationError", "synthesize_args"]
