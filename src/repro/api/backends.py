"""The backend registry: one pluggable :class:`Backend` per compilation target.

Each backend owns three things the legacy ``CompilerDriver.compile`` five-way
``if/elif`` used to hard-code:

* its **pipeline** — the mlir-opt style pass pipeline string (plus any
  coordinated module edits, e.g. the GPU data-management pass touching the FIR
  module or the DMP decomposition passes);
* its **option schema** — the frozen dataclass from :mod:`repro.api.options`
  naming exactly the knobs this target understands (unknown or mismatched
  options are rejected with the backend's name and valid-field list);
* its **runtime wiring** — the simulated-device defaults the interpreter
  needs (a fresh :class:`SimulatedGPU` for the gpu backend, communicator
  passthrough for dmp), formerly hard-coded in
  ``CompilationResult.interpreter``.

``registry.get(name)`` accepts registered names (``"cpu"``, ``"openmp"``,
``"gpu"``, ``"dmp"``, ``"flang-only"``), their legacy aliases
(``"stencil-cpu"``, ...), and :class:`repro.compiler.Target` enum members, so
the deprecation shim dispatches through the same table as the fluent API.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple, Type, Union

from ..dialects import stencil
from ..frontend import compile_to_fir
from ..ir.context import Context, default_context
from ..ir.pass_manager import PassManager
from ..runtime.gpu_runtime import SimulatedGPU
from ..transforms import pipelines, schedule_transforms
from ..transforms.distributed import ConvertDMPToMPIPass, ConvertStencilToDMPPass
from ..transforms.gpu_data_management import GpuHostRegisterPass, GpuOptimisedDataPass
from ..transforms.stencil_discovery import StencilDiscoveryPass
from ..transforms.stencil_extraction import ExtractStencilsPass
from .artifact import CompiledArtifact
from .options import (
    BackendOptions,
    CpuOptions,
    DmpOptions,
    FlangOnlyOptions,
    GpuOptions,
    OpenMPOptions,
    OptionError,
)


class UnknownBackendError(ValueError):
    """Raised when a backend name is not in the registry."""


class Backend:
    """One compilation target: pipeline, option schema, runtime wiring.

    Subclasses set :attr:`name` (the registry key), optional legacy
    :attr:`aliases`, and :attr:`options_cls`; stencil-flow targets override
    :meth:`pipeline` and/or :meth:`transform`.
    """

    name: str = ""
    aliases: Tuple[str, ...] = ()
    options_cls: Type[BackendOptions] = BackendOptions
    #: Whether this target runs stencil discovery/extraction at all.
    uses_stencil_flow: bool = True

    # -- options -------------------------------------------------------------

    def make_options(self, options: Optional[BackendOptions] = None,
                     **overrides) -> BackendOptions:
        """Build (or refine) this backend's options, rejecting mismatches.

        Passing a field the schema does not define — e.g. ``grid`` to the cpu
        backend — raises :class:`OptionError` naming the backend and listing
        its valid options, instead of being silently ignored.
        """
        valid = self.options_cls.field_names()
        unknown = sorted(set(overrides) - set(valid))
        if unknown:
            raise OptionError(
                f"backend '{self.name}' does not accept option(s) "
                f"{', '.join(map(repr, unknown))}; valid options: {', '.join(valid)}"
            )
        if options is not None:
            if not isinstance(options, self.options_cls):
                raise OptionError(
                    f"backend '{self.name}' expects {self.options_cls.__name__}, "
                    f"got {type(options).__name__}"
                )
            return options.replace(**overrides) if overrides else options
        return self.options_cls(**overrides)

    # -- compilation ---------------------------------------------------------

    def pipeline(self, options: BackendOptions) -> Optional[str]:
        """The pass-pipeline string this backend runs on the stencil module
        (``None`` — keep the module at the stencil level)."""
        return None

    def lower(self, source, options: Optional[BackendOptions] = None, *,
              ctx: Optional[Context] = None, **overrides) -> CompiledArtifact:
        """Compile ``source`` (a string or a :class:`repro.api.Program`)
        through this backend's flow and return the compiled artifact."""
        source = getattr(source, "source", source)
        options = self.make_options(options, **overrides)
        ctx = ctx or default_context()
        fir_module = compile_to_fir(source)
        artifact = CompiledArtifact(
            source=source, backend=self.name, options=options,
            fir_module=fir_module,
        )
        if not self.uses_stencil_flow:
            schedule_transforms.apply_schedule_chain(artifact, ctx, "pre")
            schedule_transforms.apply_schedule_chain(artifact, ctx, "post")
            return artifact

        # 1. Discover stencils in the FIR produced by "Flang".
        discovery = StencilDiscoveryPass(merge=options.fuse_stencils)
        discovery.apply(ctx, fir_module)
        artifact.discovered_stencils = dict(discovery.discovered)
        fir_module.verify()

        # 2. Extract the stencil portions into their own module.
        extraction = ExtractStencilsPass()
        extraction.apply(ctx, fir_module)
        artifact.stencil_module = extraction.extracted_module
        artifact.extracted_functions = list(extraction.extracted_functions)
        fir_module.verify()
        if artifact.stencil_module is not None:
            artifact.stencil_module.verify()
        if artifact.stencil_module is None or not artifact.extracted_functions:
            # No stencils discovered: schedule directives have nothing to
            # rewrite — applying the chain raises the loud ScheduleError
            # instead of silently compiling an unscheduled artifact under a
            # schedule-extended cache key.
            schedule_transforms.apply_schedule_chain(artifact, ctx, "pre")
            schedule_transforms.apply_schedule_chain(artifact, ctx, "post")
            return artifact

        # 3. Schedule directives that act at the stencil level (fuse) run
        #    before the backend pipeline; loop-level directives after it.
        schedule_transforms.apply_schedule_chain(artifact, ctx, "pre")

        # 4. Target-specific transformation of the stencil module (and, for
        #    GPU data management / DMP, coordinated edits of the FIR module).
        self.transform(artifact, ctx)

        schedule_transforms.apply_schedule_chain(artifact, ctx, "post")
        return artifact

    def transform(self, artifact: CompiledArtifact, ctx: Context) -> None:
        """Target-specific lowering of the extracted stencil module."""
        pipeline = self.pipeline(artifact.options)
        if pipeline:
            self.run_pipeline(artifact, pipeline, ctx)

    def run_pipeline(self, artifact: CompiledArtifact, pipeline: str,
                     ctx: Context) -> None:
        pm = PassManager(ctx, verify_each=True)
        pm.add_pipeline(pipeline)
        artifact.pass_statistics.extend(pm.run(artifact.stencil_module))

    # -- runtime wiring ------------------------------------------------------

    def interpreter_kwargs(self, options: BackendOptions,
                           overrides: Dict[str, object]) -> Dict[str, object]:
        """Fill in this target's simulated-runtime defaults (gpu device,
        communicator, ...) for interpreter construction."""
        return overrides

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{type(self).__name__} {self.name!r}>"


class FlangOnlyBackend(Backend):
    """Plain FIR, no stencil specialisation — what Flang alone would run."""

    name = "flang-only"
    aliases = ("flang",)
    options_cls = FlangOnlyOptions
    uses_stencil_flow = False


class CpuBackend(Backend):
    """Single-core CPU via the stencil flow."""

    name = "cpu"
    aliases = ("stencil-cpu",)
    options_cls = CpuOptions

    def pipeline(self, options: CpuOptions) -> Optional[str]:
        return pipelines.CPU_PIPELINE if options.lower_to_scf else None


class OpenMPBackend(Backend):
    """Multi-threaded CPU: scf.parallel nests lowered to omp.wsloop."""

    name = "openmp"
    aliases = ("stencil-openmp", "omp")
    options_cls = OpenMPOptions

    def pipeline(self, options: OpenMPOptions) -> Optional[str]:
        if not options.lower_to_scf:
            return None
        return pipelines.openmp_pipeline(options.schedule, options.chunk_size)


class GpuBackend(Backend):
    """Nvidia GPU (simulated V100) with selectable data-management strategy."""

    name = "gpu"
    aliases = ("stencil-gpu",)
    options_cls = GpuOptions

    _DATA_PASSES = {
        "optimised": GpuOptimisedDataPass,
        "host_register": GpuHostRegisterPass,
    }

    #: The paper's Listing 4 tile sizes, adapted to each kernel's rank when
    #: ``tile_sizes`` is left at its ``None`` default.
    _DEFAULT_TILE = (32, 32, 1)

    def pipeline(self, options: GpuOptions) -> Optional[str]:
        if not options.lower_to_scf:
            return None
        return pipelines.gpu_stencil_pipeline(
            options.tile_sizes or self._DEFAULT_TILE
        )

    def _resolve_tile_sizes(self, artifact: CompiledArtifact) -> Tuple[int, ...]:
        """Satellite of the schedule work: tile sizes are validated against
        every lowered kernel's rank *here*, at lower time, instead of being
        silently padded/truncated deep inside the tiling pass."""
        kernel_ranks = []
        for name in artifact.extracted_functions:
            func_op = artifact.stencil_module.get_symbol(name)
            for apply_op in func_op.walk_type(stencil.ApplyOp):
                kernel_ranks.append((name, len(apply_op.lb)))
        explicit = artifact.options.tile_sizes
        if explicit is None:
            max_rank = max((rank for _, rank in kernel_ranks), default=3)
            default = self._DEFAULT_TILE + (1,) * max(0, max_rank - 3)
            return default[:max_rank]
        for name, rank in kernel_ranks:
            if len(explicit) != rank:
                raise OptionError(
                    f"gpu tile_sizes {explicit} has {len(explicit)} "
                    f"entr{'y' if len(explicit) == 1 else 'ies'} but kernel "
                    f"'{name}' has rank {rank}; pass exactly one tile size "
                    f"per dimension (or tile_sizes=None for the rank-adapted "
                    f"default)"
                )
        return explicit

    def transform(self, artifact: CompiledArtifact, ctx: Context) -> None:
        options = artifact.options
        tile = self._resolve_tile_sizes(artifact)
        strategy_cls = self._DATA_PASSES[options.data_strategy]
        strategy = strategy_cls(stencil_module=artifact.stencil_module,
                                tile=tile)
        strategy.apply(ctx, artifact.fir_module)
        artifact.fir_module.verify()
        artifact.stencil_module.verify()
        if options.lower_to_scf:
            self.run_pipeline(artifact, pipelines.gpu_stencil_pipeline(tile),
                              ctx)

    def interpreter_kwargs(self, options, overrides):
        if overrides.get("gpu") is None:
            overrides["gpu"] = SimulatedGPU(
                num_streams=getattr(options, "streams", 1)
            )
        return overrides


class DmpBackend(Backend):
    """Distributed memory: domain decomposition + halo swaps via DMP/MPI."""

    name = "dmp"
    aliases = ("stencil-dmp", "mpi")
    options_cls = DmpOptions

    def pipeline(self, options: DmpOptions) -> Optional[str]:
        return pipelines.CPU_PIPELINE if options.lower_to_scf else None

    def transform(self, artifact: CompiledArtifact, ctx: Context) -> None:
        dmp_pass = ConvertStencilToDMPPass(grid=artifact.options.grid)
        dmp_pass.apply(ctx, artifact.stencil_module)
        mpi_pass = ConvertDMPToMPIPass()
        mpi_pass.apply(ctx, artifact.stencil_module)
        artifact.stencil_module.verify()
        super().transform(artifact, ctx)


class BackendRegistry:
    """Name → :class:`Backend` table with legacy-alias resolution."""

    def __init__(self):
        self._backends: Dict[str, Backend] = {}
        self._aliases: Dict[str, str] = {}

    def register(self, backend: Backend, *, replace: bool = False) -> Backend:
        """Register ``backend`` under its name (and aliases); returns it so
        the call composes as an expression."""
        if not backend.name:
            raise ValueError("backend must define a non-empty name")
        if backend.name in self._backends and not replace:
            raise ValueError(
                f"backend '{backend.name}' is already registered "
                f"(pass replace=True to override)"
            )
        self._backends[backend.name] = backend
        for alias in backend.aliases:
            self._aliases[alias] = backend.name
        return backend

    def get(self, name: Union[str, "Backend", object]) -> Backend:
        """Look up a backend by name, legacy alias, or Target enum member."""
        if isinstance(name, Backend):
            return name
        key = str(getattr(name, "value", name))
        key = self._aliases.get(key, key)
        backend = self._backends.get(key)
        if backend is None:
            raise UnknownBackendError(
                f"unknown backend {name!r}; registered backends: "
                f"{', '.join(self.names())}"
            )
        return backend

    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._backends))

    def __contains__(self, name) -> bool:
        try:
            self.get(name)
            return True
        except UnknownBackendError:
            return False

    def __iter__(self) -> Iterator[Backend]:
        return iter(self._backends.values())

    def __len__(self) -> int:
        return len(self._backends)


#: The default registry holding the five targets evaluated in the paper.
registry = BackendRegistry()
for _backend in (FlangOnlyBackend(), CpuBackend(), OpenMPBackend(),
                 GpuBackend(), DmpBackend()):
    registry.register(_backend)
del _backend


def get_backend(name) -> Backend:
    """Shorthand for ``registry.get(name)`` on the default registry."""
    return registry.get(name)


__all__ = [
    "UnknownBackendError",
    "Backend",
    "FlangOnlyBackend",
    "CpuBackend",
    "OpenMPBackend",
    "GpuBackend",
    "DmpBackend",
    "BackendRegistry",
    "registry",
    "get_backend",
]
