"""``repro.api`` — the fluent, registry-based public compiler API.

The paper's compile-separately / link-at-runtime flow (§3, Figure 1) exposed
through three composable layers:

* **Backend registry** (:mod:`repro.api.backends`) — each target (``cpu``,
  ``openmp``, ``gpu``, ``dmp``, ``flang-only``) is a registered
  :class:`Backend` owning its pipeline string, its option schema and its
  simulated-runtime wiring.  Register your own backend to extend the system.
* **Fluent programs** (:mod:`repro.api.program`) — ``repro.compile(source)``
  returns an immutable :class:`Program`; ``program.lower("openmp",
  schedule="dynamic", chunk_size=8).vectorize(threads=4).run(entry, *args)``
  derives and executes compiled handles without mutating anything.
* **Sessions** (:mod:`repro.api.session`) — a :class:`Session` memoizes
  compiled artifacts by (source hash, backend, frozen options) and runs
  argument batches on the persistent thread pool via
  :meth:`Session.run_batch`.

The legacy ``repro.compiler`` module (``compile_fortran``, flat
``CompilerOptions``, ``CompilerDriver``) remains as a deprecation shim over
this package.
"""

from __future__ import annotations

from typing import Optional

from .artifact import CompiledArtifact
from .backends import (
    Backend,
    BackendRegistry,
    CpuBackend,
    DmpBackend,
    FlangOnlyBackend,
    GpuBackend,
    OpenMPBackend,
    UnknownBackendError,
    get_backend,
    registry,
)
from .options import (
    GPU_DATA_STRATEGIES,
    BackendOptions,
    CpuOptions,
    DmpOptions,
    FlangOnlyOptions,
    GpuOptions,
    OpenMPOptions,
    OptionError,
)
from .distributed import DistributedProgram
from .program import CompiledProgram, Program, source_fingerprint
from .session import Session, default_session


def compile(source: str, *, session: Optional[Session] = None) -> Program:
    """Compile ``source`` into a fluent :class:`Program`.

    Uses the process-wide default session (shared artifact cache) unless a
    ``session`` is given.  The heavy lifting happens lazily at
    ``program.lower(...)`` time, memoized per (source, backend, options).
    """
    return (session if session is not None else default_session()).compile(source)


__all__ = [
    "compile",
    "Program",
    "CompiledProgram",
    "DistributedProgram",
    "CompiledArtifact",
    "Session",
    "default_session",
    "source_fingerprint",
    "Backend",
    "BackendRegistry",
    "UnknownBackendError",
    "FlangOnlyBackend",
    "CpuBackend",
    "OpenMPBackend",
    "GpuBackend",
    "DmpBackend",
    "registry",
    "get_backend",
    "OptionError",
    "GPU_DATA_STRATEGIES",
    "BackendOptions",
    "FlangOnlyOptions",
    "CpuOptions",
    "OpenMPOptions",
    "GpuOptions",
    "DmpOptions",
]
