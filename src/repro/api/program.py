"""The fluent ``Program`` / ``CompiledProgram`` layer.

In the spirit of the Exo/SYS_ATL scheduling API, a compiled object is a
first-class immutable value you *derive* rather than mutate:

.. code-block:: python

    import repro

    program = repro.compile(fortran_source)
    compiled = (program.lower("openmp", lower_to_scf=True,
                              schedule="dynamic", chunk_size=8)
                       .vectorize(threads=4))
    compiled.run("pw_advection", u, v, w, su, sv, sw)

Every derivation (``lower``, ``vectorize``, ``with_threads``, ``retarget``,
...) returns a *new* handle; the underlying :class:`CompiledArtifact` comes
from the bound :class:`repro.api.Session`'s cache, so derivations that only
change runtime policy (execution mode, thread count) share the already
compiled modules instead of re-running discovery/extraction.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Sequence, TYPE_CHECKING

from ..runtime.interpreter import Interpreter
from .artifact import CompiledArtifact
from .backends import Backend
from .options import BackendOptions, validate_execution_mode, validate_threads

if TYPE_CHECKING:  # pragma: no cover
    from .session import Session


def source_fingerprint(source: str) -> str:
    """Stable identity of one Fortran source (artifact-cache key component)."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def build_interpreter(
    backend: Backend,
    options: BackendOptions,
    modules,
    gpu=None,
    comm=None,
    rank: int = 0,
    decomposition=None,
    execution_mode: Optional[str] = None,
    threads: Optional[int] = None,
) -> Interpreter:
    """Construct an interpreter over compiled ``modules`` for ``backend``.

    The single implementation behind both :meth:`CompiledProgram.interpreter`
    and the legacy ``CompilationResult.interpreter`` shim: overrides are
    validated at override time (``None`` means "use the compiled default",
    any other value — including falsy ones — must be valid) and the backend
    supplies its simulated-runtime defaults (e.g. a fresh
    :class:`SimulatedGPU` for the gpu backend).
    """
    mode = validate_execution_mode(execution_mode, options.execution_mode)
    workers = validate_threads(threads, options.threads)
    runtime = backend.interpreter_kwargs(options, {
        "gpu": gpu, "comm": comm, "rank": rank,
        "decomposition": decomposition,
    })
    return Interpreter(modules, execution_mode=mode, threads=workers,
                       **runtime)


class Program:
    """An immutable handle on one Fortran source, bound to a session.

    ``Program`` is deliberately cheap: it holds the source text only, and
    every :meth:`lower` goes through the session so repeated lowerings of the
    same source hit the compiled-artifact cache.
    """

    __slots__ = ("_source", "_session")

    def __init__(self, source: str, session: "Session"):
        self._source = source
        self._session = session

    @property
    def source(self) -> str:
        return self._source

    @property
    def session(self) -> "Session":
        return self._session

    @property
    def fingerprint(self) -> str:
        return source_fingerprint(self._source)

    def with_session(self, session: "Session") -> "Program":
        """The same source bound to a different session (separate cache)."""
        return Program(self._source, session)

    def lower(self, backend="cpu", options: Optional[BackendOptions] = None,
              **overrides) -> "CompiledProgram":
        """Compile this program for ``backend`` (name, alias, Target enum or
        Backend object), returning a fluent compiled handle."""
        return self._session.lower(self._source, backend, options, **overrides)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Program {self.fingerprint[:12]} ({len(self._source)} chars)>"


class CompiledProgram:
    """A compiled artifact as a first-class value: derive, retarget, run."""

    __slots__ = ("_session", "_source", "_backend", "_options", "_artifact")

    def __init__(self, session: "Session", source: str, backend: Backend,
                 options: BackendOptions, artifact: CompiledArtifact):
        self._session = session
        self._source = source
        self._backend = backend
        self._options = options
        self._artifact = artifact

    # -- identity ------------------------------------------------------------

    @property
    def session(self) -> "Session":
        return self._session

    @property
    def source(self) -> str:
        return self._source

    @property
    def backend(self) -> Backend:
        return self._backend

    @property
    def backend_name(self) -> str:
        return self._backend.name

    @property
    def options(self) -> BackendOptions:
        return self._options

    @property
    def artifact(self) -> CompiledArtifact:
        return self._artifact

    # -- artifact passthrough ------------------------------------------------

    @property
    def fir_module(self):
        return self._artifact.fir_module

    @property
    def stencil_module(self):
        return self._artifact.stencil_module

    @property
    def modules(self):
        return self._artifact.modules

    # Metadata comes back as copies: the artifact lives in the session cache
    # and is shared by every handle, so caller mutation must not leak in.

    @property
    def discovered_stencils(self) -> Dict[str, int]:
        return dict(self._artifact.discovered_stencils)

    @property
    def extracted_functions(self) -> List[str]:
        return list(self._artifact.extracted_functions)

    @property
    def pass_statistics(self) -> List:
        return list(self._artifact.pass_statistics)

    # -- fluent derivation ---------------------------------------------------

    def with_options(self, **changes) -> "CompiledProgram":
        """A handle with ``changes`` applied to the options.

        Goes back through the session: changes to compile-time options
        recompile (cache miss), runtime-only changes (execution mode,
        threads) re-use the cached artifact (cache hit).
        """
        return self._session.lower(
            self._source, self._backend, self._options.replace(**changes)
        )

    def interpret(self) -> "CompiledProgram":
        """Derive a handle running on the scalar reference oracle."""
        return self.with_options(execution_mode="interpret")

    def vectorize(self, threads: Optional[int] = None) -> "CompiledProgram":
        """Derive a handle running compiled NumPy whole-array kernels,
        optionally tiled over ``threads`` workers."""
        changes = {"execution_mode": "vectorize"}
        if threads is not None:
            changes["threads"] = threads
        return self.with_options(**changes)

    def crosscheck(self, threads: Optional[int] = None) -> "CompiledProgram":
        """Derive a handle replaying every vectorized sweep through the
        scalar oracle (the honesty mode)."""
        changes = {"execution_mode": "crosscheck"}
        if threads is not None:
            changes["threads"] = threads
        return self.with_options(**changes)

    def with_threads(self, threads: int) -> "CompiledProgram":
        """Derive a handle whose tiled sweeps use ``threads`` workers."""
        return self.with_options(threads=threads)

    def retarget(self, backend, **overrides) -> "CompiledProgram":
        """Compile the same source for a different backend (fresh options)."""
        return self._session.lower(self._source, backend, None, **overrides)

    def schedule(self) -> "Schedule":
        """Open the fluent scheduling surface over this handle:
        ``compiled.schedule().fuse().tile(1, 32, 16).verify().compiled`` —
        see :class:`repro.schedule.Schedule`."""
        from ..schedule.schedule import Schedule

        return Schedule(self)

    def distribute(self, ranks: Optional[int] = None, *,
                   pool_size: Optional[int] = None,
                   source_builder=None,
                   entry: Optional[str] = None,
                   execution_mode: Optional[str] = None,
                   threads: Optional[int] = None,
                   timeout: float = 30.0,
                   resilience=None):
        """Derive a multi-rank execution plan (dmp backend only).

        The process grid comes from the compiled :class:`DmpOptions` (a
        compile-time cache-key field); ``ranks`` merely asserts the expected
        rank count, and ``pool_size`` / ``execution_mode`` / ``threads`` /
        ``resilience`` are runtime-only.  Passing
        ``resilience=ResilienceOptions(...)`` runs the plan on the
        self-healing path (checkpoint/restart, retrying communicator) — like
        ``threads`` it never enters the session cache key.  See
        :class:`repro.api.DistributedProgram`.
        """
        from .distributed import DistributedProgram
        from .options import validate_timeout

        validate_timeout(timeout, self.backend_name)
        return DistributedProgram(
            self, ranks=ranks, pool_size=pool_size,
            source_builder=source_builder, entry=entry,
            execution_mode=execution_mode, threads=threads, timeout=timeout,
            resilience=resilience,
        )

    # -- execution -----------------------------------------------------------

    def interpreter(
        self,
        gpu=None,
        comm=None,
        rank: int = 0,
        decomposition=None,
        execution_mode: Optional[str] = None,
        threads: Optional[int] = None,
    ) -> Interpreter:
        """Build an interpreter with the FIR and stencil modules linked.

        ``execution_mode`` and ``threads`` override the handle's options when
        given; see :func:`build_interpreter` for the override semantics.
        """
        return build_interpreter(
            self._backend, self._options, self._artifact.modules,
            gpu=gpu, comm=comm, rank=rank, decomposition=decomposition,
            execution_mode=execution_mode, threads=threads,
        )

    def run(self, entry: str, *args, **kwargs) -> Interpreter:
        """Convenience: build an interpreter and call ``entry`` with ``args``
        (arrays mutate in place); returns the interpreter for stats access."""
        interp = self.interpreter(**kwargs)
        interp.call(entry, *args)
        return interp

    def run_batch(self, entry: str, arg_sets: Sequence[Sequence],
                  workers: Optional[int] = None) -> List[List[object]]:
        """Run ``entry`` once per argument set on the shared thread pool
        (see :meth:`repro.api.Session.run_batch`)."""
        return self._session.run_batch(self, entry, arg_sets, workers=workers)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<CompiledProgram backend={self.backend_name!r} "
            f"mode={self._options.execution_mode!r} "
            f"threads={self._options.threads}>"
        )


__all__ = ["source_fingerprint", "build_interpreter", "Program",
           "CompiledProgram"]
