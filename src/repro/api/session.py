"""Sessions: compiled-artifact caching and batch execution.

A :class:`Session` is the stateful half of the fluent API.  It memoizes
:class:`repro.api.CompiledArtifact` objects by ``(source hash, backend name,
frozen compile-time options)`` so harness sweeps, ablations and serving
workloads that compile the same source repeatedly stop re-running
discovery/extraction from scratch — and it offers :meth:`run_batch`, which
fans independent argument sets of one compiled program out over the
persistent thread pool of :mod:`repro.runtime.parallel_executor`.

Runtime-only options (``execution_mode``, ``threads``) are excluded from the
cache key, so ``compiled.vectorize(threads=4)`` is a cache *hit* on the
artifact compiled by ``program.lower(...)``.

With an :class:`repro.serve.ArtifactStore` attached (``Session(store=...)``),
the memo dict gains a second, on-disk layer shared *across processes*: a
memory miss consults the store before lowering (a ``disk_hit``), and every
fresh compile is persisted for the next process.  ``misses`` then counts true
backend lowers only.
"""

from __future__ import annotations

import os
import threading
from typing import Dict, List, Optional, Sequence, Tuple

from ..ir.context import Context, default_context
from ..resilience import InjectedFault
from ..runtime.parallel_executor import ParallelExecutor
from .artifact import CompiledArtifact
from .backends import Backend, BackendRegistry, registry as default_registry
from .options import BackendOptions
from .program import CompiledProgram, Program, source_fingerprint

#: Upper bound on default batch workers (explicit ``workers=`` overrides it).
_MAX_DEFAULT_BATCH_WORKERS = max(1, os.cpu_count() or 1)


class Session:
    """Compiles programs and memoizes the compiled artifacts.

    ``session.compile(source)`` returns a :class:`Program` bound to this
    session; every ``program.lower(...)`` (and every runtime derivation of a
    compiled handle) goes through :meth:`lower`, which consults the cache
    before invoking the backend.  ``cache_stats`` exposes measured hit/miss
    counters.
    """

    def __init__(self, registry: Optional[BackendRegistry] = None,
                 ctx: Optional[Context] = None, store=None):
        self.registry = registry if registry is not None else default_registry
        self._ctx = ctx or default_context()
        self._cache: Dict[Tuple, CompiledArtifact] = {}
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        #: Optional :class:`repro.serve.ArtifactStore`: a shared on-disk
        #: cache layer consulted on memory misses and written on compiles.
        self.store = store
        self._disk_hits = 0
        self._disk_misses = 0
        #: Deterministic fault injection: called with the source fingerprint
        #: before every backend compile; returning True simulates a transient
        #: compiler crash (see :class:`repro.resilience.FaultInjector`).
        self.compile_hook = None
        #: How many times a failing compile is retried before its cache key
        #: is quarantined (single retry by default).
        self.compile_retries = 1
        #: Poisoned-artifact records: cache key -> the exception that
        #: exhausted its retries.  Further lowers of the key re-raise it
        #: immediately instead of retry-storming the backend.
        self._quarantined: Dict[Tuple, BaseException] = {}
        self._compile_retry_count = 0
        self._quarantine_hits = 0
        # Batch dispatch pools, one per worker count.  Deliberately *not* the
        # process-wide count-keyed pools of ``get_executor``: batch tasks
        # block on tile futures from their interpreters' pools, so sharing a
        # pool between the two layers deadlocks whenever the batch worker
        # count equals a handle's interpreter thread count.
        self._batch_executors: Dict[int, ParallelExecutor] = {}

    # -- compilation ---------------------------------------------------------

    def compile(self, source: str) -> Program:
        """Wrap ``source`` in a :class:`Program` bound to this session."""
        return Program(source, self)

    def lower(self, source, backend="cpu",
              options: Optional[BackendOptions] = None,
              **overrides) -> CompiledProgram:
        """Compile ``source`` for ``backend``, reusing cached artifacts.

        ``backend`` may be a registered name, a legacy alias, a Target enum
        member, or a :class:`Backend` object; keyword ``overrides`` refine the
        backend's option schema and are validated against it.
        """
        source = getattr(source, "source", source)
        backend_obj = self.registry.get(backend)
        opts = backend_obj.make_options(options, **overrides)
        artifact = self._artifact_for(source, backend_obj, opts)
        return CompiledProgram(self, source, backend_obj, opts, artifact)

    def _artifact_for(self, source: str, backend: Backend,
                      options: BackendOptions) -> CompiledArtifact:
        key = (source_fingerprint(source), backend.name, options.cache_key())
        with self._lock:
            cached = self._cache.get(key)
            if cached is not None:
                self._hits += 1
                return cached
            poisoned = self._quarantined.get(key)
            if poisoned is not None:
                # A quarantined key failed its compile *and* its retry: re-
                # raise the original exception (same object, same type) so a
                # bad source cannot retry-storm the backend.
                self._quarantine_hits += 1
                raise poisoned
        if self.store is not None:
            # Second cache layer: another process may already have lowered
            # this key.  Store failures (corruption, truncation, version
            # mismatch) surface as None — a safe miss, never an exception.
            loaded = self.store.load(key, source=source, backend=backend.name,
                                     options=options)
            if loaded is not None:
                with self._lock:
                    self._disk_hits += 1
                    return self._cache.setdefault(key, loaded)
            with self._lock:
                self._disk_misses += 1
        with self._lock:
            # Re-check under the lock: another thread may have compiled (or
            # disk-loaded) the key while we were reading the store.
            cached = self._cache.get(key)
            if cached is not None:
                self._hits += 1
                return cached
            self._misses += 1
        attempt = 0
        while True:
            try:
                if self.compile_hook is not None and self.compile_hook(key[0]):
                    raise InjectedFault(
                        f"injected transient compile failure for source "
                        f"{key[0][:12]} on backend '{backend.name}'"
                    )
                artifact = backend.lower(source, options, ctx=self._ctx)
                break
            except BaseException as exc:
                attempt += 1
                if attempt > self.compile_retries:
                    with self._lock:
                        self._quarantined[key] = exc
                    raise
                with self._lock:
                    self._compile_retry_count += 1
        if self.store is not None:
            # Best-effort persist for the next process; save() never raises.
            self.store.save(key, artifact)
        with self._lock:
            # Two threads may race to compile the same key; the artifacts are
            # equivalent, keep the first and let the loser's result drop.
            return self._cache.setdefault(key, artifact)

    # -- cache management ----------------------------------------------------

    @property
    def cache_stats(self) -> Dict[str, int]:
        """Measured cache counters: ``hits``, ``misses``, ``artifacts``.

        With a store attached, ``disk_hits``/``disk_misses`` count the
        on-disk layer separately and ``misses`` counts true backend lowers
        only (a disk hit is not a miss).
        """
        with self._lock:
            stats = {
                "hits": self._hits,
                "misses": self._misses,
                "artifacts": len(self._cache),
            }
            if self.store is not None:
                stats["disk_hits"] = self._disk_hits
                stats["disk_misses"] = self._disk_misses
            return stats

    def cached_key(self, key: Tuple) -> bool:
        """Whether ``key`` is already in the in-memory artifact cache (used
        by :class:`repro.serve.CompileService` for its no-queue hot path)."""
        with self._lock:
            return key in self._cache

    @property
    def resilience_stats(self) -> Dict[str, int]:
        """Compile-recovery counters: ``compile_retries`` (transient
        failures recovered by retrying), ``compiles_quarantined`` (keys whose
        retries were exhausted) and ``quarantine_hits`` (lowers short-
        circuited by a poisoned record)."""
        with self._lock:
            return {
                "compile_retries": self._compile_retry_count,
                "compiles_quarantined": len(self._quarantined),
                "quarantine_hits": self._quarantine_hits,
            }

    def quarantined_record(self, source, backend="cpu",
                           options: Optional[BackendOptions] = None,
                           **overrides) -> Optional[BaseException]:
        """The poisoned-artifact record for a (source, backend, options)
        triple, or None if the key is healthy."""
        source = getattr(source, "source", source)
        backend_obj = self.registry.get(backend)
        opts = backend_obj.make_options(options, **overrides)
        key = (source_fingerprint(source), backend_obj.name, opts.cache_key())
        with self._lock:
            return self._quarantined.get(key)

    def clear_cache(self, keep_quarantine: bool = False) -> None:
        """Drop every cached artifact and reset the cache counters.

        By default the quarantine records (and their counters) go too.  Pass
        ``keep_quarantine=True`` to drop artifacts while leaving known-bad
        sources poisoned — operators reclaiming memory must not un-poison a
        source whose compiles are known to fail.
        """
        with self._lock:
            self._cache.clear()
            self._hits = 0
            self._misses = 0
            self._disk_hits = 0
            self._disk_misses = 0
            if not keep_quarantine:
                self._quarantined.clear()
                self._compile_retry_count = 0
                self._quarantine_hits = 0

    # -- batch execution -----------------------------------------------------

    def run_batch(self, compiled: CompiledProgram, entry: str,
                  arg_sets: Sequence[Sequence],
                  workers: Optional[int] = None) -> List[List[object]]:
        """Run ``entry`` once per argument set, concurrently.

        Each argument set gets its own interpreter over the shared compiled
        modules (interpreters never mutate them), dispatched on the
        persistent thread pool from :mod:`repro.runtime.parallel_executor`.
        Results come back **in input order** — deterministic regardless of
        completion order — and arrays are mutated in place per Fortran
        by-reference semantics, so each argument set should own its arrays.
        """
        arg_sets = list(arg_sets)
        if not arg_sets:
            return []

        def run_one(args: Sequence) -> List[object]:
            return compiled.interpreter().call(entry, *args)

        if workers is None:
            workers = min(len(arg_sets), _MAX_DEFAULT_BATCH_WORKERS)
        if workers <= 1 or len(arg_sets) == 1:
            return [run_one(args) for args in arg_sets]
        with self._lock:
            executor = self._batch_executors.get(workers)
            if executor is None:
                executor = ParallelExecutor(workers)
                self._batch_executors[workers] = executor
        return executor.map_tiles(run_one, arg_sets)

    def __repr__(self) -> str:  # pragma: no cover
        stats = self.cache_stats
        return (
            f"<Session artifacts={stats['artifacts']} "
            f"hits={stats['hits']} misses={stats['misses']}>"
        )


_default_session = Session()


def default_session() -> Session:
    """The process-wide session behind :func:`repro.compile`."""
    return _default_session


__all__ = ["Session", "default_session"]
